//! Quickstart: generate a synthetic EBS dataset, route it through the
//! stack simulator, and print the headline skewness statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ebs::analysis::aggregate::{rollup_compute, ComputeLevel};
use ebs::analysis::{ccr, median, p2a};
use ebs::core::metric::Measure;
use ebs::core::units::format_bytes;
use ebs::stack::sim::{StackConfig, StackSim};
use ebs::workload::{generate, summarize, WorkloadConfig};

fn main() {
    // A small single-DC fleet over 30 simulated minutes.
    let config = WorkloadConfig::quick(42);
    let ds = generate(&config).expect("config validates");

    let s = summarize(&ds.fleet);
    println!(
        "fleet: {} users, {} VMs, {} VDs, {} QPs",
        s.users, s.vms, s.vds, s.qps
    );

    let (read, write) = ds.total_bytes();
    println!(
        "traffic: {} read, {} write ({} sampled traces)",
        format_bytes(read),
        format_bytes(write),
        ds.trace_count()
    );

    // Spatial skewness: how much of the read traffic do the top 1% of VMs carry?
    let vm_reads = rollup_compute(
        &ds.fleet,
        &ds.compute,
        ComputeLevel::Vm,
        Measure::ReadBytes,
        |_| true,
    );
    let totals = vm_reads.totals();
    if let Some(c) = ccr(&totals, 0.01) {
        println!("VM-level 1%-CCR (read): {:.1}%", c * 100.0);
    }

    // Temporal skewness: the median VM's peak-to-average ratio.
    let p2as: Vec<f64> = vm_reads.series.iter().filter_map(|(_, s)| p2a(s)).collect();
    if let Some(m) = median(&p2as) {
        println!("median VM read P2A: {m:.1}");
    }

    // Route the sampled IOs through the full stack: hypervisor worker
    // threads, networks, BlockServer, ChunkServer. (Throttling is studied
    // separately — see the throttle_lending example — so the latency here
    // is the raw device path.)
    let cfg = StackConfig {
        apply_throttle: false,
        ..StackConfig::default()
    };
    let mut sim = StackSim::new(&ds.fleet, cfg);
    let out = sim.run(&ds.events).expect("events are time-sorted");
    println!(
        "stack: {} IOs routed, mean end-to-end latency {:.0} us, {} GC cycles",
        out.stats.ios, out.stats.mean_latency_us, out.stats.gc_runs
    );
}
