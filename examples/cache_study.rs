//! Cache study on one virtual disk: find its hottest block, compare
//! FIFO / LRU / FrozenHot hit ratios, and check where a frozen cache
//! saves the most latency (§7 of the paper).
//!
//! ```sh
//! cargo run --example cache_study
//! ```

use ebs::cache::hottest_block::{hot_rate, hottest_block, HOT_RATE_WINDOW_US};
use ebs::cache::location::{hit_oracle, latency_gain, CacheSite};
use ebs::cache::simulate::{build_policy, simulate, Algorithm};
use ebs::core::ids::VdId;
use ebs::core::io::Op;
use ebs::core::units::format_bytes;
use ebs::stack::sim::{StackConfig, StackSim};
use ebs::workload::{generate, WorkloadConfig};
use ebs_core::hash::FxHashMap;

fn main() {
    let ds = generate(&WorkloadConfig::quick(7)).expect("config validates");
    // Per-VD views come from the dataset's shared event index (built once,
    // no event copies).
    let by_vd = ds.index().vd_slices();

    // The busiest disk in the sample.
    let (vd_idx, &events) = by_vd
        .iter()
        .enumerate()
        .max_by_key(|(_, evs)| evs.len())
        .expect("non-empty fleet");
    let vd = VdId::from_index(vd_idx);
    println!("busiest disk: {vd} with {} sampled IOs", events.len());

    // Its hottest 256 MiB block.
    let block_size = 256u64 << 20;
    let hb = hottest_block(vd, events, block_size).expect("disk has traffic");
    println!(
        "hottest {} block: #{} absorbing {:.1}% of accesses (wr_ratio {:+.2})",
        format_bytes(block_size as f64),
        hb.block,
        hb.access_rate * 100.0,
        hb.wr_ratio().unwrap_or(0.0),
    );
    if let Some(hr) = hot_rate(events, &hb, HOT_RATE_WINDOW_US, 2) {
        println!("hot rate over 5-minute windows: {:.0}%", hr * 100.0);
    }

    // Hit ratios of the three policies, cache sized to the block.
    for algo in Algorithm::ALL {
        let mut policy = build_policy(algo, &hb);
        let stats = simulate(policy.as_mut(), events);
        println!(
            "{:<9} hit ratio: {:.1}%",
            policy.name(),
            stats.ratio().unwrap_or(0.0) * 100.0
        );
    }

    // Where should the cache live? Compare CN- and BS-cache latency gains
    // over stack-simulated five-stage latencies.
    let cfg = StackConfig {
        apply_throttle: false,
        ..StackConfig::default()
    };
    let mut sim = StackSim::new(&ds.fleet, cfg);
    let out = sim.run(&ds.events).expect("sorted events");
    let hot: FxHashMap<_, _> = [(vd, hb)].into_iter().collect();
    let hits = hit_oracle(&hot, out.traces.records(), 0.0);
    for site in CacheSite::ALL {
        if let Some(g) = latency_gain(out.traces.records(), &hits, site, Op::Write) {
            println!(
                "{}: write latency gain p50 {:.2} (p99 {:.2}) — lower is better",
                site.label(),
                g.p50,
                g.p99
            );
        }
    }
}
