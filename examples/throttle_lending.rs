//! Throttle headroom and limited lending (§5 of the paper): measure how
//! much cap headroom exists when a disk throttles, then simulate
//! Algorithm 2's limited lending at several lending rates.
//!
//! ```sh
//! cargo run --example throttle_lending
//! ```

use ebs::analysis::median;
use ebs::throttle::lending::{lending_gains, LendingConfig};
use ebs::throttle::rar::rar_samples;
use ebs::throttle::reduction::reduction_rates;
use ebs::throttle::scenario::{build_groups, CapDim};
use ebs::workload::{generate, WorkloadConfig};

fn main() {
    let ds = generate(&WorkloadConfig::quick(23)).expect("config validates");
    let groups = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
    println!(
        "{} poolable groups (multi-VD VMs and multi-VM nodes)",
        groups.len()
    );

    // How much headroom exists at throttle instants?
    let rar: Vec<f64> = groups.iter().flat_map(rar_samples).collect();
    match median(&rar) {
        Some(m) => println!(
            "median resource-available rate under throttling: {:.0}% ({} samples)",
            m * 100.0,
            rar.len()
        ),
        None => println!("no throttle events at this scale — try a larger fleet"),
    }

    // Theoretical reduction rate and realistic lending gain per p.
    println!("\np    median RR   positive-gain%   median gain");
    for p in [0.2, 0.4, 0.6, 0.8] {
        let rr: Vec<f64> = groups.iter().flat_map(|g| reduction_rates(g, p)).collect();
        let gains = lending_gains(&groups, &LendingConfig { p, period_ticks: 6 });
        let pos = if gains.is_empty() {
            f64::NAN
        } else {
            gains.iter().filter(|&&g| g > 0.0).count() as f64 / gains.len() as f64
        };
        println!(
            "{p:.1}  {:>9.3}  {:>14.1}  {:>12.3}",
            median(&rr).unwrap_or(f64::NAN),
            pos * 100.0,
            median(&gains).unwrap_or(f64::NAN)
        );
    }
    println!("\n(RR < 1: lending would shorten throttles; gain < 0: lending backfired)");
}
