//! Replay a trace through the stack: export the synthetic dataset's
//! sampled IO stream to CSV, read it back (the same path a *real* trace
//! would take), and route it through the simulator.
//!
//! ```sh
//! cargo run --example trace_replay
//! ```

use ebs::stack::sim::{StackConfig, StackSim};
use ebs::workload::export::{read_events_csv, write_events_csv};
use ebs::workload::{generate, WorkloadConfig};
use std::io::BufReader;

fn main() {
    // 1. Generate and export — in a real deployment this CSV would come
    //    from your own tracing infrastructure.
    let ds = generate(&WorkloadConfig::quick(99)).expect("config validates");
    let mut csv = Vec::new();
    write_events_csv(&ds, &mut csv).expect("in-memory write");
    println!(
        "exported {} sampled IOs ({} bytes of CSV)",
        ds.trace_count(),
        csv.len()
    );

    // 2. Import: the parser only needs the six block-layer columns.
    let events = read_events_csv(BufReader::new(csv.as_slice())).expect("well-formed CSV");
    assert_eq!(events.len(), ds.events.len());

    // 3. Replay through the full stack. The fleet supplies the topology;
    //    the events supply the traffic.
    let cfg = StackConfig {
        apply_throttle: false,
        ..StackConfig::default()
    };
    let mut sim = StackSim::new(&ds.fleet, cfg);
    let out = sim.run(&events).expect("time-sorted");
    println!(
        "replayed {} IOs: mean latency {:.0} us, {} prefetch hits, {} GC cycles",
        out.stats.ios, out.stats.mean_latency_us, out.stats.prefetch_hits, out.stats.gc_runs
    );

    // 4. The five-stage trace records are ready for any of the paper's
    //    analyses — here, the write-latency breakdown by stage.
    let writes: Vec<_> = out
        .traces
        .records()
        .iter()
        .filter(|r| r.op.is_write())
        .collect();
    let mean = |f: &dyn Fn(&ebs::core::trace::TraceRecord) -> f64| -> f64 {
        writes.iter().map(|r| f(r)).sum::<f64>() / writes.len() as f64
    };
    println!("write-latency breakdown (mean us):");
    println!("  compute      {:8.1}", mean(&|r| r.lat.compute_us));
    println!("  frontend net {:8.1}", mean(&|r| r.lat.frontend_us));
    println!("  block server {:8.1}", mean(&|r| r.lat.block_server_us));
    println!("  backend net  {:8.1}", mean(&|r| r.lat.backend_us));
    println!("  chunk server {:8.1}", mean(&|r| r.lat.chunk_server_us));
}
