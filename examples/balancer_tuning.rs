//! Tune the inter-BS segment balancer: compare the five importer-selection
//! strategies (§6.1 of the paper) and the effect of the exporter threshold
//! on migration churn.
//!
//! ```sh
//! cargo run --example balancer_tuning
//! ```

use ebs::balance::bs_balancer::{run_balancer, BalancerConfig};
use ebs::balance::importer::ImporterSelect;
use ebs::balance::migration::{frequent_migration_proportion, segment_residency_intervals};
use ebs::core::ids::DcId;
use ebs::workload::{generate, WorkloadConfig};

fn main() {
    let ds = generate(&WorkloadConfig::quick(11)).expect("config validates");
    let dc = DcId(0);

    println!("strategy         migrations  frequent%  mean residency");
    for strategy in ImporterSelect::ALL {
        let cfg = BalancerConfig {
            strategy,
            ..BalancerConfig::default()
        };
        let run = run_balancer(&ds.fleet, &ds.storage, dc, &cfg);
        let freq = frequent_migration_proportion(run.seg_map.log(), 1);
        let residency = segment_residency_intervals(run.seg_map.log(), run.periods);
        let mean = if residency.is_empty() {
            0.0
        } else {
            residency.iter().sum::<f64>() / residency.len() as f64
        };
        println!(
            "{:<16} {:>10}  {:>8.1}  {:>14.3}",
            strategy.label(),
            run.migrations,
            freq * 100.0,
            mean
        );
    }

    println!("\nexporter threshold sweep (S2 importer):");
    for ratio in [1.1, 1.2, 1.5, 2.0] {
        let cfg = BalancerConfig {
            exporter_ratio: ratio,
            ..BalancerConfig::default()
        };
        let run = run_balancer(&ds.fleet, &ds.storage, dc, &cfg);
        let mean_cov = if run.cov_series.is_empty() {
            0.0
        } else {
            run.cov_series.iter().sum::<f64>() / run.cov_series.len() as f64
        };
        println!(
            "  {ratio:.1}x avg -> {:>5} migrations, mean period CoV {mean_cov:.3}",
            run.migrations
        );
    }
}
