//! Offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! API.
//!
//! The build environment for this workspace has no network access, so the
//! real `criterion` crate cannot be fetched. This shim implements the
//! surface the workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] / [`criterion_main!`],
//! [`BatchSize`], [`Throughput`], and [`black_box`] — with a simple
//! median-of-samples wall-clock measurement printed per benchmark.
//!
//! It honours the two CLI shapes cargo uses: `--bench` (run and report) and
//! `--test` (run each benchmark once, for `cargo test --benches`). A
//! positional argument filters benchmarks by substring, like criterion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortises setup; ignored by the shim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation; recorded for the report line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Measured per-iteration times for the current sampling round.
    samples: Vec<Duration>,
    /// Iterations to run this round.
    iters: u64,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// What the harness is being asked to do, from the CLI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Measure and report (`cargo bench`).
    Bench,
    /// Run each benchmark once to prove it works (`cargo test --benches`).
    Test,
}

/// The benchmark harness. One per bench target.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Bench;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                "--bench" => mode = Mode::Bench,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self {
            mode,
            filter,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Run (and in bench mode, report) one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, None, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.mode == Mode::Test {
            let mut b = Bencher {
                samples: Vec::new(),
                iters: 1,
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // Warm-up round, then one measured iteration per sample.
        let mut warmup = Bencher {
            samples: Vec::new(),
            iters: 1,
        };
        f(&mut warmup);
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters: self.sample_size as u64,
        };
        f(&mut b);
        let mut samples = b.samples;
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{id:<50} median {:>12?}  mean {:>12?}  ({} samples){rate}",
            median,
            mean,
            samples.len()
        );
    }
}

/// A group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.run_one(&full, self.throughput, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Define a bench entry point running `$target` functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_runs_routine() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters: 3,
        };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 3);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn bencher_iter_batched_pairs_setup_and_routine() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters: 4,
        };
        let mut total = 0u64;
        b.iter_batched(|| 10u64, |x| total += x, BatchSize::SmallInput);
        assert_eq!(total, 40);
    }
}
