//! Per-IO trace records (the paper's *trace data*, §2.3).
//!
//! DiTing samples one in 3200 IOs and records, per sampled IO: the block-
//! layer information (opcode, size, LBA offset), the EBS-stack entities the
//! IO passed through, and its latency across the five major components of
//! the stack (compute node, frontend network, BlockServer, backend network,
//! ChunkServer).

use crate::ids::{BsId, CnId, QpId, SegId, SnId, TraceId, VdId, VmId, WtId};
use crate::io::Op;

/// Latency of one IO broken down by the five major stack components (§2.3),
/// all in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageLatency {
    /// Time spent in the compute node (hypervisor queueing + worker thread).
    pub compute_us: f64,
    /// Frontend network (compute ↔ storage cluster RPC transit).
    pub frontend_us: f64,
    /// BlockServer processing (address translation, forwarding).
    pub block_server_us: f64,
    /// Backend network (BS ↔ CS, RDMA).
    pub backend_us: f64,
    /// ChunkServer persistence / retrieval.
    pub chunk_server_us: f64,
}

impl StageLatency {
    /// End-to-end latency: the sum of the five stages.
    pub fn total_us(&self) -> f64 {
        self.compute_us
            + self.frontend_us
            + self.block_server_us
            + self.backend_us
            + self.chunk_server_us
    }

    /// Latency with everything below the compute node removed — what the IO
    /// would cost if served from a compute-node cache (§7.3.2).
    pub fn cn_cache_us(&self) -> f64 {
        self.compute_us
    }

    /// Latency with everything below the BlockServer removed — what the IO
    /// would cost if served from a BlockServer cache (§7.3.2).
    pub fn bs_cache_us(&self) -> f64 {
        self.compute_us + self.frontend_us + self.block_server_us
    }
}

/// One sampled IO trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Unique trace id.
    pub id: TraceId,
    /// Submission timestamp, microseconds from the window origin.
    pub t_us: u64,
    /// Opcode.
    pub op: Op,
    /// Transfer size in bytes.
    pub size: u32,
    /// Byte offset within the VD's LBA space.
    pub offset: u64,
    /// Queue pair the IO was submitted to.
    pub qp: QpId,
    /// Virtual disk.
    pub vd: VdId,
    /// Virtual machine.
    pub vm: VmId,
    /// Compute node.
    pub cn: CnId,
    /// Worker thread that served the IO.
    pub wt: WtId,
    /// Segment the offset falls in.
    pub seg: SegId,
    /// BlockServer that handled the IO.
    pub bs: BsId,
    /// Storage node hosting that BlockServer.
    pub sn: SnId,
    /// Per-component latency breakdown.
    pub lat: StageLatency,
}

impl TraceRecord {
    /// Transfer size in bytes as `f64` (convenient for traffic sums).
    pub fn bytes(&self) -> f64 {
        self.size as f64
    }
}

/// A collection of trace records covering one observation window, kept
/// sorted by timestamp.
#[derive(Clone, Debug, Default)]
pub struct TraceSet {
    records: Vec<TraceRecord>,
}

impl TraceSet {
    /// Wrap a vector of records, sorting by timestamp (stable, so equal
    /// timestamps keep generation order).
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.t_us);
        Self { records }
    }

    /// All records in timestamp order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records for one VD, preserving time order.
    pub fn for_vd(&self, vd: VdId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.vd == vd)
    }

    /// Count of read and write records `(reads, writes)`.
    pub fn rw_counts(&self) -> (usize, usize) {
        let reads = self.records.iter().filter(|r| r.op.is_read()).count();
        (reads, self.records.len() - reads)
    }

    /// Total read and write bytes `(read, write)`.
    pub fn rw_bytes(&self) -> (f64, f64) {
        let mut read = 0.0;
        let mut write = 0.0;
        for r in &self.records {
            if r.op.is_read() {
                read += r.bytes();
            } else {
                write += r.bytes();
            }
        }
        (read, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, op: Op, size: u32) -> TraceRecord {
        TraceRecord {
            id: TraceId(t_us),
            t_us,
            op,
            size,
            offset: 0,
            qp: QpId(0),
            vd: VdId(0),
            vm: VmId(0),
            cn: CnId(0),
            wt: WtId(0),
            seg: SegId(0),
            bs: BsId(0),
            sn: SnId(0),
            lat: StageLatency {
                compute_us: 10.0,
                frontend_us: 20.0,
                block_server_us: 5.0,
                backend_us: 15.0,
                chunk_server_us: 50.0,
            },
        }
    }

    #[test]
    fn stage_latency_sums() {
        let lat = rec(0, Op::Read, 4096).lat;
        assert!((lat.total_us() - 100.0).abs() < 1e-12);
        assert!((lat.cn_cache_us() - 10.0).abs() < 1e-12);
        assert!((lat.bs_cache_us() - 35.0).abs() < 1e-12);
        assert!(lat.cn_cache_us() < lat.bs_cache_us());
        assert!(lat.bs_cache_us() < lat.total_us());
    }

    #[test]
    fn trace_set_sorts_and_counts() {
        let set = TraceSet::from_records(vec![
            rec(30, Op::Write, 8192),
            rec(10, Op::Read, 4096),
            rec(20, Op::Write, 4096),
        ]);
        let ts: Vec<u64> = set.records().iter().map(|r| r.t_us).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(set.rw_counts(), (1, 2));
        let (rb, wb) = set.rw_bytes();
        assert_eq!(rb, 4096.0);
        assert_eq!(wb, 12288.0);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
    }

    #[test]
    fn for_vd_filters() {
        let mut a = rec(1, Op::Read, 512);
        a.vd = VdId(1);
        let b = rec(2, Op::Read, 512);
        let set = TraceSet::from_records(vec![a, b]);
        assert_eq!(set.for_vd(VdId(1)).count(), 1);
        assert_eq!(set.for_vd(VdId(0)).count(), 1);
        assert_eq!(set.for_vd(VdId(9)).count(), 0);
    }
}
