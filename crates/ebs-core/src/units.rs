//! Byte-size and throughput units.
//!
//! All sizes in the workspace are plain `u64` byte counts and all rates are
//! `f64` bytes-per-second / ops-per-second; this module provides the named
//! constants and formatting helpers that keep call sites readable.

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;
/// One tebibyte (2^40 bytes).
pub const TIB: u64 = 1 << 40;

/// Size of one virtual-disk segment: the paper's EBS splits each VD's
/// address space into fixed 32 GiB stripes managed by BlockServers (§2.1).
pub const SEGMENT_BYTES: u64 = 32 * GIB;

/// Cache page size used throughout §7 of the paper.
pub const PAGE_BYTES: u64 = 4 * KIB;

/// The DiTing trace sampling rate: one in 3200 IOs is recorded (§2.3).
pub const TRACE_SAMPLE_RATE: f64 = 1.0 / 3200.0;

/// Render a byte count with a binary-unit suffix, e.g. `"1.50 GiB"`.
pub fn format_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= TIB as f64 {
        format!("{:.2} TiB", bytes / TIB as f64)
    } else if abs >= GIB as f64 {
        format!("{:.2} GiB", bytes / GIB as f64)
    } else if abs >= MIB as f64 {
        format!("{:.2} MiB", bytes / MIB as f64)
    } else if abs >= KIB as f64 {
        format!("{:.2} KiB", bytes / KIB as f64)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Render a rate in bytes/second with a binary-unit suffix, e.g. `"3.20 MiB/s"`.
pub fn format_rate(bytes_per_sec: f64) -> String {
    format!("{}/s", format_bytes(bytes_per_sec))
}

/// Number of whole segments needed to cover `capacity_bytes` of VD address
/// space (always at least one).
pub fn segments_for_capacity(capacity_bytes: u64) -> u32 {
    let segs = capacity_bytes.div_ceil(SEGMENT_BYTES);
    segs.max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_powers_of_two() {
        assert_eq!(MIB, 1024 * KIB);
        assert_eq!(GIB, 1024 * MIB);
        assert_eq!(TIB, 1024 * GIB);
        assert_eq!(SEGMENT_BYTES, 32 * GIB);
    }

    #[test]
    fn format_bytes_picks_unit() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(1536.0), "1.50 KiB");
        assert_eq!(format_bytes(3.0 * MIB as f64), "3.00 MiB");
        assert_eq!(format_bytes(2.5 * GIB as f64), "2.50 GiB");
        assert_eq!(format_bytes(1.25 * TIB as f64), "1.25 TiB");
    }

    #[test]
    fn format_rate_appends_per_second() {
        assert_eq!(format_rate(MIB as f64), "1.00 MiB/s");
    }

    #[test]
    fn segment_count_rounds_up_and_floors_at_one() {
        assert_eq!(segments_for_capacity(GIB), 1);
        assert_eq!(segments_for_capacity(SEGMENT_BYTES), 1);
        assert_eq!(segments_for_capacity(SEGMENT_BYTES + 1), 2);
        assert_eq!(segments_for_capacity(10 * SEGMENT_BYTES), 10);
        assert_eq!(segments_for_capacity(0), 1);
    }

    #[test]
    fn sample_rate_matches_paper() {
        assert!((TRACE_SAMPLE_RATE * 3200.0 - 1.0).abs() < 1e-12);
    }
}
