//! # ebs-core — shared domain model for the `ebs-skew` workspace
//!
//! This crate defines the vocabulary that every other crate in the workspace
//! speaks: typed identifiers for the entities of an Elastic Block Storage
//! (EBS) deployment, the fleet topology that connects them, IO events, the
//! two datasets the paper's tracer produces (per-IO *trace* records and
//! second-level *metric* aggregates), virtual-disk specifications, the
//! application taxonomy of Table 5, simulated time, byte/throughput units,
//! and deterministic RNG stream derivation.
//!
//! The entity hierarchy mirrors Figure 1 of the paper:
//!
//! ```text
//! compute side                       storage side
//! ------------                       ------------
//! DataCenter                         DataCenter
//!   └─ ComputeNode (CN)                └─ StorageNode (SN)
//!        ├─ WorkerThread (WT)               └─ BlockServer (BS)
//!        └─ VirtualMachine (VM)                  └─ Segment (32 GiB stripe)
//!             └─ VirtualDisk (VD)
//!                  └─ QueuePair (QP)
//! ```
//!
//! A `Fleet` value owns one consistent snapshot of this hierarchy, including
//! the round-robin QP→WT binding the production hypervisor would have
//! produced and the initial segment→BlockServer placement.
//!
//! Everything here is plain data with cheap accessors; the algorithms that
//! operate on it live in the sibling crates (`ebs-workload`, `ebs-stack`,
//! `ebs-analysis`, `ebs-balance`, `ebs-predict`, `ebs-throttle`,
//! `ebs-cache`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod error;
pub mod hash;
pub mod ids;
pub mod index;
pub mod io;
pub mod metric;
pub mod parallel;
pub mod rng;
pub mod spec;
pub mod time;
pub mod topology;
pub mod trace;
pub mod units;

pub use apps::AppClass;
pub use error::EbsError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{BsId, CnId, DcId, IdVec, QpId, SegId, SnId, TraceId, UserId, VdId, VmId, WtId};
pub use index::{EventIndex, PermutedEvents};
pub use io::{IoEvent, Op};
pub use metric::{ComputeMetrics, Flow, Measure, RwFlow, Series, SeriesSample, StorageMetrics};
pub use parallel::{par_jobs, par_map_deterministic};
pub use rng::RngFactory;
pub use spec::VdSpec;
pub use spec::VdTier;
pub use time::TickSpec;
pub use topology::Fleet;
pub use trace::{StageLatency, TraceRecord, TraceSet};

/// Convenient glob-import surface: `use ebs_core::prelude::*;`.
pub mod prelude {
    pub use crate::apps::AppClass;
    pub use crate::hash::{FxBuildHasher, FxHashMap, FxHashSet};
    pub use crate::ids::{
        BsId, CnId, DcId, IdVec, QpId, SegId, SnId, TraceId, UserId, VdId, VmId, WtId,
    };
    pub use crate::index::{EventIndex, PermutedEvents};
    pub use crate::io::{IoEvent, Op};
    pub use crate::metric::{
        ComputeMetrics, Flow, Measure, RwFlow, Series, SeriesSample, StorageMetrics,
    };
    pub use crate::rng::RngFactory;
    pub use crate::spec::VdSpec;
    pub use crate::spec::VdTier;
    pub use crate::time::TickSpec;
    pub use crate::topology::Fleet;
    pub use crate::trace::{StageLatency, TraceRecord, TraceSet};
    pub use crate::units::{GIB, KIB, MIB, TIB};
}
