//! Workspace error type.

use std::fmt;

/// Errors produced while constructing or operating on EBS domain values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EbsError {
    /// A specification violated its invariants.
    InvalidSpec(String),
    /// A configuration value was out of range or inconsistent.
    InvalidConfig(String),
    /// An id referenced an entity that does not exist in the fleet.
    UnknownEntity(String),
    /// A dataset did not contain the data an analysis required.
    EmptyDataset(String),
    /// An underlying IO operation failed (message of the `std::io::Error`).
    Io(String),
    /// A stored file ended before a complete header/chunk could be read.
    Truncated(String),
    /// A stored chunk's CRC32 did not match its payload.
    ChecksumMismatch(String),
    /// A stored file declares a format version this build cannot read.
    VersionSkew(String),
    /// A stored file is structurally malformed (bad magic, impossible
    /// lengths, inconsistent cross-references) beyond simple truncation.
    CorruptStore(String),
}

impl EbsError {
    /// Build an [`EbsError::InvalidSpec`].
    pub fn invalid_spec(msg: impl Into<String>) -> Self {
        EbsError::InvalidSpec(msg.into())
    }

    /// Build an [`EbsError::InvalidConfig`].
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        EbsError::InvalidConfig(msg.into())
    }

    /// Build an [`EbsError::UnknownEntity`].
    pub fn unknown_entity(msg: impl Into<String>) -> Self {
        EbsError::UnknownEntity(msg.into())
    }

    /// Build an [`EbsError::EmptyDataset`].
    pub fn empty_dataset(msg: impl Into<String>) -> Self {
        EbsError::EmptyDataset(msg.into())
    }

    /// Build an [`EbsError::Truncated`].
    pub fn truncated(msg: impl Into<String>) -> Self {
        EbsError::Truncated(msg.into())
    }

    /// Build an [`EbsError::ChecksumMismatch`].
    pub fn checksum_mismatch(msg: impl Into<String>) -> Self {
        EbsError::ChecksumMismatch(msg.into())
    }

    /// Build an [`EbsError::VersionSkew`].
    pub fn version_skew(msg: impl Into<String>) -> Self {
        EbsError::VersionSkew(msg.into())
    }

    /// Build an [`EbsError::CorruptStore`].
    pub fn corrupt_store(msg: impl Into<String>) -> Self {
        EbsError::CorruptStore(msg.into())
    }
}

impl From<std::io::Error> for EbsError {
    fn from(e: std::io::Error) -> Self {
        // An unexpected EOF from a `Read` adapter is a truncation in store
        // terms; everything else is an environment failure.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            EbsError::Truncated(e.to_string())
        } else {
            EbsError::Io(e.to_string())
        }
    }
}

impl fmt::Display for EbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EbsError::InvalidSpec(m) => write!(f, "invalid specification: {m}"),
            EbsError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            EbsError::UnknownEntity(m) => write!(f, "unknown entity: {m}"),
            EbsError::EmptyDataset(m) => write!(f, "empty dataset: {m}"),
            EbsError::Io(m) => write!(f, "io error: {m}"),
            EbsError::Truncated(m) => write!(f, "truncated store: {m}"),
            EbsError::ChecksumMismatch(m) => write!(f, "checksum mismatch: {m}"),
            EbsError::VersionSkew(m) => write!(f, "version skew: {m}"),
            EbsError::CorruptStore(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for EbsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = EbsError::invalid_config("tick width");
        assert_eq!(e.to_string(), "invalid configuration: tick width");
        let e = EbsError::empty_dataset("no segments");
        assert!(e.to_string().contains("empty dataset"));
    }

    #[test]
    fn store_variants_display_their_category() {
        assert_eq!(
            EbsError::truncated("chunk 3").to_string(),
            "truncated store: chunk 3"
        );
        assert!(EbsError::checksum_mismatch("x")
            .to_string()
            .contains("checksum mismatch"));
        assert!(EbsError::version_skew("v9")
            .to_string()
            .contains("version skew"));
        assert!(EbsError::corrupt_store("magic")
            .to_string()
            .contains("corrupt store"));
    }

    #[test]
    fn io_errors_convert_by_kind() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(EbsError::from(eof), EbsError::Truncated(_)));
        let perm = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(EbsError::from(perm), EbsError::Io(_)));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&EbsError::unknown_entity("vd-9"));
    }
}
