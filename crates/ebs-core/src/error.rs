//! Workspace error type.

use std::fmt;

/// Errors produced while constructing or operating on EBS domain values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EbsError {
    /// A specification violated its invariants.
    InvalidSpec(String),
    /// A configuration value was out of range or inconsistent.
    InvalidConfig(String),
    /// An id referenced an entity that does not exist in the fleet.
    UnknownEntity(String),
    /// A dataset did not contain the data an analysis required.
    EmptyDataset(String),
}

impl EbsError {
    /// Build an [`EbsError::InvalidSpec`].
    pub fn invalid_spec(msg: impl Into<String>) -> Self {
        EbsError::InvalidSpec(msg.into())
    }

    /// Build an [`EbsError::InvalidConfig`].
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        EbsError::InvalidConfig(msg.into())
    }

    /// Build an [`EbsError::UnknownEntity`].
    pub fn unknown_entity(msg: impl Into<String>) -> Self {
        EbsError::UnknownEntity(msg.into())
    }

    /// Build an [`EbsError::EmptyDataset`].
    pub fn empty_dataset(msg: impl Into<String>) -> Self {
        EbsError::EmptyDataset(msg.into())
    }
}

impl fmt::Display for EbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EbsError::InvalidSpec(m) => write!(f, "invalid specification: {m}"),
            EbsError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            EbsError::UnknownEntity(m) => write!(f, "unknown entity: {m}"),
            EbsError::EmptyDataset(m) => write!(f, "empty dataset: {m}"),
        }
    }
}

impl std::error::Error for EbsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = EbsError::invalid_config("tick width");
        assert_eq!(e.to_string(), "invalid configuration: tick width");
        let e = EbsError::empty_dataset("no segments");
        assert!(e.to_string().contains("empty dataset"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&EbsError::unknown_entity("vd-9"));
    }
}
