//! Deterministic random-number streams.
//!
//! Every experiment in the workspace must be exactly reproducible from one
//! `u64` master seed. [`RngFactory`] derives independent named streams from
//! that seed (SplitMix64 over a hash of the stream tag), and [`SimRng`] is a
//! small, fast xoshiro256++ generator used by all library code, so results
//! do not depend on an external crate's stream layout staying stable.

/// SplitMix64 step: the standard seeding/derivation mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; used to turn stream tags into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A xoshiro256++ pseudo-random generator.
///
/// Small (32 bytes of state), fast, and with well-studied statistical
/// quality; more than adequate for simulation workloads.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed a generator. The seed is expanded with SplitMix64 so that
    /// similar seeds produce unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start from the all-zero state.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // Destructuring proves every state access in-bounds at compile
        // time, keeping the workspace's hottest helper index-free.
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `u64` in `[lo, hi)`.
    #[inline]
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Choose a random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.index(slice.len())]
    }

    /// Sample an index according to non-negative weights. Falls back to the
    /// last index under floating-point shortfall. Panics if all weights are
    /// zero or the slice is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0,
            "choose_weighted requires positive total weight"
        );
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

/// Derives independent, reproducible [`SimRng`] streams from a master seed.
///
/// Streams are identified by string tags (and an optional numeric
/// discriminator), so the generator that models, say, VD intensities cannot
/// perturb the stream that models LBA offsets even if the amount of
/// randomness either consumes changes.
#[derive(Clone, Copy, Debug)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// A factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An independent stream named `tag`.
    pub fn stream(&self, tag: &str) -> SimRng {
        self.stream_n(tag, 0)
    }

    /// An independent stream named `tag` with numeric discriminator `n`
    /// (e.g. one stream per VD).
    pub fn stream_n(&self, tag: &str, n: u64) -> SimRng {
        let mut state = self.seed
            ^ fnv1a(tag.as_bytes()).rotate_left(17)
            ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Mix before seeding so that (seed, tag, n) triples decorrelate.
        let derived = splitmix64(&mut state) ^ splitmix64(&mut state).rotate_left(32);
        SimRng::seed_from_u64(derived)
    }

    /// A child factory, for handing a subsystem its own seed space.
    pub fn child(&self, tag: &str) -> RngFactory {
        let mut state = self.seed ^ fnv1a(tag.as_bytes());
        RngFactory::new(splitmix64(&mut state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let f = RngFactory::new(42);
        let a: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(f.stream("x"), |r, _| Some(r.next_u64()))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(f.stream("x"), |r, _| Some(r.next_u64()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_tags_decorrelate() {
        let f = RngFactory::new(42);
        let a = f.stream("alpha").next_u64();
        let b = f.stream("beta").next_u64();
        assert_ne!(a, b);
        let c = f.stream_n("alpha", 1).next_u64();
        assert_ne!(a, c);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = SimRng::seed_from_u64(11);
        let mut hits = [0usize; 3];
        for _ in 0..30_000 {
            hits[r.choose_weighted(&[1.0, 0.0, 9.0])] += 1;
        }
        assert_eq!(hits[1], 0);
        assert!(hits[2] > hits[0] * 5);
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "p=0.25 measured {frac}");
    }

    #[test]
    fn child_factories_diverge() {
        let f = RngFactory::new(1);
        assert_ne!(f.child("a").seed(), f.child("b").seed());
        assert_ne!(f.child("a").seed(), f.seed());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn below_always_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
            let mut r = SimRng::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(r.below(n) < n);
            }
        }

        #[test]
        fn next_f64_always_in_unit_interval(seed in any::<u64>()) {
            let mut r = SimRng::seed_from_u64(seed);
            for _ in 0..64 {
                let x = r.next_f64();
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn streams_with_same_tag_agree(seed in any::<u64>(), n in 0u64..1000) {
            let f = RngFactory::new(seed);
            let a = f.stream_n("tag", n).next_u64();
            let b = f.stream_n("tag", n).next_u64();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in prop::collection::vec(0u32..100, 0..50)) {
            let mut r = SimRng::seed_from_u64(seed);
            let mut original = v.clone();
            r.shuffle(&mut v);
            original.sort_unstable();
            v.sort_unstable();
            prop_assert_eq!(original, v);
        }

        #[test]
        fn weighted_choice_never_picks_zero_weight(
            seed in any::<u64>(),
            idx in 0usize..4,
        ) {
            let mut weights = [1.0f64; 4];
            weights[idx] = 0.0;
            let mut r = SimRng::seed_from_u64(seed);
            for _ in 0..64 {
                prop_assert_ne!(r.choose_weighted(&weights), idx);
            }
        }
    }
}
