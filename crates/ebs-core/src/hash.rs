//! Deterministic fast hashing for hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with a per-process
//! random key. That buys HashDoS resistance the workspace does not need —
//! every key hashed on a hot path here is a small integer id (page number,
//! block index, typed entity id) derived from deterministic simulation
//! state, never from untrusted input — and costs ~2-3x per lookup against
//! a multiply-rotate hash. This module provides the FxHash construction
//! (the rustc hasher: `hash = (hash.rotl(5) ^ word) * K` per 8-byte word),
//! implemented in-repo because the build environment is offline.
//!
//! Two properties matter for the workspace's determinism contract:
//!
//! * **Stable across runs and platforms.** No random seed: the same keys
//!   always land in the same buckets, unlike the std default.
//! * **Iteration order is still not part of any output.** Outputs must be
//!   order-independent reductions (max over a total order, scatter to
//!   indexed slots, sorted collection) exactly as they had to be under
//!   SipHash's per-process seeds; the property tests in `tests/` pin this.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The FxHash multiplier (64-bit golden-ratio-derived odd constant).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Multiply-rotate hasher; processes input one 64-bit word at a time.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Stateless [`BuildHasher`] producing [`FxHasher`]s from a zero state.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// `HashMap` keyed by the deterministic fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by the deterministic fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An `FxHashMap` with pre-reserved capacity.
pub fn fx_map_with_capacity<Key, V>(capacity: usize) -> FxHashMap<Key, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher)
}

/// An `FxHashSet` with pre-reserved capacity.
pub fn fx_set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher.hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic_across_hashers() {
        for key in [0u64, 1, 42, u64::MAX, 0x1234_5678_9abc_def0] {
            assert_eq!(hash_of(&key), hash_of(&key));
        }
        // Two independently-built hashers agree (no hidden per-instance state).
        assert_eq!(hash_of(&(7u32, 9u64)), hash_of(&(7u32, 9u64)));
    }

    #[test]
    fn distinct_small_keys_spread() {
        let hashes: FxHashSet<u64> = (0u64..1024).map(|k| hash_of(&k)).collect();
        assert_eq!(hashes.len(), 1024, "fast hash collides on dense small keys");
    }

    #[test]
    fn byte_slices_hash_consistently_with_padding() {
        // Unequal prefixes must not collide via the zero-padded tail path.
        assert_ne!(hash_of(&[1u8, 0, 0]), hash_of(&[1u8]));
        assert_eq!(hash_of(b"hot path"), hash_of(b"hot path"));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u64> = fx_map_with_capacity(16);
        for k in 0..100u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 100);
        for k in 0..100u64 {
            assert_eq!(m.get(&k), Some(&(k * 3)));
        }
        let s: FxHashSet<u64> = (0..50).collect();
        assert!(s.contains(&49) && !s.contains(&50));
    }
}
