//! Second-level metric aggregates (the paper's *metric data*, §2.3).
//!
//! Unlike the sampled trace, the metric dataset covers **every** IO: per
//! tick it records bytes and operation counts, split by read/write, for each
//! queue pair (compute domain) and each segment (storage domain) — the
//! format of Table 1. Series are stored sparsely (only ticks with traffic),
//! which matches the bursty ON/OFF shape of real EBS traffic.

use crate::ids::{IdVec, QpId, SegId};
use crate::io::Op;
use crate::time::TickSpec;

/// Traffic volume within one tick: bytes moved and operations completed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Flow {
    /// Bytes transferred during the tick.
    pub bytes: f64,
    /// IO operations completed during the tick.
    pub ops: f64,
}

impl Flow {
    /// Zero flow.
    pub const ZERO: Flow = Flow {
        bytes: 0.0,
        ops: 0.0,
    };

    /// Whether the flow carries no traffic.
    pub fn is_zero(&self) -> bool {
        self.bytes == 0.0 && self.ops == 0.0
    }
}

impl std::ops::Add for Flow {
    type Output = Flow;
    fn add(self, rhs: Flow) -> Flow {
        Flow {
            bytes: self.bytes + rhs.bytes,
            ops: self.ops + rhs.ops,
        }
    }
}

impl std::ops::AddAssign for Flow {
    fn add_assign(&mut self, rhs: Flow) {
        self.bytes += rhs.bytes;
        self.ops += rhs.ops;
    }
}

/// Read and write flow within one tick.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RwFlow {
    /// Read traffic.
    pub read: Flow,
    /// Write traffic.
    pub write: Flow,
}

impl RwFlow {
    /// Zero flow in both directions.
    pub const ZERO: RwFlow = RwFlow {
        read: Flow::ZERO,
        write: Flow::ZERO,
    };

    /// The flow for one opcode.
    pub fn get(&self, op: Op) -> Flow {
        match op {
            Op::Read => self.read,
            Op::Write => self.write,
        }
    }

    /// Mutable flow for one opcode.
    pub fn get_mut(&mut self, op: Op) -> &mut Flow {
        match op {
            Op::Read => &mut self.read,
            Op::Write => &mut self.write,
        }
    }

    /// Read + write combined.
    pub fn total(&self) -> Flow {
        self.read + self.write
    }

    /// Whether both directions are zero.
    pub fn is_zero(&self) -> bool {
        self.read.is_zero() && self.write.is_zero()
    }
}

impl std::ops::AddAssign for RwFlow {
    fn add_assign(&mut self, rhs: RwFlow) {
        self.read += rhs.read;
        self.write += rhs.write;
    }
}

/// A named scalar measure over an [`RwFlow`]; lets experiment configs say
/// *which* traffic dimension they aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Measure {
    /// Read bytes per tick.
    ReadBytes,
    /// Write bytes per tick.
    WriteBytes,
    /// Read + write bytes per tick.
    TotalBytes,
    /// Read ops per tick.
    ReadOps,
    /// Write ops per tick.
    WriteOps,
    /// Read + write ops per tick.
    TotalOps,
}

impl Measure {
    /// Extract the measure from a flow sample.
    pub fn of(self, rw: &RwFlow) -> f64 {
        match self {
            Measure::ReadBytes => rw.read.bytes,
            Measure::WriteBytes => rw.write.bytes,
            Measure::TotalBytes => rw.read.bytes + rw.write.bytes,
            Measure::ReadOps => rw.read.ops,
            Measure::WriteOps => rw.write.ops,
            Measure::TotalOps => rw.read.ops + rw.write.ops,
        }
    }

    /// The byte-volume measure for one opcode.
    pub fn bytes(op: Op) -> Measure {
        match op {
            Op::Read => Measure::ReadBytes,
            Op::Write => Measure::WriteBytes,
        }
    }

    /// The operation-count measure for one opcode.
    pub fn ops(op: Op) -> Measure {
        match op {
            Op::Read => Measure::ReadOps,
            Op::Write => Measure::WriteOps,
        }
    }
}

/// One sparse sample: the flow observed during `tick`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeriesSample {
    /// Tick index.
    pub tick: u32,
    /// Traffic during that tick.
    pub rw: RwFlow,
}

/// A sparse per-entity time series, sorted by tick, holding only ticks with
/// non-zero traffic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Series {
    samples: Vec<SeriesSample>,
}

impl Series {
    /// Empty series.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
        }
    }

    /// Append traffic for `tick`. Ticks must be pushed in non-decreasing
    /// order; traffic for a repeated tick accumulates into the last sample.
    pub fn push(&mut self, tick: u32, rw: RwFlow) {
        if rw.is_zero() {
            return;
        }
        if let Some(last) = self.samples.last_mut() {
            assert!(tick >= last.tick, "ticks must be pushed in order");
            if last.tick == tick {
                last.rw += rw;
                return;
            }
        }
        self.samples.push(SeriesSample { tick, rw });
    }

    /// Sparse samples, tick-sorted.
    pub fn samples(&self) -> &[SeriesSample] {
        &self.samples
    }

    /// Whether the entity never saw traffic.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum over the whole window.
    pub fn total(&self) -> RwFlow {
        let mut acc = RwFlow::ZERO;
        for s in &self.samples {
            acc += s.rw;
        }
        acc
    }

    /// Densify one measure over a grid of `ticks` ticks (zeros where the
    /// entity was idle).
    pub fn dense(&self, ticks: u32, measure: Measure) -> Vec<f64> {
        let mut out = vec![0.0; ticks as usize];
        for s in &self.samples {
            if (s.tick as usize) < out.len() {
                out[s.tick as usize] += measure.of(&s.rw);
            }
        }
        out
    }

    /// Add one measure of this series into a dense accumulator (used by
    /// level aggregation without materialising intermediate vectors).
    pub fn accumulate_into(&self, acc: &mut [f64], measure: Measure) {
        for s in &self.samples {
            if (s.tick as usize) < acc.len() {
                acc[s.tick as usize] += measure.of(&s.rw);
            }
        }
    }

    /// Number of active (non-zero) ticks.
    pub fn active_ticks(&self) -> usize {
        self.samples.len()
    }
}

/// Compute-domain metric data: one series per queue pair. The fleet supplies
/// the QP → (VD, VM, user, WT, CN) joins of Table 1.
#[derive(Clone, Debug)]
pub struct ComputeMetrics {
    /// Tick grid the series live on.
    pub ticks: TickSpec,
    /// Per-QP series, indexed by [`QpId`].
    pub per_qp: IdVec<QpId, Series>,
}

/// Storage-domain metric data: one series per segment. The fleet supplies
/// the segment → (VD, VM, user, BS, SN) joins of Table 1.
#[derive(Clone, Debug)]
pub struct StorageMetrics {
    /// Tick grid the series live on.
    pub ticks: TickSpec,
    /// Per-segment series, indexed by [`SegId`].
    pub per_seg: IdVec<SegId, Series>,
}

impl ComputeMetrics {
    /// Empty metrics for `qp_count` queue pairs.
    pub fn empty(ticks: TickSpec, qp_count: usize) -> Self {
        Self {
            ticks,
            per_qp: IdVec::from_vec(vec![Series::new(); qp_count]),
        }
    }

    /// Fleet-wide total flow.
    pub fn total(&self) -> RwFlow {
        let mut acc = RwFlow::ZERO;
        for s in self.per_qp.iter() {
            acc += s.total();
        }
        acc
    }
}

impl StorageMetrics {
    /// Empty metrics for `seg_count` segments.
    pub fn empty(ticks: TickSpec, seg_count: usize) -> Self {
        Self {
            ticks,
            per_seg: IdVec::from_vec(vec![Series::new(); seg_count]),
        }
    }

    /// Cluster-wide total flow.
    pub fn total(&self) -> RwFlow {
        let mut acc = RwFlow::ZERO;
        for s in self.per_seg.iter() {
            acc += s.total();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw(rb: f64, wb: f64) -> RwFlow {
        RwFlow {
            read: Flow {
                bytes: rb,
                ops: rb / 4096.0,
            },
            write: Flow {
                bytes: wb,
                ops: wb / 4096.0,
            },
        }
    }

    #[test]
    fn flow_arithmetic() {
        let mut f = Flow {
            bytes: 1.0,
            ops: 2.0,
        };
        f += Flow {
            bytes: 3.0,
            ops: 4.0,
        };
        assert_eq!(
            f,
            Flow {
                bytes: 4.0,
                ops: 6.0
            }
        );
        assert!(Flow::ZERO.is_zero());
        assert!(!f.is_zero());
    }

    #[test]
    fn measure_extracts_dimensions() {
        let x = rw(4096.0, 8192.0);
        assert_eq!(Measure::ReadBytes.of(&x), 4096.0);
        assert_eq!(Measure::WriteBytes.of(&x), 8192.0);
        assert_eq!(Measure::TotalBytes.of(&x), 12288.0);
        assert_eq!(Measure::ReadOps.of(&x), 1.0);
        assert_eq!(Measure::WriteOps.of(&x), 2.0);
        assert_eq!(Measure::TotalOps.of(&x), 3.0);
        assert_eq!(Measure::bytes(Op::Read), Measure::ReadBytes);
        assert_eq!(Measure::ops(Op::Write), Measure::WriteOps);
    }

    #[test]
    fn series_push_merges_equal_ticks_and_skips_zero() {
        let mut s = Series::new();
        s.push(0, rw(1.0, 0.0));
        s.push(0, rw(2.0, 0.0));
        s.push(3, RwFlow::ZERO);
        s.push(5, rw(0.0, 7.0));
        assert_eq!(s.active_ticks(), 2);
        assert_eq!(s.samples()[0].rw.read.bytes, 3.0);
        assert_eq!(s.samples()[1].tick, 5);
        let t = s.total();
        assert_eq!(t.read.bytes, 3.0);
        assert_eq!(t.write.bytes, 7.0);
    }

    #[test]
    #[should_panic(expected = "ticks must be pushed in order")]
    fn series_rejects_out_of_order_ticks() {
        let mut s = Series::new();
        s.push(5, rw(1.0, 0.0));
        s.push(4, rw(1.0, 0.0));
    }

    #[test]
    fn dense_fills_zeros() {
        let mut s = Series::new();
        s.push(1, rw(10.0, 0.0));
        s.push(3, rw(30.0, 0.0));
        let d = s.dense(5, Measure::ReadBytes);
        assert_eq!(d, vec![0.0, 10.0, 0.0, 30.0, 0.0]);
        let mut acc = vec![1.0; 5];
        s.accumulate_into(&mut acc, Measure::ReadBytes);
        assert_eq!(acc, vec![1.0, 11.0, 1.0, 31.0, 1.0]);
    }

    #[test]
    fn metrics_totals_sum_entities() {
        let ticks = TickSpec::new(1.0, 4);
        let mut m = ComputeMetrics::empty(ticks, 2);
        m.per_qp[QpId(0)].push(0, rw(5.0, 0.0));
        m.per_qp[QpId(1)].push(2, rw(0.0, 9.0));
        let t = m.total();
        assert_eq!(t.read.bytes, 5.0);
        assert_eq!(t.write.bytes, 9.0);
        let sm = StorageMetrics::empty(ticks, 1);
        assert!(sm.total().is_zero());
    }
}
