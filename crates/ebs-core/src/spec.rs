//! Virtual-disk specifications (the paper's *specification data*, §2.3).
//!
//! Each VD subscription carries a capacity, a queue-pair count (1–8
//! depending on tier), and the throughput / IOPS caps the hypervisor's
//! throttle enforces (§5).

use crate::units::{GIB, MIB};

/// Subscription-determined properties of one virtual disk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VdSpec {
    /// Address-space capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of IO queue pairs (1..=8).
    pub qp_count: u8,
    /// Throughput cap in bytes/second (read + write aggregated, §5.2).
    pub tput_cap: f64,
    /// IOPS cap (read + write aggregated).
    pub iops_cap: f64,
}

impl VdSpec {
    /// Validate invariants: non-zero capacity, 1..=8 QPs, positive caps.
    pub fn validate(&self) -> Result<(), crate::error::EbsError> {
        if self.capacity_bytes == 0 {
            return Err(crate::error::EbsError::invalid_spec(
                "capacity must be non-zero",
            ));
        }
        if self.qp_count == 0 || self.qp_count > 8 {
            return Err(crate::error::EbsError::invalid_spec(
                "qp_count must be in 1..=8",
            ));
        }
        if self.tput_cap <= 0.0 || self.iops_cap <= 0.0 {
            return Err(crate::error::EbsError::invalid_spec(
                "caps must be positive",
            ));
        }
        Ok(())
    }

    /// Number of 32 GiB segments covering this VD.
    pub fn segment_count(&self) -> u32 {
        crate::units::segments_for_capacity(self.capacity_bytes)
    }
}

/// Service tiers loosely modelled on public EBS offerings; the workload
/// generator draws VD specs from these tiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VdTier {
    /// Small general-purpose disk: 1 QP, modest caps.
    Standard,
    /// Performance disk: multiple QPs, higher caps.
    Performance,
    /// Top-tier ESSD-like disk: 8 QPs, highest caps.
    Premium,
}

impl VdTier {
    /// All tiers, cheapest first.
    pub const ALL: [VdTier; 3] = [VdTier::Standard, VdTier::Performance, VdTier::Premium];

    /// Reference specification for a disk of this tier with the given
    /// capacity. Caps scale mildly with capacity, mirroring how cloud
    /// vendors tie performance to provisioned size.
    pub fn spec(self, capacity_bytes: u64) -> VdSpec {
        let cap_gib = (capacity_bytes as f64 / GIB as f64).max(1.0);
        match self {
            VdTier::Standard => VdSpec {
                capacity_bytes,
                qp_count: 1,
                tput_cap: (100.0 * MIB as f64) + cap_gib * 0.1 * MIB as f64,
                iops_cap: 2_000.0 + cap_gib * 10.0,
            },
            VdTier::Performance => VdSpec {
                capacity_bytes,
                qp_count: 4,
                tput_cap: (300.0 * MIB as f64) + cap_gib * 0.25 * MIB as f64,
                iops_cap: 10_000.0 + cap_gib * 30.0,
            },
            VdTier::Premium => VdSpec {
                capacity_bytes,
                qp_count: 8,
                tput_cap: (1000.0 * MIB as f64) + cap_gib * 0.5 * MIB as f64,
                iops_cap: 50_000.0 + cap_gib * 50.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_specs_validate() {
        for tier in VdTier::ALL {
            for cap in [40 * GIB, 500 * GIB, 2048 * GIB] {
                let spec = tier.spec(cap);
                spec.validate().unwrap();
                assert!(spec.segment_count() >= 1);
            }
        }
    }

    #[test]
    fn caps_grow_with_tier() {
        let small = VdTier::Standard.spec(100 * GIB);
        let big = VdTier::Premium.spec(100 * GIB);
        assert!(big.tput_cap > small.tput_cap);
        assert!(big.iops_cap > small.iops_cap);
        assert!(big.qp_count > small.qp_count);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let good = VdTier::Standard.spec(GIB);
        let zero_cap = VdSpec {
            capacity_bytes: 0,
            ..good
        };
        assert!(zero_cap.validate().is_err());
        let many_qp = VdSpec {
            qp_count: 9,
            ..good
        };
        assert!(many_qp.validate().is_err());
        let no_tput = VdSpec {
            tput_cap: 0.0,
            ..good
        };
        assert!(no_tput.validate().is_err());
    }

    #[test]
    fn segment_count_uses_32gib_stripes() {
        let spec = VdTier::Performance.spec(100 * GIB);
        assert_eq!(spec.segment_count(), 4); // ceil(100/32)
    }
}
