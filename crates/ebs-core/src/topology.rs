//! Fleet topology: one consistent snapshot of the EBS entity hierarchy.
//!
//! A [`Fleet`] owns the data centers, compute nodes, worker threads, users,
//! VMs, VDs, QPs, storage nodes, BlockServers, and segments of a deployment,
//! together with the two placement decisions the paper studies:
//!
//! * the round-robin **QP → worker-thread binding** the hypervisor performs
//!   at attach time (§2.2, "inter-WT load balancer"), and
//! * the initial **segment → BlockServer placement** in the storage cluster
//!   (§2.1), which keeps segments of one VD spread over distinct BSs.
//!
//! Fleets are built with [`FleetBuilder`] (used by `ebs-workload::fleet`) and
//! immutable afterwards; algorithms that *change* placements (rebinding,
//! segment migration) keep their own mutable copies of the relevant maps.

use crate::apps::AppClass;
use crate::error::EbsError;
use crate::ids::{BsId, CnId, DcId, IdVec, QpId, SegId, SnId, UserId, VdId, VmId, WtId};
use crate::spec::VdSpec;

/// A data center.
#[derive(Clone, Debug)]
pub struct Dc {
    /// Id of this DC.
    pub id: DcId,
    /// Human-readable name ("DC-1" …).
    pub name: String,
}

/// A compute node hosting VMs and hypervisor worker threads.
#[derive(Clone, Debug)]
pub struct ComputeNode {
    /// Id of this node.
    pub id: CnId,
    /// Data center the node lives in.
    pub dc: DcId,
    /// Global id of this node's first worker thread.
    pub wt_base: u32,
    /// Number of worker threads (each pinned to one CPU core).
    pub wt_count: u8,
    /// Whether the node is sold as bare metal (hosts exactly one VM).
    pub bare_metal: bool,
}

impl ComputeNode {
    /// Global ids of this node's worker threads.
    pub fn wts(&self) -> impl ExactSizeIterator<Item = WtId> {
        (self.wt_base..self.wt_base + self.wt_count as u32).map(WtId)
    }
}

/// A virtual machine.
#[derive(Clone, Debug)]
pub struct Vm {
    /// Id of this VM.
    pub id: VmId,
    /// Hosting compute node.
    pub cn: CnId,
    /// Owning tenant.
    pub user: UserId,
    /// Inferred application class (specification data, §2.3).
    pub app: AppClass,
}

/// A virtual disk.
#[derive(Clone, Debug)]
pub struct Vd {
    /// Id of this VD.
    pub id: VdId,
    /// VM the disk is mounted in.
    pub vm: VmId,
    /// Subscription specification.
    pub spec: VdSpec,
    /// Global id of this VD's first queue pair.
    pub qp_base: u32,
    /// Global id of this VD's first segment.
    pub seg_base: u32,
}

impl Vd {
    /// Queue pairs of this disk.
    pub fn qps(&self) -> impl ExactSizeIterator<Item = QpId> {
        (self.qp_base..self.qp_base + self.spec.qp_count as u32).map(QpId)
    }

    /// Segments of this disk.
    pub fn segments(&self) -> impl ExactSizeIterator<Item = SegId> {
        (self.seg_base..self.seg_base + self.spec.segment_count()).map(SegId)
    }
}

/// A queue pair.
#[derive(Clone, Debug)]
pub struct Qp {
    /// Id of this QP.
    pub id: QpId,
    /// Owning virtual disk.
    pub vd: VdId,
    /// Index of this QP within the disk (0-based).
    pub index_in_vd: u8,
}

/// A storage node.
#[derive(Clone, Debug)]
pub struct StorageNode {
    /// Id of this node.
    pub id: SnId,
    /// Data center the node lives in.
    pub dc: DcId,
}

/// A BlockServer process (forwarding layer).
#[derive(Clone, Debug)]
pub struct BlockServer {
    /// Id of this BlockServer.
    pub id: BsId,
    /// Storage node the process runs on.
    pub sn: SnId,
}

/// One 32 GiB segment of a VD's address space.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Id of this segment.
    pub id: SegId,
    /// Owning virtual disk.
    pub vd: VdId,
    /// Index within the disk (segment k covers bytes `[32 GiB·k, 32 GiB·(k+1))`).
    pub index_in_vd: u32,
}

/// An immutable fleet snapshot. See the module docs for what it contains.
#[derive(Clone, Debug)]
pub struct Fleet {
    /// Data centers.
    pub dcs: IdVec<DcId, Dc>,
    /// Number of tenants (users carry no other state).
    pub user_count: u32,
    /// Compute nodes.
    pub compute_nodes: IdVec<CnId, ComputeNode>,
    /// Virtual machines.
    pub vms: IdVec<VmId, Vm>,
    /// Virtual disks.
    pub vds: IdVec<VdId, Vd>,
    /// Queue pairs.
    pub qps: IdVec<QpId, Qp>,
    /// Storage nodes.
    pub storage_nodes: IdVec<SnId, StorageNode>,
    /// BlockServers.
    pub block_servers: IdVec<BsId, BlockServer>,
    /// Segments.
    pub segments: IdVec<SegId, Segment>,
    /// Round-robin QP → WT binding produced at attach time.
    pub qp_binding: IdVec<QpId, WtId>,
    /// Initial segment → BlockServer placement.
    pub seg_home: IdVec<SegId, BsId>,
    /// Total number of worker threads across all compute nodes.
    pub wt_total: u32,
    vms_by_cn: Vec<Vec<VmId>>,
    vds_by_vm: Vec<Vec<VdId>>,
    vms_by_user: Vec<Vec<VmId>>,
    cns_by_dc: Vec<Vec<CnId>>,
    bss_by_dc: Vec<Vec<BsId>>,
    cn_by_wt: Vec<CnId>,
}

impl Fleet {
    /// Compute node that owns worker thread `wt`.
    pub fn cn_of_wt(&self, wt: WtId) -> CnId {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        self.cn_by_wt[wt.index()]
    }

    /// VMs hosted on compute node `cn`.
    pub fn vms_of_cn(&self, cn: CnId) -> &[VmId] {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        &self.vms_by_cn[cn.index()]
    }

    /// Virtual disks mounted in VM `vm`.
    pub fn vds_of_vm(&self, vm: VmId) -> &[VdId] {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        &self.vds_by_vm[vm.index()]
    }

    /// VMs owned by `user`.
    pub fn vms_of_user(&self, user: UserId) -> &[VmId] {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        &self.vms_by_user[user.index()]
    }

    /// Compute nodes in data center `dc`.
    pub fn cns_of_dc(&self, dc: DcId) -> &[CnId] {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        &self.cns_by_dc[dc.index()]
    }

    /// BlockServers in data center `dc`.
    pub fn bss_of_dc(&self, dc: DcId) -> &[BsId] {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        &self.bss_by_dc[dc.index()]
    }

    /// Data center of VM `vm` (via its compute node).
    pub fn dc_of_vm(&self, vm: VmId) -> DcId {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        self.compute_nodes[self.vms[vm].cn].dc
    }

    /// Data center of VD `vd`.
    pub fn dc_of_vd(&self, vd: VdId) -> DcId {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        self.dc_of_vm(self.vds[vd].vm)
    }

    /// Data center of a segment (the DC of its owning VD).
    pub fn dc_of_seg(&self, seg: SegId) -> DcId {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        self.dc_of_vd(self.segments[seg].vd)
    }

    /// VM that owns QP `qp`.
    pub fn vm_of_qp(&self, qp: QpId) -> VmId {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        self.vds[self.qps[qp].vd].vm
    }

    /// Compute node of QP `qp`.
    pub fn cn_of_qp(&self, qp: QpId) -> CnId {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        self.vms[self.vm_of_qp(qp)].cn
    }

    /// Storage node hosting segment `seg` under the *initial* placement.
    pub fn sn_of_seg(&self, seg: SegId) -> SnId {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        self.block_servers[self.seg_home[seg]].sn
    }

    /// The segment of `vd` covering byte `offset`, if in range.
    pub fn segment_at(&self, vd: VdId, offset: u64) -> Option<SegId> {
        // ebs-lint: allow(D3) -- fleet-minted id; the index covers every minted id by construction
        let d = &self.vds[vd];
        if offset >= d.spec.capacity_bytes {
            return None;
        }
        let idx = (offset / crate::units::SEGMENT_BYTES) as u32;
        Some(SegId(d.seg_base + idx))
    }

    /// Number of virtual disks.
    pub fn vd_count(&self) -> usize {
        self.vds.len()
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Total variant of [`Fleet::dc_of_vd`] for walks over
    /// possibly-inconsistent fleets: `None` instead of a panic on any
    /// dangling id along the VD → VM → CN → DC chain.
    fn dc_of_vd_checked(&self, vd: VdId) -> Option<DcId> {
        let vm = self.vds.get(vd)?.vm;
        let cn = self.vms.get(vm)?.cn;
        Some(self.compute_nodes.get(cn)?.dc)
    }

    /// Validate internal consistency; used by tests and the builder.
    ///
    /// This is the designated checker for fleets of dubious provenance
    /// (imports, mutation tests), so every lookup here is checked — a
    /// dangling id becomes a typed error, never a panic.
    pub fn validate(&self) -> Result<(), EbsError> {
        for vd in self.vds.iter() {
            vd.spec.validate()?;
            for qp in vd.qps() {
                if self.qps.get(qp).is_none() {
                    return Err(EbsError::unknown_entity(format!("{qp} of {}", vd.id)));
                }
            }
        }
        for (i, qp) in self.qps.iter().enumerate() {
            let qp_id = QpId(i as u32);
            let wt = *self
                .qp_binding
                .get(qp_id)
                .ok_or_else(|| EbsError::unknown_entity(format!("binding of {qp_id}")))?;
            let cn = *self
                .cn_by_wt
                .get(wt.index())
                .ok_or_else(|| EbsError::unknown_entity(format!("{wt} bound by {}", qp.id)))?;
            let vm = self
                .vds
                .get(qp.vd)
                .ok_or_else(|| EbsError::unknown_entity(format!("{} of {}", qp.vd, qp.id)))?
                .vm;
            let vm_cn = self
                .vms
                .get(vm)
                .ok_or_else(|| EbsError::unknown_entity(format!("{vm} of {}", qp.id)))?
                .cn;
            if vm_cn != cn {
                return Err(EbsError::invalid_config(format!(
                    "{} bound to {wt} on foreign node {cn}",
                    qp.id
                )));
            }
        }
        for (i, seg) in self.segments.iter().enumerate() {
            let seg_id = SegId(i as u32);
            let bs = *self
                .seg_home
                .get(seg_id)
                .ok_or_else(|| EbsError::unknown_entity(format!("home of {seg_id}")))?;
            let sn = self
                .block_servers
                .get(bs)
                .ok_or_else(|| EbsError::unknown_entity(format!("{bs} for {}", seg.id)))?
                .sn;
            let seg_dc = self
                .dc_of_vd_checked(seg.vd)
                .ok_or_else(|| EbsError::unknown_entity(format!("{} of {}", seg.vd, seg.id)))?;
            let bs_dc = self
                .storage_nodes
                .get(sn)
                .ok_or_else(|| EbsError::unknown_entity(format!("{sn} under {bs}")))?
                .dc;
            if seg_dc != bs_dc {
                return Err(EbsError::invalid_config(format!(
                    "{} placed in {bs_dc} but its VD lives in {seg_dc}",
                    seg.id
                )));
            }
        }
        Ok(())
    }
}

/// Incremental fleet constructor.
///
/// Entities must be added parent-first (DC before CN, CN before VM, …); each
/// `add_*` returns the minted id. QP→WT binding and segment placement happen
/// automatically, mirroring production behaviour:
///
/// * QPs attach to the owning node's worker threads in round-robin order
///   over the node's attach history;
/// * segments are placed on the owning DC's BlockServers round-robin, which
///   both levels initial load and keeps one VD's segments on distinct BSs.
#[derive(Debug, Default)]
pub struct FleetBuilder {
    dcs: Vec<Dc>,
    user_count: u32,
    compute_nodes: Vec<ComputeNode>,
    vms: Vec<Vm>,
    vds: Vec<Vd>,
    qps: Vec<Qp>,
    storage_nodes: Vec<StorageNode>,
    block_servers: Vec<BlockServer>,
    segments: Vec<Segment>,
    qp_binding: Vec<WtId>,
    seg_home: Vec<BsId>,
    wt_total: u32,
    rr_qp_cursor: Vec<u32>,
    rr_seg_cursor: Vec<u32>,
}

impl FleetBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a data center.
    pub fn add_dc(&mut self, name: impl Into<String>) -> DcId {
        let id = DcId::from_index(self.dcs.len());
        self.dcs.push(Dc {
            id,
            name: name.into(),
        });
        self.rr_seg_cursor.push(0);
        id
    }

    /// Add a tenant.
    pub fn add_user(&mut self) -> UserId {
        let id = UserId(self.user_count);
        self.user_count += 1;
        id
    }

    /// Add a compute node with `wt_count` worker threads.
    pub fn add_cn(&mut self, dc: DcId, wt_count: u8, bare_metal: bool) -> CnId {
        assert!(
            wt_count > 0,
            "compute node needs at least one worker thread"
        );
        let id = CnId::from_index(self.compute_nodes.len());
        self.compute_nodes.push(ComputeNode {
            id,
            dc,
            wt_base: self.wt_total,
            wt_count,
            bare_metal,
        });
        self.wt_total += wt_count as u32;
        self.rr_qp_cursor.push(0);
        id
    }

    /// Add a VM on `cn`, owned by `user`, running an `app`-class workload.
    pub fn add_vm(&mut self, cn: CnId, user: UserId, app: AppClass) -> VmId {
        let id = VmId::from_index(self.vms.len());
        self.vms.push(Vm { id, cn, user, app });
        id
    }

    /// Add a storage node.
    pub fn add_sn(&mut self, dc: DcId) -> SnId {
        let id = SnId::from_index(self.storage_nodes.len());
        self.storage_nodes.push(StorageNode { id, dc });
        id
    }

    /// Add a BlockServer process on storage node `sn`.
    pub fn add_bs(&mut self, sn: SnId) -> BsId {
        let id = BsId::from_index(self.block_servers.len());
        self.block_servers.push(BlockServer { id, sn });
        id
    }

    /// Mount a virtual disk in `vm`: mints the VD, its QPs (round-robin
    /// bound to the host node's worker threads), and its segments (placed
    /// round-robin on the DC's BlockServers).
    ///
    /// # Panics
    /// Panics where [`FleetBuilder::try_add_vd`] would return an error: an
    /// invalid spec, an unknown `vm`, or a DC with no BlockServers yet
    /// (add storage before disks).
    pub fn add_vd(&mut self, vm: VmId, spec: VdSpec) -> VdId {
        // ebs-lint: allow(D3) -- documented panicking convenience; hostile inputs go through `try_add_vd`
        self.try_add_vd(vm, spec).expect("VD must mount")
    }

    /// Total variant of [`FleetBuilder::add_vd`]: typed errors instead of
    /// panics, for callers fed by hostile inputs (spec imports, store
    /// loads). Everything fallible is resolved before the first mutation,
    /// so an `Err` leaves the builder exactly as it was.
    pub fn try_add_vd(&mut self, vm: VmId, spec: VdSpec) -> Result<VdId, EbsError> {
        spec.validate()?;
        let id = VdId::from_index(self.vds.len());
        let cn = self
            .vms
            .get(vm.index())
            .ok_or_else(|| EbsError::unknown_entity(format!("{vm} mounting {id}")))?
            .cn;
        let node = self
            .compute_nodes
            .get(cn.index())
            .ok_or_else(|| EbsError::unknown_entity(format!("{cn} hosting {vm}")))?;
        let (dc, wt_base, wt_count) = (node.dc, node.wt_base, node.wt_count);
        let dc_bss: Vec<BsId> = self
            .block_servers
            .iter()
            .filter(|bs| {
                self.storage_nodes
                    .get(bs.sn.index())
                    .is_some_and(|sn| sn.dc == dc)
            })
            .map(|bs| bs.id)
            .collect();
        if dc_bss.is_empty() {
            return Err(EbsError::invalid_config(format!(
                "{dc} has no BlockServers; add storage before disks"
            )));
        }
        if self.rr_seg_cursor.get(dc.index()).is_none() {
            return Err(EbsError::unknown_entity(format!("{dc} hosting {cn}")));
        }
        let qp_base = self.qps.len() as u32;
        for k in 0..spec.qp_count {
            let qp = QpId::from_index(self.qps.len());
            self.qps.push(Qp {
                id: qp,
                vd: id,
                index_in_vd: k,
            });
            let cursor = self
                .rr_qp_cursor
                .get_mut(cn.index())
                .ok_or_else(|| EbsError::unknown_entity(format!("QP cursor for {cn}")))?;
            let wt = WtId(wt_base + (*cursor % wt_count as u32));
            *cursor += 1;
            self.qp_binding.push(wt);
        }
        let seg_base = self.segments.len() as u32;
        for k in 0..spec.segment_count() {
            let seg = SegId::from_index(self.segments.len());
            self.segments.push(Segment {
                id: seg,
                vd: id,
                index_in_vd: k,
            });
            let cursor = self
                .rr_seg_cursor
                .get_mut(dc.index())
                .ok_or_else(|| EbsError::unknown_entity(format!("segment cursor for {dc}")))?;
            // ebs-lint: allow(D3) -- cursor % len is in bounds of the non-empty dc_bss
            let bs = dc_bss[(*cursor as usize) % dc_bss.len()];
            *cursor += 1;
            self.seg_home.push(bs);
        }
        self.vds.push(Vd {
            id,
            vm,
            spec,
            qp_base,
            seg_base,
        });
        Ok(id)
    }

    /// Finish construction, building reverse indexes and validating.
    pub fn finish(self) -> Result<Fleet, EbsError> {
        let mut vms_by_cn = vec![Vec::new(); self.compute_nodes.len()];
        let mut vms_by_user = vec![Vec::new(); self.user_count as usize];
        for vm in &self.vms {
            vms_by_cn[vm.cn.index()].push(vm.id);
            vms_by_user[vm.user.index()].push(vm.id);
        }
        let mut vds_by_vm = vec![Vec::new(); self.vms.len()];
        for vd in &self.vds {
            vds_by_vm[vd.vm.index()].push(vd.id);
        }
        let mut cns_by_dc = vec![Vec::new(); self.dcs.len()];
        for cn in &self.compute_nodes {
            cns_by_dc[cn.dc.index()].push(cn.id);
        }
        let mut bss_by_dc = vec![Vec::new(); self.dcs.len()];
        for bs in &self.block_servers {
            bss_by_dc[self.storage_nodes[bs.sn.index()].dc.index()].push(bs.id);
        }
        let mut cn_by_wt = vec![CnId(0); self.wt_total as usize];
        for cn in &self.compute_nodes {
            for wt in cn.wts() {
                cn_by_wt[wt.index()] = cn.id;
            }
        }
        let fleet = Fleet {
            dcs: IdVec::from_vec(self.dcs),
            user_count: self.user_count,
            compute_nodes: IdVec::from_vec(self.compute_nodes),
            vms: IdVec::from_vec(self.vms),
            vds: IdVec::from_vec(self.vds),
            qps: IdVec::from_vec(self.qps),
            storage_nodes: IdVec::from_vec(self.storage_nodes),
            block_servers: IdVec::from_vec(self.block_servers),
            segments: IdVec::from_vec(self.segments),
            qp_binding: IdVec::from_vec(self.qp_binding),
            seg_home: IdVec::from_vec(self.seg_home),
            wt_total: self.wt_total,
            vms_by_cn,
            vds_by_vm,
            vms_by_user,
            cns_by_dc,
            bss_by_dc,
            cn_by_wt,
        };
        fleet.validate()?;
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::VdTier;
    use crate::units::GIB;

    fn tiny_fleet() -> Fleet {
        let mut b = FleetBuilder::new();
        let dc = b.add_dc("DC-1");
        let sn = b.add_sn(dc);
        let _bs0 = b.add_bs(sn);
        let _bs1 = b.add_bs(sn);
        let user = b.add_user();
        let cn = b.add_cn(dc, 4, false);
        let vm = b.add_vm(cn, user, AppClass::Database);
        b.add_vd(vm, VdTier::Performance.spec(100 * GIB));
        b.add_vd(vm, VdTier::Standard.spec(40 * GIB));
        b.finish().unwrap()
    }

    #[test]
    fn builder_mints_contiguous_ids() {
        let f = tiny_fleet();
        assert_eq!(f.vd_count(), 2);
        assert_eq!(f.qps.len(), 5); // 4 + 1
        assert_eq!(f.segments.len(), 4 + 2); // ceil(100/32)=4, ceil(40/32)=2
        assert_eq!(f.wt_total, 4);
    }

    #[test]
    fn qp_binding_is_round_robin_per_node() {
        let f = tiny_fleet();
        let wts: Vec<u32> = (0..5).map(|i| f.qp_binding[QpId(i)].0).collect();
        assert_eq!(wts, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn segments_of_one_vd_spread_over_bss() {
        let f = tiny_fleet();
        let vd0 = &f.vds[VdId(0)];
        let homes: Vec<BsId> = vd0.segments().map(|s| f.seg_home[s]).collect();
        // 4 segments round-robin over 2 BSs: alternating.
        assert_eq!(homes, vec![BsId(0), BsId(1), BsId(0), BsId(1)]);
    }

    #[test]
    fn reverse_indexes_agree_with_forward_links() {
        let f = tiny_fleet();
        assert_eq!(f.vms_of_cn(CnId(0)), &[VmId(0)]);
        assert_eq!(f.vds_of_vm(VmId(0)), &[VdId(0), VdId(1)]);
        assert_eq!(f.vms_of_user(UserId(0)), &[VmId(0)]);
        assert_eq!(f.cns_of_dc(DcId(0)), &[CnId(0)]);
        assert_eq!(f.cn_of_wt(WtId(3)), CnId(0));
        assert_eq!(f.vm_of_qp(QpId(4)), VmId(0));
        assert_eq!(f.dc_of_vd(VdId(1)), DcId(0));
    }

    #[test]
    fn segment_at_maps_offsets() {
        let f = tiny_fleet();
        assert_eq!(f.segment_at(VdId(0), 0), Some(SegId(0)));
        assert_eq!(f.segment_at(VdId(0), 33 * GIB), Some(SegId(1)));
        assert_eq!(f.segment_at(VdId(0), 100 * GIB), None); // past capacity
        assert_eq!(f.segment_at(VdId(1), 0), Some(SegId(4)));
    }

    #[test]
    fn validate_passes_for_built_fleet() {
        tiny_fleet().validate().unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::spec::VdTier;
    use crate::units::GIB;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn arbitrary_fleets_validate_and_conserve(
            wt_count in 1u8..16,
            vd_caps in prop::collection::vec(1u64..500, 1..12),
            bs_count in 1usize..5,
        ) {
            let mut b = FleetBuilder::new();
            let dc = b.add_dc("DC-T");
            let sn = b.add_sn(dc);
            for _ in 0..bs_count {
                b.add_bs(sn);
            }
            let user = b.add_user();
            let cn = b.add_cn(dc, wt_count, false);
            let vm = b.add_vm(cn, user, crate::apps::AppClass::Database);
            let mut expected_qps = 0usize;
            let mut expected_segs = 0usize;
            for &cap in &vd_caps {
                let spec = VdTier::Performance.spec(cap * GIB);
                expected_qps += spec.qp_count as usize;
                expected_segs += spec.segment_count() as usize;
                b.add_vd(vm, spec);
            }
            let fleet = b.finish().expect("builder output must validate");
            prop_assert_eq!(fleet.qps.len(), expected_qps);
            prop_assert_eq!(fleet.segments.len(), expected_segs);
            // Every QP is bound to a WT on its own node.
            for (i, _) in fleet.qps.iter().enumerate() {
                let qp = QpId::from_index(i);
                let wt = fleet.qp_binding[qp];
                prop_assert_eq!(fleet.cn_of_wt(wt), fleet.cn_of_qp(qp));
            }
            // Segment placement is balanced to within one per BS.
            let mut counts = vec![0usize; bs_count];
            for bs in fleet.seg_home.iter() {
                counts[bs.index()] += 1;
            }
            let min = counts.iter().min().copied().unwrap_or(0);
            let max = counts.iter().max().copied().unwrap_or(0);
            prop_assert!(max - min <= 1, "round-robin broken: {:?}", counts);
        }
    }
}
