//! Application taxonomy from Table 5 of the paper.
//!
//! The specification dataset tags every VM with an inferred application
//! class; Table 4 breaks traffic skewness down by these classes. The class
//! determines the workload profile the generator assigns to a VM.

use std::fmt;

/// The six application classes of Table 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppClass {
    /// HBase, Flink, Hadoop, TensorFlow, E-MapReduce, Elastic HPC.
    BigData,
    /// Nginx, Jenkins, Git, crawlers, games, httpd.
    WebApp,
    /// Elasticsearch, Kafka, etcd, ZooKeeper, Dubbo, Nacos, Nomad, SLB.
    Middleware,
    /// FTP, CPFS.
    FileSystem,
    /// Redis, MySQL, Postgres, MsSQL, MongoDB, Oracle, ClickHouse,
    /// Prometheus, InfluxDB.
    Database,
    /// Applications running in containers: K8s, Alibaba ECI, Alibaba ESS.
    Docker,
}

impl AppClass {
    /// All classes, in the row order of Table 4.
    pub const ALL: [AppClass; 6] = [
        AppClass::BigData,
        AppClass::WebApp,
        AppClass::Middleware,
        AppClass::FileSystem,
        AppClass::Database,
        AppClass::Docker,
    ];

    /// Table label used in the paper ("App in Docker" etc.).
    pub fn label(self) -> &'static str {
        match self {
            AppClass::BigData => "BigData",
            AppClass::WebApp => "WebApp",
            AppClass::Middleware => "Middleware",
            AppClass::FileSystem => "File system",
            AppClass::Database => "Database",
            AppClass::Docker => "App in Docker",
        }
    }

    /// Representative concrete applications for this class (Table 5),
    /// used by the specification dataset to name sample VM workloads.
    pub fn example_apps(self) -> &'static [&'static str] {
        match self {
            AppClass::BigData => &[
                "HBase",
                "Flink",
                "Hadoop",
                "TensorFlow",
                "E-MapReduce",
                "Elastic-HPC",
            ],
            AppClass::WebApp => &["Nginx", "Jenkins", "Git", "Crawler", "Game", "httpd"],
            AppClass::Middleware => &[
                "Elasticsearch",
                "Kafka",
                "etcd",
                "ZooKeeper",
                "Dubbo",
                "Nacos",
                "Nomad",
                "SLB",
            ],
            AppClass::FileSystem => &["FTP", "CPFS"],
            AppClass::Database => &[
                "Redis",
                "MySQL",
                "Postgres",
                "MsSQL",
                "MongoDB",
                "Oracle",
                "ClickHouse",
                "Prometheus",
                "InfluxDB",
            ],
            AppClass::Docker => &["K8S", "ECI", "ESS"],
        }
    }

    /// The class at dense index `idx` inside [`AppClass::ALL`] (inverse of
    /// [`AppClass::index`]; used by the trace-store codec).
    pub fn from_index(idx: usize) -> Option<AppClass> {
        Self::ALL.get(idx).copied()
    }

    /// The class whose Table 4 label is `label`, if any (inverse of
    /// [`AppClass::label`]; used by the CSV importer).
    pub fn from_label(label: &str) -> Option<AppClass> {
        Self::ALL.iter().copied().find(|c| c.label() == label)
    }

    /// Dense index of this class inside [`AppClass::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class listed in ALL")
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_class_once() {
        for (i, c) in AppClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let mut labels: Vec<_> = AppClass::ALL.iter().map(|c| c.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn every_class_names_example_apps() {
        for c in AppClass::ALL {
            assert!(!c.example_apps().is_empty(), "{c} has no example apps");
        }
    }

    #[test]
    fn index_and_label_round_trip() {
        for c in AppClass::ALL {
            assert_eq!(AppClass::from_index(c.index()), Some(c));
            assert_eq!(AppClass::from_label(c.label()), Some(c));
        }
        assert_eq!(AppClass::from_index(99), None);
        assert_eq!(AppClass::from_label("Mainframe"), None);
    }

    #[test]
    fn display_matches_table4_labels() {
        assert_eq!(AppClass::Docker.to_string(), "App in Docker");
        assert_eq!(AppClass::FileSystem.to_string(), "File system");
    }
}
