//! Deterministic parallel execution.
//!
//! Every sweep in this workspace — per-VD dataset generation, cache policy
//! × capacity grids, importer-strategy grids, throttle scenarios — is a map
//! over independent units whose outputs must not depend on scheduling.
//! This module provides that primitive: [`par_map_deterministic`] fans a
//! slice out over worker threads and returns results **in input order**, so
//! a parallel run is byte-identical to a serial one whenever the per-unit
//! work is itself deterministic (which the workspace guarantees by deriving
//! one [`crate::rng::RngFactory`] stream per unit, never sharing streams
//! across units).
//!
//! The external `rayon` crate is not available in the offline build
//! environment, so the implementation uses `std::thread::scope` with a
//! shared block cursor instead of a persistent pool. Scoped spawns cost a
//! few tens of microseconds — noise next to the millisecond-scale units the
//! workspace parallelises — and let workers borrow the input slice without
//! `Arc` plumbing.
//!
//! Scheduling is **block self-scheduling**: the input is cut into
//! contiguous blocks (a few per worker) and workers claim whole blocks
//! from one atomic cursor. Compared to the per-item claim/slot scheme this
//! replaced, a worker touches shared state once per block instead of twice
//! per item, each block's results land in a worker-local `Vec` (no per-item
//! `Mutex` slots, no interleaved writes into one shared results array —
//! the false-sharing pattern behind the recorded cache_sweep regression),
//! and adjacent items go to the *same* worker, so sweeps that walk
//! contiguous arena slices keep their spatial locality. Results are
//! reassembled in block order after the scope joins, which is what keeps
//! output identical to the serial map.
//!
//! Thread count resolution, highest priority first:
//!
//! 1. a programmatic override ([`set_thread_override`], used by tests and
//!    the bench harness to pin 1/2/N threads),
//! 2. the `EBS_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide programmatic override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `EBS_THREADS` / hardware default, resolved once.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// Environment variable selecting the worker-thread count.
pub const THREADS_ENV: &str = "EBS_THREADS";

/// Blocks handed out per worker thread. Small enough that the per-block
/// cursor traffic is negligible, large enough that a straggler block
/// cannot idle the other workers for long.
const BLOCKS_PER_THREAD: usize = 8;

/// Override the thread count for this process (tests, bench harness).
/// `None` restores the `EBS_THREADS` / hardware default.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The number of worker threads parallel maps will use right now.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    *DEFAULT_THREADS.get_or_init(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Map `f` over `items` on up to [`current_threads`] workers, returning the
/// results **in input order**. `f` receives `(index, &item)`.
///
/// Scheduling cannot influence the output: workers claim contiguous blocks
/// of indexes from a shared cursor, compute each block into a worker-local
/// buffer, and the blocks are concatenated in block order after the joins.
/// With one thread (or one item) this degenerates to a plain serial map
/// with no thread spawn at all.
pub fn par_map_deterministic<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let len = items.len();
    let threads = current_threads().min(len);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Cut the input into contiguous blocks, a few per worker, so claiming
    // costs one atomic op per block and adjacent items stay on one worker.
    let block_size = len.div_ceil(threads * BLOCKS_PER_THREAD).max(1);
    let block_count = len.div_ceil(block_size);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let done: Vec<Vec<(usize, Vec<U>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= block_count {
                            break;
                        }
                        let lo = b * block_size;
                        let hi = (lo + block_size).min(len);
                        let mut out = Vec::with_capacity(hi - lo);
                        for (i, item) in items[lo..hi].iter().enumerate() {
                            out.push(f(lo + i, item));
                        }
                        mine.push((b, out));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut blocks: Vec<Option<Vec<U>>> = Vec::with_capacity(block_count);
    blocks.resize_with(block_count, || None);
    for (b, out) in done.into_iter().flatten() {
        if let Some(slot) = blocks.get_mut(b) {
            *slot = Some(out);
        }
    }
    let mut results = Vec::with_capacity(len);
    for block in blocks {
        results.extend(block.expect("every block was claimed exactly once"));
    }
    results
}

/// Run a batch of heterogeneous jobs in parallel, returning their results
/// in job order. The driver uses this to run independent figures/tables of
/// an experiment suite concurrently.
///
/// Jobs are claimed one at a time (the block scheduler degenerates to
/// per-item claiming when there are fewer items than blocks), which is the
/// right granularity for a handful of unequal-sized jobs.
pub fn par_jobs<R, F>(jobs: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let threads = current_threads().min(jobs.len());
    if threads <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let pending: Vec<std::sync::Mutex<Option<F>>> = jobs
        .into_iter()
        .map(|j| std::sync::Mutex::new(Some(j)))
        .collect();
    let results = par_map_deterministic(&pending, |_, slot| {
        // ebs-lint: allow(D7) -- the lock hands out each job exactly once; results land in per-index slots, there is no shared accumulator
        let job = slot.lock().expect("job lock poisoned").take();
        job.map(|job| job())
    });
    results
        .into_iter()
        .map(|r| r.expect("each job slot is taken exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that touch the process-wide thread override.
    static OVERRIDE_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map_deterministic(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let _guard = OVERRIDE_GUARD.lock().unwrap();
        let items: Vec<u64> = (0..100).collect();
        let work = |_: usize, &x: &u64| {
            // Deterministic per-item stream, order-independent across items.
            let mut rng = crate::rng::RngFactory::new(7).stream_n("item", x);
            (0..50)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let mut outputs = Vec::new();
        for threads in [1, 2, 5, 16] {
            set_thread_override(Some(threads));
            outputs.push(par_map_deterministic(&items, work));
        }
        set_thread_override(None);
        for pair in outputs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn block_boundaries_cover_every_length() {
        let _guard = OVERRIDE_GUARD.lock().unwrap();
        set_thread_override(Some(3));
        // Exercise lengths around block-size boundaries (3 threads × 8
        // blocks = 24-way cuts) so off-by-one in the block math shows up.
        for len in [2usize, 3, 23, 24, 25, 47, 48, 49, 100, 257] {
            let items: Vec<usize> = (0..len).collect();
            let out = par_map_deterministic(&items, |i, &x| i * 1000 + x);
            assert_eq!(
                out,
                (0..len).map(|i| i * 1000 + i).collect::<Vec<_>>(),
                "len={len}"
            );
        }
        set_thread_override(None);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_deterministic(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map_deterministic(&[42], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn jobs_return_in_order() {
        let _guard = OVERRIDE_GUARD.lock().unwrap();
        set_thread_override(Some(4));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = par_jobs(jobs);
        set_thread_override(None);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn override_wins_over_default() {
        let _guard = OVERRIDE_GUARD.lock().unwrap();
        set_thread_override(Some(3));
        assert_eq!(current_threads(), 3);
        set_thread_override(None);
        assert!(current_threads() >= 1);
    }
}
