//! Block IO model: opcodes and IO events.

use crate::ids::{QpId, VdId};

/// Block IO opcode. EBS traffic is read/write only (no discard/flush in the
/// paper's datasets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Read from the virtual disk.
    Read,
    /// Write to the virtual disk.
    Write,
}

impl Op {
    /// Both opcodes, in `[Read, Write]` order (the paper's "R / W" column
    /// order).
    pub const ALL: [Op; 2] = [Op::Read, Op::Write];

    /// `true` for [`Op::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, Op::Read)
    }

    /// `true` for [`Op::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Op::Write)
    }

    /// One-letter label used in table output ("R" / "W").
    pub fn letter(self) -> &'static str {
        match self {
            Op::Read => "R",
            Op::Write => "W",
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Op::Read => "read",
            Op::Write => "write",
        })
    }
}

/// A single block IO issued by a VM to one queue pair of a virtual disk.
///
/// This is the unit the workload generator emits and the stack simulator
/// consumes; the DiTing tracer turns it into a [`crate::trace::TraceRecord`]
/// once the simulator has routed it through the stack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoEvent {
    /// Submission timestamp, microseconds from the observation-window origin.
    pub t_us: u64,
    /// Target virtual disk.
    pub vd: VdId,
    /// Queue pair the guest submitted to.
    pub qp: QpId,
    /// Read or write.
    pub op: Op,
    /// Transfer size in bytes.
    pub size: u32,
    /// Byte offset within the VD's logical block address space.
    pub offset: u64,
}

impl IoEvent {
    /// Exclusive end offset of the transfer.
    #[inline]
    pub fn end_offset(&self) -> u64 {
        self.offset + self.size as u64
    }

    /// Segment index within the VD that the *starting* offset falls in.
    /// (EBS splits VDs into 32 GiB segments; IOs in the datasets never span
    /// a segment boundary because guest IO sizes are ≤ a few MiB.)
    #[inline]
    pub fn segment_index(&self) -> u32 {
        (self.offset / crate::units::SEGMENT_BYTES) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::GIB;

    #[test]
    fn op_predicates() {
        assert!(Op::Read.is_read());
        assert!(!Op::Read.is_write());
        assert!(Op::Write.is_write());
        assert_eq!(Op::Read.letter(), "R");
        assert_eq!(Op::Write.to_string(), "write");
    }

    #[test]
    fn event_geometry() {
        let ev = IoEvent {
            t_us: 10,
            vd: VdId(0),
            qp: QpId(0),
            op: Op::Write,
            size: 4096,
            offset: 33 * GIB,
        };
        assert_eq!(ev.end_offset(), 33 * GIB + 4096);
        assert_eq!(ev.segment_index(), 1);
    }

    #[test]
    fn segment_index_boundary() {
        let mk = |offset| IoEvent {
            t_us: 0,
            vd: VdId(0),
            qp: QpId(0),
            op: Op::Read,
            size: 512,
            offset,
        };
        assert_eq!(mk(0).segment_index(), 0);
        assert_eq!(mk(32 * GIB - 1).segment_index(), 0);
        assert_eq!(mk(32 * GIB).segment_index(), 1);
    }
}
