//! Typed identifiers for every entity in the EBS hierarchy.
//!
//! All ids are dense `u32` indexes into the owning [`crate::topology::Fleet`]
//! arenas, wrapped in newtypes so that a segment id can never be confused
//! with a queue-pair id at a call site. Ids order and hash like their inner
//! index, which makes them usable as map keys and sortable for deterministic
//! iteration.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Dense index of this id inside its fleet arena.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Build an id from a dense arena index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(u32::try_from(idx).expect("entity index exceeds u32::MAX"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "-{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// A data center ("DC-1" … "DC-3" in the paper).
    DcId, "dc"
);
define_id!(
    /// A tenant / user account.
    UserId, "user"
);
define_id!(
    /// A compute node (CN) hosting VMs and hypervisor worker threads.
    CnId, "cn"
);
define_id!(
    /// A virtual machine (VM).
    VmId, "vm"
);
define_id!(
    /// A virtual disk (VD) mounted in a VM.
    VdId, "vd"
);
define_id!(
    /// An IO queue pair (QP) of a virtual disk; NVMe-style submission /
    /// completion queue virtualized by the hypervisor.
    QpId, "qp"
);
define_id!(
    /// A hypervisor worker thread (WT); globally numbered, each belongs to
    /// exactly one compute node.
    WtId, "wt"
);
define_id!(
    /// A storage node (SN) in the storage cluster.
    SnId, "sn"
);
define_id!(
    /// A BlockServer (BS) process in the forwarding layer.
    BsId, "bs"
);
define_id!(
    /// A 32 GiB segment of a virtual disk's address space.
    SegId, "seg"
);

/// Unique id of a sampled IO trace (the paper's `TraceID`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The raw 64-bit trace identifier.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace{:016x}", self.0)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A dense, id-indexed vector: `IdVec<VdId, T>` is a `Vec<T>` whose positions
/// are addressed by typed ids instead of raw `usize`s.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IdVec<I, T> {
    items: Vec<T>,
    _marker: std::marker::PhantomData<I>,
}

impl<I: Copy + Into<usize>, T> IdVec<I, T> {
    /// Create an empty id-indexed vector.
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Create from an existing dense vector (index `i` ⇒ id with index `i`).
    pub fn from_vec(items: Vec<T>) -> Self {
        Self {
            items,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the vector holds no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Append an item, returning nothing; callers mint ids externally.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// Immutable access by typed id.
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.into())
    }

    /// Iterate over raw items in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Mutable iteration in id order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.items.iter_mut()
    }

    /// Borrow the backing slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }
}

impl<I: Copy + Into<usize>, T> std::ops::Index<I> for IdVec<I, T> {
    type Output = T;
    fn index(&self, id: I) -> &T {
        &self.items[id.into()]
    }
}

impl<I: Copy + Into<usize>, T> std::ops::IndexMut<I> for IdVec<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_index() {
        let vd = VdId::from_index(42);
        assert_eq!(vd.index(), 42);
        assert_eq!(vd, VdId(42));
    }

    #[test]
    fn ids_display_with_tag() {
        assert_eq!(QpId(7).to_string(), "qp-7");
        assert_eq!(format!("{:?}", SegId(3)), "seg3");
        assert_eq!(TraceId(0xabcd).to_string(), "000000000000abcd");
    }

    #[test]
    fn ids_order_by_index() {
        let mut v = vec![BsId(3), BsId(1), BsId(2)];
        v.sort();
        assert_eq!(v, vec![BsId(1), BsId(2), BsId(3)]);
    }

    #[test]
    fn idvec_indexes_by_typed_id() {
        let mut v: IdVec<VmId, &str> = IdVec::new();
        v.push("a");
        v.push("b");
        assert_eq!(v[VmId(1)], "b");
        assert_eq!(v.get(VmId(2)), None);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn idvec_from_vec_preserves_order() {
        let v: IdVec<SegId, u32> = IdVec::from_vec(vec![10, 20, 30]);
        assert_eq!(v[SegId(0)], 10);
        assert_eq!(v.as_slice(), &[10, 20, 30]);
        assert!(!v.is_empty());
    }
}
