//! Zero-copy event indexing for the trace-driven hot paths.
//!
//! Every analysis in the workspace consumes the same time-sorted event
//! stream sliced along one entity axis: per VD (cache studies, Figures 6/7),
//! per QP (hypervisor balancing), per segment (storage-side placement), or
//! per time window (hot-rate analysis). Historically each consumer regrouped
//! the stream into its own `Vec<Vec<IoEvent>>`, copying every event per
//! consumer per run. [`EventIndex`] replaces those ad-hoc partitions: built
//! **once** over the stream, it stores a single VD-major arena plus `u32`
//! permutation tables for the other axes, and every consumer borrows views —
//! contiguous `&[IoEvent]` slices for VDs and time windows, permutation
//! slices ([`PermutedEvents`]) for QPs and segments. No consumer copies an
//! event.
//!
//! Ownership model: the index is self-contained (it owns the gathered arena
//! and the permutation tables, no borrowed lifetimes), so it can be cached
//! inside a dataset and lent across threads freely. Within each view the
//! original time order of the stream is preserved: the gather is a stable
//! counting sort, and QPs/segments each belong to exactly one VD.
//!
//! The VD-major arena is the one structure every consumer touches, so
//! [`EventIndex::build`] materializes it eagerly; the QP and segment
//! permutation tables are derived lazily on first use (thread-safe, built
//! at most once) so runs that never slice those axes pay nothing for them.

use crate::ids::{QpId, SegId, VdId};
use crate::io::IoEvent;
use crate::topology::Fleet;
use std::sync::OnceLock;

/// One lazily-built permutation axis: arena positions grouped by entity,
/// `perm[starts[e] .. starts[e + 1]]` holding entity `e`'s events.
#[derive(Clone, Debug, Default)]
struct Axis {
    perm: Vec<u32>,
    starts: Vec<u32>,
}

/// Precomputed per-VD / per-QP / per-segment / per-window views over one
/// time-sorted event stream. See the module docs for the ownership model.
#[derive(Clone, Debug, Default)]
pub struct EventIndex {
    /// Events regrouped VD-major; time-sorted within each VD's range.
    arena: Vec<IoEvent>,
    /// `arena[vd_starts[v] .. vd_starts[v + 1]]` holds VD `v`'s events.
    vd_starts: Vec<u32>,
    /// Per-VD `(seg_base, capacity_bytes)`: the slice of fleet topology
    /// the lazy segment axis needs, captured so the index stays free of
    /// borrowed lifetimes.
    vd_seg_info: Vec<(u32, u64)>,
    /// Total QPs in the fleet (axis width).
    n_qps: usize,
    /// Total segments in the fleet (axis width).
    n_segs: usize,
    /// Arena positions grouped by QP, built on first [`Self::qp`] call.
    qp_axis: OnceLock<Axis>,
    /// Arena positions grouped by segment, built on first
    /// [`Self::segment`] call.
    seg_axis: OnceLock<Axis>,
}

/// A borrowed, permutation-backed event view (per-QP / per-segment): the
/// events in time order, read through an index table instead of a copy.
#[derive(Clone, Copy, Debug)]
pub struct PermutedEvents<'a> {
    arena: &'a [IoEvent],
    positions: &'a [u32],
}

impl<'a> PermutedEvents<'a> {
    /// Number of events in the view.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The `i`-th event of the view (time order).
    #[inline]
    pub fn get(&self, i: usize) -> &'a IoEvent {
        &self.arena[self.positions[i] as usize]
    }

    /// Iterate the events in time order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &'a IoEvent> + '_ {
        self.positions.iter().map(|&p| &self.arena[p as usize])
    }
}

/// Prefix-sum a count table in place into start offsets (the classic
/// counting-sort layout step); returns nothing, `counts[i]` becomes the
/// start of bucket `i` and one extra slot holds the total.
fn counts_to_starts(counts: &mut [u32]) {
    let mut acc = 0u32;
    for c in counts.iter_mut() {
        let n = *c;
        *c = acc;
        acc += n;
    }
}

impl EventIndex {
    /// Build the index over `events` (must be time-sorted, as the workload
    /// generator and every dataset in the workspace guarantee). One O(E)
    /// counting-sort gather per axis; no per-consumer work ever again.
    pub fn build(fleet: &Fleet, events: &[IoEvent]) -> Self {
        let n = u32::try_from(events.len()).expect("event count exceeds u32 index range");
        let n_vds = fleet.vds.len();

        // Axis 1: VD-major arena (stable gather keeps time order per VD).
        let mut vd_starts = vec![0u32; n_vds + 1];
        for ev in events {
            vd_starts[ev.vd.index()] += 1;
        }
        counts_to_starts(&mut vd_starts);
        debug_assert_eq!(vd_starts[n_vds], n);
        // Stable scatter straight into the arena: one sequential read pass
        // over the stream (the placeholder fill keeps the code safe — the
        // scatter overwrites every slot).
        let mut arena = match events.first() {
            Some(first) => vec![*first; events.len()],
            None => Vec::new(),
        };
        let mut cursor = vd_starts.clone();
        for ev in events {
            let slot = &mut cursor[ev.vd.index()];
            arena[*slot as usize] = *ev;
            *slot += 1;
        }

        Self {
            arena,
            vd_starts,
            vd_seg_info: fleet
                .vds
                .iter()
                .map(|d| (d.seg_base, d.spec.capacity_bytes))
                .collect(),
            n_qps: fleet.qps.len(),
            n_segs: fleet.segments.len(),
            qp_axis: OnceLock::new(),
            seg_axis: OnceLock::new(),
        }
    }

    /// The per-VD `(seg_base, capacity_bytes)` table the index already
    /// computed for its segment axis. The stack simulator's route planner
    /// reuses it to resolve `offset → segment` without re-walking the
    /// fleet's VD table.
    pub fn seg_info(&self) -> &[(u32, u64)] {
        &self.vd_seg_info
    }

    /// The QP permutation over the arena, built on first use. Each QP
    /// lives inside one VD's contiguous range, so arena order is already
    /// time order.
    fn qp_axis(&self) -> &Axis {
        self.qp_axis.get_or_init(|| {
            let mut starts = vec![0u32; self.n_qps + 1];
            for ev in &self.arena {
                starts[ev.qp.index()] += 1;
            }
            counts_to_starts(&mut starts);
            let mut cursor = starts.clone();
            let mut perm = vec![0u32; self.arena.len()];
            for (pos, ev) in self.arena.iter().enumerate() {
                let slot = &mut cursor[ev.qp.index()];
                perm[*slot as usize] = pos as u32;
                *slot += 1;
            }
            Axis { perm, starts }
        })
    }

    /// The segment permutation over the arena, built on first use.
    /// Segments are global ids carved out of each VD's address space;
    /// events never span segment boundaries (IO sizes ≪ 32 GiB), so the
    /// starting offset decides the segment. Events addressed past a VD's
    /// declared capacity have no segment and are not indexed on this axis.
    fn seg_axis(&self) -> &Axis {
        self.seg_axis.get_or_init(|| {
            let seg_of = |ev: &IoEvent| {
                let (seg_base, capacity) = self.vd_seg_info[ev.vd.index()];
                (ev.offset < capacity)
                    .then(|| seg_base as usize + (ev.offset / crate::units::SEGMENT_BYTES) as usize)
            };
            let mut starts = vec![0u32; self.n_segs + 1];
            let mut in_range = 0usize;
            for ev in &self.arena {
                if let Some(seg) = seg_of(ev) {
                    starts[seg] += 1;
                    in_range += 1;
                }
            }
            counts_to_starts(&mut starts);
            let mut cursor = starts.clone();
            let mut perm = vec![0u32; in_range];
            for (pos, ev) in self.arena.iter().enumerate() {
                if let Some(seg) = seg_of(ev) {
                    let slot = &mut cursor[seg];
                    perm[*slot as usize] = pos as u32;
                    *slot += 1;
                }
            }
            Axis { perm, starts }
        })
    }

    /// Total indexed events.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the index holds no events.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Number of VDs the index covers.
    pub fn vd_count(&self) -> usize {
        self.vd_starts.len() - 1
    }

    /// One VD's events, time-sorted, as a contiguous borrowed slice.
    #[inline]
    pub fn vd(&self, vd: VdId) -> &[IoEvent] {
        let lo = self.vd_starts[vd.index()] as usize;
        let hi = self.vd_starts[vd.index() + 1] as usize;
        &self.arena[lo..hi]
    }

    /// Every VD's slice, in VD order — the fan-out surface for parallel
    /// per-VD sweeps (fat pointers only, no event is copied).
    pub fn vd_slices(&self) -> Vec<&[IoEvent]> {
        (0..self.vd_count())
            .map(|i| self.vd(VdId::from_index(i)))
            .collect()
    }

    /// One QP's events, time-sorted, as a permutation view (the QP axis
    /// materializes on the first call and is shared thereafter).
    pub fn qp(&self, qp: QpId) -> PermutedEvents<'_> {
        let axis = self.qp_axis();
        let lo = axis.starts[qp.index()] as usize;
        let hi = axis.starts[qp.index() + 1] as usize;
        PermutedEvents {
            arena: &self.arena,
            positions: &axis.perm[lo..hi],
        }
    }

    /// One segment's events, time-sorted, as a permutation view (the
    /// segment axis materializes on the first call and is shared
    /// thereafter). Events addressed past a VD's declared capacity are
    /// not indexed here.
    pub fn segment(&self, seg: SegId) -> PermutedEvents<'_> {
        let axis = self.seg_axis();
        let lo = axis.starts[seg.index()] as usize;
        let hi = axis.starts[seg.index() + 1] as usize;
        PermutedEvents {
            arena: &self.arena,
            positions: &axis.perm[lo..hi],
        }
    }

    /// The events of `vd` with `t_us` in `[lo_us, hi_us)`, found by binary
    /// search over the VD's time-sorted slice — O(log E) per query, no
    /// per-window tables.
    pub fn vd_window(&self, vd: VdId, lo_us: u64, hi_us: u64) -> &[IoEvent] {
        let evs = self.vd(vd);
        let lo = evs.partition_point(|e| e.t_us < lo_us);
        let hi = evs.partition_point(|e| e.t_us < hi_us);
        &evs[lo..hi]
    }
}

/// Split a time-sorted event slice into maximal runs sharing the same
/// `t_us / window_us` bucket, yielding `(window, run)` pairs in time order.
/// The linear-scan replacement for per-window hash maps on sorted input.
pub fn window_runs(events: &[IoEvent], window_us: u64) -> impl Iterator<Item = (u64, &[IoEvent])> {
    debug_assert!(window_us > 0, "window width must be positive");
    debug_assert!(
        events.windows(2).all(|p| p[0].t_us <= p[1].t_us),
        "window_runs requires a time-sorted slice"
    );
    let mut rest = events;
    std::iter::from_fn(move || {
        let first = rest.first()?;
        let w = first.t_us / window_us;
        let end = rest.partition_point(|e| e.t_us / window_us == w);
        let (run, tail) = rest.split_at(end);
        rest = tail;
        Some((w, run))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::Op;

    fn dataset() -> (Fleet, Vec<IoEvent>) {
        use crate::apps::AppClass;
        use crate::spec::VdTier;
        use crate::topology::FleetBuilder;
        use crate::units::GIB;
        let mut b = FleetBuilder::new();
        let dc = b.add_dc("DC-1");
        let sn = b.add_sn(dc);
        b.add_bs(sn);
        b.add_bs(sn);
        let user = b.add_user();
        let cn = b.add_cn(dc, 4, false);
        let vm = b.add_vm(cn, user, AppClass::Database);
        b.add_vd(vm, VdTier::Performance.spec(100 * GIB));
        b.add_vd(vm, VdTier::Standard.spec(40 * GIB));
        b.add_vd(vm, VdTier::Premium.spec(200 * GIB));
        let ds = b.finish().unwrap();
        // Build a deterministic time-sorted stream across the fleet's VDs
        // and QPs using a tiny xorshift generator.
        let mut events = Vec::new();
        let mut x = 88172645463325252u64;
        for t in 0..2000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let vd = VdId((x % ds.vds.len() as u64) as u32);
            let d = &ds.vds[vd];
            let qp = QpId(d.qp_base + (x >> 8) as u32 % d.spec.qp_count as u32);
            events.push(IoEvent {
                t_us: t * 500,
                vd,
                qp,
                op: if x.is_multiple_of(3) {
                    Op::Read
                } else {
                    Op::Write
                },
                size: 4096,
                offset: (x >> 16) % d.spec.capacity_bytes,
            });
        }
        (ds, events)
    }

    #[test]
    fn vd_views_match_the_legacy_partition() {
        let (fleet, events) = dataset();
        let idx = EventIndex::build(&fleet, &events);
        assert_eq!(idx.len(), events.len());
        // Reference partition: the old per-consumer Vec<Vec<_>> regroup.
        let mut by_vd = vec![Vec::new(); fleet.vds.len()];
        for ev in &events {
            by_vd[ev.vd.index()].push(*ev);
        }
        for (i, expect) in by_vd.iter().enumerate() {
            assert_eq!(idx.vd(VdId::from_index(i)), expect.as_slice());
        }
        let total: usize = idx.vd_slices().iter().map(|s| s.len()).sum();
        assert_eq!(total, events.len());
    }

    #[test]
    fn qp_views_are_time_sorted_and_complete() {
        let (fleet, events) = dataset();
        let idx = EventIndex::build(&fleet, &events);
        let mut total = 0;
        for q in 0..fleet.qps.len() {
            let view = idx.qp(QpId::from_index(q));
            total += view.len();
            let mut last = 0;
            for ev in view.iter() {
                assert_eq!(ev.qp.index(), q);
                assert!(ev.t_us >= last, "QP view out of time order");
                last = ev.t_us;
            }
        }
        assert_eq!(total, events.len());
    }

    #[test]
    fn segment_views_partition_in_range_events() {
        let (fleet, events) = dataset();
        let idx = EventIndex::build(&fleet, &events);
        let mut total = 0;
        for s in 0..fleet.segments.len() {
            let view = idx.segment(SegId::from_index(s));
            total += view.len();
            for ev in view.iter() {
                assert_eq!(
                    fleet.segment_at(ev.vd, ev.offset),
                    Some(SegId::from_index(s))
                );
            }
        }
        // Every generated offset is inside its VD's capacity, so the
        // segment axis must account for the full stream.
        assert_eq!(total, events.len());
    }

    #[test]
    fn window_queries_agree_with_linear_filters() {
        let (fleet, events) = dataset();
        let idx = EventIndex::build(&fleet, &events);
        let vd = VdId(0);
        let expect: Vec<IoEvent> = events
            .iter()
            .filter(|e| e.vd == vd && (200_000..400_000).contains(&e.t_us))
            .copied()
            .collect();
        assert_eq!(idx.vd_window(vd, 200_000, 400_000), expect.as_slice());
    }

    #[test]
    fn window_runs_cover_the_slice_in_order() {
        let (fleet, events) = dataset();
        let idx = EventIndex::build(&fleet, &events);
        let evs = idx.vd(VdId(0));
        let mut seen = 0;
        let mut last_w = None;
        for (w, run) in window_runs(evs, 100_000) {
            assert!(!run.is_empty());
            assert!(last_w.is_none_or(|lw| w > lw), "windows must ascend");
            for ev in run {
                assert_eq!(ev.t_us / 100_000, w);
            }
            seen += run.len();
            last_w = Some(w);
        }
        assert_eq!(seen, evs.len());
    }

    #[test]
    fn empty_stream_yields_empty_views() {
        let (fleet, _) = dataset();
        let idx = EventIndex::build(&fleet, &[]);
        assert!(idx.is_empty());
        assert!(idx.vd(VdId(0)).is_empty());
        assert!(idx.qp(QpId(0)).is_empty());
        assert!(idx.segment(SegId(0)).is_empty());
    }
}
