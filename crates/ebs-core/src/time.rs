//! Simulated time.
//!
//! The metric dataset is a sequence of fixed-width *ticks* (the paper
//! aggregates at one-second granularity; our scale-reduced fleets default to
//! a few seconds per tick). [`TickSpec`] describes a tick grid; latencies and
//! event timestamps are carried in microseconds (`u64`).

/// Description of a uniform tick grid covering the observation window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TickSpec {
    /// Width of one tick in seconds.
    pub tick_secs: f64,
    /// Number of ticks in the observation window.
    pub ticks: u32,
}

impl TickSpec {
    /// A grid of `ticks` ticks, each `tick_secs` seconds wide.
    pub fn new(tick_secs: f64, ticks: u32) -> Self {
        assert!(tick_secs > 0.0, "tick width must be positive");
        assert!(ticks > 0, "need at least one tick");
        Self { tick_secs, ticks }
    }

    /// Grid covering `total_secs` seconds with `tick_secs`-wide ticks
    /// (rounding the tick count up so the window is fully covered).
    pub fn covering(total_secs: f64, tick_secs: f64) -> Self {
        let ticks = (total_secs / tick_secs).ceil().max(1.0) as u32;
        Self::new(tick_secs, ticks)
    }

    /// Total length of the observation window in seconds.
    pub fn total_secs(&self) -> f64 {
        self.tick_secs * self.ticks as f64
    }

    /// Start of tick `t` in seconds from the window origin.
    pub fn tick_start_secs(&self, t: u32) -> f64 {
        t as f64 * self.tick_secs
    }

    /// Start of tick `t` in microseconds from the window origin.
    pub fn tick_start_us(&self, t: u32) -> u64 {
        (self.tick_start_secs(t) * 1e6).round() as u64
    }

    /// Tick containing the microsecond timestamp `t_us` (clamped to the
    /// final tick for timestamps at or past the window end).
    pub fn tick_of_us(&self, t_us: u64) -> u32 {
        let t = (t_us as f64 / (self.tick_secs * 1e6)).floor() as u32;
        t.min(self.ticks - 1)
    }

    /// Number of ticks per aggregation window of `window_secs` seconds
    /// (at least one).
    pub fn ticks_per_window(&self, window_secs: f64) -> u32 {
        ((window_secs / self.tick_secs).round() as u32).max(1)
    }

    /// Number of whole-or-partial windows of `window_secs` seconds in the
    /// observation window.
    pub fn window_count(&self, window_secs: f64) -> u32 {
        let per = self.ticks_per_window(window_secs);
        self.ticks.div_ceil(per)
    }
}

/// Microseconds in one second.
pub const US_PER_SEC: u64 = 1_000_000;

/// The paper's observation window: a 12-hour daytime span (§3.1).
pub const OBSERVATION_SECS: f64 = 12.0 * 3600.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_rounds_up() {
        let spec = TickSpec::covering(100.0, 30.0);
        assert_eq!(spec.ticks, 4);
        assert!((spec.total_secs() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn tick_of_us_maps_and_clamps() {
        let spec = TickSpec::new(5.0, 10);
        assert_eq!(spec.tick_of_us(0), 0);
        assert_eq!(spec.tick_of_us(4_999_999), 0);
        assert_eq!(spec.tick_of_us(5_000_000), 1);
        assert_eq!(spec.tick_of_us(u64::MAX / 2), 9);
    }

    #[test]
    fn tick_starts_are_consistent() {
        let spec = TickSpec::new(2.5, 8);
        assert_eq!(spec.tick_start_us(2), 5_000_000);
        assert!((spec.tick_start_secs(3) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn windows_partition_the_grid() {
        let spec = TickSpec::new(5.0, 9);
        assert_eq!(spec.ticks_per_window(15.0), 3);
        assert_eq!(spec.window_count(15.0), 3);
        // Partial final window still counts.
        let spec = TickSpec::new(5.0, 10);
        assert_eq!(spec.window_count(15.0), 4);
    }

    #[test]
    #[should_panic(expected = "tick width must be positive")]
    fn zero_tick_width_rejected() {
        let _ = TickSpec::new(0.0, 5);
    }
}
