//! The metrics registry: counters, gauges, fixed-bin histograms, and
//! accumulated stage timers, all keyed by dotted metric names.
//!
//! The registry is a plain value type — the global instance lives in
//! [`crate::global`] behind a mutex, but simulators that run on worker
//! threads record into a private `Registry` and [`Registry::merge`] it in
//! at the end, so the hot path never touches a shared lock per event.
//!
//! Determinism contract: counters and histogram bins merge by addition and
//! timer stats by `(sum, count, max)`, all commutative, so the merged
//! totals are identical no matter which worker finished first. Export
//! ordering is canonical (kind, then name), never insertion order. The one
//! intentionally non-deterministic *value* is wall-clock seconds inside
//! [`TimerStat`]; its `count` is deterministic and its seconds never feed
//! back into any simulation.

use ebs_analysis::Histogram;
use std::collections::BTreeMap;

/// Accumulated wall-clock time of one named stage.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimerStat {
    /// Total seconds across all recorded spans.
    pub seconds: f64,
    /// Number of spans recorded.
    pub count: u64,
    /// Longest single span in seconds.
    pub max_seconds: f64,
}

impl TimerStat {
    /// Fold one span into the stat.
    pub fn record(&mut self, seconds: f64) {
        self.seconds += seconds;
        self.count += 1;
        self.max_seconds = self.max_seconds.max(seconds);
    }

    /// Fold another stat into this one (commutative).
    pub fn merge(&mut self, other: &TimerStat) {
        // ebs-lint: allow(D7) -- wall-clock telemetry fold; spans are nondeterministic by nature and never reach deterministic output (rule D2)
        self.seconds += other.seconds;
        self.count += other.count;
        self.max_seconds = self.max_seconds.max(other.max_seconds);
    }
}

/// One exported metric row, in canonical order.
#[derive(Clone, Debug, PartialEq)]
pub enum Row {
    /// Monotonic count.
    Counter {
        /// Metric name.
        name: String,
        /// Current count.
        value: u64,
    },
    /// Point-in-time value (last write wins).
    Gauge {
        /// Metric name.
        name: String,
        /// Current value.
        value: f64,
    },
    /// Fixed-bin histogram.
    Hist {
        /// Metric name.
        name: String,
        /// The histogram itself.
        hist: Histogram,
    },
    /// Accumulated stage timer.
    Timer {
        /// Stage name.
        name: String,
        /// Accumulated spans.
        stat: TimerStat,
    },
}

impl Row {
    /// The metric name.
    pub fn name(&self) -> &str {
        match self {
            Row::Counter { name, .. }
            | Row::Gauge { name, .. }
            | Row::Hist { name, .. }
            | Row::Timer { name, .. } => name,
        }
    }

    /// The metric kind as a lowercase label.
    pub fn kind(&self) -> &'static str {
        match self {
            Row::Counter { .. } => "counter",
            Row::Gauge { .. } => "gauge",
            Row::Hist { .. } => "histogram",
            Row::Timer { .. } => "timer",
        }
    }
}

/// A set of named metrics. See the module docs for the merge/ordering
/// contract.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    timers: BTreeMap<String, TimerStat>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.timers.is_empty()
    }

    /// Add `n` to the counter `name` (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set the gauge `name` to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record `v` into the histogram `name`, creating it with the given
    /// shape on first use. The shape is fixed by the first call; later
    /// calls only supply the value.
    pub fn observe(&mut self, name: &str, lo: f64, hi: f64, bins: usize, v: f64) {
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(lo, hi, bins))
            .add(v);
    }

    /// Record a batch into the histogram `name` (one lookup).
    pub fn observe_many(&mut self, name: &str, lo: f64, hi: f64, bins: usize, vs: &[f64]) {
        let h = self
            .hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(lo, hi, bins));
        h.extend(vs.iter().copied());
    }

    /// Fold a pre-built histogram into `name` (created as a copy on first
    /// use, merged bin-wise after).
    pub fn merge_hist(&mut self, name: &str, hist: &Histogram) {
        match self.hists.entry(name.to_string()) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(hist),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(hist.clone());
            }
        }
    }

    /// Record one wall-clock span for the stage `name`.
    pub fn timer_record(&mut self, name: &str, seconds: f64) {
        self.timers
            .entry(name.to_string())
            .or_default()
            .record(seconds);
    }

    /// Current value of the counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if one was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// The timer stat `name`, if one was recorded.
    pub fn timer(&self, name: &str) -> Option<&TimerStat> {
        self.timers.get(name)
    }

    /// Fold `other` into `self`: counters and histogram bins add, timers
    /// accumulate, gauges take `other`'s value. Merging is commutative for
    /// everything except gauges (documented; gauges are meant to be set
    /// once per run from a single site).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            self.merge_hist(k, h);
        }
        for (k, t) in &other.timers {
            self.timers.entry(k.clone()).or_default().merge(t);
        }
    }

    /// Every metric in canonical export order: counters, then gauges, then
    /// histograms, then timers, each sorted by name. Insertion order never
    /// leaks into the export.
    pub fn rows(&self) -> Vec<Row> {
        let mut rows = Vec::with_capacity(
            self.counters.len() + self.gauges.len() + self.hists.len() + self.timers.len(),
        );
        rows.extend(self.counters.iter().map(|(name, &value)| Row::Counter {
            name: name.clone(),
            value,
        }));
        rows.extend(self.gauges.iter().map(|(name, &value)| Row::Gauge {
            name: name.clone(),
            value,
        }));
        rows.extend(self.hists.iter().map(|(name, hist)| Row::Hist {
            name: name.clone(),
            hist: hist.clone(),
        }));
        rows.extend(self.timers.iter().map(|(name, &stat)| Row::Timer {
            name: name.clone(),
            stat,
        }));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.counter_add("a.x", 2);
        r.counter_add("a.x", 3);
        assert_eq!(r.counter("a.x"), 5);
        assert_eq!(r.counter("never"), 0);
    }

    #[test]
    fn merge_is_commutative_for_counters_and_hists() {
        let mut a = Registry::new();
        a.counter_add("c", 1);
        a.observe("h", 0.0, 1.0, 4, 0.1);
        a.timer_record("t", 1.0);
        let mut b = Registry::new();
        b.counter_add("c", 41);
        b.observe("h", 0.0, 1.0, 4, 0.9);
        b.timer_record("t", 2.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        assert_eq!(ab.counter("c"), 42);
        assert_eq!(ab.counter("c"), ba.counter("c"));
        assert_eq!(
            ab.hist("h").unwrap().counts(),
            ba.hist("h").unwrap().counts()
        );
        assert_eq!(ab.timer("t").unwrap().count, 2);
        assert_eq!(ab.timer("t").unwrap(), ba.timer("t").unwrap());
    }

    #[test]
    fn export_order_is_kind_then_name_not_insertion() {
        let mut r = Registry::new();
        // Deliberately inserted out of order and across kinds.
        r.timer_record("z.timer", 0.5);
        r.counter_add("b.count", 1);
        r.gauge_set("m.gauge", 7.0);
        r.counter_add("a.count", 1);
        r.observe("k.hist", 0.0, 1.0, 2, 0.5);
        let names: Vec<(&'static str, String)> = r
            .rows()
            .iter()
            .map(|row| (row.kind(), row.name().to_string()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("counter", "a.count".to_string()),
                ("counter", "b.count".to_string()),
                ("gauge", "m.gauge".to_string()),
                ("histogram", "k.hist".to_string()),
                ("timer", "z.timer".to_string()),
            ]
        );
    }

    #[test]
    fn merge_into_empty_equals_clone() {
        let mut a = Registry::new();
        a.counter_add("x", 9);
        a.gauge_set("g", 1.5);
        a.observe_many("h", 0.0, 10.0, 5, &[1.0, 2.0, 9.0]);
        let mut empty = Registry::new();
        empty.merge(&a);
        assert_eq!(empty.rows(), a.rows());
    }

    #[test]
    fn timer_stats_track_sum_count_max() {
        let mut t = TimerStat::default();
        t.record(1.0);
        t.record(3.0);
        t.record(2.0);
        assert_eq!(t.count, 3);
        assert!((t.seconds - 6.0).abs() < 1e-12);
        assert!((t.max_seconds - 3.0).abs() < 1e-12);
    }
}
