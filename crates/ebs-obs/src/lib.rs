//! # ebs-obs — deterministic observability for the simulators
//!
//! The paper's measurement apparatus is the DiTing tracer (§2.3); this
//! crate is the equivalent lens pointed at our own simulators. It provides
//! a metrics registry (counters, gauges, fixed-bin histograms reusing
//! [`ebs_analysis::Histogram`], accumulated stage timers), scoped timers,
//! and a structured run report with JSONL/CSV exporters.
//!
//! ## Gating
//!
//! Everything is gated by the `EBS_OBS` environment variable (any value
//! other than `0`/empty enables it) with a programmatic override for tests
//! and harnesses, mirroring `ebs-core::parallel`'s `EBS_THREADS` pattern.
//! When off, every instrumentation call is a single relaxed atomic load
//! and a branch — no allocation, no locking, no clock read.
//!
//! ## Determinism contract
//!
//! Instrumentation must never change simulation output: no RNG draws, no
//! reordering, no stdout writes. Counters and histograms merge by
//! addition (commutative), so the recorded totals are identical at any
//! thread count; only wall-clock timer *seconds* vary between runs, and
//! they never feed back into a simulation. `tests/determinism.rs` pins
//! `EBS_OBS=1` output byte-identical to an instrumented-off run.
//!
//! ## Typical use
//!
//! ```
//! // A simulator records locally (no lock per event)…
//! let mut local = ebs_obs::Registry::new();
//! local.counter_add("stack.sim.ios", 1);
//! local.observe("stack.lat.total_us", 0.0, 10_000.0, 50, 812.0);
//! // …and merges once at the end of the run.
//! ebs_obs::merge(&local);
//!
//! // Coarse-grained sites record straight into the global registry.
//! ebs_obs::counter_add("balance.migrations", 3);
//! let _span = ebs_obs::timer("driver.section.table2"); // records on drop
//! ```

pub mod registry;
pub mod report;

pub use ebs_analysis::Histogram;
pub use registry::{Registry, Row, TimerStat};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable enabling the observability layer.
pub const OBS_ENV: &str = "EBS_OBS";

/// Environment variable selecting the run-report base path (the report is
/// written as `<base>.jsonl` and `<base>.csv`; default `OBS_report`).
pub const OBS_OUT_ENV: &str = "EBS_OBS_OUT";

/// Process-wide programmatic override: 0 = not set, 1 = forced off,
/// 2 = forced on.
static OBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `EBS_OBS` value, resolved once.
static DEFAULT_ENABLED: OnceLock<bool> = OnceLock::new();

/// The global registry instrumentation sites record into.
static GLOBAL: OnceLock<Mutex<Registry>> = OnceLock::new();

fn global() -> &'static Mutex<Registry> {
    GLOBAL.get_or_init(|| Mutex::new(Registry::new()))
}

/// Force observability on/off for this process (tests, harnesses).
/// `None` restores the `EBS_OBS` environment default.
pub fn set_obs_override(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    OBS_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Whether instrumentation is live right now.
#[inline]
pub fn enabled() -> bool {
    match OBS_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *DEFAULT_ENABLED.get_or_init(|| {
            std::env::var(OBS_ENV)
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false)
        }),
    }
}

/// Add `n` to the global counter `name`. No-op when disabled.
///
/// Telemetry is best-effort: a poisoned registry mutex (some thread
/// panicked while recording) drops the sample instead of cascading the
/// panic into the — otherwise total — caller. This holds for every
/// global-registry entry point below.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if enabled() {
        if let Ok(mut g) = global().lock() {
            g.counter_add(name, n);
        }
    }
}

/// Set the global gauge `name`. No-op when disabled.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        if let Ok(mut g) = global().lock() {
            g.gauge_set(name, v);
        }
    }
}

/// Record `v` into the global histogram `name`. No-op when disabled.
#[inline]
pub fn observe(name: &str, lo: f64, hi: f64, bins: usize, v: f64) {
    if enabled() {
        if let Ok(mut g) = global().lock() {
            g.observe(name, lo, hi, bins, v);
        }
    }
}

/// Record a batch into the global histogram `name` under one lock
/// acquisition. No-op when disabled.
#[inline]
pub fn observe_many(name: &str, lo: f64, hi: f64, bins: usize, vs: &[f64]) {
    if enabled() {
        if let Ok(mut g) = global().lock() {
            g.observe_many(name, lo, hi, bins, vs);
        }
    }
}

/// Merge a locally recorded registry into the global one. This is the
/// hot-path pattern: record into a private [`Registry`] (or plain local
/// counters), then merge once. No-op when disabled.
pub fn merge(local: &Registry) {
    if enabled() {
        if let Ok(mut g) = global().lock() {
            g.merge(local);
        }
    }
}

/// Snapshot the global registry (a deep copy; empty if poisoned).
pub fn snapshot() -> Registry {
    global()
        .lock()
        .map(|g| g.clone())
        .unwrap_or_else(|_| Registry::new())
}

/// Clear the global registry (tests, or between independent runs in one
/// process).
pub fn reset() {
    if let Ok(mut g) = global().lock() {
        *g = Registry::new();
    }
}

/// A scoped stage timer: records wall-clock seconds into the global
/// registry's timer `name` when dropped. When observability is off the
/// construction is free — no clock is read.
#[must_use = "the span is measured from construction to drop"]
pub struct StageTimer {
    armed: Option<(String, Instant)>,
}

/// Start a scoped timer for stage `name`.
pub fn timer(name: &str) -> StageTimer {
    StageTimer {
        armed: enabled().then(|| (name.to_string(), Instant::now())),
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let secs = start.elapsed().as_secs_f64();
            // Re-check: if obs was force-disabled mid-span, drop the sample.
            if enabled() {
                if let Ok(mut g) = global().lock() {
                    g.timer_record(&name, secs);
                }
            }
        }
    }
}

/// A manual stopwatch for derived rates (events/sec and friends): armed
/// only while observability is on, so deterministic code paths never read
/// a clock. Unlike [`StageTimer`] it records nothing on its own — callers
/// read [`Stopwatch::elapsed_secs`] and feed whatever gauge they like.
///
/// This is the only sanctioned way for code outside `ebs-obs`/`bench` to
/// touch wall time (rule D2 in `DESIGN.md` §13).
#[derive(Debug)]
pub struct Stopwatch {
    started: Option<Instant>,
}

/// Start a stopwatch (a no-op, clock-free value when observability is off).
pub fn stopwatch() -> Stopwatch {
    Stopwatch {
        started: enabled().then(Instant::now),
    }
}

impl Stopwatch {
    /// Seconds since construction, or `None` when observability was off at
    /// construction time.
    pub fn elapsed_secs(&self) -> Option<f64> {
        self.started.map(|t0| t0.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-wide override / registry.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = GUARD.lock().unwrap();
        set_obs_override(Some(false));
        reset();
        counter_add("x", 5);
        gauge_set("g", 1.0);
        observe("h", 0.0, 1.0, 2, 0.5);
        let _t = timer("t");
        drop(_t);
        assert!(snapshot().is_empty());
        set_obs_override(None);
    }

    #[test]
    fn enabled_sites_reach_the_global_registry() {
        let _g = GUARD.lock().unwrap();
        set_obs_override(Some(true));
        reset();
        counter_add("x", 5);
        counter_add("x", 2);
        observe_many("h", 0.0, 1.0, 2, &[0.1, 0.9]);
        {
            let _t = timer("stage");
        }
        let mut local = Registry::new();
        local.counter_add("x", 3);
        merge(&local);
        let snap = snapshot();
        assert_eq!(snap.counter("x"), 10);
        assert_eq!(snap.hist("h").unwrap().total(), 2);
        assert_eq!(snap.timer("stage").unwrap().count, 1);
        reset();
        set_obs_override(None);
    }

    #[test]
    fn override_beats_environment() {
        let _g = GUARD.lock().unwrap();
        set_obs_override(Some(true));
        assert!(enabled());
        set_obs_override(Some(false));
        assert!(!enabled());
        set_obs_override(None);
    }
}
