//! Structured run reports: the registry snapshot rendered as JSONL and
//! CSV, written next to the other run artifacts (`BENCH_parallel.json`).
//!
//! One metric per line in both formats, in the registry's canonical order,
//! so two runs that recorded the same deterministic metrics produce
//! reports that differ only in wall-clock timer seconds.

use crate::registry::{Registry, Row};

/// Minimal JSON string escaping for metric names (which the workspace
/// keeps to dotted ASCII identifiers anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `registry` as JSONL: one JSON object per metric, canonical
/// order. Histograms carry their full shape and bin counts.
pub fn to_jsonl(registry: &Registry) -> String {
    let mut out = String::new();
    for row in registry.rows() {
        let name = json_escape(row.name());
        match &row {
            Row::Counter { value, .. } => {
                out.push_str(&format!(
                    "{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n"
                ));
            }
            Row::Gauge { value, .. } => {
                out.push_str(&format!(
                    "{{\"kind\":\"gauge\",\"name\":\"{name}\",\"value\":{value}}}\n"
                ));
            }
            Row::Hist { hist, .. } => {
                let counts: Vec<String> = hist.counts().iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(
                    "{{\"kind\":\"histogram\",\"name\":\"{name}\",\"lo\":{},\"hi\":{},\"total\":{},\"counts\":[{}]}}\n",
                    hist.lo(),
                    hist.hi(),
                    hist.total(),
                    counts.join(",")
                ));
            }
            Row::Timer { stat, .. } => {
                out.push_str(&format!(
                    "{{\"kind\":\"timer\",\"name\":\"{name}\",\"seconds\":{:.6},\"count\":{},\"max_seconds\":{:.6}}}\n",
                    stat.seconds, stat.count, stat.max_seconds
                ));
            }
        }
    }
    out
}

/// Render `registry` as CSV with a fixed header. The `value` column holds
/// the count/gauge value, total histogram mass, or accumulated timer
/// seconds; `detail` holds kind-specific extras.
pub fn to_csv(registry: &Registry) -> String {
    let mut out = String::from("kind,name,value,detail\n");
    for row in registry.rows() {
        let name = row.name().replace(',', ";");
        match &row {
            Row::Counter { value, .. } => {
                out.push_str(&format!("counter,{name},{value},\n"));
            }
            Row::Gauge { value, .. } => {
                out.push_str(&format!("gauge,{name},{value},\n"));
            }
            Row::Hist { hist, .. } => {
                let counts: Vec<String> = hist.counts().iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(
                    "histogram,{name},{},lo={};hi={};counts={}\n",
                    hist.total(),
                    hist.lo(),
                    hist.hi(),
                    counts.join("|")
                ));
            }
            Row::Timer { stat, .. } => {
                out.push_str(&format!(
                    "timer,{name},{:.6},count={};max_s={:.6}\n",
                    stat.seconds, stat.count, stat.max_seconds
                ));
            }
        }
    }
    out
}

/// Write `<base>.jsonl` and `<base>.csv` for `registry`. Returns the two
/// paths written.
pub fn write_files(registry: &Registry, base: &str) -> std::io::Result<(String, String)> {
    let jsonl = format!("{base}.jsonl");
    let csv = format!("{base}.csv");
    std::fs::write(&jsonl, to_jsonl(registry))?;
    std::fs::write(&csv, to_csv(registry))?;
    Ok((jsonl, csv))
}

/// If observability is enabled, snapshot the global registry and write the
/// run report to `EBS_OBS_OUT` (default `OBS_report`), logging one line to
/// stderr. Stdout is never touched, preserving byte-identical program
/// output. No-op (returning `None`) when observability is off or nothing
/// was recorded.
pub fn emit_global() -> Option<(String, String)> {
    if !crate::enabled() {
        return None;
    }
    let snap = crate::snapshot();
    if snap.is_empty() {
        return None;
    }
    let base = std::env::var(crate::OBS_OUT_ENV).unwrap_or_else(|_| "OBS_report".to_string());
    match write_files(&snap, &base) {
        Ok((jsonl, csv)) => {
            eprintln!(
                "obs: wrote {jsonl} and {csv} ({} metrics)",
                snap.rows().len()
            );
            Some((jsonl, csv))
        }
        Err(e) => {
            eprintln!("obs: failed to write run report {base}.jsonl/.csv: {e}");
            None
        }
    }
}

/// If observability is enabled, write an already-rendered JSONL stream to
/// `<EBS_OBS_OUT (default OBS_report)><suffix>.jsonl`, logging one line to
/// stderr. Used for rolling streams (one record per serve epoch) that do
/// not fit the registry's metric-per-line snapshot model. Stdout is never
/// touched; a no-op (returning `None`) when observability is off or the
/// stream is empty.
pub fn emit_stream(suffix: &str, jsonl: &str) -> Option<String> {
    if !crate::enabled() || jsonl.is_empty() {
        return None;
    }
    let base = std::env::var(crate::OBS_OUT_ENV).unwrap_or_else(|_| "OBS_report".to_string());
    let path = format!("{base}{suffix}.jsonl");
    match std::fs::write(&path, jsonl) {
        Ok(()) => {
            eprintln!("obs: wrote {path} ({} records)", jsonl.lines().count());
            Some(path)
        }
        Err(e) => {
            eprintln!("obs: failed to write {path}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.counter_add("stack.sim.ios", 10);
        r.gauge_set("driver.events_per_sec", 1234.5);
        r.observe_many("throttle.rar", 0.0, 1.0, 4, &[0.1, 0.6, 0.6]);
        r.timer_record("driver.section.table2", 0.25);
        r
    }

    #[test]
    fn jsonl_has_one_line_per_metric_in_canonical_order() {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"counter\"") && lines[0].contains("stack.sim.ios"));
        assert!(lines[1].contains("\"gauge\""));
        assert!(lines[2].contains("\"histogram\"") && lines[2].contains("\"counts\":[1,0,2,0]"));
        assert!(lines[3].contains("\"timer\"") && lines[3].contains("\"count\":1"));
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let text = to_csv(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "kind,name,value,detail");
        assert!(lines[3].starts_with("histogram,throttle.rar,3,"));
        assert!(lines[3].contains("counts=1|0|2|0"));
    }

    #[test]
    fn exports_are_deterministic_across_identical_registries() {
        assert_eq!(to_jsonl(&sample()), to_jsonl(&sample()));
        assert_eq!(to_csv(&sample()), to_csv(&sample()));
    }

    #[test]
    fn json_names_are_escaped() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
