//! P3 — gradient-boosted regression trees (the paper's XGBoost stand-in,
//! Appendix C).
//!
//! Squared-loss gradient boosting over depth-limited regression trees, with
//! lagged traffic values as features. Matches the paper's protocol: fed a
//! window of historical traffic (120 s = 4 lags of 30 s periods), trained
//! once per 200-period epoch, one-step rolling forecast.

use crate::eval::Predictor;

/// A node of a regression tree, stored in a flat arena.
#[derive(Clone, Debug)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A depth-limited least-squares regression tree.
#[derive(Clone, Debug)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit a tree of depth ≤ `max_depth` to rows `x` (sample-major) with
    /// targets `y`. Splits minimise the summed squared error; leaves carry
    /// the mean target.
    pub fn fit(x: &[Vec<f64>], y: &[f64], max_depth: usize, min_leaf: usize) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let mut nodes = Vec::new();
        let idx: Vec<usize> = (0..x.len()).collect();
        Self::build(&mut nodes, x, y, &idx, max_depth, min_leaf);
        Self { nodes }
    }

    fn build(
        nodes: &mut Vec<Node>,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        depth: usize,
        min_leaf: usize,
    ) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        if depth == 0 || idx.len() < 2 * min_leaf {
            nodes.push(Node::Leaf(mean));
            return nodes.len() - 1;
        }
        let n_features = x[0].len();
        let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
        let base_sse: f64 = idx.iter().map(|&i| (y[i] - mean).powi(2)).sum();
        #[allow(clippy::needless_range_loop)] // x is indexed via `idx`, not iterated
        for feature_idx in 0..n_features {
            let mut vals: Vec<(f64, f64)> =
                idx.iter().map(|&i| (x[i][feature_idx], y[i])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaNs"));
            // Prefix sums for O(n) split scan.
            let total_sum: f64 = vals.iter().map(|v| v.1).sum();
            let total_sq: f64 = vals.iter().map(|v| v.1 * v.1).sum();
            let mut lsum = 0.0;
            let mut lsq = 0.0;
            for k in 0..vals.len() - 1 {
                lsum += vals[k].1;
                lsq += vals[k].1 * vals[k].1;
                if vals[k].0 == vals[k + 1].0 {
                    continue; // cannot split between equal values
                }
                let ln = (k + 1) as f64;
                let rn = (vals.len() - k - 1) as f64;
                if (ln as usize) < min_leaf || (rn as usize) < min_leaf {
                    continue;
                }
                let lsse = lsq - lsum * lsum / ln;
                let rsum = total_sum - lsum;
                let rsse = (total_sq - lsq) - rsum * rsum / rn;
                let sse = lsse + rsse;
                if best
                    .as_ref()
                    .map(|(b, _, _)| sse < *b)
                    .unwrap_or(sse < base_sse)
                {
                    best = Some((sse, feature_idx, (vals[k].0 + vals[k + 1].0) / 2.0));
                }
            }
        }
        match best {
            None => {
                nodes.push(Node::Leaf(mean));
                nodes.len() - 1
            }
            Some((_, feature, threshold)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[i][feature] <= threshold);
                let left = Self::build(nodes, x, y, &li, depth - 1, min_leaf);
                let right = Self::build(nodes, x, y, &ri, depth - 1, min_leaf);
                nodes.push(Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                });
                nodes.len() - 1
            }
        }
    }

    /// Predict one sample. The root is the last node pushed.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut i = self.nodes.len() - 1;
        loop {
            match &self.nodes[i] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Gradient-boosted tree ensemble on lagged traffic features.
#[derive(Clone, Debug)]
pub struct Gbdt {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Tree depth.
    pub max_depth: usize,
    /// Shrinkage.
    pub learning_rate: f64,
    /// Number of lagged periods used as features (paper: 120 s of history
    /// = 4 thirty-second periods).
    pub lags: usize,
    base: f64,
    trees: Vec<RegressionTree>,
}

impl Default for Gbdt {
    fn default() -> Self {
        Self::new(50, 3, 0.1, 4)
    }
}

impl Gbdt {
    /// A GBDT with the given hyper-parameters.
    pub fn new(n_trees: usize, max_depth: usize, learning_rate: f64, lags: usize) -> Self {
        assert!(n_trees >= 1 && lags >= 1 && learning_rate > 0.0);
        Self {
            n_trees,
            max_depth,
            learning_rate,
            lags,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    fn lag_features(history: &[f64], lags: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for t in lags..history.len() {
            x.push((1..=lags).map(|k| history[t - k]).collect());
            y.push(history[t]);
        }
        (x, y)
    }

    fn raw_predict(&self, features: &[f64]) -> f64 {
        self.base
            + self
                .trees
                .iter()
                .map(|t| self.learning_rate * t.predict(features))
                .sum::<f64>()
    }
}

impl Predictor for Gbdt {
    fn name(&self) -> String {
        format!("gbdt(trees={}, depth={})", self.n_trees, self.max_depth)
    }

    fn fit(&mut self, history: &[f64]) {
        self.trees.clear();
        let (x, y) = Self::lag_features(history, self.lags);
        if x.is_empty() {
            self.base = history.last().copied().unwrap_or(0.0);
            return;
        }
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        let mut residuals: Vec<f64> = y.iter().map(|&v| v - self.base).collect();
        for _ in 0..self.n_trees {
            let tree = RegressionTree::fit(&x, &residuals, self.max_depth, 3);
            for (i, r) in residuals.iter_mut().enumerate() {
                *r -= self.learning_rate * tree.predict(&x[i]);
            }
            self.trees.push(tree);
        }
    }

    fn predict_next(&self, recent: &[f64]) -> f64 {
        if recent.len() < self.lags {
            return recent.last().copied().unwrap_or(0.0);
        }
        let features: Vec<f64> = (1..=self.lags).map(|k| recent[recent.len() - k]).collect();
        self.raw_predict(&features).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{forecast_mse, rolling_forecast, Cadence};

    #[test]
    fn tree_fits_a_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let t = RegressionTree::fit(&x, &y, 2, 1);
        assert!((t.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[15.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tree_respects_min_leaf() {
        let x: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let y = vec![0.0, 0.0, 10.0, 10.0];
        // min_leaf = 3 forbids any split of 4 samples (needs ≥ 6).
        let t = RegressionTree::fit(&x, &y, 3, 3);
        assert_eq!(t.node_count(), 1);
        assert!((t.predict(&[0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gbdt_learns_periodic_pattern() {
        // Period-4 sawtooth: perfectly predictable from 4 lags.
        let series: Vec<f64> = (0..200).map(|i| (i % 4) as f64 * 10.0).collect();
        let mut m = Gbdt::new(80, 3, 0.2, 4);
        m.fit(&series);
        let pred = m.predict_next(&series);
        let truth = (200 % 4) as f64 * 10.0;
        assert!((pred - truth).abs() < 2.0, "pred {pred} truth {truth}");
    }

    #[test]
    fn gbdt_beats_mean_baseline_on_ar_series() {
        let mut series = vec![20.0, 25.0];
        for i in 2..300 {
            let noise = (((i * 40503) % 89) as f64 - 44.0) * 0.1;
            series.push(0.7 * series[i - 1] + 0.2 * series[i - 2] + 3.0 + noise);
        }
        let mut m = Gbdt::default();
        let pairs = rolling_forecast(&mut m, &series, 50, Cadence::Epoch(50));
        let gbdt_mse = forecast_mse(&pairs).unwrap();
        // Mean-only baseline.
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let base_mse =
            pairs.iter().map(|(_, t)| (t - mean).powi(2)).sum::<f64>() / pairs.len() as f64;
        assert!(gbdt_mse < base_mse, "gbdt {gbdt_mse} vs mean {base_mse}");
    }

    #[test]
    fn short_history_falls_back() {
        let m = Gbdt::default();
        assert_eq!(m.predict_next(&[7.0]), 7.0);
        assert_eq!(m.predict_next(&[]), 0.0);
    }

    #[test]
    fn predictions_are_nonnegative() {
        let series = vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.2, 0.1];
        let mut m = Gbdt::new(10, 2, 0.5, 3);
        m.fit(&series);
        assert!(m.predict_next(&series) >= 0.0);
    }

    #[test]
    fn fit_is_deterministic() {
        let series: Vec<f64> = (0..100).map(|i| ((i * 7) % 13) as f64).collect();
        let mut a = Gbdt::default();
        let mut b = Gbdt::default();
        a.fit(&series);
        b.fit(&series);
        assert_eq!(a.predict_next(&series), b.predict_next(&series));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::eval::Predictor;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn predictions_are_finite_and_nonnegative(
            series in prop::collection::vec(0.0f64..1e6, 0..60),
        ) {
            let mut m = Gbdt::new(10, 2, 0.3, 4);
            m.fit(&series);
            let p = m.predict_next(&series);
            prop_assert!(p.is_finite() && p >= 0.0);
        }

        #[test]
        fn tree_predictions_interpolate_targets(
            ys in prop::collection::vec(-100.0f64..100.0, 2..40),
        ) {
            let x: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let tree = RegressionTree::fit(&x, &ys, 4, 1);
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for xi in &x {
                let p = tree.predict(xi);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "leaf mean out of hull");
            }
        }
    }
}
