//! Rolling-forecast evaluation with configurable retraining cadence.
//!
//! Appendix C's protocol: statistical models (linear fit, ARIMA) refresh
//! every period; learned models (XGBoost, Transformer) retrain once per
//! *epoch* of 200 periods and predict from stale parameters in between —
//! the staleness that Figure 4(c) shows hurting the per-epoch Transformer
//! (P4) relative to its per-period variant (P5).

/// A one-step-ahead traffic predictor.
pub trait Predictor {
    /// Human-readable name for reports.
    fn name(&self) -> String;
    /// (Re)train persistent parameters on the full history so far.
    fn fit(&mut self, history: &[f64]);
    /// Predict the next period's value from the most recent observations.
    /// Must not mutate parameters (staleness is controlled by the harness
    /// calling [`Predictor::fit`]).
    fn predict_next(&self, recent: &[f64]) -> f64;
}

/// Retraining cadence for [`rolling_forecast`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cadence {
    /// Refit on every period (statistical models; Transformer P5).
    PerPeriod,
    /// Refit every `n` periods (the paper's 200-period epoch).
    Epoch(usize),
}

/// The paper's epoch length: 200 periods.
pub const EPOCH_PERIODS: usize = 200;

/// Run a rolling one-step forecast over `series`, retraining per `cadence`,
/// starting predictions after `warmup` periods. Returns `(pred, truth)`
/// pairs for each forecast period.
pub fn rolling_forecast(
    model: &mut dyn Predictor,
    series: &[f64],
    warmup: usize,
    cadence: Cadence,
) -> Vec<(f64, f64)> {
    rolling_forecast_capped(model, series, warmup, cadence, usize::MAX)
}

/// [`rolling_forecast`] with the training history capped to the most
/// recent `max_history` periods — what a production deployment with a
/// bounded training buffer would do, and what keeps per-period retraining
/// of the heavier models affordable.
pub fn rolling_forecast_capped(
    model: &mut dyn Predictor,
    series: &[f64],
    warmup: usize,
    cadence: Cadence,
    max_history: usize,
) -> Vec<(f64, f64)> {
    assert!(
        warmup >= 1,
        "need at least one observed period before forecasting"
    );
    assert!(max_history >= 2, "history cap too small to train anything");
    let mut out = Vec::new();
    let mut last_fit: Option<usize> = None;
    for t in warmup..series.len() {
        let due = match (cadence, last_fit) {
            (_, None) => true,
            (Cadence::PerPeriod, _) => true,
            (Cadence::Epoch(n), Some(prev)) => t - prev >= n,
        };
        let start = t.saturating_sub(max_history);
        if due {
            model.fit(&series[start..t]);
            last_fit = Some(t);
        }
        let pred = model.predict_next(&series[start..t]);
        out.push((pred, series[t]));
    }
    out
}

/// Mean squared error of `(pred, truth)` pairs; `None` when empty.
pub fn forecast_mse(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    let s: f64 = pairs.iter().map(|(p, t)| (p - t).powi(2)).sum();
    Some(s / pairs.len() as f64)
}

/// MSE normalized by the variance of the truth — comparable across series
/// of different magnitude (used to average across BlockServers).
pub fn forecast_nmse(pairs: &[(f64, f64)]) -> Option<f64> {
    let e = forecast_mse(pairs)?;
    let n = pairs.len() as f64;
    let mean = pairs.iter().map(|(_, t)| t).sum::<f64>() / n;
    let var = pairs.iter().map(|(_, t)| (t - mean).powi(2)).sum::<f64>() / n;
    if var > 0.0 {
        Some(e / var)
    } else {
        None
    }
}

/// A trivial predictor: tomorrow equals today (useful baseline and test
/// double).
#[derive(Clone, Debug, Default)]
pub struct Persistence;

impl Predictor for Persistence {
    fn name(&self) -> String {
        "persistence".into()
    }
    fn fit(&mut self, _history: &[f64]) {}
    fn predict_next(&self, recent: &[f64]) -> f64 {
        recent.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts fit calls; predicts a constant.
    struct CountingModel {
        fits: std::cell::Cell<usize>,
    }

    impl Predictor for CountingModel {
        fn name(&self) -> String {
            "counting".into()
        }
        fn fit(&mut self, _history: &[f64]) {
            self.fits.set(self.fits.get() + 1);
        }
        fn predict_next(&self, _recent: &[f64]) -> f64 {
            1.0
        }
    }

    #[test]
    fn per_period_cadence_fits_every_step() {
        let mut m = CountingModel {
            fits: std::cell::Cell::new(0),
        };
        let series: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let pairs = rolling_forecast(&mut m, &series, 2, Cadence::PerPeriod);
        assert_eq!(pairs.len(), 8);
        assert_eq!(m.fits.get(), 8);
    }

    #[test]
    fn epoch_cadence_fits_sparsely() {
        let mut m = CountingModel {
            fits: std::cell::Cell::new(0),
        };
        let series: Vec<f64> = (0..22).map(|i| i as f64).collect();
        let pairs = rolling_forecast(&mut m, &series, 2, Cadence::Epoch(10));
        assert_eq!(pairs.len(), 20);
        assert_eq!(m.fits.get(), 2); // t=2 and t=12
    }

    #[test]
    fn persistence_on_constant_series_is_perfect() {
        let mut m = Persistence;
        let series = vec![4.0; 12];
        let pairs = rolling_forecast(&mut m, &series, 1, Cadence::PerPeriod);
        assert_eq!(forecast_mse(&pairs), Some(0.0));
    }

    #[test]
    fn nmse_of_persistence_on_random_walkish_series() {
        let mut m = Persistence;
        let series: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64).collect();
        let pairs = rolling_forecast(&mut m, &series, 5, Cadence::PerPeriod);
        let nmse = forecast_nmse(&pairs).unwrap();
        assert!(nmse > 0.0);
    }

    #[test]
    fn empty_pairs_have_no_mse() {
        assert_eq!(forecast_mse(&[]), None);
        assert_eq!(forecast_nmse(&[]), None);
    }
}
