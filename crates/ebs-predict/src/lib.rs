//! # ebs-predict — traffic predictors for the inter-BS balancer study
//!
//! §6.1.3 of the paper compares five per-BlockServer traffic predictors
//! (Appendix C); this crate implements the whole lineup from scratch:
//!
//! | Paper | Here | Update cadence |
//! |-------|------|----------------|
//! | P1 linear fit (sklearn) | [`linear::LinearFit`] — OLS over 4 periods | per period |
//! | P2 ARIMA (pmdarima)     | [`arima::Arima`] — auto (p, d) grid, LS-fitted AR | per period |
//! | P3 XGBoost              | [`gbdt::Gbdt`] — gradient-boosted trees on lags | per 200-period epoch |
//! | P4 Transformer          | [`attention::AttentionRegressor`] | per epoch |
//! | P5 Transformer (fast)   | same model | per period |
//!
//! [`eval::rolling_forecast`] drives the paper's protocol: one-step-ahead
//! forecasts with the model refreshed per its cadence, scored by MSE.
//!
//! ```
//! use ebs_predict::{Arima, Predictor};
//! use ebs_predict::eval::{rolling_forecast, forecast_mse, Cadence};
//!
//! let series: Vec<f64> = (0..60).map(|i| 10.0 + (i % 7) as f64).collect();
//! let mut model = Arima::default();
//! let pairs = rolling_forecast(&mut model, &series, 20, Cadence::PerPeriod);
//! assert!(forecast_mse(&pairs).unwrap().is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arima;
pub mod attention;
pub mod eval;
pub mod gbdt;
pub mod linear;
pub mod matrix;

pub use arima::Arima;
pub use attention::AttentionRegressor;
pub use eval::{Cadence, Predictor};
pub use gbdt::Gbdt;
pub use linear::LinearFit;
