//! P2 — ARIMA (Appendix C).
//!
//! An auto-ARIMA in the spirit of `pmdarima`: a small grid search over
//! AR order `p ∈ 1..=max_p` and differencing `d ∈ 0..=max_d`, with AR
//! coefficients fitted by least squares on the lagged design matrix and
//! model selection by AIC. The moving-average order is fixed at 0 — with
//! per-period refitting, AR(p) on differenced data captures what matters
//! for one-step traffic forecasts, and the paper's result only needs
//! ARIMA's *relative* accuracy (best of the classic methods, still far
//! from ground truth).

use crate::eval::Predictor;
use crate::matrix::{ridge, Mat};

/// Fitted ARIMA(p, d, 0) parameters.
#[derive(Clone, Debug, PartialEq)]
struct FittedArima {
    p: usize,
    d: usize,
    intercept: f64,
    coefs: Vec<f64>,
}

/// Auto-ARIMA predictor.
#[derive(Clone, Debug)]
pub struct Arima {
    /// Largest AR order tried.
    pub max_p: usize,
    /// Largest differencing order tried.
    pub max_d: usize,
    fitted: Option<FittedArima>,
}

impl Default for Arima {
    fn default() -> Self {
        Self::new(4, 1)
    }
}

impl Arima {
    /// An auto-ARIMA searching `p ∈ 1..=max_p`, `d ∈ 0..=max_d`.
    pub fn new(max_p: usize, max_d: usize) -> Self {
        assert!(max_p >= 1);
        Self {
            max_p,
            max_d,
            fitted: None,
        }
    }

    /// The selected `(p, d)` orders, if fitted.
    pub fn orders(&self) -> Option<(usize, usize)> {
        self.fitted.as_ref().map(|f| (f.p, f.d))
    }

    fn difference(series: &[f64], d: usize) -> Vec<f64> {
        let mut v = series.to_vec();
        for _ in 0..d {
            v = v.windows(2).map(|w| w[1] - w[0]).collect();
        }
        v
    }

    /// Fit AR(p) with intercept on `z` by least squares. Returns
    /// `(intercept, coefs, sse, n_obs)`.
    fn fit_ar(z: &[f64], p: usize) -> Option<(f64, Vec<f64>, f64, usize)> {
        if z.len() < p + 2 {
            return None;
        }
        let n = z.len() - p;
        let mut data = Vec::with_capacity(n * (p + 1));
        let mut y = Vec::with_capacity(n);
        for t in p..z.len() {
            data.push(1.0);
            for k in 1..=p {
                data.push(z[t - k]);
            }
            y.push(z[t]);
        }
        let x = Mat::from_vec(n, p + 1, data);
        let beta = ridge(&x, &y, 1e-8)?;
        let mut sse = 0.0;
        for i in 0..n {
            let pred: f64 = beta[0] + (1..=p).map(|k| beta[k] * x[(i, k)]).sum::<f64>();
            sse += (y[i] - pred).powi(2);
        }
        Some((beta[0], beta[1..].to_vec(), sse, n))
    }

    fn one_step(fitted: &FittedArima, recent: &[f64]) -> f64 {
        let z = Self::difference(recent, fitted.d);
        if z.len() < fitted.p {
            return recent.last().copied().unwrap_or(0.0);
        }
        let mut pred = fitted.intercept;
        for (k, &c) in fitted.coefs.iter().enumerate() {
            pred += c * z[z.len() - 1 - k];
        }
        // Undifference: add back the last d levels.
        match fitted.d {
            0 => pred.max(0.0),
            _ => {
                // For d = 1: next = last + predicted diff. Higher d handled
                // by repeated partial sums of the tail.
                let mut levels = recent.to_vec();
                for _ in 0..fitted.d - 1 {
                    levels = levels.windows(2).map(|w| w[1] - w[0]).collect();
                }
                (levels.last().copied().unwrap_or(0.0) + pred).max(0.0)
            }
        }
    }
}

impl Predictor for Arima {
    fn name(&self) -> String {
        format!("arima(max_p={}, max_d={})", self.max_p, self.max_d)
    }

    fn fit(&mut self, history: &[f64]) {
        let mut best: Option<(f64, FittedArima)> = None;
        for d in 0..=self.max_d {
            let z = Self::difference(history, d);
            for p in 1..=self.max_p {
                if let Some((intercept, coefs, sse, n)) = Self::fit_ar(&z, p) {
                    if n < 3 {
                        continue;
                    }
                    // AIC with k = p + 1 parameters (+1 for differencing).
                    let k = (p + 1 + d) as f64;
                    let aic = n as f64 * ((sse / n as f64).max(1e-300)).ln() + 2.0 * k;
                    let candidate = FittedArima {
                        p,
                        d,
                        intercept,
                        coefs,
                    };
                    if best.as_ref().map(|(a, _)| aic < *a).unwrap_or(true) {
                        best = Some((aic, candidate));
                    }
                }
            }
        }
        self.fitted = best.map(|(_, f)| f);
    }

    fn predict_next(&self, recent: &[f64]) -> f64 {
        match &self.fitted {
            Some(f) => Self::one_step(f, recent),
            None => recent.last().copied().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{forecast_mse, rolling_forecast, Cadence};

    #[test]
    fn recovers_ar1_process() {
        // x_t = 0.8 x_{t−1} + c, deterministic: converges geometrically.
        let mut series = vec![100.0];
        for _ in 0..60 {
            let last = *series.last().unwrap();
            series.push(0.8 * last + 5.0);
        }
        let mut m = Arima::new(3, 1);
        m.fit(&series);
        let pred = m.predict_next(&series);
        let truth = 0.8 * series.last().unwrap() + 5.0;
        assert!(
            (pred - truth).abs() / truth < 0.05,
            "pred {pred} truth {truth}"
        );
    }

    #[test]
    fn differencing_handles_trends() {
        // Pure linear trend: d=1 makes it stationary and exact.
        let series: Vec<f64> = (0..50).map(|i| 10.0 + 3.0 * i as f64).collect();
        let mut m = Arima::default();
        m.fit(&series);
        let pred = m.predict_next(&series);
        assert!((pred - 160.0).abs() < 1.0, "pred {pred}");
    }

    #[test]
    fn beats_persistence_on_ar_series() {
        // Noisy AR(2) with deterministic pseudo-noise.
        let mut series = vec![50.0, 52.0];
        for i in 2..200 {
            let noise = (((i * 2654435761u64 as usize) % 97) as f64 - 48.0) * 0.3;
            let next = 0.6 * series[i - 1] + 0.3 * series[i - 2] + 5.0 + noise;
            series.push(next);
        }
        let mut arima = Arima::default();
        let a = rolling_forecast(&mut arima, &series, 30, Cadence::PerPeriod);
        let mut pers = crate::eval::Persistence;
        let p = rolling_forecast(&mut pers, &series, 30, Cadence::PerPeriod);
        let ae = forecast_mse(&a).unwrap();
        let pe = forecast_mse(&p).unwrap();
        assert!(ae < pe, "arima {ae} vs persistence {pe}");
    }

    #[test]
    fn difference_roundtrip() {
        let v = [1.0, 4.0, 9.0, 16.0];
        assert_eq!(Arima::difference(&v, 1), vec![3.0, 5.0, 7.0]);
        assert_eq!(Arima::difference(&v, 2), vec![2.0, 2.0]);
        assert_eq!(Arima::difference(&v, 0), v.to_vec());
    }

    #[test]
    fn unfitted_model_falls_back_to_persistence() {
        let m = Arima::default();
        assert_eq!(m.predict_next(&[3.0, 7.0]), 7.0);
        assert_eq!(m.predict_next(&[]), 0.0);
    }

    #[test]
    fn orders_are_reported_after_fit() {
        let series: Vec<f64> = (0..40).map(|i| (i % 5) as f64).collect();
        let mut m = Arima::new(4, 1);
        assert_eq!(m.orders(), None);
        m.fit(&series);
        let (p, d) = m.orders().unwrap();
        assert!((1..=4).contains(&p));
        assert!(d <= 1);
    }

    #[test]
    fn predictions_are_nonnegative() {
        // Crashing series would extrapolate negative without the clamp.
        let series = vec![100.0, 50.0, 10.0, 1.0];
        let mut m = Arima::default();
        m.fit(&series);
        assert!(m.predict_next(&series) >= 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::eval::Predictor;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn fit_and_predict_never_panic_and_stay_finite(
            series in prop::collection::vec(0.0f64..1e9, 0..80),
        ) {
            let mut m = Arima::default();
            m.fit(&series);
            let p = m.predict_next(&series);
            prop_assert!(p.is_finite());
            prop_assert!(p >= 0.0);
        }
    }
}
