//! P4/P5 — the attention regressor (the paper's Transformer stand-in,
//! Appendix C).
//!
//! A single-head self-attention encoder over a window of lagged traffic
//! values with a trainable linear readout. The attention projections are
//! fixed random matrices (deterministically seeded) and only the readout
//! is (re)fitted — by ridge regression in closed form — which keeps
//! training fast enough to compare the paper's two update cadences
//! honestly: per-epoch (P4, stale between epochs) versus per-period (P5).
//! The qualitative property under study — a sequence model whose accuracy
//! hinges on how often it is refreshed — is preserved; see DESIGN.md §2
//! for the substitution note.

use crate::eval::Predictor;
use crate::matrix::{ridge, Mat};
use ebs_core::hash::FxHashMap;

/// Deterministic pseudo-random matrix entries (SplitMix-style hash).
fn hashed_gauss(seed: u64, i: usize, j: usize) -> f64 {
    let mut z = seed
        ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Two uniform halves → approximate Gaussian via sum of 4 uniforms.
    let u1 = (z & 0xFFFF_FFFF) as f64 / 4294967296.0;
    let u2 = (z >> 32) as f64 / 4294967296.0;
    (u1 + u2 - 1.0) * 1.73 * 2.0_f64.sqrt()
}

/// Sinusoidal positional-encoding term for token `i`, dimension `j`.
fn pos_term(i: usize, j: usize, dim: usize) -> f64 {
    if j.is_multiple_of(2) {
        (i as f64 / 10f64.powf(j as f64 / dim as f64)).sin()
    } else {
        (i as f64 / 10f64.powf((j - 1) as f64 / dim as f64)).cos()
    }
}

/// Single-head self-attention feature encoder + ridge readout.
#[derive(Clone, Debug)]
pub struct AttentionRegressor {
    /// Input window length (lags).
    pub window: usize,
    /// Embedding / head dimension.
    pub dim: usize,
    /// Ridge regularisation of the readout.
    pub lambda: f64,
    wq: Mat,
    wk: Mat,
    wv: Mat,
    readout: Option<Vec<f64>>,
    scale: f64,
    /// Hoisted per-dimension embedding coefficients
    /// (`hashed_gauss(seed ^ 0x60, 0, j)`, value-independent).
    emb_col: Vec<f64>,
    /// Hoisted positional terms `0.3 * pos(i, j)` for the first `window`
    /// rows (row-major `window × dim`).
    pos03: Vec<f64>,
    /// Feature memo for [`Predictor::fit`]: rolling refits re-present all
    /// but one window of the previous call, and the feature map is a pure
    /// function of the raw window values and the normalisation scale, so
    /// cached vectors are bit-identical to recomputation. Keyed by the
    /// window's `f64` bit patterns plus the scale's.
    feat_cache: FxHashMap<Box<[u64]>, Vec<f64>>,
}

impl Default for AttentionRegressor {
    fn default() -> Self {
        Self::new(8, 12, 1e-3, 0x00A7_7E17)
    }
}

impl AttentionRegressor {
    /// Build an attention regressor over `window` lags with head dimension
    /// `dim`; the projections are derived from `seed`.
    pub fn new(window: usize, dim: usize, lambda: f64, seed: u64) -> Self {
        assert!(window >= 2 && dim >= 2);
        let proj = |tag: u64| {
            let mut m = Mat::zeros(dim, dim);
            for i in 0..dim {
                for j in 0..dim {
                    m[(i, j)] = hashed_gauss(seed ^ tag, i, j) / (dim as f64).sqrt();
                }
            }
            m
        };
        let emb_col: Vec<f64> = (0..dim).map(|j| hashed_gauss(seed ^ 0x60, 0, j)).collect();
        let pos03: Vec<f64> = (0..window)
            .flat_map(|i| (0..dim).map(move |j| 0.3 * pos_term(i, j, dim)))
            .collect();
        Self {
            window,
            dim,
            lambda,
            wq: proj(0x51),
            wk: proj(0x52),
            wv: proj(0x53),
            readout: None,
            scale: 1.0,
            emb_col,
            pos03,
            feat_cache: FxHashMap::default(),
        }
    }

    /// Embed a (normalized) window into token matrix `L × dim`:
    /// value-scaled random embedding plus sinusoidal positional encoding.
    /// The value-independent factors are hoisted into `emb_col`/`pos03` at
    /// construction (identical arithmetic, computed once).
    fn embed(&self, win: &[f64]) -> Mat {
        let mut e = Mat::zeros(win.len(), self.dim);
        for (i, &v) in win.iter().enumerate() {
            for j in 0..self.dim {
                let emb = self.emb_col[j] * v;
                let pos03 = if i < self.window {
                    self.pos03[i * self.dim + j]
                } else {
                    0.3 * pos_term(i, j, self.dim)
                };
                e[(i, j)] = emb + pos03;
            }
        }
        e
    }

    /// Full attention feature map: window → pooled context vector + bias.
    fn features(&self, win: &[f64]) -> Vec<f64> {
        let e = self.embed(win);
        let q = e.matmul(&self.wq);
        let k = e.matmul(&self.wk);
        let v = e.matmul(&self.wv);
        let l = win.len();
        let scale = 1.0 / (self.dim as f64).sqrt();
        // A = softmax(QKᵀ/√d) row-wise; C = A·V; pool = mean over rows.
        let mut pooled = vec![0.0; self.dim];
        for i in 0..l {
            let mut logits: Vec<f64> = (0..l)
                .map(|j| (0..self.dim).map(|m| q[(i, m)] * k[(j, m)]).sum::<f64>() * scale)
                .collect();
            let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for x in &mut logits {
                *x = (*x - max).exp();
            }
            let z: f64 = logits.iter().sum();
            for (j, &w) in logits.iter().enumerate() {
                let a = w / z;
                for m in 0..self.dim {
                    pooled[m] += a * v[(j, m)] / l as f64;
                }
            }
        }
        pooled.push(1.0); // bias feature
        pooled
    }
}

/// Bound on memoised feature vectors before the cache resets; rolling
/// refits present a bounded set of distinct windows, so this is a safety
/// valve for adversarial callers, not a working-set limit.
const FEAT_CACHE_MAX: usize = 1 << 16;

impl Predictor for AttentionRegressor {
    fn name(&self) -> String {
        format!("attention(window={}, dim={})", self.window, self.dim)
    }

    fn fit(&mut self, history: &[f64]) {
        if history.len() <= self.window {
            self.readout = None;
            return;
        }
        // Normalize to keep the random features in a sane numeric range.
        self.scale = history.iter().copied().fold(0.0, f64::max).max(1e-12);
        let n_windows = history.len() - self.window;
        let feat_dim = self.dim + 1;
        let mut data = Vec::with_capacity(n_windows * feat_dim);
        let mut key: Vec<u64> = Vec::with_capacity(self.window + 1);
        for t in self.window..history.len() {
            let w = &history[t - self.window..t];
            key.clear();
            key.extend(w.iter().map(|v| v.to_bits()));
            key.push(self.scale.to_bits());
            if let Some(f) = self.feat_cache.get(key.as_slice()) {
                data.extend_from_slice(f);
                continue;
            }
            let norm: Vec<f64> = w.iter().map(|v| v / self.scale).collect();
            let f = self.features(&norm);
            data.extend_from_slice(&f);
            if self.feat_cache.len() >= FEAT_CACHE_MAX {
                self.feat_cache.clear();
            }
            self.feat_cache.insert(key.clone().into_boxed_slice(), f);
        }
        let x = Mat::from_vec(n_windows, feat_dim, data);
        let y_norm: Vec<f64> = history[self.window..]
            .iter()
            .map(|v| v / self.scale)
            .collect();
        self.readout = ridge(&x, &y_norm, self.lambda);
    }

    fn predict_next(&self, recent: &[f64]) -> f64 {
        let Some(beta) = &self.readout else {
            return recent.last().copied().unwrap_or(0.0);
        };
        if recent.len() < self.window {
            return recent.last().copied().unwrap_or(0.0);
        }
        let win: Vec<f64> = recent[recent.len() - self.window..]
            .iter()
            .map(|v| v / self.scale)
            .collect();
        let f = self.features(&win);
        let pred: f64 = f.iter().zip(beta).map(|(a, b)| a * b).sum();
        (pred * self.scale).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{forecast_mse, rolling_forecast, Cadence};

    fn noisy_ar_series(n: usize) -> Vec<f64> {
        let mut s = vec![30.0, 35.0];
        for i in 2..n {
            let noise = (((i * 2246822519usize) % 101) as f64 - 50.0) * 0.05;
            s.push(0.65 * s[i - 1] + 0.25 * s[i - 2] + 4.0 + noise);
        }
        s
    }

    #[test]
    fn learns_constant_series_exactly() {
        let series = vec![10.0; 50];
        let mut m = AttentionRegressor::default();
        m.fit(&series);
        let pred = m.predict_next(&series);
        assert!((pred - 10.0).abs() < 0.5, "pred {pred}");
    }

    #[test]
    fn beats_mean_baseline_on_structured_series() {
        let series = noisy_ar_series(300);
        let mut m = AttentionRegressor::default();
        let pairs = rolling_forecast(&mut m, &series, 60, Cadence::Epoch(60));
        let att = forecast_mse(&pairs).unwrap();
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let base = pairs.iter().map(|(_, t)| (t - mean).powi(2)).sum::<f64>() / pairs.len() as f64;
        assert!(att < base, "attention {att} vs mean-baseline {base}");
    }

    #[test]
    fn per_period_refresh_beats_per_epoch_on_shifting_series() {
        // A series whose level shifts mid-stream: stale parameters hurt.
        let mut series = noisy_ar_series(150);
        let mut tail = noisy_ar_series(150);
        for v in &mut tail {
            *v *= 3.0; // regime change
        }
        series.extend(tail);
        let mut a = AttentionRegressor::default();
        let per_epoch =
            forecast_mse(&rolling_forecast(&mut a, &series, 40, Cadence::Epoch(120))).unwrap();
        let mut b = AttentionRegressor::default();
        let per_period =
            forecast_mse(&rolling_forecast(&mut b, &series, 40, Cadence::PerPeriod)).unwrap();
        assert!(
            per_period < per_epoch,
            "per-period {per_period} should beat per-epoch {per_epoch}"
        );
    }

    #[test]
    fn unfitted_or_short_falls_back_to_persistence() {
        let m = AttentionRegressor::default();
        assert_eq!(m.predict_next(&[4.0]), 4.0);
        let mut m2 = AttentionRegressor::default();
        m2.fit(&[1.0, 2.0]); // too short to build a window
        assert_eq!(m2.predict_next(&[1.0, 2.0]), 2.0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let series = noisy_ar_series(120);
        let mut a = AttentionRegressor::new(8, 12, 1e-3, 99);
        let mut b = AttentionRegressor::new(8, 12, 1e-3, 99);
        a.fit(&series);
        b.fit(&series);
        assert_eq!(a.predict_next(&series), b.predict_next(&series));
        // And different seeds give different predictors.
        let mut c = AttentionRegressor::new(8, 12, 1e-3, 100);
        c.fit(&series);
        assert_ne!(a.predict_next(&series), c.predict_next(&series));
    }

    #[test]
    fn cached_refits_match_a_cold_model_bitwise() {
        // Rolling refits hit the feature memo; a cold model computes every
        // feature fresh. The results must be bit-identical.
        let series = noisy_ar_series(160);
        let mut warm = AttentionRegressor::default();
        for t in 40..series.len() {
            warm.fit(&series[..t]);
        }
        let mut cold = AttentionRegressor::default();
        cold.fit(&series[..series.len() - 1]);
        let w = warm.predict_next(&series);
        let c = cold.predict_next(&series);
        assert_eq!(w.to_bits(), c.to_bits(), "warm {w} vs cold {c}");
    }

    #[test]
    fn predictions_are_nonnegative() {
        let series: Vec<f64> = (0..60).map(|i| 60.0 - i as f64).collect();
        let mut m = AttentionRegressor::default();
        m.fit(&series);
        assert!(m.predict_next(&series) >= 0.0);
    }
}
