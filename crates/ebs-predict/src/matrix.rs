//! Minimal dense linear algebra: just enough for ordinary least squares,
//! ridge regression, and the attention feature maps.

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len());
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solve `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting. Returns `None` when `A` is (numerically) singular.
pub fn solve(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows, a.cols, "solve needs a square system");
    assert_eq!(a.rows, b.len());
    let n = a.rows;
    let mut m = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[(r, col)].abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaNs"))?;
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            x.swap(col, pivot_row);
        }
        for r in col + 1..n {
            let f = m[(r, col)] / m[(col, col)];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                m[(r, j)] -= f * m[(col, j)];
            }
            x[r] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        x[col] /= m[(col, col)];
        for r in 0..col {
            x[r] -= m[(r, col)] * x[col];
        }
    }
    Some(x)
}

/// Ridge regression: solve `(XᵀX + λI) β = Xᵀ y`. Rows of `x` are samples.
/// Returns `None` on a singular system (only possible with λ = 0).
pub fn ridge(x: &Mat, y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    assert_eq!(x.rows, y.len());
    let xt = x.transpose();
    let mut gram = xt.matmul(x);
    for i in 0..gram.rows {
        gram[(i, i)] += lambda;
    }
    let rhs = xt.matvec(y);
    solve(&gram, &rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_vec(2, 2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn transpose_and_row() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Mat::eye(2)), a);
    }

    #[test]
    fn solve_recovers_solution() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Mat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(solve(&a, &[1.0, 2.0]), None);
    }

    #[test]
    fn solve_with_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Mat::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ridge_matches_exact_on_clean_data() {
        // y = 2a + 3b, plenty of samples, tiny λ.
        let rows = 10;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..rows {
            let a = i as f64;
            let b = (i * i) as f64 * 0.1;
            data.push(a);
            data.push(b);
            y.push(2.0 * a + 3.0 * b);
        }
        let x = Mat::from_vec(rows, 2, data);
        let beta = ridge(&x, &y, 1e-9).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-5);
        assert!((beta[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, 1.0]);
        assert_eq!(a.matvec(&[1.0, 2.0, 3.0]), vec![7.0, 5.0]);
    }
}
