//! P1 — linear fit (Appendix C).
//!
//! The paper's baseline predictor: ordinary least squares over the last
//! four periods, extrapolated one period ahead (matching sklearn's
//! `LinearRegression` as used by Lunule's balancer).

use crate::eval::Predictor;

/// One-step linear extrapolation over a trailing window.
#[derive(Clone, Debug)]
pub struct LinearFit {
    /// Number of trailing periods the line is fitted to (paper: 4).
    pub window: usize,
}

impl Default for LinearFit {
    fn default() -> Self {
        Self { window: 4 }
    }
}

impl LinearFit {
    /// A linear-fit predictor over `window` trailing periods.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "need at least two points for a line");
        Self { window }
    }

    /// Fit `y = a + b·t` over `ys` at `t = 0..n` and return `(a, b)`.
    pub fn fit_line(ys: &[f64]) -> (f64, f64) {
        let n = ys.len() as f64;
        if ys.len() < 2 {
            return (ys.first().copied().unwrap_or(0.0), 0.0);
        }
        let t_mean = (n - 1.0) / 2.0;
        let y_mean = ys.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (i, &y) in ys.iter().enumerate() {
            let dt = i as f64 - t_mean;
            cov += dt * (y - y_mean);
            var += dt * dt;
        }
        let b = if var > 0.0 { cov / var } else { 0.0 };
        (y_mean - b * t_mean, b)
    }
}

impl Predictor for LinearFit {
    fn name(&self) -> String {
        "linear-fit".into()
    }

    fn fit(&mut self, _history: &[f64]) {
        // The line is refitted from the recent window at prediction time;
        // there are no persistent parameters.
    }

    fn predict_next(&self, recent: &[f64]) -> f64 {
        if recent.is_empty() {
            return 0.0;
        }
        let start = recent.len().saturating_sub(self.window);
        let win = &recent[start..];
        let (a, b) = Self::fit_line(win);
        // Next period is t = win.len().
        (a + b * win.len() as f64).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_linear_series() {
        let ys: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * i as f64).collect();
        let p = LinearFit::new(4);
        let pred = p.predict_next(&ys);
        assert!((pred - 23.0).abs() < 1e-9, "got {pred}");
    }

    #[test]
    fn flat_series_predicts_flat() {
        let p = LinearFit::default();
        assert!((p.predict_next(&[5.0, 5.0, 5.0, 5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn negative_extrapolation_clamps_to_zero() {
        let p = LinearFit::new(4);
        // Steeply falling series extrapolates below zero → clamped (traffic
        // cannot be negative).
        assert_eq!(p.predict_next(&[100.0, 60.0, 20.0, 0.0]), 0.0);
    }

    #[test]
    fn short_history_degrades_gracefully() {
        let p = LinearFit::default();
        assert_eq!(p.predict_next(&[]), 0.0);
        assert!((p.predict_next(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn fit_line_recovers_parameters() {
        let ys: Vec<f64> = (0..6).map(|i| -1.0 + 0.5 * i as f64).collect();
        let (a, b) = LinearFit::fit_line(&ys);
        assert!((a + 1.0).abs() < 1e-10);
        assert!((b - 0.5).abs() < 1e-10);
    }

    #[test]
    fn only_window_points_matter() {
        let p = LinearFit::new(2);
        // The big early values must be ignored by a window of 2.
        let pred = p.predict_next(&[1e9, 1e9, 4.0, 6.0]);
        assert!((pred - 8.0).abs() < 1e-9, "got {pred}");
    }
}
