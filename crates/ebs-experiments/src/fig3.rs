//! Figure 3 — traffic throttle in the hypervisor (§5).
//!
//! (a) a real multi-VD VM hitting a single-VD cap while the VM-level total
//! has headroom; (b) the RAR distribution under throttling; (c) the
//! write-to-read attribution of throttles; (d/e) the theoretical reduction
//! rate of limited lending; (f/g) the runtime lending-gain distribution.

use ebs_analysis::table::Table;
use ebs_analysis::{median, quantile};
use ebs_throttle::lending::{lending_gains, LendingConfig};
use ebs_throttle::rar::{rar_samples, throttle_event_count, throttled_wr_ratios};
use ebs_throttle::reduction::reduction_rates;
use ebs_throttle::scenario::{build_groups, CapDim, GroupKind, ThrottleGroup};
use ebs_workload::Dataset;

/// Panel (a): the single-VD throttle case study.
#[derive(Clone, Debug)]
pub struct PanelA {
    /// Members of the exemplar VM.
    pub vd_count: usize,
    /// Tick of the throttle event.
    pub tick: usize,
    /// Throttled VD's demand / its cap at that tick.
    pub vd_utilization: f64,
    /// VM total demand / VM total cap at that tick (the headroom story).
    pub vm_utilization: f64,
}

/// Distribution summary used by several panels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dist {
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Sample count.
    pub n: usize,
}

impl Dist {
    /// Summarise a sample; NaN-filled when empty.
    pub fn of(values: &[f64]) -> Dist {
        Dist {
            p25: quantile(values, 0.25).unwrap_or(f64::NAN),
            p50: quantile(values, 0.50).unwrap_or(f64::NAN),
            p75: quantile(values, 0.75).unwrap_or(f64::NAN),
            n: values.len(),
        }
    }
}

/// Panel (c): throttle attribution.
#[derive(Clone, Copy, Debug)]
pub struct PanelC {
    /// Fraction of throttled samples that are write-dominant
    /// (`wr_ratio > 1/3`), for throughput / IOPS caps.
    pub write_dominant: (f64, f64),
    /// Fraction of samples in the mixed band `[-1/3, 1/3]`.
    pub mixed: (f64, f64),
    /// Ratio of throughput-cap to IOPS-cap throttle events.
    pub tput_over_iops_events: f64,
}

/// The whole figure.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// Panel (a).
    pub a: Option<PanelA>,
    /// Panel (b): RAR distributions `(dim, group kind label, dist)`.
    pub b: Vec<(CapDim, &'static str, Dist)>,
    /// Panel (c).
    pub c: PanelC,
    /// Panels (d/e): reduction rate per lending rate p, for multi-VD VMs
    /// and multi-VM nodes `(p, dim, kind, dist)`.
    pub de: Vec<(f64, CapDim, &'static str, Dist)>,
    /// Panels (f/g): lending gain per p `(p, kind, positive fraction, dist)`.
    pub fg: Vec<(f64, &'static str, f64, Dist)>,
}

/// The lending rates swept by the figure.
pub const LENDING_RATES: [f64; 3] = [0.4, 0.6, 0.8];

fn kind_label(g: &ThrottleGroup) -> &'static str {
    match g.kind {
        GroupKind::MultiVdVm(_) => "multi-VD VM",
        GroupKind::MultiVmNode(..) => "multi-VM node",
    }
}

/// Panel (a): pick the multi-VD VM with the most disks (the whale) and the
/// first tick where a member throttles while the VM has ≥ 30 % headroom.
pub fn panel_a(groups: &[ThrottleGroup]) -> Option<PanelA> {
    let mut vm_groups: Vec<&ThrottleGroup> = groups
        .iter()
        .filter(|g| matches!(g.kind, GroupKind::MultiVdVm(_)))
        .collect();
    vm_groups.sort_by_key(|g| std::cmp::Reverse(g.members.len()));
    for whale in vm_groups {
        let cap = whale.total_cap();
        for t in 0..whale.ticks {
            for m in &whale.members {
                if m.throttled(t) {
                    let vm_util = whale.total_demand(t).min(cap) / cap;
                    if vm_util < 0.7 {
                        return Some(PanelA {
                            vd_count: whale.members.len(),
                            tick: t,
                            vd_utilization: (m.demand(t) / m.cap).max(1.0),
                            vm_utilization: vm_util,
                        });
                    }
                }
            }
        }
    }
    None
}

/// Run the whole figure.
pub fn run(ds: &Dataset) -> Fig3 {
    let tput = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
    let iops = build_groups(&ds.fleet, &ds.compute, CapDim::Iops);

    // (b) RAR distributions per dim and group kind.
    let mut b = Vec::new();
    for (dim, groups) in [(CapDim::Throughput, &tput), (CapDim::Iops, &iops)] {
        for kind in ["multi-VD VM", "multi-VM node"] {
            let samples: Vec<f64> = groups
                .iter()
                .filter(|g| kind_label(g) == kind)
                .flat_map(rar_samples)
                .collect();
            b.push((dim, kind, Dist::of(&samples)));
        }
    }

    // (c) attribution.
    let frac = |groups: &[ThrottleGroup], pred: &dyn Fn(f64) -> bool| -> f64 {
        let ratios: Vec<f64> = groups.iter().flat_map(throttled_wr_ratios).collect();
        if ratios.is_empty() {
            return f64::NAN;
        }
        ratios.iter().filter(|&&r| pred(r)).count() as f64 / ratios.len() as f64
    };
    let wd = 1.0 / 3.0;
    let tput_events: usize = tput.iter().map(throttle_event_count).sum();
    let iops_events: usize = iops.iter().map(throttle_event_count).sum();
    let c = PanelC {
        write_dominant: (frac(&tput, &|r| r > wd), frac(&iops, &|r| r > wd)),
        mixed: (
            frac(&tput, &|r| r.abs() <= wd),
            frac(&iops, &|r| r.abs() <= wd),
        ),
        tput_over_iops_events: tput_events as f64 / (iops_events.max(1)) as f64,
    };

    // (d/e) reduction rates.
    let mut de = Vec::new();
    for &p in &LENDING_RATES {
        for (dim, groups) in [(CapDim::Throughput, &tput), (CapDim::Iops, &iops)] {
            for kind in ["multi-VD VM", "multi-VM node"] {
                let samples: Vec<f64> = groups
                    .iter()
                    .filter(|g| kind_label(g) == kind)
                    .flat_map(|g| reduction_rates(g, p))
                    .collect();
                de.push((p, dim, kind, Dist::of(&samples)));
            }
        }
    }

    // (f/g) lending gains (throughput dimension, as in the paper's sim).
    let mut fg = Vec::new();
    for &p in &LENDING_RATES {
        for kind in ["multi-VD VM", "multi-VM node"] {
            let subset: Vec<ThrottleGroup> = tput
                .iter()
                .filter(|g| kind_label(g) == kind)
                .cloned()
                .collect();
            let gains = lending_gains(&subset, &LendingConfig { p, period_ticks: 6 });
            let pos = if gains.is_empty() {
                f64::NAN
            } else {
                gains.iter().filter(|&&g| g > 0.0).count() as f64 / gains.len() as f64
            };
            fg.push((p, kind, pos, Dist::of(&gains)));
        }
    }

    Fig3 {
        a: panel_a(&tput),
        b,
        c,
        de,
        fg,
    }
}

/// Render all panels.
pub fn render(f: &Fig3) -> String {
    let mut out = String::new();
    match &f.a {
        Some(a) => out.push_str(&format!(
            "Figure 3(a): a {}-VD VM throttles one disk at tick {} \
             (VD at {:.0}% of its cap) while the VM uses only {:.1}% of its total cap\n",
            a.vd_count,
            a.tick,
            a.vd_utilization * 100.0,
            a.vm_utilization * 100.0
        )),
        None => out.push_str("Figure 3(a): no single-VD throttle case found at this scale\n"),
    }

    let mut b = Table::new(["dimension", "group", "RAR p25", "p50", "p75", "samples"])
        .with_title("Figure 3(b): resource available rate under throttling");
    for (dim, kind, d) in &f.b {
        b.row([
            dim.label().to_string(),
            kind.to_string(),
            format!("{:.3}", d.p25),
            format!("{:.3}", d.p50),
            format!("{:.3}", d.p75),
            d.n.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&b.render());

    out.push_str(&format!(
        "\nFigure 3(c): write-dominant throttles: {:.1}% (tput) / {:.1}% (IOPS); \
         mixed band: {:.1}% / {:.1}%; throughput-cap events {:.1}x the IOPS-cap events\n",
        f.c.write_dominant.0 * 100.0,
        f.c.write_dominant.1 * 100.0,
        f.c.mixed.0 * 100.0,
        f.c.mixed.1 * 100.0,
        f.c.tput_over_iops_events,
    ));

    let mut de = Table::new(["p", "dimension", "group", "RR p25", "p50", "p75"])
        .with_title("Figure 3(d/e): reduction rate of throttle duration");
    for (p, dim, kind, d) in &f.de {
        de.row([
            format!("{p:.1}"),
            dim.label().to_string(),
            kind.to_string(),
            format!("{:.3}", d.p25),
            format!("{:.3}", d.p50),
            format!("{:.3}", d.p75),
        ]);
    }
    out.push('\n');
    out.push_str(&de.render());

    let mut fg = Table::new(["p", "group", "positive gain %", "gain p25", "p50", "p75"])
        .with_title("Figure 3(f/g): lending gain");
    for (p, kind, pos, d) in &f.fg {
        fg.row([
            format!("{p:.1}"),
            kind.to_string(),
            format!("{:.1}", pos * 100.0),
            format!("{:.3}", d.p25),
            format!("{:.3}", d.p50),
            format!("{:.3}", d.p75),
        ]);
    }
    out.push('\n');
    out.push_str(&fg.render());
    out
}

/// Median RAR across throughput multi-VD-VM samples; convenience accessor
/// used by tests.
pub fn median_rar(f: &Fig3) -> Option<f64> {
    f.b.iter()
        .find(|(dim, kind, _)| *dim == CapDim::Throughput && *kind == "multi-VD VM")
        .map(|(_, _, d)| d.p50)
        .filter(|v| v.is_finite())
}

/// Helper: median over finite values (re-exported for bins).
pub fn finite_median(values: &[f64]) -> Option<f64> {
    let v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    median(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};

    fn fig() -> Fig3 {
        run(&dataset(Scale::Medium))
    }

    #[test]
    fn rar_is_high_under_throttling() {
        let f = fig();
        let m = median_rar(&f).expect("throttle events must exist");
        assert!(m > 0.4, "median RAR {m:.3} — headroom should be abundant");
    }

    #[test]
    fn throttles_are_write_dominated_and_single_sided() {
        let f = fig();
        assert!(
            f.c.write_dominant.0 > 0.5,
            "write-dominant fraction {:.3}",
            f.c.write_dominant.0
        );
        assert!(
            f.c.mixed.0 < 0.3,
            "mixed band should be small: {:.3}",
            f.c.mixed.0
        );
        assert!(
            f.c.tput_over_iops_events > 1.0,
            "throughput caps fire more often"
        );
    }

    #[test]
    fn reduction_rate_falls_with_p() {
        let f = fig();
        let median_at = |p: f64| {
            f.de.iter()
                .find(|(pp, dim, kind, _)| {
                    *pp == p && *dim == CapDim::Throughput && *kind == "multi-VD VM"
                })
                .map(|(_, _, _, d)| d.p50)
                .unwrap()
        };
        assert!(
            median_at(0.8) < median_at(0.4),
            "more lending → more reduction"
        );
    }

    #[test]
    fn lending_mostly_gains_but_not_always() {
        let f = fig();
        let (_, _, pos, d) =
            f.fg.iter()
                .find(|(p, kind, _, _)| *p == 0.8 && *kind == "multi-VD VM")
                .unwrap();
        assert!(*pos > 0.5, "most groups should gain: {pos:.3}");
        assert!(d.n > 0);
    }

    #[test]
    fn whale_case_study_exists() {
        let f = fig();
        let a =
            f.a.expect("a multi-VD VM should produce a Figure 3(a) case");
        assert!(a.vd_count >= 2);
        assert!(a.vm_utilization < 0.7);
        assert!(a.vd_utilization >= 1.0);
    }

    #[test]
    fn render_has_all_panels() {
        let text = render(&fig());
        for tag in ["3(a)", "3(b)", "3(c)", "3(d/e)", "3(f/g)"] {
            assert!(text.contains(tag), "missing {tag}");
        }
    }
}
