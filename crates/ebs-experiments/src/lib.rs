//! # ebs-experiments — the reproduction harness
//!
//! One module (and one binary) per table/figure of the paper's evaluation.
//! Every binary generates the same canonical dataset ([`scenario`]), runs
//! the experiment, and prints the rows/series the paper reports:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table2` | Table 2 — dataset summary |
//! | `table3` | Table 3 — CCR / P2A at four aggregation levels × 3 DCs |
//! | `table4` | Table 4 — skewness by application class |
//! | `fig2` | Figure 2 — hypervisor load balancing & rebinding |
//! | `fig3` | Figure 3 — throttle, RAR, limited lending |
//! | `fig4` | Figure 4 — segment migration & traffic prediction |
//! | `fig5` | Figure 5 — balanced write, skewed read |
//! | `fig6` | Figure 6 — LBA hotspots |
//! | `fig7` | Figure 7 — cache algorithms, location, utilization |
//! | `ablations` | design-choice sweeps DESIGN.md calls out |
//! | `extensions` | the fixes the paper proposes: S6 ARIMA importer, prediction-guided lending, hybrid CN+BS cache |
//! | `gendata` | export the synthetic dataset as CSV |
//! | `fleetscale` | bounded-memory million-VD sharded run + skew report |
//! | `all` | everything above in one run |
//!
//! Pass `--quick` or `--medium` to any binary for smaller fleets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod driver;
pub mod extensions;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fleetscale;
pub mod scenario;
pub mod table2;
pub mod table3;
pub mod table4;

pub use scenario::{
    dataset, dataset_or_replay, dataset_or_replay_sharded, stack_traces, Scale, EXPERIMENT_SEED,
};
