//! Figure 2 — load balancing in the hypervisor (§4).
//!
//! (a) WT-CoV at several time scales; (b) the "VM-VD-QP" CoV breakdown;
//! (c) CDF of the hottest QP's traffic share; (d) the rebinding
//! ratio-vs-gain scatter; (e/f) hottest-WT time series of a bursty versus a
//! smooth node.

use ebs_analysis::aggregate::{rollup_compute, ComputeLevel};
use ebs_analysis::table::Table;
use ebs_analysis::{median, normalized_cov, p2a, Cdf};
use ebs_balance::wt_rebind::{
    events_by_cn, hottest_wt_series, simulate_fleet, RebindConfig, RebindOutcome,
};
use ebs_core::ids::CnId;
use ebs_core::io::Op;
use ebs_core::metric::Measure;
use ebs_workload::Dataset;

/// Panel (a): median WT-CoV per time scale, read and write.
#[derive(Clone, Debug)]
pub struct PanelA {
    /// `(scale_minutes, median read CoV, median write CoV)`.
    pub rows: Vec<(u32, f64, f64)>,
}

/// Panel (b): medians of the three-tier CoV breakdown, read and write.
#[derive(Clone, Copy, Debug)]
pub struct PanelB {
    /// CoV of QP traffic within the hottest VM `(read, write)`.
    pub vm2qp: (f64, f64),
    /// CoV of VD traffic within the hottest VM.
    pub vm2vd: (f64, f64),
    /// CoV of QP traffic within multi-QP VDs.
    pub vd2qp: (f64, f64),
}

/// Panel (c): hottest-QP share distribution.
#[derive(Clone, Debug)]
pub struct PanelC {
    /// Median hottest-QP share `(read, write)`.
    pub median_share: (f64, f64),
    /// Fraction of nodes whose hottest QP exceeds 80 % `(read, write)`.
    pub frac_above_80: (f64, f64),
}

/// Panels (d–f): rebinding simulation.
#[derive(Clone, Debug)]
pub struct PanelDef {
    /// Per-node outcomes (the scatter of (d)).
    pub outcomes: Vec<RebindOutcome>,
    /// Fraction of nodes with gain < 1 (rebinding helped).
    pub improved_frac: f64,
    /// P2A of the bursty exemplar's hottest-WT 10 ms series (node-b).
    pub bursty_p2a: f64,
    /// P2A of the smooth exemplar (node-r).
    pub smooth_p2a: f64,
    /// Gains of the two exemplars `(bursty, smooth)`.
    pub exemplar_gains: (f64, f64),
}

/// The whole figure.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// Panel (a).
    pub a: PanelA,
    /// Panel (b).
    pub b: PanelB,
    /// Panel (c).
    pub c: PanelC,
    /// Panels (d–f).
    pub def: PanelDef,
}

fn per_cn_wt_series(ds: &Dataset, op: Op) -> Vec<(CnId, Vec<Vec<f64>>)> {
    let fleet = &ds.fleet;
    let roll = rollup_compute(
        fleet,
        &ds.compute,
        ComputeLevel::Wt,
        Measure::bytes(op),
        |_| true,
    );
    let mut by_cn: std::collections::BTreeMap<CnId, Vec<Vec<f64>>> =
        std::collections::BTreeMap::new();
    for (wt_idx, series) in &roll.series {
        let cn = fleet.cn_of_wt(ebs_core::ids::WtId(*wt_idx as u32));
        by_cn.entry(cn).or_default().push(series.clone());
    }
    // Pad with idle WTs so CoV accounts for them.
    let ticks = ds.compute.ticks.ticks as usize;
    for (cn, list) in by_cn.iter_mut() {
        let want = fleet.compute_nodes[*cn].wt_count as usize;
        while list.len() < want {
            list.push(vec![0.0; ticks]);
        }
    }
    by_cn.into_iter().collect()
}

/// Panel (a): WT-CoV per node per window, at 1/30/60-minute scales.
pub fn panel_a(ds: &Dataset) -> PanelA {
    let tick_secs = ds.compute.ticks.tick_secs;
    let scales: Vec<u32> = [1u32, 30, 60]
        .into_iter()
        .filter(|&m| (m as f64 * 60.0) >= tick_secs)
        .collect();
    let mut rows = Vec::new();
    for scale in scales {
        let win = ((scale as f64 * 60.0) / tick_secs).round().max(1.0) as usize;
        let mut med = [0.0; 2];
        for (k, op) in Op::ALL.iter().enumerate() {
            let mut covs = Vec::new();
            for (_, wt_series) in per_cn_wt_series(ds, *op) {
                if wt_series.len() < 2 {
                    continue;
                }
                let windows = wt_series[0].len().div_ceil(win);
                for w in 0..windows {
                    let sums: Vec<f64> = wt_series
                        .iter()
                        .map(|s| s[w * win..((w + 1) * win).min(s.len())].iter().sum::<f64>())
                        .collect();
                    if let Some(c) = normalized_cov(&sums) {
                        covs.push(c);
                    }
                }
            }
            med[k] = median(&covs).unwrap_or(f64::NAN);
        }
        rows.push((scale, med[0], med[1]));
    }
    PanelA { rows }
}

/// Panel (b): the VM-VD-QP breakdown over per-entity window totals.
pub fn panel_b(ds: &Dataset) -> PanelB {
    let fleet = &ds.fleet;
    let mut results = [[f64::NAN; 2]; 3]; // [vm2qp, vm2vd, vd2qp][read, write]
    for (k, op) in Op::ALL.iter().enumerate() {
        let measure = Measure::bytes(*op);
        let qp_roll = rollup_compute(fleet, &ds.compute, ComputeLevel::Qp, measure, |_| true);
        let qp_total = |qp: ebs_core::ids::QpId| -> f64 {
            qp_roll
                .get(qp.index())
                .map(|s| s.iter().sum())
                .unwrap_or(0.0)
        };
        let mut vm2qp = Vec::new();
        let mut vm2vd = Vec::new();
        let mut vd2qp = Vec::new();
        for cn in fleet.compute_nodes.iter() {
            // Hottest VM of the node for this op.
            let hottest = fleet
                .vms_of_cn(cn.id)
                .iter()
                .map(|&vm| {
                    let total: f64 = fleet
                        .vds_of_vm(vm)
                        .iter()
                        .flat_map(|&vd| fleet.vds[vd].qps())
                        .map(qp_total)
                        .sum();
                    (vm, total)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaNs"));
            let Some((vm, total)) = hottest else { continue };
            if total <= 0.0 {
                continue;
            }
            let qps: Vec<f64> = fleet
                .vds_of_vm(vm)
                .iter()
                .flat_map(|&vd| fleet.vds[vd].qps())
                .map(qp_total)
                .collect();
            if let Some(c) = normalized_cov(&qps) {
                vm2qp.push(c);
            }
            let vds: Vec<f64> = fleet
                .vds_of_vm(vm)
                .iter()
                .map(|&vd| fleet.vds[vd].qps().map(qp_total).sum())
                .collect();
            if let Some(c) = normalized_cov(&vds) {
                vm2vd.push(c);
            }
            for &vd in fleet.vds_of_vm(vm) {
                let q: Vec<f64> = fleet.vds[vd].qps().map(qp_total).collect();
                if q.len() >= 2 && q.iter().sum::<f64>() > 0.0 {
                    if let Some(c) = normalized_cov(&q) {
                        vd2qp.push(c);
                    }
                }
            }
        }
        results[0][k] = median(&vm2qp).unwrap_or(f64::NAN);
        results[1][k] = median(&vm2vd).unwrap_or(f64::NAN);
        results[2][k] = median(&vd2qp).unwrap_or(f64::NAN);
    }
    PanelB {
        vm2qp: (results[0][0], results[0][1]),
        vm2vd: (results[1][0], results[1][1]),
        vd2qp: (results[2][0], results[2][1]),
    }
}

/// Panel (c): hottest-QP traffic share per compute node.
pub fn panel_c(ds: &Dataset) -> PanelC {
    let fleet = &ds.fleet;
    let mut med = [f64::NAN; 2];
    let mut above = [f64::NAN; 2];
    for (k, op) in Op::ALL.iter().enumerate() {
        let roll = rollup_compute(
            fleet,
            &ds.compute,
            ComputeLevel::Qp,
            Measure::bytes(*op),
            |_| true,
        );
        let mut per_cn: std::collections::BTreeMap<CnId, Vec<f64>> =
            std::collections::BTreeMap::new();
        for (qp_idx, series) in &roll.series {
            let cn = fleet.cn_of_qp(ebs_core::ids::QpId(*qp_idx as u32));
            per_cn.entry(cn).or_default().push(series.iter().sum());
        }
        let shares: Vec<f64> = per_cn
            .values()
            .filter_map(|qps| {
                let total: f64 = qps.iter().sum();
                let max = qps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if total > 0.0 {
                    Some(max / total)
                } else {
                    None
                }
            })
            .collect();
        let cdf = Cdf::new(&shares);
        med[k] = cdf.quantile(0.5).unwrap_or(f64::NAN);
        above[k] = cdf.above(0.8).unwrap_or(f64::NAN);
    }
    PanelC {
        median_share: (med[0], med[1]),
        frac_above_80: (above[0], above[1]),
    }
}

/// Panels (d–f): the rebinding simulation and its exemplars.
pub fn panel_def(ds: &Dataset) -> PanelDef {
    let outcomes = simulate_fleet(&ds.fleet, &ds.events, &RebindConfig::default());
    let improved = outcomes.iter().filter(|o| o.gain < 1.0).count();
    let improved_frac = if outcomes.is_empty() {
        0.0
    } else {
        improved as f64 / outcomes.len() as f64
    };

    // Exemplars (the paper's node-b / node-r): among nodes with an
    // above-median rebind ratio, the one with the spikiest hottest-WT
    // 10 ms series (bursty) and the flattest one (smooth).
    let ratios: Vec<f64> = outcomes.iter().map(|o| o.rebind_ratio).collect();
    let cut = median(&ratios).unwrap_or(0.0);
    let by_cn = events_by_cn(&ds.fleet, &ds.events);
    let p2a_of = |o: &RebindOutcome| -> f64 {
        let s = hottest_wt_series(&ds.fleet, o.cn, &by_cn[o.cn.index()], 10_000);
        p2a(&s).unwrap_or(f64::NAN)
    };
    let busy: Vec<(f64, &RebindOutcome)> = outcomes
        .iter()
        .filter(|o| o.rebind_ratio >= cut)
        .map(|o| (p2a_of(o), o))
        .filter(|(p, _)| p.is_finite())
        .collect();
    let bursty = busy
        .iter()
        .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
        .copied();
    let smooth = busy
        .iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
        .copied();
    PanelDef {
        bursty_p2a: bursty.map(|(p, _)| p).unwrap_or(f64::NAN),
        smooth_p2a: smooth.map(|(p, _)| p).unwrap_or(f64::NAN),
        exemplar_gains: (
            bursty.map(|(_, o)| o.gain).unwrap_or(f64::NAN),
            smooth.map(|(_, o)| o.gain).unwrap_or(f64::NAN),
        ),
        outcomes,
        improved_frac,
    }
}

/// Run the whole figure.
pub fn run(ds: &Dataset) -> Fig2 {
    Fig2 {
        a: panel_a(ds),
        b: panel_b(ds),
        c: panel_c(ds),
        def: panel_def(ds),
    }
}

/// Render all panels.
pub fn render(f: &Fig2) -> String {
    let mut out = String::new();
    let mut a = Table::new(["scale (min)", "median WT-CoV R", "median WT-CoV W"])
        .with_title("Figure 2(a): WT-CoV by time scale");
    for (scale, r, w) in &f.a.rows {
        a.row([scale.to_string(), format!("{r:.3}"), format!("{w:.3}")]);
    }
    out.push_str(&a.render());

    let mut b = Table::new(["breakdown", "median CoV R", "median CoV W"])
        .with_title("Figure 2(b): VM-VD-QP CoV breakdown (hottest VM per node)");
    b.row([
        "VM→QP".to_string(),
        format!("{:.3}", f.b.vm2qp.0),
        format!("{:.3}", f.b.vm2qp.1),
    ]);
    b.row([
        "VM→VD".to_string(),
        format!("{:.3}", f.b.vm2vd.0),
        format!("{:.3}", f.b.vm2vd.1),
    ]);
    b.row([
        "VD→QP".to_string(),
        format!("{:.3}", f.b.vd2qp.0),
        format!("{:.3}", f.b.vd2qp.1),
    ]);
    out.push('\n');
    out.push_str(&b.render());

    let mut c = Table::new(["metric", "read", "write"])
        .with_title("Figure 2(c): hottest-QP traffic share per node");
    c.row([
        "median share".to_string(),
        format!("{:.3}", f.c.median_share.0),
        format!("{:.3}", f.c.median_share.1),
    ]);
    c.row([
        "fraction of nodes > 80%".to_string(),
        format!("{:.3}", f.c.frac_above_80.0),
        format!("{:.3}", f.c.frac_above_80.1),
    ]);
    out.push('\n');
    out.push_str(&c.render());

    let mut d = Table::new(["node", "rebind ratio", "gain (CoV after/before)"])
        .with_title("Figure 2(d): rebinding simulation scatter (per compute node)");
    for o in &f.def.outcomes {
        d.row([
            o.cn.to_string(),
            format!("{:.3}", o.rebind_ratio),
            format!("{:.3}", o.gain),
        ]);
    }
    out.push('\n');
    out.push_str(&d.render());
    out.push_str(&format!(
        "nodes improved by rebinding (gain < 1): {:.1}%\n",
        f.def.improved_frac * 100.0
    ));
    out.push_str(&format!(
        "Figure 2(e/f): hottest-WT 10ms P2A — bursty node {:.1} (gain {:.3}) vs smooth node {:.1} (gain {:.3}); ratio {:.1}x\n",
        f.def.bursty_p2a,
        f.def.exemplar_gains.0,
        f.def.smooth_p2a,
        f.def.exemplar_gains.1,
        f.def.bursty_p2a / f.def.smooth_p2a,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};

    #[test]
    fn read_wt_cov_exceeds_write() {
        let ds = dataset(Scale::Medium);
        let a = panel_a(&ds);
        assert!(!a.rows.is_empty());
        let (_, r, w) = a.rows[0];
        assert!(r > w, "1-min WT-CoV: read {r:.3} vs write {w:.3}");
        assert!(r > 0.3, "read WT-CoV should be substantial: {r:.3}");
    }

    #[test]
    fn vm2vd_is_the_most_extreme_breakdown() {
        let ds = dataset(Scale::Medium);
        let b = panel_b(&ds);
        // §4.2: VM→VD CoV is extreme (median ≈ 0.97 in the paper).
        assert!(b.vm2vd.0 > 0.6, "VM→VD read CoV {:.3}", b.vm2vd.0);
        assert!(b.vm2vd.0 >= b.vm2qp.0 - 0.15);
        // Writes concentrate on fewer QPs than reads (VD→QP, §4.2).
        assert!(
            b.vd2qp.1 > b.vd2qp.0,
            "VD→QP: W {:.3} vs R {:.3}",
            b.vd2qp.1,
            b.vd2qp.0
        );
    }

    #[test]
    fn hottest_qp_dominates_many_nodes() {
        let ds = dataset(Scale::Medium);
        let c = panel_c(&ds);
        assert!(
            c.frac_above_80.0 > c.frac_above_80.1,
            "read should concentrate more"
        );
        assert!(
            c.frac_above_80.0 > 0.15,
            "read >80% fraction {:.3}",
            c.frac_above_80.0
        );
        assert!(c.median_share.0 > 0.3);
    }

    #[test]
    fn rebinding_helps_only_some_nodes() {
        let ds = dataset(Scale::Medium);
        let def = panel_def(&ds);
        assert!(!def.outcomes.is_empty());
        assert!(def.improved_frac > 0.05, "someone must benefit");
        assert!(
            def.improved_frac < 0.95,
            "rebinding must not be a silver bullet"
        );
        // The bursty exemplar out-bursts the smooth one (by construction)
        // — and by a wide factor, like the paper's 7.7x node-b vs node-r.
        assert!(
            def.bursty_p2a > def.smooth_p2a * 2.0,
            "bursty {:.1} vs smooth {:.1}",
            def.bursty_p2a,
            def.smooth_p2a
        );
    }

    #[test]
    fn render_contains_all_panels() {
        let ds = dataset(Scale::Quick);
        let text = render(&run(&ds));
        for tag in ["2(a)", "2(b)", "2(c)", "2(d)", "2(e/f)"] {
            assert!(text.contains(tag), "missing panel {tag}");
        }
    }
}
