//! Figure 4 — frequent segment migration (§6.1).
//!
//! (a) proportion of frequent migrations per cluster at several window
//! scales; (b) normalized migration interval under the five importer
//! selections S1–S5; (c) MSE of the five traffic predictors P1–P5.

use ebs_analysis::table::Table;
use ebs_balance::bs_balancer::{run_balancer, BalancerConfig};
use ebs_balance::importer::ImporterSelect;
use ebs_balance::migration::{frequent_migration_proportion, segment_residency_intervals};
use ebs_core::ids::{BsId, DcId};
use ebs_core::metric::Measure;
use ebs_predict::eval::{
    forecast_nmse, rolling_forecast_capped, Cadence, Predictor, EPOCH_PERIODS,
};
use ebs_predict::{Arima, AttentionRegressor, Gbdt, LinearFit};
use ebs_workload::Dataset;

/// Window scales for the frequent-migration analysis, in seconds.
pub const WINDOW_SECS: [f64; 3] = [15.0, 30.0, 60.0];

/// History cap for per-period retraining of learned models.
const MAX_HISTORY: usize = 200;

/// The whole figure.
#[derive(Clone, Debug)]
pub struct Fig4 {
    /// Panel (a): `(window_secs, dc name, frequent proportion)`.
    pub a: Vec<(f64, String, f64)>,
    /// Panel (b): `(strategy, median normalized migration interval,
    /// migration count)` on the busiest cluster.
    pub b: Vec<(ImporterSelect, f64, usize)>,
    /// Panel (c): `(predictor label, mean normalized MSE across BSs)`.
    pub c: Vec<(String, f64)>,
    /// The cluster panel (b)/(c) ran on.
    pub cluster: String,
}

/// Panel (a): run the production balancer (S2) per DC and measure the
/// frequent-migration proportion at each window scale.
pub fn panel_a(ds: &Dataset) -> Vec<(f64, String, f64)> {
    let mut out = Vec::new();
    let period_secs = ds.storage.ticks.tick_secs;
    for dc in ds.fleet.dcs.iter() {
        let run = run_balancer(&ds.fleet, &ds.storage, dc.id, &BalancerConfig::default());
        for &w in &WINDOW_SECS {
            let periods = ((w / period_secs).round() as u32).max(1);
            let prop = frequent_migration_proportion(run.seg_map.log(), periods);
            out.push((w, dc.name.clone(), prop));
        }
    }
    out
}

/// The DC with the most migrations under the default balancer — the
/// paper's "cluster with the most frequent migrations".
pub fn busiest_dc(ds: &Dataset) -> DcId {
    (0..ds.fleet.dcs.len())
        .map(DcId::from_index)
        .max_by_key(|&dc| {
            run_balancer(&ds.fleet, &ds.storage, dc, &BalancerConfig::default()).migrations
        })
        .expect("at least one DC")
}

/// Panel (b): migration intervals per importer strategy on `dc`.
pub fn panel_b(ds: &Dataset, dc: DcId) -> Vec<(ImporterSelect, f64, usize)> {
    ImporterSelect::ALL
        .iter()
        .map(|&strategy| {
            let cfg = BalancerConfig {
                strategy,
                ..BalancerConfig::default()
            };
            let run = run_balancer(&ds.fleet, &ds.storage, dc, &cfg);
            let intervals = segment_residency_intervals(run.seg_map.log(), run.periods);
            // Mean (not median) residency: strategies that avoid
            // re-migration are rewarded through the censored long stays.
            let mean = if intervals.is_empty() {
                f64::NAN
            } else {
                intervals.iter().sum::<f64>() / intervals.len() as f64
            };
            (strategy, mean, run.migrations)
        })
        .collect()
}

/// Per-BS write-traffic series (one per BlockServer of `dc`) on the
/// balancer's period grid, under the initial placement.
pub fn bs_series(ds: &Dataset, dc: DcId) -> Vec<Vec<f64>> {
    let bss: Vec<BsId> = ds.fleet.bss_of_dc(dc).to_vec();
    let traffic = ebs_balance::bs_balancer::PeriodTraffic::build(
        &ds.fleet,
        &ds.storage,
        dc,
        Measure::WriteBytes,
    );
    let map = ebs_stack::segment::SegmentMap::from_fleet(&ds.fleet);
    let periods = traffic.periods.len();
    let mut series = vec![Vec::with_capacity(periods); bss.len()];
    for p in 0..periods {
        let totals = traffic.bs_totals(p, &map, &bss);
        for (i, v) in totals.into_iter().enumerate() {
            series[i].push(v);
        }
    }
    series
}

/// Panel (c): evaluate P1–P5 on the per-BS series of `dc`. Scores are the
/// mean *normalized* MSE across BSs (normalizing by each BS's variance
/// makes BSs of different magnitude commensurable).
/// Factory building a fresh predictor instance per BlockServer series.
type PredictorFactory = Box<dyn Fn() -> Box<dyn Predictor>>;

/// Panel (c): evaluate P1–P5 on the per-BS series of `dc`. Scores are the
/// mean *normalized* MSE across BSs.
pub fn panel_c(ds: &Dataset, dc: DcId) -> Vec<(String, f64)> {
    let series = bs_series(ds, dc);
    let warmup = 16usize;
    let lineup: Vec<(String, PredictorFactory, Cadence)> = vec![
        (
            "P1-LinearFit".into(),
            Box::new(|| Box::new(LinearFit::default())),
            Cadence::PerPeriod,
        ),
        (
            "P2-ARIMA".into(),
            Box::new(|| Box::new(Arima::default())),
            Cadence::PerPeriod,
        ),
        (
            "P3-GBDT(epoch)".into(),
            Box::new(|| Box::new(Gbdt::default())),
            Cadence::Epoch(EPOCH_PERIODS),
        ),
        (
            "P4-Attention(epoch)".into(),
            Box::new(|| Box::new(AttentionRegressor::default())),
            Cadence::Epoch(EPOCH_PERIODS),
        ),
        (
            "P5-Attention(period)".into(),
            Box::new(|| Box::new(AttentionRegressor::default())),
            Cadence::PerPeriod,
        ),
    ];
    lineup
        .into_iter()
        .map(|(name, make, cadence)| {
            let mut scores = Vec::new();
            for s in &series {
                if s.iter().sum::<f64>() <= 0.0 || s.len() <= warmup + 4 {
                    continue;
                }
                let mut model = make();
                let pairs =
                    rolling_forecast_capped(model.as_mut(), s, warmup, cadence, MAX_HISTORY);
                if let Some(nmse) = forecast_nmse(&pairs) {
                    scores.push(nmse);
                }
            }
            let mean = if scores.is_empty() {
                f64::NAN
            } else {
                scores.iter().sum::<f64>() / scores.len() as f64
            };
            (name, mean)
        })
        .collect()
}

/// Run the whole figure.
pub fn run(ds: &Dataset) -> Fig4 {
    let a = panel_a(ds);
    let dc = busiest_dc(ds);
    let b = panel_b(ds, dc);
    let c = panel_c(ds, dc);
    Fig4 {
        a,
        b,
        c,
        cluster: ds.fleet.dcs[dc].name.clone(),
    }
}

/// Render all panels.
pub fn render(f: &Fig4) -> String {
    let mut out = String::new();
    let mut a = Table::new(["window (s)", "cluster", "frequent migration %"])
        .with_title("Figure 4(a): proportion of frequent migrations");
    for (w, dc, prop) in &f.a {
        a.row([
            format!("{w:.0}"),
            dc.clone(),
            format!("{:.1}", prop * 100.0),
        ]);
    }
    out.push_str(&a.render());

    let mut b = Table::new(["strategy", "mean norm. residency", "migrations"]).with_title(format!(
        "Figure 4(b): segment residency interval by importer selection ({})",
        f.cluster
    ));
    for (s, med, n) in &f.b {
        b.row([s.label().to_string(), format!("{med:.3}"), n.to_string()]);
    }
    out.push('\n');
    out.push_str(&b.render());

    let mut c = Table::new(["predictor", "mean normalized MSE"]).with_title(format!(
        "Figure 4(c): traffic-prediction error ({})",
        f.cluster
    ));
    for (name, mse) in &f.c {
        c.row([name.clone(), format!("{mse:.3}")]);
    }
    out.push('\n');
    out.push_str(&c.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};

    #[test]
    fn frequent_migrations_exist_somewhere() {
        let ds = dataset(Scale::Medium);
        let a = panel_a(&ds);
        assert!(!a.is_empty());
        for (_, _, prop) in &a {
            assert!((0.0..=1.0).contains(prop));
        }
        // Wider windows can only widen (or keep) the frequent set per DC.
        for dc in ds.fleet.dcs.iter() {
            let vals: Vec<f64> = a
                .iter()
                .filter(|(_, name, _)| *name == dc.name)
                .map(|&(_, _, p)| p)
                .collect();
            assert!(vals.windows(2).all(|w| w[1] >= w[0] - 1e-12), "{vals:?}");
        }
    }

    #[test]
    fn ideal_importer_beats_min_traffic_on_intervals() {
        let ds = dataset(Scale::Medium);
        let dc = busiest_dc(&ds);
        let b = panel_b(&ds, dc);
        let get = |s: ImporterSelect| b.iter().find(|(x, _, _)| *x == s).unwrap();
        let ideal = get(ImporterSelect::Ideal);
        let min_traffic = get(ImporterSelect::MinTraffic);
        if ideal.1.is_finite() && min_traffic.1.is_finite() {
            assert!(
                ideal.1 >= min_traffic.1 * 0.9,
                "Ideal residency {:.3} should not trail MinTraffic {:.3}",
                ideal.1,
                min_traffic.1
            );
        }
        // (Migration *counts* are not asserted: with the oracle-coherent
        // `next` view, Ideal may trade a few extra migrations for longer
        // residencies; the residency metric above is the paper's lens.)
    }

    #[test]
    fn predictors_rank_plausibly() {
        let ds = dataset(Scale::Medium);
        let dc = busiest_dc(&ds);
        let c = panel_c(&ds, dc);
        let get = |tag: &str| c.iter().find(|(n, _)| n.starts_with(tag)).unwrap().1;
        let linear = get("P1");
        let arima = get("P2");
        let p4 = get("P4");
        let p5 = get("P5");
        assert!(arima.is_finite() && linear.is_finite());
        // ARIMA beats the linear fit (Figure 4(c)).
        assert!(arima < linear, "ARIMA {arima:.3} vs linear {linear:.3}");
        // Per-period attention beats per-epoch attention.
        assert!(p5 <= p4 * 1.05, "P5 {p5:.3} vs P4 {p4:.3}");
    }

    #[test]
    fn render_lists_all_strategies_and_predictors() {
        let ds = dataset(Scale::Quick);
        let text = render(&run(&ds));
        for s in ImporterSelect::ALL {
            assert!(text.contains(s.label()));
        }
        for p in ["P1", "P2", "P3", "P4", "P5"] {
            assert!(text.contains(p));
        }
    }
}
