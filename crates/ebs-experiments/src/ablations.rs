//! Ablation sweeps for the design constants the paper (and DESIGN.md §4)
//! call out: the rebind trigger ratio, the lending rate, the balancer's
//! exporter threshold, and the frozen-cache placement threshold.

use ebs_analysis::table::Table;
use ebs_balance::bs_balancer::{run_balancer, BalancerConfig};
use ebs_balance::wt_rebind::{simulate_fleet, RebindConfig};
use ebs_cache::frozen::FrozenCache;
use ebs_cache::hottest_block::BLOCK_SIZES;
use ebs_cache::simulate::simulate;
use ebs_cache::utilization::{cacheable_vds, per_cn_counts, std_dev};
use ebs_core::index::EventIndex;
use ebs_core::parallel::par_map_deterministic;
use ebs_throttle::lending::{lending_gains, LendingConfig};
use ebs_throttle::scenario::{build_groups, CapDim};
use ebs_workload::Dataset;

/// Rebind trigger ratios swept.
pub const TRIGGER_RATIOS: [f64; 4] = [1.1, 1.2, 1.5, 2.0];
/// Lending rates swept.
pub const LEND_RATES: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];
/// Balancer exporter thresholds swept.
pub const EXPORT_RATIOS: [f64; 4] = [1.1, 1.2, 1.5, 2.0];
/// Frozen-cache placement thresholds swept.
pub const CACHE_THRESHOLDS: [f64; 4] = [0.10, 0.25, 0.40, 0.60];

/// Sweep the rebind trigger ratio: `(ratio, median rebind ratio, fraction
/// of nodes improved)`.
pub fn rebind_trigger_sweep(ds: &Dataset) -> Vec<(f64, f64, f64)> {
    par_map_deterministic(&TRIGGER_RATIOS, |_, &trigger_ratio| {
        let cfg = RebindConfig {
            trigger_ratio,
            ..RebindConfig::default()
        };
        let outcomes = simulate_fleet(&ds.fleet, &ds.events, &cfg);
        let ratios: Vec<f64> = outcomes.iter().map(|o| o.rebind_ratio).collect();
        let improved = if outcomes.is_empty() {
            f64::NAN
        } else {
            outcomes.iter().filter(|o| o.gain < 1.0).count() as f64 / outcomes.len() as f64
        };
        (
            trigger_ratio,
            ebs_analysis::median(&ratios).unwrap_or(f64::NAN),
            improved,
        )
    })
}

/// Sweep the lending rate: `(p, positive-gain fraction, median gain)`.
pub fn lending_rate_sweep(ds: &Dataset) -> Vec<(f64, f64, f64)> {
    let groups = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
    par_map_deterministic(&LEND_RATES, |_, &p| {
        let gains = lending_gains(&groups, &LendingConfig { p, period_ticks: 6 });
        let pos = if gains.is_empty() {
            f64::NAN
        } else {
            gains.iter().filter(|&&g| g > 0.0).count() as f64 / gains.len() as f64
        };
        (p, pos, ebs_analysis::median(&gains).unwrap_or(f64::NAN))
    })
}

/// Sweep the exporter threshold: `(ratio, migrations, mean per-period CoV)`.
pub fn exporter_threshold_sweep(ds: &Dataset) -> Vec<(f64, usize, f64)> {
    let dc = crate::fig4::busiest_dc(ds);
    par_map_deterministic(&EXPORT_RATIOS, |_, &exporter_ratio| {
        let cfg = BalancerConfig {
            exporter_ratio,
            ..BalancerConfig::default()
        };
        let run = run_balancer(&ds.fleet, &ds.storage, dc, &cfg);
        let mean_cov = if run.cov_series.is_empty() {
            f64::NAN
        } else {
            run.cov_series.iter().sum::<f64>() / run.cov_series.len() as f64
        };
        (exporter_ratio, run.migrations, mean_cov)
    })
}

/// Sweep the frozen-cache placement threshold at 512 MiB blocks:
/// `(threshold, cacheable VDs, CN-count std, mean frozen hit ratio among
/// cacheable VDs)`.
pub fn cache_threshold_sweep(ds: &Dataset) -> Vec<(f64, usize, f64, f64)> {
    cache_threshold_sweep_with(ds, ds.index())
}

/// [`cache_threshold_sweep`] over the shared event index; every threshold
/// borrows the same per-VD views (no event copies).
pub fn cache_threshold_sweep_with(ds: &Dataset, idx: &EventIndex) -> Vec<(f64, usize, f64, f64)> {
    let bs = BLOCK_SIZES[3]; // 512 MiB
    let hot = crate::fig7::hot_map(idx, bs);
    par_map_deterministic(&CACHE_THRESHOLDS, |_, &threshold| {
        let vds = cacheable_vds(&hot, threshold);
        let counts = per_cn_counts(&ds.fleet, &hot, threshold);
        let mut ratios = Vec::new();
        for &vd in &vds {
            let hb = &hot[&vd];
            let mut policy = FrozenCache::covering_bytes(hb.block * hb.block_size, hb.block_size);
            if let Some(r) = simulate(&mut policy, idx.vd(vd)).ratio() {
                ratios.push(r);
            }
        }
        let mean_hit = if ratios.is_empty() {
            f64::NAN
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        };
        (threshold, vds.len(), std_dev(&counts), mean_hit)
    })
}

/// Run and render every sweep.
pub fn render(ds: &Dataset) -> String {
    render_with(ds, ds.index())
}

/// [`render`] over the shared event index. The four sweeps are
/// independent, so they run as parallel jobs; their tables concatenate in
/// the fixed ablation order regardless of which finishes first.
pub fn render_with(ds: &Dataset, idx: &EventIndex) -> String {
    type Job<'a> = Box<dyn FnOnce() -> String + Send + 'a>;
    let jobs: Vec<Job<'_>> = vec![
        Box::new(|| {
            let mut t = Table::new(["trigger ratio", "median rebind ratio", "nodes improved %"])
                .with_title("Ablation: rebind trigger ratio (§4.3)");
            for (r, med, imp) in rebind_trigger_sweep(ds) {
                t.row([
                    format!("{r:.1}"),
                    format!("{med:.3}"),
                    format!("{:.1}", imp * 100.0),
                ]);
            }
            t.render()
        }),
        Box::new(|| {
            let mut t = Table::new(["p", "positive gain %", "median gain"])
                .with_title("Ablation: lending rate (§5.3)");
            for (p, pos, med) in lending_rate_sweep(ds) {
                t.row([
                    format!("{p:.1}"),
                    format!("{:.1}", pos * 100.0),
                    format!("{med:.3}"),
                ]);
            }
            t.render()
        }),
        Box::new(|| {
            let mut t = Table::new(["exporter ratio", "migrations", "mean period CoV"])
                .with_title("Ablation: balancer exporter threshold (§6.1)");
            for (r, n, cov) in exporter_threshold_sweep(ds) {
                t.row([format!("{r:.1}"), n.to_string(), format!("{cov:.3}")]);
            }
            t.render()
        }),
        Box::new(|| {
            let mut t = Table::new([
                "threshold",
                "cacheable VDs",
                "CN count std",
                "mean frozen hit",
            ])
            .with_title("Ablation: frozen-cache placement threshold (§7.3, 512 MiB)");
            for (th, n, std, hit) in cache_threshold_sweep_with(ds, idx) {
                t.row([
                    format!("{th:.2}"),
                    n.to_string(),
                    format!("{std:.2}"),
                    format!("{hit:.3}"),
                ]);
            }
            t.render()
        }),
    ];
    ebs_core::parallel::par_jobs(jobs).join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};

    #[test]
    fn looser_trigger_rebinds_less() {
        let ds = dataset(Scale::Quick);
        let sweep = rebind_trigger_sweep(&ds);
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(
            last <= first + 1e-9,
            "trigger 2.0 must rebind no more than 1.1"
        );
    }

    #[test]
    fn higher_exporter_threshold_migrates_less() {
        let ds = dataset(Scale::Quick);
        let sweep = exporter_threshold_sweep(&ds);
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(last <= first, "threshold 2.0 must migrate no more than 1.1");
    }

    #[test]
    fn stricter_cache_threshold_shrinks_the_cacheable_set() {
        let ds = dataset(Scale::Quick);
        let sweep = cache_threshold_sweep(&ds);
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn lending_sweep_is_complete() {
        let ds = dataset(Scale::Quick);
        let sweep = lending_rate_sweep(&ds);
        assert_eq!(sweep.len(), LEND_RATES.len());
    }

    #[test]
    fn render_contains_all_sweeps() {
        let ds = dataset(Scale::Quick);
        let text = render(&ds);
        for tag in [
            "rebind trigger",
            "lending rate",
            "exporter threshold",
            "placement threshold",
        ] {
            assert!(text.contains(tag), "missing {tag}");
        }
    }
}
