//! Canonical scenarios for the reproduction harness.
//!
//! Every experiment binary runs against the same generated dataset so the
//! numbers across tables/figures are mutually consistent, exactly like the
//! paper's single 12-hour collection window.

use ebs_core::error::EbsError;
use ebs_stack::sim::{StackConfig, StackSim};
use ebs_stack::SimOutput;
use ebs_workload::{generate, resolve_shards, Dataset, WorkloadConfig};

/// Scenario scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny single-DC fleet over 30 minutes; used by tests and `--quick`.
    Quick,
    /// Two DCs over two hours; integration-test scale.
    Medium,
    /// The default three-DC, 12-hour scenario of DESIGN.md.
    Full,
}

impl Scale {
    /// Parse from CLI args: `--quick` or `--medium` anywhere selects the
    /// smaller scales; default is full.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--medium") {
            Scale::Medium
        } else {
            Scale::Full
        }
    }

    /// Parse a `--trace <path>` argument: the store file to replay from
    /// (or to create on the first run). `None` when the flag is absent.
    pub fn trace_path_from_args() -> Option<std::path::PathBuf> {
        let args: Vec<String> = std::env::args().collect();
        let at = args.iter().position(|a| a == "--trace")?;
        match args.get(at + 1) {
            Some(p) if !p.starts_with("--") => Some(std::path::PathBuf::from(p)),
            _ => {
                // ebs-lint: allow(D4) -- CLI usage error on behalf of the bins that share this helper
                eprintln!("--trace requires a path argument");
                std::process::exit(2);
            }
        }
    }

    /// Parse a `--shards <n>` argument: an explicit shard count for the
    /// sharded trace path. `None` when the flag is absent (callers fall
    /// back to [`ebs_workload::resolve_shards`], which consults
    /// `EBS_SHARDS` and then the thread count).
    pub fn shards_from_args() -> Option<usize> {
        let args: Vec<String> = std::env::args().collect();
        let at = args.iter().position(|a| a == "--shards")?;
        match args.get(at + 1).and_then(|p| p.parse::<usize>().ok()) {
            Some(n) if n > 0 => Some(n),
            _ => {
                // ebs-lint: allow(D4) -- CLI usage error on behalf of the bins that share this helper
                eprintln!("--shards requires a positive integer argument");
                std::process::exit(2);
            }
        }
    }

    /// The workload configuration for this scale.
    pub fn config(self, seed: u64) -> WorkloadConfig {
        match self {
            Scale::Quick => WorkloadConfig::quick(seed),
            Scale::Medium => WorkloadConfig::medium(seed),
            Scale::Full => WorkloadConfig {
                seed,
                ..WorkloadConfig::default()
            },
        }
    }
}

/// The master seed shared by all experiment binaries.
pub const EXPERIMENT_SEED: u64 = 0xEB5_2025;

/// Generate the canonical dataset at `scale`.
pub fn dataset(scale: Scale) -> Dataset {
    generate(&scale.config(EXPERIMENT_SEED)).expect("canonical config must validate")
}

/// The canonical dataset at `scale`, persisted at `path`.
///
/// If `path` exists the dataset is *replayed* from the store (no
/// generation); otherwise it is generated once and saved there for the
/// next run. Either way the returned dataset is identical to
/// [`dataset`]`(scale)` — the store round-trip is byte-exact — so every
/// experiment's output is unchanged by the flag. Status goes to stderr;
/// stdout stays reserved for experiment output.
///
/// A present-but-unreadable store (truncated, corrupt, version-skewed) is
/// a hard error: silently regenerating would mask data loss.
pub fn dataset_or_replay(scale: Scale, path: &std::path::Path) -> Result<Dataset, EbsError> {
    if path.exists() {
        let ds = Dataset::load(path)?;
        // ebs-lint: allow(D4) -- replay status for the bins; stdout stays reserved for experiment output
        eprintln!(
            "replayed {} events from {}",
            ds.trace_count(),
            path.display()
        );
        emit_store_stats(path);
        return Ok(ds);
    }
    let ds = dataset(scale);
    ds.save(path)?;
    // ebs-lint: allow(D4) -- first-run status for the bins; stdout stays reserved for experiment output
    eprintln!(
        "generated {} events and saved them to {}",
        ds.trace_count(),
        path.display()
    );
    emit_store_stats(path);
    Ok(ds)
}

/// The canonical dataset at `scale`, persisted as a *sharded* store in
/// the directory `dir` (see DESIGN.md §15).
///
/// The sharded analogue of [`dataset_or_replay`]: if `dir` holds a
/// manifest the shards are replayed (streamed shard-parallel, never
/// materializing more than one decode buffer per worker); otherwise the
/// dataset is generated shard-by-shard into `dir` with bounded memory
/// and then loaded back. Both paths return a dataset byte-identical to
/// [`dataset`]`(scale)` regardless of the shard count.
pub fn dataset_or_replay_sharded(
    scale: Scale,
    dir: &std::path::Path,
    shards: Option<usize>,
) -> Result<Dataset, EbsError> {
    if dir.join(ebs_store::MANIFEST_FILE).exists() {
        let ds = Dataset::load_sharded(dir)?;
        // ebs-lint: allow(D4) -- replay status for the bins; stdout stays reserved for experiment output
        eprintln!(
            "replayed {} events from sharded store {}",
            ds.trace_count(),
            dir.display()
        );
        return Ok(ds);
    }
    let config = scale.config(EXPERIMENT_SEED);
    let manifest = ebs_workload::generate_sharded(&config, dir, resolve_shards(shards), true)?;
    let ds = Dataset::load_sharded(dir)?;
    // ebs-lint: allow(D4) -- first-run status for the bins; stdout stays reserved for experiment output
    eprintln!(
        "generated {} events into {} shard(s) at {}",
        manifest.total_events(),
        manifest.shards.len(),
        dir.display()
    );
    Ok(ds)
}

/// Print the store's per-chunk and per-column byte accounting to stderr.
/// Best-effort: the store was just read or written successfully, so a
/// failing rescan only costs the stats lines, never the run.
fn emit_store_stats(path: &std::path::Path) {
    let Ok(file) = std::fs::File::open(path) else {
        return;
    };
    if let Ok(stats) = ebs_store::StoreStats::scan(std::io::BufReader::new(file)) {
        for line in stats.render() {
            // ebs-lint: allow(D4) -- replay accounting for the bins; stdout stays reserved for experiment output
            eprintln!("{line}");
        }
    }
}

/// Route the dataset's sampled events through the stack simulator,
/// producing the five-stage-latency trace set used by the cache-location
/// study. Throttling is disabled so latency percentiles reflect the device
/// path (the throttle study works on metric data instead).
pub fn stack_traces(ds: &Dataset) -> SimOutput {
    let cfg = StackConfig {
        apply_throttle: false,
        ..StackConfig::default()
    };
    let mut sim = StackSim::new(&ds.fleet, cfg);
    sim.run(&ds.events)
        .expect("generated events are time-sorted")
}

/// [`stack_traces`] reusing the shared [`ebs_core::EventIndex`]: the
/// route plan borrows the index's per-VD segment table instead of
/// re-deriving it, and event time-sortedness was already validated when
/// the index was built.
pub fn stack_traces_with(ds: &Dataset, idx: &ebs_core::EventIndex) -> SimOutput {
    let cfg = StackConfig {
        apply_throttle: false,
        ..StackConfig::default()
    };
    let sim = StackSim::new(&ds.fleet, cfg);
    let plan = sim
        .plan_with_index(&ds.events, idx)
        .expect("generated events are time-sorted");
    sim.run_planned(&ds.events, &plan)
        .expect("plan covers the event slice")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_is_reproducible() {
        let a = dataset(Scale::Quick);
        let b = dataset(Scale::Quick);
        assert_eq!(a.trace_count(), b.trace_count());
    }

    #[test]
    fn stack_traces_cover_all_events() {
        let ds = dataset(Scale::Quick);
        let out = stack_traces(&ds);
        assert_eq!(out.traces.len(), ds.events.len());
        assert_eq!(out.stats.throttled, 0);
    }

    #[test]
    fn scale_configs_validate() {
        for s in [Scale::Quick, Scale::Medium, Scale::Full] {
            s.config(1).validate().unwrap();
        }
    }
}
