//! Figure 6 — LBA hotspots (§7.1–7.2).
//!
//! (a) access rate of the hottest block vs block size; (b) the block's
//! share of the VD's LBA; (c) the hottest block's write-to-read ratio; (d)
//! the hot-rate distribution over 5-minute windows.

use crate::fig3::Dist;
use ebs_analysis::table::Table;
use ebs_analysis::wr_ratio::{READ_DOMINANT, WRITE_DOMINANT};
use ebs_cache::hottest_block::{
    hot_rate, hottest_block, HottestBlock, BLOCK_SIZES, HOT_RATE_WINDOW_US,
};
use ebs_core::ids::VdId;
use ebs_core::index::EventIndex;
use ebs_workload::Dataset;

/// Minimum sampled IOs for a VD to enter the per-VD statistics.
pub const MIN_EVENTS: usize = 50;

/// Per-block-size statistics across VDs.
#[derive(Clone, Debug)]
pub struct SizeRow {
    /// Block size in bytes.
    pub block_size: u64,
    /// Hottest-block access-rate distribution.
    pub access_rate: Dist,
    /// Median LBA share of the block.
    pub median_lba_share: f64,
    /// Fraction of hottest blocks that are write-dominant.
    pub write_dominant: f64,
    /// Fraction that are read-dominant.
    pub read_dominant: f64,
    /// Hot-rate distribution.
    pub hot_rate: Dist,
    /// VDs included.
    pub vds: usize,
}

/// The whole figure.
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// One row per block size.
    pub rows: Vec<SizeRow>,
}

/// Compute each VD's hottest block at `block_size`; only VDs with at least
/// [`MIN_EVENTS`] sampled IOs participate. Views are borrowed from the
/// dataset's shared event index — no partition is rebuilt here.
pub fn hottest_blocks(ds: &Dataset, block_size: u64) -> Vec<(HottestBlock, Vec<usize>)> {
    ds.index()
        .vd_slices()
        .into_iter()
        .enumerate()
        .filter(|(_, evs)| evs.len() >= MIN_EVENTS)
        .filter_map(|(i, evs)| {
            hottest_block(VdId::from_index(i), evs, block_size).map(|hb| (hb, vec![i]))
        })
        .collect()
}

/// Run the whole figure over the dataset's shared event index.
pub fn run(ds: &Dataset) -> Fig6 {
    run_with(ds, ds.index())
}

/// What one VD contributes to a [`SizeRow`].
struct VdStats {
    access_rate: f64,
    lba_share: f64,
    wr_ratio: Option<f64>,
    hot_rate: Option<f64>,
}

/// Run the whole figure over an explicit event index. VDs fan out in
/// parallel per block size over borrowed slices; their statistics fold in
/// VD order, so the rows match a serial pass exactly.
pub fn run_with(ds: &Dataset, idx: &EventIndex) -> Fig6 {
    let slices = idx.vd_slices();
    let mut rows = Vec::new();
    for &bs in &BLOCK_SIZES {
        let per_vd = ebs_core::parallel::par_map_deterministic(&slices, |i, evs| {
            if evs.len() < MIN_EVENTS {
                return None;
            }
            let vd = VdId::from_index(i);
            let hb = hottest_block(vd, evs, bs)?;
            Some(VdStats {
                access_rate: hb.access_rate,
                lba_share: hb.lba_share(ds.fleet.vds[vd].spec.capacity_bytes),
                wr_ratio: hb.wr_ratio(),
                hot_rate: hot_rate(evs, &hb, HOT_RATE_WINDOW_US, 3),
            })
        });
        let mut rates = Vec::new();
        let mut shares = Vec::new();
        let mut wd = 0usize;
        let mut rd = 0usize;
        let mut classified = 0usize;
        let mut hot_rates = Vec::new();
        for stats in per_vd.into_iter().flatten() {
            rates.push(stats.access_rate);
            shares.push(stats.lba_share);
            if let Some(r) = stats.wr_ratio {
                classified += 1;
                if r > WRITE_DOMINANT {
                    wd += 1;
                } else if r < READ_DOMINANT {
                    rd += 1;
                }
            }
            if let Some(hr) = stats.hot_rate {
                hot_rates.push(hr);
            }
        }
        rows.push(SizeRow {
            block_size: bs,
            access_rate: Dist::of(&rates),
            median_lba_share: ebs_analysis::median(&shares).unwrap_or(f64::NAN),
            write_dominant: if classified > 0 {
                wd as f64 / classified as f64
            } else {
                f64::NAN
            },
            read_dominant: if classified > 0 {
                rd as f64 / classified as f64
            } else {
                f64::NAN
            },
            hot_rate: Dist::of(&hot_rates),
            vds: rates.len(),
        });
    }
    Fig6 { rows }
}

/// Render all panels.
pub fn render(f: &Fig6) -> String {
    let mut tab = Table::new([
        "block size",
        "access rate p50",
        "LBA share p50",
        "write-dom %",
        "read-dom %",
        "hot rate p50",
        "VDs",
    ])
    .with_title("Figure 6: the hottest block per VD (a: access rate, b: LBA share, c: wr_ratio, d: hot rate)");
    for r in &f.rows {
        tab.row([
            ebs_core::units::format_bytes(r.block_size as f64),
            format!("{:.3}", r.access_rate.p50),
            format!("{:.4}", r.median_lba_share),
            format!("{:.1}", r.write_dominant * 100.0),
            format!("{:.1}", r.read_dominant * 100.0),
            format!("{:.3}", r.hot_rate.p50),
            r.vds.to_string(),
        ]);
    }
    tab.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};

    fn fig() -> Fig6 {
        run(&dataset(Scale::Medium))
    }

    #[test]
    fn hottest_block_outweighs_its_lba_share() {
        let f = fig();
        let row = &f.rows[0]; // 64 MiB
        assert!(row.vds > 5, "need enough busy VDs: {}", row.vds);
        // The paper's headline: a ~3% LBA share absorbing ~18% of accesses.
        assert!(
            row.access_rate.p50 > row.median_lba_share * 3.0,
            "access rate {:.3} vs LBA share {:.4}",
            row.access_rate.p50,
            row.median_lba_share
        );
    }

    #[test]
    fn access_rate_grows_with_block_size() {
        let f = fig();
        let first = f.rows.first().unwrap().access_rate.p50;
        let last = f.rows.last().unwrap().access_rate.p50;
        assert!(
            last >= first,
            "2048 MiB blocks must absorb at least as much"
        );
    }

    #[test]
    fn hottest_blocks_are_mostly_write_dominant() {
        let f = fig();
        let row = &f.rows[0];
        assert!(
            row.write_dominant > 0.5,
            "write-dominant {:.2}",
            row.write_dominant
        );
        assert!(row.read_dominant < row.write_dominant);
    }

    #[test]
    fn hot_rate_centers_near_half() {
        let f = fig();
        let row = &f.rows[0];
        assert!(row.hot_rate.n > 3, "need hot-rate samples");
        assert!(
            (0.25..=0.75).contains(&row.hot_rate.p50),
            "hot rate median {:.3} should sit near 0.5",
            row.hot_rate.p50
        );
    }

    #[test]
    fn render_lists_every_block_size() {
        let text = render(&fig());
        for label in ["64.00 MiB", "2.00 GiB"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
