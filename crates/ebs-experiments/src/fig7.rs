//! Figure 7 — cache across the EBS stack (§7.3).
//!
//! (a) hit ratios of FIFO / LRU / FrozenHot with the cache sized to the
//! hottest block; (b/c) latency gain of CN- vs BS-cache for reads and
//! writes; (d) cache-space utilization (cacheable-VD dispersion per node).

use crate::fig3::Dist;
use crate::fig6::MIN_EVENTS;
use ebs_analysis::table::Table;
use ebs_cache::hottest_block::{hottest_block, HottestBlock, BLOCK_SIZES};
use ebs_cache::location::{hit_oracle, latency_gain, CacheSite, LatencyGain};
use ebs_cache::simulate::{sweep_policies, Algorithm};
use ebs_cache::utilization::{per_bs_counts, per_cn_counts, std_dev, CACHEABLE_THRESHOLD};
use ebs_core::hash::{FxHashMap, FxHashSet};
use ebs_core::ids::VdId;
use ebs_core::index::EventIndex;
use ebs_core::io::Op;
use ebs_core::parallel::par_map_deterministic;
use ebs_stack::SimOutput;
use ebs_workload::Dataset;

/// Panel (a): one row per (algorithm, block size).
#[derive(Clone, Debug)]
pub struct HitRow {
    /// Algorithm.
    pub algo: Algorithm,
    /// Block size (cache size) in bytes.
    pub block_size: u64,
    /// Hit-ratio distribution across VDs.
    pub hit_ratio: Dist,
}

/// Panel (d): per-site dispersion of cacheable-VD counts.
#[derive(Clone, Debug)]
pub struct UtilRow {
    /// Block size.
    pub block_size: u64,
    /// Standard deviation of per-CN cacheable counts.
    pub cn_std: f64,
    /// Standard deviation of per-BS cacheable counts.
    pub bs_std: f64,
    /// Relative dispersion (std / mean) of per-CN counts — the fair
    /// comparison when CN and BS populations differ in size.
    pub cn_rel: f64,
    /// Relative dispersion of per-BS counts.
    pub bs_rel: f64,
    /// Total cacheable VDs.
    pub cacheable: usize,
}

/// The whole figure.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// Panel (a).
    pub a: Vec<HitRow>,
    /// Panels (b/c): `(site, op, gain)`.
    pub bc: Vec<(CacheSite, Op, LatencyGain)>,
    /// Panel (d).
    pub d: Vec<UtilRow>,
}

/// Hottest blocks of all sufficiently busy VDs at `block_size`, computed
/// over the shared event index's per-VD views (VDs fan out in parallel
/// over borrowed slices; the map's contents don't depend on scheduling).
pub fn hot_map(idx: &EventIndex, block_size: u64) -> FxHashMap<VdId, HottestBlock> {
    let slices = idx.vd_slices();
    par_map_deterministic(&slices, |i, evs| {
        if evs.len() < MIN_EVENTS {
            return None;
        }
        hottest_block(VdId::from_index(i), evs, block_size).map(|hb| (hb.vd, hb))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Panel (a): simulate the three policies per VD per block size. The policy
/// × capacity grid runs VDs in parallel over the shared event index —
/// no per-run event clones — and merges ratios in VD order.
pub fn panel_a(idx: &EventIndex) -> Vec<HitRow> {
    let slices = idx.vd_slices();
    let mut rows = Vec::new();
    for &bs in &BLOCK_SIZES {
        let per_vd = par_map_deterministic(&slices, |i, evs| {
            if evs.len() < MIN_EVENTS {
                return None;
            }
            let hb = hottest_block(VdId::from_index(i), evs, bs)?;
            Some(
                sweep_policies(&hb, evs)
                    .into_iter()
                    .filter_map(|(algo, stats)| stats.ratio().map(|r| (algo, r)))
                    .collect::<Vec<_>>(),
            )
        });
        let mut ratios: FxHashMap<Algorithm, Vec<f64>> = FxHashMap::default();
        for vd_ratios in per_vd.into_iter().flatten() {
            for (algo, r) in vd_ratios {
                ratios.entry(algo).or_default().push(r);
            }
        }
        for algo in Algorithm::ALL {
            rows.push(HitRow {
                algo,
                block_size: bs,
                hit_ratio: Dist::of(ratios.get(&algo).map(Vec::as_slice).unwrap_or(&[])),
            });
        }
    }
    rows
}

/// Panels (b/c): latency gains with frozen caches at the 2 GiB hottest
/// block (the size where FrozenHot matches LRU, per the paper's choice).
pub fn panel_bc(sim: &SimOutput, idx: &EventIndex) -> Vec<(CacheSite, Op, LatencyGain)> {
    let hot = hot_map(idx, 2048 << 20);
    // Gains are evaluated over the IOs of *cacheable* VDs — the disks a
    // deployment would actually equip with a cache; mixing in the cold
    // majority would only dilute every site identically.
    let cacheable: FxHashSet<VdId> = hot
        .iter()
        .filter(|(_, hb)| hb.access_rate >= CACHEABLE_THRESHOLD)
        .map(|(&vd, _)| vd)
        .collect();
    let records: Vec<_> = sim
        .traces
        .records()
        .iter()
        .filter(|r| cacheable.contains(&r.vd))
        .copied()
        .collect();
    let hits = hit_oracle(&hot, &records, CACHEABLE_THRESHOLD);
    let mut out = Vec::new();
    for site in CacheSite::ALL {
        for op in Op::ALL {
            if let Some(g) = latency_gain(&records, &hits, site, op) {
                out.push((site, op, g));
            }
        }
    }
    out
}

/// Panel (d): cacheable-VD dispersion per provisioning unit.
pub fn panel_d(ds: &Dataset, idx: &EventIndex) -> Vec<UtilRow> {
    BLOCK_SIZES
        .iter()
        .map(|&bs| {
            let hot = hot_map(idx, bs);
            let cn = per_cn_counts(&ds.fleet, &hot, CACHEABLE_THRESHOLD);
            let bsc = per_bs_counts(&ds.fleet, &hot, CACHEABLE_THRESHOLD, None);
            let rel = |counts: &[usize]| -> f64 {
                let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
                if mean > 0.0 {
                    std_dev(counts) / mean
                } else {
                    0.0
                }
            };
            UtilRow {
                block_size: bs,
                cn_std: std_dev(&cn),
                bs_std: std_dev(&bsc),
                cn_rel: rel(&cn),
                bs_rel: rel(&bsc),
                cacheable: cn.iter().sum(),
            }
        })
        .collect()
}

/// Run the whole figure over the dataset's shared event index (built on
/// first use, cached for every later section).
pub fn run(ds: &Dataset, sim: &SimOutput) -> Fig7 {
    run_with(ds, sim, ds.index())
}

/// Run the whole figure over an explicit event index, so a driver that
/// runs several figures shares one set of per-VD views.
pub fn run_with(ds: &Dataset, sim: &SimOutput, idx: &EventIndex) -> Fig7 {
    Fig7 {
        a: panel_a(idx),
        bc: panel_bc(sim, idx),
        d: panel_d(ds, idx),
    }
}

/// Render all panels.
pub fn render(f: &Fig7) -> String {
    let mut out = String::new();
    let mut a = Table::new(["algorithm", "block size", "hit ratio p25", "p50", "p75"])
        .with_title("Figure 7(a): cache hit ratio (cache sized to hottest block)");
    for r in &f.a {
        a.row([
            r.algo.label().to_string(),
            ebs_core::units::format_bytes(r.block_size as f64),
            format!("{:.3}", r.hit_ratio.p25),
            format!("{:.3}", r.hit_ratio.p50),
            format!("{:.3}", r.hit_ratio.p75),
        ]);
    }
    out.push_str(&a.render());

    let mut bc = Table::new(["site", "op", "gain p0", "gain p50", "gain p99"])
        .with_title("Figure 7(b/c): latency gain (with-cache / without, lower = better)");
    for (site, op, g) in &f.bc {
        bc.row([
            site.label().to_string(),
            op.to_string(),
            format!("{:.3}", g.p0),
            format!("{:.3}", g.p50),
            format!("{:.3}", g.p99),
        ]);
    }
    out.push('\n');
    out.push_str(&bc.render());

    let mut d = Table::new([
        "block size",
        "CN std",
        "BS std",
        "CN std/mean",
        "BS std/mean",
        "cacheable VDs",
    ])
    .with_title("Figure 7(d): cache space utilization (per-node cacheable-VD dispersion)");
    for r in &f.d {
        d.row([
            ebs_core::units::format_bytes(r.block_size as f64),
            format!("{:.2}", r.cn_std),
            format!("{:.2}", r.bs_std),
            format!("{:.2}", r.cn_rel),
            format!("{:.2}", r.bs_rel),
            r.cacheable.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&d.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, stack_traces, Scale};

    fn fig() -> Fig7 {
        let ds = dataset(Scale::Medium);
        let sim = stack_traces(&ds);
        run(&ds, &sim)
    }

    fn p50(f: &Fig7, algo: Algorithm, bs: u64) -> f64 {
        f.a.iter()
            .find(|r| r.algo == algo && r.block_size == bs)
            .map(|r| r.hit_ratio.p50)
            .unwrap()
    }

    #[test]
    fn fifo_and_lru_are_close() {
        let f = fig();
        for &bs in &BLOCK_SIZES {
            let fifo = p50(&f, Algorithm::Fifo, bs);
            let lru = p50(&f, Algorithm::Lru, bs);
            assert!(
                (fifo - lru).abs() < 0.1,
                "at {bs}: FIFO {fifo:.3} vs LRU {lru:.3}"
            );
        }
    }

    #[test]
    fn frozen_catches_up_at_large_blocks() {
        let f = fig();
        let small_gap = p50(&f, Algorithm::Lru, 64 << 20) - p50(&f, Algorithm::Frozen, 64 << 20);
        let large_gap =
            p50(&f, Algorithm::Lru, 2048 << 20) - p50(&f, Algorithm::Frozen, 2048 << 20);
        assert!(
            large_gap < small_gap + 0.02,
            "FrozenHot must close the gap: 64MiB gap {small_gap:.3}, 2GiB gap {large_gap:.3}"
        );
    }

    #[test]
    fn cn_cache_gains_more_than_bs_cache_on_writes() {
        let f = fig();
        let get = |site: CacheSite, op: Op| {
            f.bc.iter()
                .find(|(s, o, _)| *s == site && *o == op)
                .map(|(_, _, g)| *g)
        };
        let cn = get(CacheSite::ComputeNode, Op::Write).unwrap();
        let bs = get(CacheSite::BlockServer, Op::Write).unwrap();
        // §7.3.2: CN-cache beats BS-cache at the 0th and 50th percentile
        // for writes…
        assert!(cn.p0 < bs.p0, "CN p0 {:.3} vs BS p0 {:.3}", cn.p0, bs.p0);
        assert!(
            cn.p50 <= bs.p50 + 1e-9,
            "CN p50 {:.3} vs BS p50 {:.3}",
            cn.p50,
            bs.p50
        );
        // …and neither site fixes the 99th percentile.
        assert!(cn.p99 > 0.8, "p99 gain {:.3} should stay near 1", cn.p99);
        assert!(bs.p99 > 0.8, "p99 gain {:.3} should stay near 1", bs.p99);
    }

    #[test]
    fn bs_cache_disperses_less_than_cn_cache() {
        let f = fig();
        let large = f.d.last().unwrap();
        // CN and BS populations differ in size, so the fair comparison is
        // relative dispersion (std/mean) — the BS side must be tighter.
        assert!(
            large.bs_rel <= large.cn_rel,
            "BS std/mean {:.2} should not exceed CN std/mean {:.2}",
            large.bs_rel,
            large.cn_rel
        );
        assert!(large.cacheable > 0, "no cacheable VDs at 2 GiB");
    }

    #[test]
    fn render_mentions_every_algorithm_and_site() {
        let text = render(&fig());
        for label in ["FIFO", "LRU", "FrozenHot", "CN-cache", "BS-cache"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
