//! Fleet-scale sharded runs: size a workload config to a target VD count
//! and summarize skewness from a streamed sharded trace.
//!
//! The paper's fleet is ~60k VMs / ~140k VDs — far past what the
//! materialized [`ebs_workload::generate`] path reaches in memory. The
//! sharded pipeline (`ebs_workload::shard`, DESIGN.md §15) removes the
//! cap; this module supplies the two pieces an experiment at that scale
//! still needs: a config scaled to a requested VD count
//! ([`config_for_vds`]), and the paper's headline skewness statistics
//! (CCR, P2A, size quantiles) rendered from the merged
//! [`StreamSummary`] a sharded replay produces ([`skew_report`]) —
//! without ever materializing the trace.

use ebs_store::manifest::ShardManifest;
use ebs_store::StreamSummary;
use ebs_workload::WorkloadConfig;

/// Average VDs mounted per VM under the default application-class
/// profiles (Table 5 weights), used to size the VM population for a VD
/// target. The realized count lands within a few percent; exactness is
/// not required — reports print the realized fleet size.
const VDS_PER_VM: f64 = 2.0;

/// A config whose generated fleet holds approximately `target_vds`
/// virtual disks, over a `duration_secs` observation window.
///
/// Keeps the default three-DC topology and per-DC skew multipliers, and
/// scales the VM / compute-node / storage-node / tenant populations
/// together so hosting-capacity clamps do not silently shrink the fleet.
/// The window defaults short in callers (fleet-scale runs answer
/// population-skew questions, which need entities, not hours).
pub fn config_for_vds(target_vds: u64, seed: u64, duration_secs: f64) -> WorkloadConfig {
    let dc_count = 3u32;
    let per_dc = (target_vds as f64 / (f64::from(dc_count) * VDS_PER_VM)).ceil();
    let vms_per_dc = (per_dc as u32).max(8);
    WorkloadConfig {
        seed,
        dc_count,
        // Non-bare CNs host 2–8 VMs (mean ≈4.5) and 12% are bare-metal
        // single-VM nodes; a quarter of the VM count in CNs keeps the
        // capacity clamp comfortably slack.
        cns_per_dc: vms_per_dc.div_ceil(3).max(4),
        sns_per_dc: (vms_per_dc / 8).max(4),
        bss_per_sn: 1,
        users_per_dc: (vms_per_dc / 2).max(8),
        vms_per_dc,
        duration_secs,
        compute_tick_secs: 10.0,
        storage_tick_secs: 30.0,
        traffic_scale: 1.0,
        dc_skew: vec![1.0, 0.65, 1.15],
        whale_tenant: true,
    }
}

/// Render the paper's skewness statistics from a sharded replay:
/// deterministic text lines (stable across shard counts and thread
/// counts, because the merged summary is).
pub fn skew_report(manifest: &ShardManifest, summary: &StreamSummary) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!(
        "fleet: {} VDs across {} shard(s); {} sampled events, {} trace bytes",
        manifest.vd_count,
        manifest.shards.len(),
        summary.events(),
        summary.bytes()
    ));
    out.push(format!(
        "ccr: top 1% of VDs carry {} of traffic | top 10% carry {} | top 20% carry {} | top 50% carry {}",
        pct(summary.ccr(0.01)),
        pct(summary.ccr(0.1)),
        pct(summary.ccr(0.2)),
        pct(summary.ccr(0.5)),
    ));
    out.push(format!(
        "p2a: {} over {} ticks of {}s",
        num(summary.p2a()),
        manifest.ticks,
        manifest.tick_secs
    ));
    out.push(format!(
        "sizes: p50 {} | p90 {} | p99 {} bytes; <=4KiB {} | <=64KiB {}",
        num(summary.size_quantile(0.5)),
        num(summary.size_quantile(0.9)),
        num(summary.size_quantile(0.99)),
        pct(summary.size_cdf_at(4096.0)),
        pct(summary.size_cdf_at(65536.0)),
    ));
    out
}

/// Format an optional fraction as a percentage.
fn pct(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_string(), |v| format!("{:.3}%", v * 100.0))
}

/// Format an optional value with stable precision.
fn num(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_string(), |v| format!("{v:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workload::{build_fleet, generate_sharded, replay_summary};

    #[test]
    fn config_scales_to_the_requested_fleet() {
        for target in [200u64, 2_000] {
            let config = config_for_vds(target, 7, 900.0);
            config.validate().unwrap();
            let fleet = build_fleet(&config).unwrap();
            let got = fleet.vd_count() as f64;
            assert!(
                (got - target as f64).abs() / (target as f64) < 0.35,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn skew_report_is_deterministic_and_complete() {
        let config = config_for_vds(120, 9, 600.0);
        let mut dir = std::env::temp_dir();
        dir.push(format!("ebs-fleetscale-test-{}", std::process::id()));
        let mut reports = Vec::new();
        for shards in [1usize, 4] {
            std::fs::remove_dir_all(&dir).ok();
            generate_sharded(&config, &dir, shards, false).unwrap();
            let (manifest, summary) = replay_summary(&dir).unwrap();
            let mut lines = skew_report(&manifest, &summary);
            // The shard count is allowed to differ between runs; mask it.
            lines[0] = lines[0].replace(&format!("{} shard(s)", shards), "N shard(s)");
            reports.push(lines);
        }
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(reports[0], reports[1]);
        assert!(reports[0].iter().all(|l| !l.contains("n/a")), "{reports:?}");
    }
}
