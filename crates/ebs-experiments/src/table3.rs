//! Table 3 — baseline skewness statistics: 1 %-CCR, 20 %-CCR, and 50 %ile
//! P2A at the CN / VM / SN / Segment levels, per data center, read/write.

use ebs_analysis::aggregate::{rollup_compute, rollup_storage, ComputeLevel, StorageLevel};
use ebs_analysis::table::{pct, rw_pair, Table};
use ebs_analysis::{ccr, median, p2a};
use ebs_core::ids::DcId;
use ebs_core::io::Op;
use ebs_core::metric::Measure;
use ebs_workload::Dataset;

/// One cell group: CCR at 1 % and 20 %, and the median per-entity P2A.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelStats {
    /// 1 %-CCR in `[0, 1]`.
    pub ccr1: f64,
    /// 20 %-CCR in `[0, 1]`.
    pub ccr20: f64,
    /// 50 %ile of per-entity P2A.
    pub p2a50: f64,
    /// Number of entities at this level with traffic.
    pub entities: usize,
}

impl LevelStats {
    /// 1 %-CCR divided by its uniform-traffic baseline
    /// (`ceil(0.01·n)/n`) — a scale-free skewness score that stays
    /// comparable between levels with very different entity counts.
    pub fn ccr1_excess(&self) -> f64 {
        let n = self.entities.max(1) as f64;
        let baseline = (0.01 * n).ceil().max(1.0) / n;
        self.ccr1 / baseline
    }
}

/// The four aggregation levels of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Level {
    /// Compute node.
    Cn,
    /// Virtual machine.
    Vm,
    /// Storage node.
    Sn,
    /// Segment.
    Seg,
}

impl Level {
    /// Table row order.
    pub const ALL: [Level; 4] = [Level::Cn, Level::Vm, Level::Sn, Level::Seg];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Level::Cn => "CN",
            Level::Vm => "VM",
            Level::Sn => "SN",
            Level::Seg => "Seg",
        }
    }
}

/// Compute the stats for one (DC, level, op) cell.
pub fn level_stats(ds: &Dataset, dc: DcId, level: Level, op: Op) -> Option<LevelStats> {
    let fleet = &ds.fleet;
    let measure = Measure::bytes(op);
    let roll = match level {
        Level::Cn => rollup_compute(fleet, &ds.compute, ComputeLevel::Cn, measure, |qp| {
            fleet.compute_nodes[fleet.cn_of_qp(qp)].dc == dc
        }),
        Level::Vm => rollup_compute(fleet, &ds.compute, ComputeLevel::Vm, measure, |qp| {
            fleet.compute_nodes[fleet.cn_of_qp(qp)].dc == dc
        }),
        Level::Sn => rollup_storage(fleet, &ds.storage, StorageLevel::Sn, measure, None, |seg| {
            fleet.dc_of_seg(seg) == dc
        }),
        Level::Seg => rollup_storage(
            fleet,
            &ds.storage,
            StorageLevel::Seg,
            measure,
            None,
            |seg| fleet.dc_of_seg(seg) == dc,
        ),
    };
    let totals = roll.totals();
    let ccr1 = ccr(&totals, 0.01)?;
    let ccr20 = ccr(&totals, 0.20)?;
    let p2as: Vec<f64> = roll.series.iter().filter_map(|(_, s)| p2a(s)).collect();
    let p2a50 = median(&p2as)?;
    Some(LevelStats {
        ccr1,
        ccr20,
        p2a50,
        entities: totals.len(),
    })
}

/// Full Table 3: `stats[dc][level] = (read, write)`.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// DC names in order.
    pub dcs: Vec<String>,
    /// `per_dc[dc][level_idx] = (read_stats, write_stats)`.
    pub per_dc: Vec<Vec<(Option<LevelStats>, Option<LevelStats>)>>,
}

/// Compute Table 3 for every DC.
pub fn run(ds: &Dataset) -> Table3 {
    let dcs: Vec<String> = ds.fleet.dcs.iter().map(|d| d.name.clone()).collect();
    let per_dc = (0..dcs.len())
        .map(|i| {
            let dc = DcId::from_index(i);
            Level::ALL
                .iter()
                .map(|&lvl| {
                    (
                        level_stats(ds, dc, lvl, Op::Read),
                        level_stats(ds, dc, lvl, Op::Write),
                    )
                })
                .collect()
        })
        .collect();
    Table3 { dcs, per_dc }
}

/// Render the paper-style table (one block per DC).
pub fn render(t: &Table3) -> String {
    let mut out = String::new();
    for (i, dc) in t.dcs.iter().enumerate() {
        let mut tab = Table::new([
            "Agg. level",
            "1%-CCR (R/W)",
            "20%-CCR (R/W)",
            "50%ile P2A (R/W)",
        ])
        .with_title(format!("Table 3 — {dc}"));
        for (k, &lvl) in Level::ALL.iter().enumerate() {
            let (r, w) = &t.per_dc[i][k];
            let cell = |f: &dyn Fn(&LevelStats) -> String| {
                rw_pair(
                    r.as_ref().map(f).unwrap_or_else(|| "-".into()),
                    w.as_ref().map(f).unwrap_or_else(|| "-".into()),
                )
            };
            tab.row([
                lvl.label().to_string(),
                cell(&|s| pct(s.ccr1)),
                cell(&|s| pct(s.ccr20)),
                cell(&|s| format!("{:.1}", s.p2a50)),
            ]);
        }
        out.push_str(&tab.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};

    #[test]
    fn table3_reproduces_the_headline_shapes() {
        let ds = dataset(Scale::Medium);
        let t = run(&ds);
        for (i, dc) in t.dcs.iter().enumerate() {
            let vm = &t.per_dc[i][1];
            let (vm_r, vm_w) = (vm.0.unwrap(), vm.1.unwrap());
            // Observation 1: VM-level read CCR far above the prior-work
            // 16.6 % figure.
            assert!(vm_r.ccr1 > 0.166, "{dc}: VM read 1%-CCR {:.3}", vm_r.ccr1);
            // Observation 2: read skewness above write skewness.
            assert!(vm_r.ccr1 > vm_w.ccr1, "{dc}: read vs write CCR");
            assert!(vm_r.p2a50 > vm_w.p2a50, "{dc}: read vs write P2A");
            // SN is the least skewed level (Table 3's striking contrast).
            // Entity counts differ wildly between levels at our scale, so
            // compare skew relative to each level's uniform baseline.
            let sn = t.per_dc[i][2].0.unwrap();
            assert!(
                sn.ccr1_excess() < vm_r.ccr1_excess(),
                "{dc}: SN skew excess {:.1} must be below VM's {:.1}",
                sn.ccr1_excess(),
                vm_r.ccr1_excess()
            );
        }
    }

    #[test]
    fn ccr_columns_are_ordered() {
        let ds = dataset(Scale::Quick);
        let t = run(&ds);
        for per_level in &t.per_dc {
            for (r, w) in per_level {
                for s in [r, w].into_iter().flatten() {
                    assert!(s.ccr20 >= s.ccr1);
                    assert!(s.ccr1 > 0.0 && s.ccr20 <= 1.0);
                    assert!(s.p2a50 >= 1.0);
                }
            }
        }
    }

    #[test]
    fn render_produces_one_block_per_dc() {
        let ds = dataset(Scale::Quick);
        let t = run(&ds);
        let text = render(&t);
        assert_eq!(text.matches("Table 3 —").count(), t.dcs.len());
        assert!(text.contains("Seg"));
    }
}
