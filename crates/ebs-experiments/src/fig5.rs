//! Figure 5 — balanced write but skewed read (§6.2).
//!
//! (a) read-CoV vs write-CoV per storage-cluster sample; (b) histogram of
//! the per-cluster median |wr_ratio| of the top-traffic segments; (c)
//! per-period read/write CoV under Write-Only vs Write-then-Read
//! migration.

use ebs_analysis::aggregate::{rollup_storage, StorageLevel};
use ebs_analysis::table::Table;
use ebs_analysis::{median, normalized_cov, wr_ratio, Histogram};
use ebs_balance::bs_balancer::BalancerConfig;
use ebs_balance::importer::ImporterSelect;
use ebs_balance::read_write::{run_scheme, MigrationScheme};
use ebs_core::metric::Measure;
use ebs_workload::Dataset;

/// One scatter point of panel (a): a (cluster, time-slice) sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CovPoint {
    /// Normalized CoV of per-BS write traffic.
    pub write_cov: f64,
    /// Normalized CoV of per-BS read traffic.
    pub read_cov: f64,
    /// The slice's total write traffic (the figure's color dimension).
    pub write_traffic: f64,
}

/// The whole figure.
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// Panel (a) scatter points.
    pub a: Vec<CovPoint>,
    /// Fraction of points with read CoV ≥ write CoV.
    pub above_diagonal: f64,
    /// Panel (b): histogram fractions over |wr_ratio| ∈ [0, 1] (10 bins).
    pub b: Vec<f64>,
    /// Fraction of clusters with median |wr_ratio| > 0.9.
    pub b_above_09: f64,
    /// Panel (c): median per-period CoV `(write-only W, write-only R,
    /// write-then-read W, write-then-read R)`.
    pub c: (f64, f64, f64, f64),
}

/// Panel (a): one point per (DC, hour slice) — slicing time multiplies the
/// cluster sample the way the paper's many clusters do.
pub fn panel_a(ds: &Dataset) -> Vec<CovPoint> {
    let fleet = &ds.fleet;
    let ticks = ds.storage.ticks;
    // Slice width: an hour, but at least 8 slices per window so small
    // test scenarios still yield a scatter.
    let slice_secs = (ticks.total_secs() / 8.0).min(3600.0).max(ticks.tick_secs);
    let slice_ticks = ticks.ticks_per_window(slice_secs) as usize;
    let mut points = Vec::new();
    for dc in fleet.dcs.iter() {
        let read = rollup_storage(
            fleet,
            &ds.storage,
            StorageLevel::Bs,
            Measure::ReadBytes,
            None,
            |seg| fleet.dc_of_seg(seg) == dc.id,
        );
        let write = rollup_storage(
            fleet,
            &ds.storage,
            StorageLevel::Bs,
            Measure::WriteBytes,
            None,
            |seg| fleet.dc_of_seg(seg) == dc.id,
        );
        if read.is_empty() || write.is_empty() {
            continue;
        }
        let n_slices = (ticks.ticks as usize).div_ceil(slice_ticks);
        for s in 0..n_slices {
            let span = |series: &[f64]| -> f64 {
                series[s * slice_ticks..((s + 1) * slice_ticks).min(series.len())]
                    .iter()
                    .sum()
            };
            let w: Vec<f64> = write.series.iter().map(|(_, x)| span(x)).collect();
            let r: Vec<f64> = read.series.iter().map(|(_, x)| span(x)).collect();
            if let (Some(wc), Some(rc)) = (normalized_cov(&w), normalized_cov(&r)) {
                points.push(CovPoint {
                    write_cov: wc,
                    read_cov: rc,
                    write_traffic: w.iter().sum(),
                });
            }
        }
    }
    points
}

/// Panel (b): per cluster, the median |wr_ratio| over the segments that
/// cumulatively contribute 80 % of its traffic.
pub fn panel_b(ds: &Dataset) -> Vec<f64> {
    let fleet = &ds.fleet;
    let mut medians = Vec::new();
    for dc in fleet.dcs.iter() {
        // Per-segment totals (read, write).
        let mut segs: Vec<(f64, f64)> = Vec::new();
        for (i, series) in ds.storage.per_seg.iter().enumerate() {
            let seg = ebs_core::ids::SegId::from_index(i);
            if series.is_empty() || fleet.dc_of_seg(seg) != dc.id {
                continue;
            }
            let t = series.total();
            segs.push((t.read.bytes, t.write.bytes));
        }
        // Keep the top contributors to 80 % of traffic.
        segs.sort_by(|a, b| (b.0 + b.1).partial_cmp(&(a.0 + a.1)).expect("no NaNs"));
        let total: f64 = segs.iter().map(|(r, w)| r + w).sum();
        let mut acc = 0.0;
        let mut ratios = Vec::new();
        for (r, w) in &segs {
            if acc > 0.8 * total {
                break;
            }
            acc += r + w;
            if let Some(x) = wr_ratio(*w, *r) {
                ratios.push(x.abs());
            }
        }
        if let Some(m) = median(&ratios) {
            medians.push(m);
        }
    }
    medians
}

/// Run the whole figure.
pub fn run(ds: &Dataset) -> Fig5 {
    let a = panel_a(ds);
    let above = if a.is_empty() {
        f64::NAN
    } else {
        a.iter().filter(|p| p.read_cov >= p.write_cov).count() as f64 / a.len() as f64
    };
    let b_medians = panel_b(ds);
    let mut hist = Histogram::new(0.0, 1.0001, 10);
    hist.extend(b_medians.iter().copied());
    let b_above = if b_medians.is_empty() {
        f64::NAN
    } else {
        b_medians.iter().filter(|&&m| m > 0.9).count() as f64 / b_medians.len() as f64
    };

    // Panel (c): busiest cluster, Ideal importer (the paper's setup).
    let dc = crate::fig4::busiest_dc(ds);
    let cfg = BalancerConfig {
        strategy: ImporterSelect::Ideal,
        ..BalancerConfig::default()
    };
    let wo = run_scheme(&ds.fleet, &ds.storage, dc, MigrationScheme::WriteOnly, &cfg);
    let wr = run_scheme(
        &ds.fleet,
        &ds.storage,
        dc,
        MigrationScheme::WriteThenRead,
        &cfg,
    );
    let c = (
        median(&wo.write).unwrap_or(f64::NAN),
        median(&wo.read).unwrap_or(f64::NAN),
        median(&wr.write).unwrap_or(f64::NAN),
        median(&wr.read).unwrap_or(f64::NAN),
    );
    Fig5 {
        a,
        above_diagonal: above,
        b: hist.fractions(),
        b_above_09: b_above,
        c,
    }
}

/// Render all panels.
pub fn render(f: &Fig5) -> String {
    let mut out = String::new();
    let mut a = Table::new(["write CoV", "read CoV", "write traffic"])
        .with_title("Figure 5(a): per-cluster-slice read vs write CoV");
    for p in &f.a {
        a.row([
            format!("{:.3}", p.write_cov),
            format!("{:.3}", p.read_cov),
            ebs_core::units::format_bytes(p.write_traffic),
        ]);
    }
    out.push_str(&a.render());
    out.push_str(&format!(
        "points with read CoV >= write CoV: {:.1}%\n",
        f.above_diagonal * 100.0
    ));

    let mut b = Table::new(["|wr_ratio| bin", "fraction of clusters"])
        .with_title("Figure 5(b): median |wr_ratio| of top-traffic segments");
    for (i, frac) in f.b.iter().enumerate() {
        b.row([
            format!("{:.1}-{:.1}", i as f64 / 10.0, (i + 1) as f64 / 10.0),
            format!("{frac:.2}"),
        ]);
    }
    out.push('\n');
    out.push_str(&b.render());
    out.push_str(&format!(
        "clusters with median |wr_ratio| > 0.9: {:.1}%\n",
        f.b_above_09 * 100.0
    ));

    let mut c = Table::new(["scheme", "median write CoV", "median read CoV"])
        .with_title("Figure 5(c): Write-Only vs Write-then-Read migration");
    c.row([
        "Write-Only".to_string(),
        format!("{:.3}", f.c.0),
        format!("{:.3}", f.c.1),
    ]);
    c.row([
        "Write-then-Read".to_string(),
        format!("{:.3}", f.c.2),
        format!("{:.3}", f.c.3),
    ]);
    out.push('\n');
    out.push_str(&c.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};

    #[test]
    fn reads_skew_harder_than_writes_across_clusters() {
        let ds = dataset(Scale::Medium);
        let f = run(&ds);
        assert!(!f.a.is_empty());
        assert!(
            f.above_diagonal >= 0.5,
            "points above the diagonal: {:.2}",
            f.above_diagonal
        );
        // And the average gap favours reads.
        let mean_gap: f64 =
            f.a.iter().map(|p| p.read_cov - p.write_cov).sum::<f64>() / f.a.len() as f64;
        assert!(mean_gap > 0.0, "mean read-write CoV gap {mean_gap:.3}");
    }

    #[test]
    fn segments_are_single_sided() {
        let ds = dataset(Scale::Medium);
        let f = run(&ds);
        // The mass of the |wr_ratio| histogram sits in the top bins
        // (|wr_ratio| ≥ 0.7: traffic at least 5.7x one-sided).
        let top: f64 = f.b[7] + f.b[8] + f.b[9];
        assert!(top > 0.5, "top-bin mass {top:.2} (hist {:?})", f.b);
        assert!(f.b_above_09 >= 0.0);
    }

    #[test]
    fn read_pass_does_not_hurt_write_and_keeps_read_in_noise() {
        let ds = dataset(Scale::Medium);
        let f = run(&ds);
        let (wo_w, wo_r, wr_w, wr_r) = f.c;
        assert!(
            wr_w <= wo_w * 1.05,
            "write CoV must not degrade: {wo_w:.3} → {wr_w:.3}"
        );
        assert!(
            wr_r <= wo_r * 1.08,
            "read CoV outside noise band: {wo_r:.3} → {wr_r:.3}"
        );
    }

    #[test]
    fn render_has_three_panels() {
        let ds = dataset(Scale::Quick);
        let text = render(&run(&ds));
        for tag in ["5(a)", "5(b)", "5(c)"] {
            assert!(text.contains(tag));
        }
    }
}
