//! Table 2 — high-level summary of the collected datasets.

use ebs_analysis::table::Table;
use ebs_core::units::format_bytes;
use ebs_workload::{summarize, Dataset};

/// The rows of Table 2.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Users / VMs / VDs.
    pub users: usize,
    /// Virtual machines.
    pub vms: usize,
    /// Virtual disks.
    pub vds: usize,
    /// Median and max VMs per user.
    pub vms_per_user: (f64, usize),
    /// Median and max VDs per user.
    pub vds_per_user: (f64, usize),
    /// Total write / read traffic in bytes (full population).
    pub write_bytes: f64,
    /// Total read traffic in bytes.
    pub read_bytes: f64,
    /// Total write / read sampled traces.
    pub write_traces: usize,
    /// Read sampled traces.
    pub read_traces: usize,
}

/// Compute Table 2 from a dataset.
pub fn run(ds: &Dataset) -> Table2 {
    let s = summarize(&ds.fleet);
    let (read_bytes, write_bytes) = ds.total_bytes();
    let (read_traces, write_traces) = ds.trace_rw_counts();
    Table2 {
        users: s.users,
        vms: s.vms,
        vds: s.vds,
        vms_per_user: (s.median_vms_per_user, s.max_vms_per_user),
        vds_per_user: (s.median_vds_per_user, s.max_vds_per_user),
        write_bytes,
        read_bytes,
        write_traces,
        read_traces,
    }
}

/// Render in the paper's statistic/value format.
pub fn render(t: &Table2) -> String {
    let mut tab = Table::new(["Statistic", "Value"])
        .with_title("Table 2: high-level summary of the collected datasets");
    tab.row([
        "Total number of user / VM / VD".to_string(),
        format!("{} / {} / {}", t.users, t.vms, t.vds),
    ]);
    tab.row([
        "Median / Max number of VM per user".to_string(),
        format!("{} / {}", t.vms_per_user.0, t.vms_per_user.1),
    ]);
    tab.row([
        "Median / Max number of VD per user".to_string(),
        format!("{} / {}", t.vds_per_user.0, t.vds_per_user.1),
    ]);
    tab.row([
        "Total write / read traffic".to_string(),
        format!(
            "{} / {}",
            format_bytes(t.write_bytes),
            format_bytes(t.read_bytes)
        ),
    ]);
    tab.row([
        "Total write / read trace (sampled 1/3200)".to_string(),
        format!("{} / {}", t.write_traces, t.read_traces),
    ]);
    tab.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};

    #[test]
    fn table2_shape_holds() {
        let ds = dataset(Scale::Quick);
        let t = run(&ds);
        assert!(t.users > 0 && t.vms >= t.users.min(t.vms));
        assert!(t.vds >= t.vms, "VMs mount at least one disk each");
        // Write dominance in both volume and trace count (Table 2).
        assert!(t.write_bytes > t.read_bytes);
        assert!(t.write_traces > t.read_traces);
        // Ownership skew: max ≫ median.
        assert!(t.vms_per_user.1 as f64 >= t.vms_per_user.0);
        let text = render(&t);
        assert!(text.contains("Table 2"));
        assert!(text.lines().count() >= 7);
    }
}
