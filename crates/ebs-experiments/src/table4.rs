//! Table 4 — skewness statistics by VM application class.

use ebs_analysis::aggregate::{rollup_compute, ComputeLevel};
use ebs_analysis::ccr;
use ebs_analysis::table::{pct, rw_pair, Table};
use ebs_core::apps::AppClass;
use ebs_core::io::Op;
use ebs_core::metric::Measure;
use ebs_workload::Dataset;

/// One row of Table 4.
#[derive(Clone, Copy, Debug)]
pub struct AppRow {
    /// The application class.
    pub app: AppClass,
    /// 1 %-CCR (read, write) at the VM level within the class.
    pub ccr1: (f64, f64),
    /// 20 %-CCR (read, write).
    pub ccr20: (f64, f64),
    /// Share of fleet traffic (read, write).
    pub share: (f64, f64),
}

/// Compute Table 4.
pub fn run(ds: &Dataset) -> Vec<AppRow> {
    let fleet = &ds.fleet;
    let totals_for = |app: AppClass, op: Op| -> Vec<f64> {
        rollup_compute(
            fleet,
            &ds.compute,
            ComputeLevel::Vm,
            Measure::bytes(op),
            |qp| fleet.vms[fleet.vm_of_qp(qp)].app == app,
        )
        .totals()
    };
    let fleet_read: f64 = ds.total_bytes().0;
    let fleet_write: f64 = ds.total_bytes().1;
    AppClass::ALL
        .iter()
        .map(|&app| {
            let r = totals_for(app, Op::Read);
            let w = totals_for(app, Op::Write);
            let sum = |v: &[f64]| v.iter().sum::<f64>();
            AppRow {
                app,
                ccr1: (
                    ccr(&r, 0.01).unwrap_or(f64::NAN),
                    ccr(&w, 0.01).unwrap_or(f64::NAN),
                ),
                ccr20: (
                    ccr(&r, 0.20).unwrap_or(f64::NAN),
                    ccr(&w, 0.20).unwrap_or(f64::NAN),
                ),
                share: (sum(&r) / fleet_read, sum(&w) / fleet_write),
            }
        })
        .collect()
}

/// Render the paper-style rows.
pub fn render(rows: &[AppRow]) -> String {
    let mut tab = Table::new([
        "App.",
        "1%-CCR (R/W)",
        "20%-CCR (R/W)",
        "Traffic share % (R/W)",
    ])
    .with_title("Table 4: skewness statistics by types of VM application");
    for r in rows {
        tab.row([
            r.app.label().to_string(),
            rw_pair(pct(r.ccr1.0), pct(r.ccr1.1)),
            rw_pair(pct(r.ccr20.0), pct(r.ccr20.1)),
            rw_pair(pct(r.share.0), pct(r.share.1)),
        ]);
    }
    tab.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};

    #[test]
    fn bigdata_leads_share_docker_leads_skew() {
        let ds = dataset(Scale::Medium);
        let rows = run(&ds);
        let get = |app: AppClass| rows.iter().find(|r| r.app == app).copied().unwrap();
        let bd = get(AppClass::BigData);
        // BigData carries the largest traffic share…
        for r in &rows {
            if r.app != AppClass::BigData {
                assert!(
                    bd.share.1 >= r.share.1,
                    "BigData write share {:.3} below {} {:.3}",
                    bd.share.1,
                    r.app,
                    r.share.1
                );
            }
        }
        // …and is the least skewed class on reads (Table 4's contrast).
        for r in &rows {
            if r.app != AppClass::BigData && r.ccr1.0.is_finite() {
                assert!(
                    bd.ccr1.0 <= r.ccr1.0 + 0.12,
                    "BigData read CCR {:.3} should be smallest-ish; {} has {:.3}",
                    bd.ccr1.0,
                    r.app,
                    r.ccr1.0
                );
            }
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let ds = dataset(Scale::Quick);
        let rows = run(&ds);
        let r: f64 = rows.iter().map(|x| x.share.0).sum();
        let w: f64 = rows.iter().map(|x| x.share.1).sum();
        assert!((r - 1.0).abs() < 1e-6, "read shares sum to {r}");
        assert!((w - 1.0).abs() < 1e-6, "write shares sum to {w}");
    }

    #[test]
    fn render_includes_all_classes() {
        let ds = dataset(Scale::Quick);
        let text = render(&run(&ds));
        for app in AppClass::ALL {
            assert!(text.contains(app.label()), "{app} missing");
        }
    }
}
