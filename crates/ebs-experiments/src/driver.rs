//! The experiment driver: every table and figure of the reproduction as a
//! deterministic parallel job graph.
//!
//! `bin/all` used to run eleven sections back to back; they are almost all
//! independent, so the driver fans them out on the [`ebs_core::parallel`]
//! pool instead. Two properties hold regardless of thread count:
//!
//! * **Shared inputs are borrowed, never cloned.** The dataset, its shared
//!   [`ebs_core::EventIndex`] (built once, zero event copies), and the
//!   stack simulation output are each produced once and lent to every job.
//! * **Output is canonical.** Each job is tagged with its print position;
//!   the driver reassembles sections in the order the serial harness
//!   printed them, no matter which job finishes first.
//!
//! The only real dependency is honored as a phase split: Figure 7 and the
//! extensions consume the simulated latency traces, so they wait for the
//! stack simulation; everything else — including the ablation sweeps and
//! the simulation itself — runs in the first wave.

use crate::scenario::stack_traces_with;
use crate::{ablations, extensions, fig2, fig3, fig4, fig5, fig6, fig7, table2, table3, table4};
use ebs_core::parallel::par_jobs;
use ebs_stack::SimOutput;
use ebs_workload::Dataset;
use std::sync::Mutex;

/// A section's canonical print position paired with its rendered text.
type Section = (usize, String);

/// Render every section of `bin/all` over `ds`, returning the texts in
/// canonical print order. Parallel across sections (and, inside each
/// section, across its parameter grid), yet byte-identical to the serial
/// harness at any thread count.
pub fn run_all(ds: &Dataset) -> Vec<String> {
    let run_started = ebs_obs::stopwatch();
    let whole_run = ebs_obs::timer("driver.run_all");
    // Build the shared event index up front (one pass over the events);
    // every section that needs a per-VD view borrows slices from it.
    let idx = ds.index();

    type Job<'a> = Box<dyn FnOnce() -> Option<Section> + Send + 'a>;

    /// Run one section under a named stage timer (a no-op when `EBS_OBS`
    /// is off — no clock is read and no label string is built).
    fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
        let _span = ebs_obs::enabled().then(|| ebs_obs::timer(&format!("driver.section.{name}")));
        f()
    }

    // Wave 1: everything that only needs the dataset, plus the stack
    // simulation that wave 2 consumes.
    let sim_slot: Mutex<Option<SimOutput>> = Mutex::new(None);
    let wave1: Vec<Job<'_>> = vec![
        Box::new(|| Some((0, timed("table2", || table2::render(&table2::run(ds)))))),
        Box::new(|| Some((1, timed("table3", || table3::render(&table3::run(ds)))))),
        Box::new(|| Some((2, timed("table4", || table4::render(&table4::run(ds)))))),
        Box::new(|| Some((3, timed("fig2", || fig2::render(&fig2::run(ds)))))),
        Box::new(|| Some((4, timed("fig3", || fig3::render(&fig3::run(ds)))))),
        Box::new(|| Some((5, timed("fig4", || fig4::render(&fig4::run(ds)))))),
        Box::new(|| Some((6, timed("fig5", || fig5::render(&fig5::run(ds)))))),
        Box::new(|| Some((7, timed("fig6", || fig6::render(&fig6::run_with(ds, idx)))))),
        Box::new(|| Some((9, timed("ablations", || ablations::render_with(ds, idx))))),
        Box::new(|| {
            *sim_slot.lock().expect("sim slot") =
                Some(timed("stack_sim", || stack_traces_with(ds, idx)));
            None
        }),
    ];
    let mut sections: Vec<Section> = par_jobs(wave1).into_iter().flatten().collect();

    // Wave 2: the sections that consume the simulated traces.
    let sim = sim_slot
        .into_inner()
        .expect("sim slot")
        .expect("sim job ran in wave 1");
    let sim = &sim;
    let wave2: Vec<Job<'_>> = vec![
        Box::new(move || {
            Some((
                8,
                timed("fig7", || fig7::render(&fig7::run_with(ds, sim, idx))),
            ))
        }),
        Box::new(move || {
            Some((
                10,
                timed("extensions", || extensions::render_with(ds, sim, idx)),
            ))
        }),
    ];
    sections.extend(par_jobs(wave2).into_iter().flatten());

    sections.sort_by_key(|&(pos, _)| pos);
    drop(whole_run);
    if let Some(secs) = run_started.elapsed_secs() {
        let events = ds.events.len() as u64;
        ebs_obs::counter_add("driver.events_processed", events);
        ebs_obs::counter_add("driver.sections_rendered", sections.len() as u64);
        if secs > 0.0 {
            ebs_obs::gauge_set("driver.events_per_sec", events as f64 / secs);
        }
    }
    sections.into_iter().map(|(_, text)| text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, Scale};
    use ebs_core::parallel::set_thread_override;
    use std::sync::{Mutex, OnceLock};

    /// Serializes tests that flip the global thread override.
    fn override_guard() -> &'static Mutex<()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn sections_come_back_in_canonical_order() {
        let ds = dataset(Scale::Quick);
        let sections = run_all(&ds);
        assert_eq!(sections.len(), 11);
        // Spot-check the canonical sequence by their table titles.
        assert!(
            sections[0].contains("Table 2"),
            "section 0:\n{}",
            sections[0]
        );
        assert!(
            sections[8].contains("Figure 7"),
            "section 8:\n{}",
            sections[8]
        );
        assert!(
            sections[9].contains("Ablation"),
            "section 9:\n{}",
            sections[9]
        );
        assert!(
            sections[10].contains("Extension"),
            "section 10:\n{}",
            sections[10]
        );
    }

    #[test]
    fn driver_output_is_thread_count_invariant() {
        let _guard = override_guard().lock().unwrap();
        let ds = dataset(Scale::Quick);
        set_thread_override(Some(1));
        let serial = run_all(&ds);
        set_thread_override(Some(4));
        let parallel = run_all(&ds);
        set_thread_override(None);
        assert_eq!(serial, parallel);
    }
}
