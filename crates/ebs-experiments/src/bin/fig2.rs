//! Reproduce Figure 2: load balancing in the hypervisor.
use ebs_experiments::{dataset, fig2, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    println!("{}", fig2::render(&fig2::run(&ds)));
}
