//! Reproduce Figure 3: traffic throttle and limited lending.
use ebs_experiments::{dataset, fig3, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    println!("{}", fig3::render(&fig3::run(&ds)));
}
