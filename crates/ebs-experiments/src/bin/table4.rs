//! Reproduce Table 4: skewness by application class.
use ebs_experiments::{dataset, table4, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    println!("{}", table4::render(&table4::run(&ds)));
}
