//! Measure the paper's proposed fixes: the S6 ARIMA importer, prediction-
//! guided lending, and the hybrid CN+BS cache deployment.
use ebs_experiments::{dataset, extensions, stack_traces, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    let sim = stack_traces(&ds);
    println!("{}", extensions::render(&ds, &sim));
}
