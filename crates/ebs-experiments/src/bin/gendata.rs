//! Generate the canonical synthetic dataset and export it as CSV, the way
//! the paper released its collection.
//!
//! ```sh
//! cargo run --release -p ebs-experiments --bin gendata -- --quick [out_dir]
//! ```
use ebs_experiments::{dataset, Scale};
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_args();
    let out: PathBuf = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "ebs-dataset".into())
        .into();
    let ds = dataset(scale);
    let files = ebs_workload::export::export_dir(&ds, &out).expect("export failed");
    println!(
        "wrote {} files to {} ({} sampled IOs, {} VDs)",
        files.len(),
        out.display(),
        ds.trace_count(),
        ds.fleet.vds.len()
    );
    for f in files {
        println!("  {}", out.join(f).display());
    }
}
