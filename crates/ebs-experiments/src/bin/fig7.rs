//! Reproduce Figure 7: cache across the EBS stack.
use ebs_experiments::{dataset, fig7, stack_traces, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    let sim = stack_traces(&ds);
    println!("{}", fig7::render(&fig7::run(&ds, &sim)));
}
