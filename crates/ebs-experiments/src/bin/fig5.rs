//! Reproduce Figure 5: balanced write but skewed read.
use ebs_experiments::{dataset, fig5, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    println!("{}", fig5::render(&fig5::run(&ds)));
}
