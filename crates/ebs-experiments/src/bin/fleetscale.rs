//! Bounded-memory fleet-scale run: generate (or re-open) a sharded trace
//! store sized to a target VD count, replay it as a stream, and print the
//! paper's skewness headline numbers.
//!
//! ```text
//! fleetscale --dir PATH [--vds N] [--shards S] [--duration SECS] [--metrics]
//! ```
//!
//! * `--dir PATH` (required) — sharded store directory. If it already
//!   holds a manifest the generation step is skipped and the existing
//!   shards are replayed.
//! * `--vds N` — target virtual-disk count (default 1,000,000).
//! * `--shards S` — shard count (default: `EBS_SHARDS`, then threads).
//! * `--duration SECS` — observation window (default 900 s; fleet-scale
//!   runs measure population skew, not long-horizon dynamics).
//! * `--metrics` — also persist per-QP/per-segment tick series (needed
//!   only if the store will later be materialized via `all --trace`).
//!
//! The report goes to stdout and is deterministic — independent of the
//! shard count and `EBS_THREADS`. Peak RSS goes to stderr so bounded-
//! memory claims can be checked from CI.

use ebs_experiments::fleetscale::{config_for_vds, skew_report};
use ebs_experiments::EXPERIMENT_SEED;
use ebs_workload::{generate_sharded, replay_summary, resolve_shards};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    match args.get(at + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(dir) = arg_value(&args, "--dir").map(std::path::PathBuf::from) else {
        eprintln!(
            "usage: fleetscale --dir PATH [--vds N] [--shards S] [--duration SECS] [--metrics]"
        );
        std::process::exit(2);
    };
    let vds: u64 = parse_or_exit(arg_value(&args, "--vds"), "--vds", 1_000_000);
    let duration: f64 = parse_or_exit(arg_value(&args, "--duration"), "--duration", 900.0);
    let shards = resolve_shards(arg_value(&args, "--shards").map(|s| match s.parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("--shards requires a positive integer");
            std::process::exit(2);
        }
    }));
    let with_metrics = args.iter().any(|a| a == "--metrics");

    if !dir.join(ebs_store::MANIFEST_FILE).exists() {
        let config = config_for_vds(vds, EXPERIMENT_SEED, duration);
        eprintln!(
            "generating ~{vds} VDs into {shards} shard(s) at {} ...",
            dir.display()
        );
        if let Err(e) = generate_sharded(&config, &dir, shards, with_metrics) {
            eprintln!("sharded generation failed: {e}");
            std::process::exit(2);
        }
    } else {
        eprintln!("replaying existing sharded store at {}", dir.display());
    }

    match replay_summary(&dir) {
        Ok((manifest, summary)) => {
            for line in skew_report(&manifest, &summary) {
                println!("{line}");
            }
        }
        Err(e) => {
            eprintln!("sharded replay failed: {e}");
            std::process::exit(2);
        }
    }

    if let Some(kib) = peak_rss_kib() {
        eprintln!("peak rss: {} MiB", kib / 1024);
    }
}

fn parse_or_exit<T: std::str::FromStr>(value: Option<String>, flag: &str, default: T) -> T {
    match value {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: cannot parse {v:?}");
            std::process::exit(2);
        }),
    }
}

/// Peak resident set size of this process in KiB, from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or if the field is
/// missing — the report never depends on it.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
