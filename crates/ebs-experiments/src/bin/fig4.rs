//! Reproduce Figure 4: segment migration and traffic prediction.
use ebs_experiments::{dataset, fig4, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    println!("{}", fig4::render(&fig4::run(&ds)));
}
