//! Run every table and figure of the reproduction in one pass.
//!
//! Sections run as parallel jobs on the `ebs-core` pool (see
//! `ebs_experiments::driver`); set `EBS_THREADS=1` for a serial run. The
//! printed output is identical either way — and identical with `EBS_OBS=1`,
//! which additionally writes the observability run report (default
//! `OBS_report.jsonl`/`.csv`, override with `EBS_OBS_OUT`) without
//! touching stdout.
//!
//! `--trace <path>` persists the dataset: the first run generates and
//! saves it to `path`, later runs replay from the store instead of
//! regenerating. With `--shards <n>` (or `EBS_SHARDS`, or when `path` is
//! an existing sharded-store directory) the trace lives as a sharded
//! store: generation and replay both stream shard-by-shard with bounded
//! memory instead of materializing whole-store buffers. Output is
//! byte-identical across all of these paths (the store round trips are
//! exact, and sharding is shard-count-invariant); status goes to stderr
//! only.
use ebs_experiments::*;

fn main() {
    let scale = Scale::from_args();
    let ds = match Scale::trace_path_from_args() {
        Some(path) => {
            let shards = Scale::shards_from_args();
            let sharded = shards.is_some()
                || std::env::var_os(ebs_workload::SHARDS_ENV).is_some()
                || path.join(ebs_store::MANIFEST_FILE).exists();
            let loaded = if sharded {
                dataset_or_replay_sharded(scale, &path, shards)
            } else {
                dataset_or_replay(scale, &path)
            };
            loaded.unwrap_or_else(|e| {
                eprintln!("cannot use trace store {}: {e}", path.display());
                std::process::exit(2);
            })
        }
        None => dataset(scale),
    };
    println!("{}", driver::run_all(&ds).join("\n\n"));
    ebs_obs::report::emit_global();
}
