//! Run every table and figure of the reproduction in one pass.
//!
//! Sections run as parallel jobs on the `ebs-core` pool (see
//! `ebs_experiments::driver`); set `EBS_THREADS=1` for a serial run. The
//! printed output is identical either way.
use ebs_experiments::*;

fn main() {
    let scale = Scale::from_args();
    let ds = dataset(scale);
    println!("{}", driver::run_all(&ds).join("\n\n"));
}
