//! Run every table and figure of the reproduction in one pass.
use ebs_experiments::*;

fn main() {
    let scale = Scale::from_args();
    let ds = dataset(scale);
    println!("{}\n", table2::render(&table2::run(&ds)));
    println!("{}\n", table3::render(&table3::run(&ds)));
    println!("{}\n", table4::render(&table4::run(&ds)));
    println!("{}\n", fig2::render(&fig2::run(&ds)));
    println!("{}\n", fig3::render(&fig3::run(&ds)));
    println!("{}\n", fig4::render(&fig4::run(&ds)));
    println!("{}\n", fig5::render(&fig5::run(&ds)));
    println!("{}\n", fig6::render(&fig6::run(&ds)));
    let sim = stack_traces(&ds);
    println!("{}\n", fig7::render(&fig7::run(&ds, &sim)));
    println!("{}\n", ablations::render(&ds));
    println!("{}", extensions::render(&ds, &sim));
}
