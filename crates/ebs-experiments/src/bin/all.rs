//! Run every table and figure of the reproduction in one pass.
//!
//! Sections run as parallel jobs on the `ebs-core` pool (see
//! `ebs_experiments::driver`); set `EBS_THREADS=1` for a serial run. The
//! printed output is identical either way — and identical with `EBS_OBS=1`,
//! which additionally writes the observability run report (default
//! `OBS_report.jsonl`/`.csv`, override with `EBS_OBS_OUT`) without
//! touching stdout.
use ebs_experiments::*;

fn main() {
    let scale = Scale::from_args();
    let ds = dataset(scale);
    println!("{}", driver::run_all(&ds).join("\n\n"));
    ebs_obs::report::emit_global();
}
