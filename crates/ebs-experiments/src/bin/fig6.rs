//! Reproduce Figure 6: LBA hotspots.
use ebs_experiments::{dataset, fig6, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    println!("{}", fig6::render(&fig6::run(&ds)));
}
