//! Reproduce Table 3: baseline CCR / P2A statistics per DC.
use ebs_experiments::{dataset, table3, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    println!("{}", table3::render(&table3::run(&ds)));
}
