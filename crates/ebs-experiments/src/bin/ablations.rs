//! Design-choice ablation sweeps (rebind trigger, lending rate, exporter
//! threshold, cache placement threshold).
use ebs_experiments::{ablations, dataset, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    println!("{}", ablations::render(&ds));
}
