//! Reproduce Table 2: high-level dataset summary.
use ebs_experiments::{dataset, table2, Scale};

fn main() {
    let ds = dataset(Scale::from_args());
    println!("{}", table2::render(&table2::run(&ds)));
}
