//! Beyond the paper's evaluation: the fixes its discussion sections
//! propose, implemented and measured.
//!
//! * **S6 — ARIMA importer** (§6.1.3): replace the oracle with the best
//!   deployable predictor from Figure 4(c).
//! * **Prediction-guided lending** (§5.3): forecast each lender's demand
//!   before taking its headroom, shrinking the backfire tail of
//!   Figure 3(f).
//! * **Hybrid CN+BS cache** (§7.3.2): a few CN-cache slots per node for
//!   the hottest disks, BS-cache as the backup tier.

use ebs_analysis::table::Table;
use ebs_balance::bs_balancer::{run_balancer, BalancerConfig};
use ebs_balance::importer::ImporterSelect;
use ebs_balance::migration::segment_residency_intervals;
use ebs_cache::hybrid::{assign_sites, cn_slot_usage, hybrid_latency_gain, HybridConfig};
use ebs_cache::location::{hit_oracle, latency_gain, CacheSite};
use ebs_cache::utilization::CACHEABLE_THRESHOLD;
use ebs_core::index::EventIndex;
use ebs_core::io::Op;
use ebs_core::parallel::par_map_deterministic;
use ebs_stack::SimOutput;
use ebs_throttle::lending::{lending_gains, LendingConfig};
use ebs_throttle::predictive::{predictive_lending_gains, PredictiveConfig};
use ebs_throttle::scenario::{build_groups, CapDim};
use ebs_workload::Dataset;

/// S6 versus the paper's lineup on the busiest cluster:
/// `(strategy, mean residency, migrations)`.
pub fn importer_extension(ds: &Dataset) -> Vec<(ImporterSelect, f64, usize)> {
    let dc = crate::fig4::busiest_dc(ds);
    par_map_deterministic(&ImporterSelect::EXTENDED, |_, &strategy| {
        let cfg = BalancerConfig {
            strategy,
            ..BalancerConfig::default()
        };
        let run = run_balancer(&ds.fleet, &ds.storage, dc, &cfg);
        let intervals = segment_residency_intervals(run.seg_map.log(), run.periods);
        let mean = if intervals.is_empty() {
            f64::NAN
        } else {
            intervals.iter().sum::<f64>() / intervals.len() as f64
        };
        (strategy, mean, run.migrations)
    })
}

/// Plain versus prediction-guided lending at several rates:
/// `(p, plain negative-gain %, predictive negative-gain %,
///   plain median gain, predictive median gain)`.
pub fn lending_extension(ds: &Dataset) -> Vec<(f64, f64, f64, f64, f64)> {
    let groups = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
    par_map_deterministic(&[0.4, 0.6, 0.8], |_, &p| {
        let base = LendingConfig { p, period_ticks: 6 };
        let plain = lending_gains(&groups, &base);
        let predictive = predictive_lending_gains(&groups, &PredictiveConfig { base, safety: 1.2 });
        let neg = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().filter(|&&g| g < 0.0).count() as f64 / v.len() as f64
            }
        };
        (
            p,
            neg(&plain),
            neg(&predictive),
            ebs_analysis::median(&plain).unwrap_or(f64::NAN),
            ebs_analysis::median(&predictive).unwrap_or(f64::NAN),
        )
    })
}

/// Hybrid deployment sweep: `(cn_slots, write p50 gain, max CN slots used)`
/// plus the pure CN / BS baselines.
pub fn hybrid_extension(ds: &Dataset, sim: &SimOutput) -> (Vec<(usize, f64, usize)>, f64, f64) {
    hybrid_extension_with(ds, sim, ds.index())
}

/// [`hybrid_extension`] over the shared event index; the slot sweep itself
/// fans out in parallel over one borrowed trace.
pub fn hybrid_extension_with(
    ds: &Dataset,
    sim: &SimOutput,
    idx: &EventIndex,
) -> (Vec<(usize, f64, usize)>, f64, f64) {
    let hot = crate::fig7::hot_map(idx, 2048 << 20);
    let records = sim.traces.records();
    let hits = hit_oracle(&hot, records, CACHEABLE_THRESHOLD);
    let sweep = par_map_deterministic(&[0usize, 1, 2, 4, 8], |_, &slots| {
        let sites = assign_sites(
            &ds.fleet,
            &hot,
            &HybridConfig {
                cn_slots_per_node: slots,
                threshold: CACHEABLE_THRESHOLD,
            },
        );
        let gain = hybrid_latency_gain(records, &hits, &sites, Op::Write)
            .map(|g| g.p50)
            .unwrap_or(f64::NAN);
        let used = cn_slot_usage(&ds.fleet, &sites)
            .into_iter()
            .max()
            .unwrap_or(0);
        (slots, gain, used)
    });
    let cn = latency_gain(records, &hits, CacheSite::ComputeNode, Op::Write)
        .map(|g| g.p50)
        .unwrap_or(f64::NAN);
    let bs = latency_gain(records, &hits, CacheSite::BlockServer, Op::Write)
        .map(|g| g.p50)
        .unwrap_or(f64::NAN);
    (sweep, cn, bs)
}

/// Run and render all three extensions.
pub fn render(ds: &Dataset, sim: &SimOutput) -> String {
    render_with(ds, sim, ds.index())
}

/// [`render`] over the shared event index.
pub fn render_with(ds: &Dataset, sim: &SimOutput, idx: &EventIndex) -> String {
    let mut out = String::new();

    let mut t = Table::new(["strategy", "mean norm. residency", "migrations"])
        .with_title("Extension: S6 ARIMA importer vs the paper's lineup (§6.1.3)");
    for (s, mean, n) in importer_extension(ds) {
        t.row([s.label().to_string(), format!("{mean:.3}"), n.to_string()]);
    }
    out.push_str(&t.render());

    let mut t = Table::new([
        "p",
        "plain negative %",
        "predictive negative %",
        "plain median gain",
        "predictive median gain",
    ])
    .with_title("Extension: prediction-guided lending (§5.3)");
    for (p, pn, qn, pm, qm) in lending_extension(ds) {
        t.row([
            format!("{p:.1}"),
            format!("{:.1}", pn * 100.0),
            format!("{:.1}", qn * 100.0),
            format!("{pm:.3}"),
            format!("{qm:.3}"),
        ]);
    }
    out.push('\n');
    out.push_str(&t.render());

    let (sweep, cn, bs) = hybrid_extension_with(ds, sim, idx);
    let mut t = Table::new(["CN slots/node", "write p50 gain", "max slots used"])
        .with_title("Extension: hybrid CN+BS cache deployment (§7.3.2)");
    for (slots, gain, used) in sweep {
        t.row([slots.to_string(), format!("{gain:.3}"), used.to_string()]);
    }
    out.push('\n');
    out.push_str(&t.render());
    out.push_str(&format!(
        "pure CN-cache write p50 gain: {cn:.3}; pure BS-cache: {bs:.3}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{dataset, stack_traces, Scale};

    #[test]
    fn arima_importer_is_competitive() {
        let ds = dataset(Scale::Medium);
        let rows = importer_extension(&ds);
        assert_eq!(rows.len(), 6);
        let get = |s: ImporterSelect| rows.iter().find(|(x, _, _)| *x == s).unwrap();
        let arima = get(ImporterSelect::ArimaPredict);
        let min_traffic = get(ImporterSelect::MinTraffic);
        // S6 should not churn more than the production default.
        assert!(
            arima.2 <= (min_traffic.2 as f64 * 1.1) as usize,
            "S6 migrations {} vs S2 {}",
            arima.2,
            min_traffic.2
        );
    }

    #[test]
    fn predictive_lending_shrinks_the_backfire_tail() {
        let ds = dataset(Scale::Medium);
        let rows = lending_extension(&ds);
        for (p, plain_neg, pred_neg, _, _) in rows {
            if plain_neg.is_finite() && pred_neg.is_finite() {
                assert!(
                    pred_neg <= plain_neg + 1e-9,
                    "p={p}: predictive negative {pred_neg:.3} vs plain {plain_neg:.3}"
                );
            }
        }
    }

    #[test]
    fn hybrid_interpolates_between_pure_sites() {
        let ds = dataset(Scale::Medium);
        let sim = stack_traces(&ds);
        let (sweep, cn, bs) = hybrid_extension(&ds, &sim);
        // Gains improve (shrink) monotonically with more CN slots…
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "{:?} vs {:?}", w[1], w[0]);
        }
        // …bounded by the pure deployments.
        let zero_slots = sweep.first().unwrap().1;
        let many_slots = sweep.last().unwrap().1;
        assert!(zero_slots <= bs + 1e-9);
        assert!(many_slots >= cn - 1e-9);
    }

    #[test]
    fn render_mentions_all_three_extensions() {
        let ds = dataset(Scale::Quick);
        let sim = stack_traces(&ds);
        let text = render(&ds, &sim);
        for tag in ["S6", "prediction-guided", "hybrid"] {
            assert!(
                text.to_lowercase().contains(&tag.to_lowercase()),
                "missing {tag}"
            );
        }
    }
}
