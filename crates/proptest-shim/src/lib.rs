//! Offline drop-in subset of the [proptest](https://docs.rs/proptest) API.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` crate cannot be fetched. This shim implements the small
//! slice of its API the workspace's property tests actually use — the
//! [`proptest!`] macro, `prop_assert*` / [`prop_assume!`], [`any`],
//! `prop::collection::vec`, range strategies, and [`ProptestConfig`] — on
//! top of a self-contained SplitMix64 generator, so the property tests keep
//! running (deterministically) without the dependency.
//!
//! Differences from real proptest: inputs are sampled from a fixed seed per
//! test (derived from the test name), and failing cases are not shrunk —
//! the failing input values appear in the panic message instead.

#![forbid(unsafe_code)]

use std::ops::Range;

/// SplitMix64 step — the same mixer `ebs-core` uses for seed derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the test name, so every test gets its own input stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The shim's input generator. Public so the [`proptest!`] macro can use
/// it; not part of the mimicked proptest surface.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test name.
    pub fn for_test(name: &str) -> Self {
        Self {
            state: fnv1a(name.as_bytes()),
        }
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is irrelevant for test-input generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// How values of a type are produced from the generator.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// Strategy for "any value of `T`" — the full-domain sampler.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full domain of `T` as a strategy (`any::<u64>()` and friends).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_uint_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Tuples of strategies are themselves strategies (as in real proptest),
// sampling each component left to right.
macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Mirrors proptest's `prop` module tree (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A `Vec` strategy: element strategy plus a length range.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vectors whose length is drawn from `len` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Per-test configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy,
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The `proptest!` test-definition macro.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a normal
/// test that samples its arguments [`ProptestConfig::cases`] times from a
/// deterministic per-test stream and runs the body for each case. The
/// sampled inputs are included in the panic message on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let run = |rng: &mut $crate::TestRng| {
                        $(let $p = $crate::Strategy::sample(&($s), rng);)+
                        $body
                    };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run(&mut rng)
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {}/{} of {} failed (offline shim: inputs not shrunk)",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = (5u64..17).sample(&mut rng);
            assert!((5..17).contains(&x));
            let f = (0.25f64..0.5).sample(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_honours_length_range() {
        let mut rng = crate::TestRng::for_test("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..100, 2..50).sample(&mut rng);
            assert!((2..50).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::for_test("x");
            (0..8).map(|_| (0u64..1000).sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::for_test("x");
            (0..8).map(|_| (0u64..1000).sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, mut v in prop::collection::vec(0u32..10, 0..5)) {
            prop_assume!(x != 3);
            v.push(x as u32);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 3);
            prop_assert_eq!(v.last().copied(), Some(x as u32));
        }
    }
}
