//! The QP→WT rebinding simulator of §4.3.
//!
//! Protocol from the paper: every 10 ms period, if the hottest worker
//! thread of a compute node carries more than 1.2× the coldest one's
//! traffic, swap the QP sets of those two WTs. Two outcomes are measured
//! per node:
//!
//! * **rebinding ratio** — periods that triggered a rebind / periods with
//!   any traffic;
//! * **rebinding gain** — WT-CoV of cumulative traffic *with* rebinding
//!   divided by WT-CoV *without* (< 1 means rebinding helped; ≈ 1 means
//!   the bursts defeat it, the paper's blue-circle nodes).

use ebs_core::ids::{CnId, WtId};
use ebs_core::io::IoEvent;
use ebs_core::topology::Fleet;
use ebs_stack::hypervisor::Binding;

/// Configuration of the rebind simulation.
#[derive(Clone, Copy, Debug)]
pub struct RebindConfig {
    /// Rebind decision period in microseconds (paper: 10 ms).
    pub period_us: u64,
    /// Trigger when hottest ≥ `trigger_ratio` × coldest.
    pub trigger_ratio: f64,
    /// Minimum IOs a period must contain before the balancer evaluates it
    /// (and before it counts as active). The 1/3200-sampled stream leaves
    /// most 10 ms periods with a single IO, where "imbalance" is a
    /// sampling artifact rather than load; production rebinders see the
    /// full stream and are effectively always above such a floor.
    pub min_ios_per_period: u32,
}

impl Default for RebindConfig {
    fn default() -> Self {
        Self {
            period_us: 10_000,
            trigger_ratio: 1.2,
            min_ios_per_period: 4,
        }
    }
}

/// Per-node outcome of the simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebindOutcome {
    /// The node.
    pub cn: CnId,
    /// Periods with traffic.
    pub active_periods: u64,
    /// Periods that triggered a rebind.
    pub rebinds: u64,
    /// rebinds / active_periods.
    pub rebind_ratio: f64,
    /// WT-CoV of cumulative traffic without rebinding.
    pub cov_static: f64,
    /// WT-CoV of cumulative traffic with rebinding.
    pub cov_rebound: f64,
    /// cov_rebound / cov_static (< 1 = improvement).
    pub gain: f64,
}

/// Group a time-sorted event stream by compute node (bytes keyed to QPs).
pub fn events_by_cn(fleet: &Fleet, events: &[IoEvent]) -> Vec<Vec<IoEvent>> {
    let mut out = vec![Vec::new(); fleet.compute_nodes.len()];
    for ev in events {
        if let Some(bucket) = out.get_mut(fleet.cn_of_qp(ev.qp).index()) {
            bucket.push(*ev);
        }
    }
    out
}

fn cov(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return None;
    }
    let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    Some(var.sqrt() / mean)
}

/// Simulate rebinding for one compute node over its (time-sorted) events.
/// Returns `None` for nodes with fewer than two WTs or no traffic.
pub fn simulate_node(
    fleet: &Fleet,
    cn: CnId,
    events: &[IoEvent],
    config: &RebindConfig,
) -> Option<RebindOutcome> {
    let node = fleet.compute_nodes.get(cn)?;
    let wt_count = node.wt_count as usize;
    let first = events.first()?;
    if wt_count < 2 {
        return None;
    }
    let wt_local = |wt: WtId| wt.index() - node.wt_base as usize;

    let mut binding = Binding::from_fleet(fleet);
    let mut cum_static = vec![0.0; wt_count];
    let mut cum_rebound = vec![0.0; wt_count];
    let mut period_traffic = vec![0.0; wt_count];
    let mut current_period = first.t_us / config.period_us;
    let mut active_periods = 0u64;
    let mut rebinds = 0u64;

    let mut period_ios = 0u32;
    let close_period = |period_traffic: &mut Vec<f64>,
                        period_ios: &mut u32,
                        binding: &mut Binding,
                        rebinds: &mut u64,
                        active: &mut u64| {
        let ios = std::mem::take(period_ios);
        let any: f64 = period_traffic.iter().sum();
        if any <= 0.0 || ios < config.min_ios_per_period {
            for v in period_traffic.iter_mut() {
                *v = 0.0;
            }
            return;
        }
        *active += 1;
        // `total_cmp` keeps the scan total; the tuple never misses because
        // `wt_count >= 2` sizes the vector, but the `else` stays honest.
        let (Some((hot, &hot_v)), Some((cold, &cold_v))) = (
            period_traffic
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1)),
            period_traffic
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1)),
        ) else {
            return;
        };
        if hot != cold && hot_v > config.trigger_ratio * cold_v {
            binding.swap_wts(
                WtId(node.wt_base + hot as u32),
                WtId(node.wt_base + cold as u32),
            );
            *rebinds += 1;
        }
        for v in period_traffic.iter_mut() {
            *v = 0.0;
        }
    };

    for ev in events {
        let period = ev.t_us / config.period_us;
        if period != current_period {
            close_period(
                &mut period_traffic,
                &mut period_ios,
                &mut binding,
                &mut rebinds,
                &mut active_periods,
            );
            current_period = period;
        }
        let bytes = ev.size as f64;
        if let Some(slot) = fleet
            .qp_binding
            .get(ev.qp)
            .and_then(|&wt| cum_static.get_mut(wt_local(wt)))
        {
            *slot += bytes;
        }
        let rebound_wt = wt_local(binding.wt_of(ev.qp));
        if let Some(slot) = cum_rebound.get_mut(rebound_wt) {
            *slot += bytes;
        }
        if let Some(slot) = period_traffic.get_mut(rebound_wt) {
            *slot += bytes;
        }
        period_ios += 1;
    }
    close_period(
        &mut period_traffic,
        &mut period_ios,
        &mut binding,
        &mut rebinds,
        &mut active_periods,
    );

    if ebs_obs::enabled() {
        // Attempts = periods the balancer evaluated; fired = swaps taken.
        // Counters sum across nodes/worker threads, so the merged totals
        // are thread-count invariant.
        let mut reg = ebs_obs::Registry::new();
        reg.counter_add("balance.rebind.attempts", active_periods);
        reg.counter_add("balance.rebind.fired", rebinds);
        reg.counter_add("balance.rebind.skipped", active_periods - rebinds);
        ebs_obs::merge(&reg);
    }

    let cov_static = cov(&cum_static)?;
    let cov_rebound = cov(&cum_rebound).unwrap_or(0.0);
    let gain = if cov_static > 0.0 {
        cov_rebound / cov_static
    } else {
        1.0
    };
    Some(RebindOutcome {
        cn,
        active_periods,
        rebinds,
        rebind_ratio: if active_periods > 0 {
            rebinds as f64 / active_periods as f64
        } else {
            0.0
        },
        cov_static,
        cov_rebound,
        gain,
    })
}

/// Simulate rebinding for every compute node of the fleet.
pub fn simulate_fleet(
    fleet: &Fleet,
    events: &[IoEvent],
    config: &RebindConfig,
) -> Vec<RebindOutcome> {
    // Compute nodes are independent: partition the stream once, fan the
    // nodes out, and keep CN order so the outcome list matches a serial run.
    let per_cn = events_by_cn(fleet, events);
    ebs_core::parallel::par_map_deterministic(&per_cn, |i, evs| {
        simulate_node(fleet, CnId::from_index(i), evs, config)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Per-period traffic of the hottest WT of a node on a fine time scale —
/// the Figure 2(e)/(f) time-series view. Returns bytes per period for the
/// WT with the largest cumulative traffic (static binding).
pub fn hottest_wt_series(fleet: &Fleet, cn: CnId, events: &[IoEvent], period_us: u64) -> Vec<f64> {
    let (Some(node), Some(first), Some(last)) =
        (fleet.compute_nodes.get(cn), events.first(), events.last())
    else {
        return Vec::new();
    };
    let wt_count = node.wt_count as usize;
    let start = first.t_us;
    let periods = ((last.t_us - start) / period_us + 1) as usize;
    let wt_local = |qp| {
        fleet
            .qp_binding
            .get(qp)
            .map(|wt| wt.index() - node.wt_base as usize)
    };
    let mut totals = vec![0.0; wt_count];
    for ev in events {
        if let Some(slot) = wt_local(ev.qp).and_then(|i| totals.get_mut(i)) {
            *slot += ev.size as f64;
        }
    }
    let hottest = totals
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut series = vec![0.0; periods];
    for ev in events {
        if wt_local(ev.qp) == Some(hottest) {
            if let Some(slot) = series.get_mut(((ev.t_us - start) / period_us) as usize) {
                *slot += ev.size as f64;
            }
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::apps::AppClass;
    use ebs_core::ids::QpId;
    use ebs_core::io::Op;
    use ebs_core::spec::VdTier;
    use ebs_core::topology::FleetBuilder;
    use ebs_core::units::GIB;

    fn fleet_one_node() -> Fleet {
        let mut b = FleetBuilder::new();
        let dc = b.add_dc("DC-1");
        let sn = b.add_sn(dc);
        b.add_bs(sn);
        let u = b.add_user();
        let cn = b.add_cn(dc, 2, false);
        let vm = b.add_vm(cn, u, AppClass::Database);
        b.add_vd(vm, VdTier::Performance.spec(64 * GIB)); // 4 QPs: wt0,wt1,wt0,wt1
        b.finish().unwrap()
    }

    fn ev(t_us: u64, qp: u32, size: u32) -> IoEvent {
        IoEvent {
            t_us,
            vd: ebs_core::ids::VdId(0),
            qp: QpId(qp),
            op: Op::Write,
            size,
            offset: 0,
        }
    }

    #[test]
    fn balanced_traffic_never_rebinds() {
        let f = fleet_one_node();
        // Equal traffic on QP0 (wt0) and QP1 (wt1) in every period.
        let events: Vec<IoEvent> = (0..100)
            .flat_map(|p| {
                let t = p * 10_000;
                [ev(t, 0, 4096), ev(t + 1, 1, 4096)]
            })
            .collect();
        let cfg = RebindConfig {
            min_ios_per_period: 1,
            ..RebindConfig::default()
        };
        let out = simulate_node(&f, CnId(0), &events, &cfg).unwrap();
        assert_eq!(out.rebinds, 0);
        assert!((out.gain - 1.0).abs() < 1e-9);
        assert_eq!(out.active_periods, 100);
    }

    #[test]
    fn persistent_hot_qp_triggers_rebinds_but_cannot_balance() {
        let f = fleet_one_node();
        // All traffic on QP0: whichever WT holds it is hot; swapping cannot
        // split a single QP (the §4.4 argument for per-IO dispatch).
        let events: Vec<IoEvent> = (0..200).map(|p| ev(p * 10_000, 0, 8192)).collect();
        let cfg = RebindConfig {
            min_ios_per_period: 1,
            ..RebindConfig::default()
        };
        let out = simulate_node(&f, CnId(0), &events, &cfg).unwrap();
        assert!(out.rebind_ratio > 0.9, "ratio {}", out.rebind_ratio);
        // Cumulative traffic ends up ~50/50 across the two WTs though —
        // swapping a single hot QP back and forth does level the *total*.
        assert!(out.gain < 1.0);
    }

    #[test]
    fn alternating_bursts_defeat_rebinding() {
        let f = fleet_one_node();
        // QP0 and QP2 share wt0. Traffic alternates between them each
        // period, but the swap decision always fires one period late.
        let mut events = Vec::new();
        for p in 0..200u64 {
            let qp = if p % 2 == 0 { 0 } else { 1 };
            events.push(ev(p * 10_000, qp, 65536));
        }
        let cfg = RebindConfig {
            min_ios_per_period: 1,
            ..RebindConfig::default()
        };
        let out = simulate_node(&f, CnId(0), &events, &cfg).unwrap();
        // Rebinds happen constantly…
        assert!(out.rebind_ratio > 0.5);
        // …but the static binding was already alternating-balanced, so
        // rebinding gains little or even hurts.
        assert!(out.gain > 0.65, "gain {}", out.gain);
    }

    #[test]
    fn outcome_counts_only_active_periods() {
        let f = fleet_one_node();
        // Two events 1 s apart: 2 active periods out of ~100 elapsed.
        let events = vec![ev(0, 0, 4096), ev(1_000_000, 1, 4096)];
        let cfg = RebindConfig {
            min_ios_per_period: 1,
            ..RebindConfig::default()
        };
        let out = simulate_node(&f, CnId(0), &events, &cfg).unwrap();
        assert_eq!(out.active_periods, 2);
    }

    #[test]
    fn hottest_wt_series_sums_bytes() {
        let f = fleet_one_node();
        let events = vec![ev(0, 0, 100), ev(5_000, 0, 200), ev(25_000, 0, 300)];
        let s = hottest_wt_series(&f, CnId(0), &events, 10_000);
        assert_eq!(s, vec![300.0, 0.0, 300.0]);
    }

    #[test]
    fn sparse_periods_are_gated_out() {
        let f = fleet_one_node();
        // One IO per period: below the default 4-IO floor, nothing counts.
        let events: Vec<IoEvent> = (0..50).map(|p| ev(p * 10_000, 0, 4096)).collect();
        let out = simulate_node(&f, CnId(0), &events, &RebindConfig::default()).unwrap();
        assert_eq!(out.active_periods, 0);
        assert_eq!(out.rebinds, 0);
        // Five IOs per period clear the floor.
        let events: Vec<IoEvent> = (0..50)
            .flat_map(|p| (0..5u64).map(move |k| ev(p * 10_000 + k, 0, 4096)))
            .collect();
        let out = simulate_node(&f, CnId(0), &events, &RebindConfig::default()).unwrap();
        assert_eq!(out.active_periods, 50);
    }

    #[test]
    fn fleet_simulation_covers_active_nodes() {
        let ds = ebs_workload::generate(&ebs_workload::WorkloadConfig::quick(51)).unwrap();
        let outs = simulate_fleet(&ds.fleet, &ds.events, &RebindConfig::default());
        assert!(!outs.is_empty());
        for o in &outs {
            assert!(o.rebind_ratio >= 0.0 && o.rebind_ratio <= 1.0);
            assert!(o.gain >= 0.0);
        }
    }
}
