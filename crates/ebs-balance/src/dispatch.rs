//! Multi-WT dispatch ablation (§4.4).
//!
//! The paper argues that no rebinding cadence can fix single-WT hosting
//! when one QP carries nearly all traffic, and that a per-IO *dispatch*
//! model (multiple WTs sharing a QP, ideally in hardware) is the way out.
//! This module quantifies that claim: it replays a node's IO stream under
//! (a) the static single-WT binding and (b) per-IO dispatch to the
//! least-loaded worker thread, and compares the WT traffic CoV and the
//! single-server queueing delay.

use ebs_core::ids::CnId;
use ebs_core::ids::WtId;
use ebs_core::io::IoEvent;
use ebs_core::topology::Fleet;
use ebs_stack::hypervisor::WtQueues;

/// Hosting models compared by the ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostingModel {
    /// Production: each QP statically bound to one WT.
    SingleWt,
    /// Per-IO dispatch to the WT that frees up first.
    Dispatch,
}

/// Outcome of replaying one node under one hosting model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DispatchOutcome {
    /// The node.
    pub cn: CnId,
    /// CoV of cumulative per-WT bytes.
    pub wt_cov: f64,
    /// Mean queueing delay per IO in microseconds (excludes service).
    pub mean_wait_us: f64,
    /// 99th-percentile queueing delay in microseconds.
    pub p99_wait_us: f64,
}

/// Fixed per-IO service cost used by the ablation (µs); small against the
/// 10 ms burst scale, so queueing differences come from load placement.
const SERVICE_US: f64 = 5.0;

/// Replay `events` (time-sorted, all on node `cn`) under `model`.
/// Returns `None` for nodes with fewer than two WTs or no traffic.
pub fn replay_node(
    fleet: &Fleet,
    cn: CnId,
    events: &[IoEvent],
    model: HostingModel,
) -> Option<DispatchOutcome> {
    let node = &fleet.compute_nodes[cn];
    let wt_count = node.wt_count as usize;
    if wt_count < 2 || events.is_empty() {
        return None;
    }
    let mut queues = WtQueues::new(fleet.wt_total);
    let mut bytes = vec![0.0; wt_count];
    let mut waits = Vec::with_capacity(events.len());
    for ev in events {
        let wt = match model {
            HostingModel::SingleWt => fleet.qp_binding[ev.qp],
            HostingModel::Dispatch => {
                // The WT that frees up first takes the IO.
                node.wts()
                    .min_by(|&a, &b| {
                        queues
                            .free_at(a)
                            .partial_cmp(&queues.free_at(b))
                            .expect("no NaNs")
                    })
                    .expect("wt_count >= 2")
            }
        };
        let wait = queues.serve(wt, ev.t_us as f64, SERVICE_US);
        bytes[wt.index() - node.wt_base as usize] += ev.size as f64;
        waits.push(wait);
    }
    let cov = {
        let n = bytes.len() as f64;
        let mean = bytes.iter().sum::<f64>() / n;
        if mean <= 0.0 {
            return None;
        }
        let var = bytes.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        var.sqrt() / mean
    };
    waits.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mean_wait = waits.iter().sum::<f64>() / waits.len() as f64;
    let p99 = waits[((waits.len() - 1) as f64 * 0.99) as usize];
    Some(DispatchOutcome {
        cn,
        wt_cov: cov,
        mean_wait_us: mean_wait,
        p99_wait_us: p99,
    })
}

/// Replay every node of the fleet under both models; returns
/// `(single_wt, dispatch)` outcome pairs for nodes where both apply.
pub fn compare_fleet(fleet: &Fleet, events: &[IoEvent]) -> Vec<(DispatchOutcome, DispatchOutcome)> {
    let by_cn = crate::wt_rebind::events_by_cn(fleet, events);
    let mut out = Vec::new();
    for (i, evs) in by_cn.iter().enumerate() {
        let cn = CnId::from_index(i);
        if let (Some(s), Some(d)) = (
            replay_node(fleet, cn, evs, HostingModel::SingleWt),
            replay_node(fleet, cn, evs, HostingModel::Dispatch),
        ) {
            out.push((s, d));
        }
    }
    out
}

/// The hottest worker thread of a node under the static binding, by
/// cumulative bytes — handy for reports.
pub fn hottest_wt(fleet: &Fleet, cn: CnId, events: &[IoEvent]) -> Option<WtId> {
    let node = &fleet.compute_nodes[cn];
    let mut bytes = vec![0.0; node.wt_count as usize];
    for ev in events {
        bytes[fleet.qp_binding[ev.qp].index() - node.wt_base as usize] += ev.size as f64;
    }
    bytes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaNs"))
        .map(|(i, _)| WtId(node.wt_base + i as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workload::{generate, WorkloadConfig};

    #[test]
    fn dispatch_levels_wt_traffic() {
        let ds = generate(&WorkloadConfig::quick(81)).unwrap();
        let pairs = compare_fleet(&ds.fleet, &ds.events);
        assert!(!pairs.is_empty());
        let mean_cov = |f: &dyn Fn(&(DispatchOutcome, DispatchOutcome)) -> f64| {
            pairs.iter().map(f).sum::<f64>() / pairs.len() as f64
        };
        let single = mean_cov(&|p| p.0.wt_cov);
        let dispatch = mean_cov(&|p| p.1.wt_cov);
        assert!(
            dispatch < single * 0.8,
            "dispatch CoV {dispatch:.3} should be well below single-WT {single:.3}"
        );
    }

    #[test]
    fn dispatch_never_increases_mean_wait() {
        let ds = generate(&WorkloadConfig::quick(82)).unwrap();
        for (s, d) in compare_fleet(&ds.fleet, &ds.events) {
            assert!(
                d.mean_wait_us <= s.mean_wait_us + 1e-9,
                "{}: dispatch wait {} vs single {}",
                s.cn,
                d.mean_wait_us,
                s.mean_wait_us
            );
        }
    }

    #[test]
    fn hottest_wt_is_identified() {
        let ds = generate(&WorkloadConfig::quick(83)).unwrap();
        let by_cn = crate::wt_rebind::events_by_cn(&ds.fleet, &ds.events);
        let mut found = 0;
        for (i, evs) in by_cn.iter().enumerate() {
            if evs.is_empty() {
                continue;
            }
            let cn = CnId::from_index(i);
            let wt = hottest_wt(&ds.fleet, cn, evs).unwrap();
            assert_eq!(ds.fleet.cn_of_wt(wt), cn);
            found += 1;
        }
        assert!(found > 0);
    }
}
