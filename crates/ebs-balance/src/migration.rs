//! Migration-log analysis: frequent-migration detection (§6.1.1) and
//! migration intervals (§6.1.2).

use ebs_core::hash::{FxHashMap, FxHashSet};
use ebs_core::ids::BsId;
use ebs_stack::segment::Migration;
use std::collections::BTreeMap;

/// A migration is *frequent* when, within one detection window, its source
/// or destination BlockServer has **both** incoming and outgoing
/// migrations — the paper's signal that segments bounce in and out of a BS
/// back-to-back.
///
/// Returns the proportion of frequent migrations (0 when the log is empty).
pub fn frequent_migration_proportion(log: &[Migration], window_periods: u32) -> f64 {
    if log.is_empty() {
        return 0.0;
    }
    assert!(window_periods > 0);
    // Per window: sets of BSs with outgoing / incoming moves.
    let mut out_by_window: FxHashMap<u32, FxHashSet<BsId>> = FxHashMap::default();
    let mut in_by_window: FxHashMap<u32, FxHashSet<BsId>> = FxHashMap::default();
    for m in log {
        let w = m.at / window_periods;
        out_by_window.entry(w).or_default().insert(m.from);
        in_by_window.entry(w).or_default().insert(m.to);
    }
    let frequent = log
        .iter()
        .filter(|m| {
            let w = m.at / window_periods;
            let busy = |bs: BsId| {
                out_by_window.get(&w).is_some_and(|s| s.contains(&bs))
                    && in_by_window.get(&w).is_some_and(|s| s.contains(&bs))
            };
            busy(m.from) || busy(m.to)
        })
        .count();
    frequent as f64 / log.len() as f64
}

/// Normalized intervals between consecutive *outgoing* migrations of each
/// BlockServer: for every BS with ≥ 2 outgoing moves, the gaps between
/// adjacent moves divided by `total_periods`. Larger is better — segments
/// stay put longer (Figure 4(b)).
pub fn migration_intervals(log: &[Migration], total_periods: u32) -> Vec<f64> {
    assert!(total_periods > 0);
    // BTreeMap: interval order must not depend on hash layout — the
    // consumers mean over f64s, where addition order is observable.
    let mut by_bs: BTreeMap<BsId, Vec<u32>> = BTreeMap::new();
    for m in log {
        by_bs.entry(m.from).or_default().push(m.at);
    }
    let mut intervals = Vec::new();
    for times in by_bs.values_mut() {
        times.sort_unstable();
        times.dedup(); // multiple segments in one period = one balancing act
        for w in times.windows(2) {
            intervals.push((w[1] - w[0]) as f64 / total_periods as f64);
        }
    }
    intervals
}

/// Normalized intervals between consecutive migrations of the *same
/// segment* — how long a segment stays put after being moved. This is the
/// Figure 4(b) lens on importer quality: a poorly chosen importer turns
/// hot and expels the segment again almost immediately. Segments migrated
/// only once contribute the gap from their move to the end of the window,
/// so strategies that avoid re-migration are rewarded.
pub fn segment_residency_intervals(log: &[Migration], total_periods: u32) -> Vec<f64> {
    assert!(total_periods > 0);
    // BTreeMap for the same D6 reason as `migration_intervals`.
    let mut by_seg: BTreeMap<ebs_core::ids::SegId, Vec<u32>> = BTreeMap::new();
    for m in log {
        by_seg.entry(m.seg).or_default().push(m.at);
    }
    let mut intervals = Vec::new();
    for times in by_seg.values_mut() {
        times.sort_unstable();
        for w in times.windows(2) {
            intervals.push((w[1] - w[0]) as f64 / total_periods as f64);
        }
        // Censored final residency: from the last move to the window end.
        if let Some(&last) = times.last() {
            intervals.push((total_periods.saturating_sub(last)) as f64 / total_periods as f64);
        }
    }
    intervals
}

/// Count migrations per BlockServer `(outgoing, incoming)`.
pub fn per_bs_counts(log: &[Migration], bs_total: usize) -> Vec<(usize, usize)> {
    let mut counts = vec![(0usize, 0usize); bs_total];
    for m in log {
        counts[m.from.index()].0 += 1;
        counts[m.to.index()].1 += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::ids::SegId;

    fn mig(at: u32, seg: u32, from: u32, to: u32) -> Migration {
        Migration {
            at,
            seg: SegId(seg),
            from: BsId(from),
            to: BsId(to),
        }
    }

    #[test]
    fn empty_log_has_no_frequent_migrations() {
        assert_eq!(frequent_migration_proportion(&[], 1), 0.0);
    }

    #[test]
    fn in_and_out_within_window_is_frequent() {
        // BS 1 imports at period 0 and exports at period 0: frequent.
        let log = vec![mig(0, 0, 0, 1), mig(0, 1, 1, 2)];
        assert_eq!(frequent_migration_proportion(&log, 1), 1.0);
    }

    #[test]
    fn separated_windows_are_not_frequent() {
        // Same pattern but 10 periods apart with window 1.
        let log = vec![mig(0, 0, 0, 1), mig(10, 1, 1, 2)];
        assert_eq!(frequent_migration_proportion(&log, 1), 0.0);
        // A wide window merges them back into frequent.
        assert_eq!(frequent_migration_proportion(&log, 20), 1.0);
    }

    #[test]
    fn one_sided_traffic_is_never_frequent() {
        // BS 0 only exports; BSs 1..3 only import.
        let log = vec![mig(0, 0, 0, 1), mig(0, 1, 0, 2), mig(0, 2, 0, 3)];
        assert_eq!(frequent_migration_proportion(&log, 1), 0.0);
    }

    #[test]
    fn intervals_are_normalized_per_bs() {
        let log = vec![
            mig(0, 0, 0, 1),
            mig(10, 1, 0, 1),
            mig(40, 2, 0, 1),
            mig(5, 3, 2, 1), // single outgoing for BS 2: no interval
        ];
        let mut iv = migration_intervals(&log, 100);
        iv.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(iv, vec![0.1, 0.3]);
    }

    #[test]
    fn same_period_moves_dedup() {
        // Two segments exported in the same balancing act → one timestamp.
        let log = vec![mig(3, 0, 0, 1), mig(3, 1, 0, 2), mig(9, 2, 0, 1)];
        let iv = migration_intervals(&log, 12);
        assert_eq!(iv, vec![0.5]);
    }

    #[test]
    fn segment_residency_measures_stickiness() {
        // Segment 0 bounces at periods 2 and 4, then stays until 10;
        // segment 1 moves once at period 1 and never again.
        let log = vec![mig(2, 0, 0, 1), mig(4, 0, 1, 2), mig(1, 1, 0, 2)];
        let mut iv = segment_residency_intervals(&log, 10);
        iv.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(iv, vec![0.2, 0.6, 0.9]); // (4-2), (10-4), (10-1) over 10
    }

    #[test]
    fn per_bs_counts_tally_directions() {
        let log = vec![mig(0, 0, 0, 1), mig(1, 1, 0, 2), mig(2, 2, 1, 0)];
        let counts = per_bs_counts(&log, 3);
        assert_eq!(counts[0], (2, 1));
        assert_eq!(counts[1], (1, 1));
        assert_eq!(counts[2], (0, 1));
    }
}
