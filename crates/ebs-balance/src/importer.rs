//! Importer-selection strategies S1–S5 for the inter-BS balancer (§6.1.2).
//!
//! When a hot BlockServer exports segments, the balancer must pick the
//! importer. The paper compares five policies: random, minimum current
//! traffic (production default), minimum traffic variance, Lunule's
//! linear-fit prediction, and an oracle that knows next period's traffic.

use ebs_core::rng::SimRng;
use ebs_predict::eval::Predictor;
use ebs_predict::linear::LinearFit;
use ebs_predict::Arima;

/// The five importer-selection strategies of Figure 4(b).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ImporterSelect {
    /// S1 — uniformly random BlockServer.
    Random,
    /// S2 — lowest traffic in the current period (production default).
    MinTraffic,
    /// S3 — lowest traffic variance over recent history.
    MinVariance,
    /// S4 — Lunule: lowest linear-fit predicted next-period traffic.
    Lunule,
    /// S5 — oracle: lowest actual next-period traffic.
    Ideal,
    /// S6 (extension) — lowest ARIMA-predicted next-period traffic: the
    /// deployable approximation of the oracle that §6.1.3 argues for
    /// (ARIMA being the best of the classic predictors in Figure 4(c)).
    ArimaPredict,
}

impl ImporterSelect {
    /// All strategies in the paper's S1..S5 order.
    pub const ALL: [ImporterSelect; 5] = [
        ImporterSelect::Random,
        ImporterSelect::MinTraffic,
        ImporterSelect::MinVariance,
        ImporterSelect::Lunule,
        ImporterSelect::Ideal,
    ];

    /// The paper's lineup plus the S6 ARIMA extension.
    pub const EXTENDED: [ImporterSelect; 6] = [
        ImporterSelect::Random,
        ImporterSelect::MinTraffic,
        ImporterSelect::MinVariance,
        ImporterSelect::Lunule,
        ImporterSelect::Ideal,
        ImporterSelect::ArimaPredict,
    ];

    /// Short label ("S1".."S5").
    pub fn label(&self) -> &'static str {
        match self {
            ImporterSelect::Random => "S1-Random",
            ImporterSelect::MinTraffic => "S2-MinTraffic",
            ImporterSelect::MinVariance => "S3-MinVariance",
            ImporterSelect::Lunule => "S4-Lunule",
            ImporterSelect::Ideal => "S5-Ideal",
            ImporterSelect::ArimaPredict => "S6-ARIMA",
        }
    }
}

/// Everything a strategy may look at when choosing an importer. All slices
/// are indexed by *cluster-local* BS position.
pub struct ImporterContext<'a> {
    /// Per-BS traffic in the current period.
    pub current: &'a [f64],
    /// Per-BS traffic history including the current period
    /// (`history[bs][period]`).
    pub history: &'a [Vec<f64>],
    /// Per-BS traffic in the next period under the current placement
    /// (the oracle's knowledge; available in simulation).
    pub next: &'a [f64],
    /// Cluster-local index of the exporter (never chosen).
    pub exporter: usize,
}

/// Pick an importer (cluster-local index). Returns `None` when the cluster
/// has no candidate besides the exporter.
pub fn select_importer(
    strategy: ImporterSelect,
    rng: &mut SimRng,
    ctx: &ImporterContext<'_>,
) -> Option<usize> {
    let n = ctx.current.len();
    if n < 2 {
        return None;
    }
    let candidates: Vec<usize> = (0..n).filter(|&i| i != ctx.exporter).collect();
    let argmin = |score: &dyn Fn(usize) -> f64| -> Option<usize> {
        candidates
            .iter()
            .copied()
            .min_by(|&a, &b| score(a).partial_cmp(&score(b)).expect("no NaNs"))
    };
    match strategy {
        ImporterSelect::Random => Some(candidates[rng.index(candidates.len())]),
        ImporterSelect::MinTraffic => argmin(&|i| ctx.current[i]),
        ImporterSelect::MinVariance => argmin(&|i| variance(&ctx.history[i])),
        ImporterSelect::Lunule => argmin(&|i| {
            let h = &ctx.history[i];
            let start = h.len().saturating_sub(4);
            let (a, b) = LinearFit::fit_line(&h[start..]);
            (a + b * (h.len() - start) as f64).max(0.0)
        }),
        ImporterSelect::Ideal => argmin(&|i| ctx.next[i]),
        ImporterSelect::ArimaPredict => argmin(&|i| {
            let h = &ctx.history[i];
            if h.len() < 6 {
                return ctx.current[i];
            }
            // Bounded history keeps the per-period fit affordable.
            let start = h.len().saturating_sub(48);
            let mut model = Arima::new(3, 1);
            model.fit(&h[start..]);
            model.predict_next(&h[start..])
        }),
    }
}

fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        current: &'a [f64],
        history: &'a [Vec<f64>],
        next: &'a [f64],
        exporter: usize,
    ) -> ImporterContext<'a> {
        ImporterContext {
            current,
            history,
            next,
            exporter,
        }
    }

    #[test]
    fn min_traffic_picks_current_minimum() {
        let current = [9.0, 1.0, 5.0];
        let hist = vec![vec![9.0], vec![1.0], vec![5.0]];
        let next = [0.0, 100.0, 0.0];
        let mut rng = SimRng::seed_from_u64(1);
        let pick = select_importer(
            ImporterSelect::MinTraffic,
            &mut rng,
            &ctx(&current, &hist, &next, 0),
        );
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn ideal_picks_future_minimum() {
        let current = [9.0, 1.0, 5.0];
        let hist = vec![vec![9.0], vec![1.0], vec![5.0]];
        let next = [0.0, 100.0, 2.0];
        let mut rng = SimRng::seed_from_u64(1);
        let pick = select_importer(
            ImporterSelect::Ideal,
            &mut rng,
            &ctx(&current, &hist, &next, 0),
        );
        // BS 0 is the exporter; among {1, 2} the lowest future traffic is 2.
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn exporter_is_never_chosen() {
        let current = [0.0, 10.0];
        let hist = vec![vec![0.0], vec![10.0]];
        let next = [0.0, 10.0];
        let mut rng = SimRng::seed_from_u64(2);
        for s in ImporterSelect::EXTENDED {
            let pick = select_importer(s, &mut rng, &ctx(&current, &hist, &next, 0));
            assert_eq!(pick, Some(1), "{s:?} must skip the exporter");
        }
    }

    #[test]
    fn min_variance_prefers_stable_bs() {
        let current = [5.0, 5.0, 5.0];
        let hist = vec![
            vec![5.0, 5.0, 5.0, 5.0],   // flat
            vec![0.0, 10.0, 0.0, 10.0], // volatile
            vec![2.0, 8.0, 3.0, 7.0],
        ];
        let next = [5.0; 3];
        let mut rng = SimRng::seed_from_u64(3);
        let pick = select_importer(
            ImporterSelect::MinVariance,
            &mut rng,
            &ctx(&current, &hist, &next, 2),
        );
        assert_eq!(pick, Some(0));
    }

    #[test]
    fn lunule_follows_the_trend() {
        let current = [4.0, 4.0, 9.0];
        let hist = vec![
            vec![1.0, 2.0, 3.0, 4.0], // rising → predicted 5
            vec![7.0, 6.0, 5.0, 4.0], // falling → predicted 3
            vec![9.0; 4],
        ];
        let next = [0.0; 3];
        let mut rng = SimRng::seed_from_u64(4);
        let pick = select_importer(
            ImporterSelect::Lunule,
            &mut rng,
            &ctx(&current, &hist, &next, 2),
        );
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn arima_importer_tracks_an_ar_process() {
        // BS 0 follows a rising AR trend, BS 1 a falling one; the ARIMA
        // strategy must send segments to the one headed down.
        let up: Vec<f64> = (0..30).map(|i| 10.0 + 3.0 * i as f64).collect();
        let down: Vec<f64> = (0..30).map(|i| 100.0 - 3.0 * i as f64).collect();
        let current = [*up.last().unwrap(), *down.last().unwrap(), 500.0];
        let hist = vec![up, down, vec![500.0; 30]];
        let next = [0.0; 3];
        let mut rng = SimRng::seed_from_u64(7);
        let pick = select_importer(
            ImporterSelect::ArimaPredict,
            &mut rng,
            &ctx(&current, &hist, &next, 2),
        );
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn single_bs_cluster_has_no_importer() {
        let current = [5.0];
        let hist = vec![vec![5.0]];
        let next = [5.0];
        let mut rng = SimRng::seed_from_u64(5);
        assert_eq!(
            select_importer(
                ImporterSelect::MinTraffic,
                &mut rng,
                &ctx(&current, &hist, &next, 0)
            ),
            None
        );
    }

    #[test]
    fn random_covers_candidates() {
        let current = [1.0, 2.0, 3.0, 4.0];
        let hist = vec![vec![0.0]; 4];
        let next = [0.0; 4];
        let mut rng = SimRng::seed_from_u64(6);
        let mut seen = ebs_core::hash::FxHashSet::default();
        for _ in 0..100 {
            seen.insert(
                select_importer(
                    ImporterSelect::Random,
                    &mut rng,
                    &ctx(&current, &hist, &next, 1),
                )
                .unwrap(),
            );
        }
        assert_eq!(seen, [0usize, 2, 3].into_iter().collect());
    }
}
