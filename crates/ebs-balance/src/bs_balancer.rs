//! The inter-BS segment balancer — Algorithm 1 of the paper.
//!
//! Periodically (every storage tick, 30 s by default): compute each
//! BlockServer's traffic for the period; any BS above `exporter_ratio` ×
//! cluster average exports its hottest segments (top-x until their summed
//! traffic exceeds `move_quota` × average) to an importer chosen by the
//! configured strategy (§6.1.2). The balancer operates per data center —
//! each DC's BlockServers form one storage cluster.

use crate::importer::{select_importer, ImporterContext, ImporterSelect};
use ebs_core::ids::{BsId, DcId, SegId};
use ebs_core::metric::{Measure, StorageMetrics};
use ebs_core::rng::SimRng;
use ebs_core::topology::Fleet;
use ebs_stack::segment::SegmentMap;

/// Balancer configuration (Algorithm 1 defaults).
#[derive(Clone, Debug)]
pub struct BalancerConfig {
    /// Export when a BS carries ≥ this multiple of the cluster average.
    pub exporter_ratio: f64,
    /// Export segments until their summed traffic exceeds this multiple of
    /// the cluster average.
    pub move_quota: f64,
    /// Importer-selection strategy.
    pub strategy: ImporterSelect,
    /// Traffic measure the balancer levels (the production balancer uses
    /// write traffic only, §2.2).
    pub measure: Measure,
    /// Skip importers already holding another segment of the same VD
    /// (reliability constraint, §6.1.3).
    pub enforce_vd_spread: bool,
    /// Seed for the Random strategy.
    pub seed: u64,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        Self {
            exporter_ratio: 1.2,
            move_quota: 0.2,
            strategy: ImporterSelect::MinTraffic,
            measure: Measure::WriteBytes,
            enforce_vd_spread: false,
            seed: 0xBA1A_7CE5,
        }
    }
}

/// Result of one balancer run over a cluster.
#[derive(Clone, Debug)]
pub struct BalancerRun {
    /// Final placement (with the migration log inside).
    pub seg_map: SegmentMap,
    /// Number of periods simulated.
    pub periods: u32,
    /// Per-period normalized CoV of BS traffic *as observed* (before that
    /// period's migrations take effect), for the balanced measure.
    pub cov_series: Vec<f64>,
    /// Total segments migrated.
    pub migrations: usize,
}

/// Sparse per-period view of segment traffic: `periods[p]` lists
/// `(segment, value)` for every segment active in period `p`.
pub struct PeriodTraffic {
    /// Per-period active segments and their traffic.
    pub periods: Vec<Vec<(SegId, f64)>>,
}

impl PeriodTraffic {
    /// Build from storage metrics for the segments of one DC.
    pub fn build(fleet: &Fleet, metrics: &StorageMetrics, dc: DcId, measure: Measure) -> Self {
        let mut periods = vec![Vec::new(); metrics.ticks.ticks as usize];
        for (i, series) in metrics.per_seg.iter().enumerate() {
            let seg = SegId::from_index(i);
            if series.is_empty() || fleet.dc_of_seg(seg) != dc {
                continue;
            }
            for s in series.samples() {
                let v = measure.of(&s.rw);
                if v > 0.0 {
                    // Ticks outside the grid (a malformed series) are
                    // dropped rather than panicking the balancer.
                    if let Some(bucket) = periods.get_mut(s.tick as usize) {
                        bucket.push((seg, v));
                    }
                }
            }
        }
        Self { periods }
    }

    /// Per-BS totals for period `p` under `map`, as a dense vector indexed
    /// by cluster-local BS position (`bss` gives the cluster's BSs).
    pub fn bs_totals(&self, p: usize, map: &SegmentMap, bss: &[BsId]) -> Vec<f64> {
        let mut local = vec![0.0; bss.len()];
        let pos: ebs_core::hash::FxHashMap<BsId, usize> =
            bss.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        if let Some(entries) = self.periods.get(p) {
            for &(seg, v) in entries {
                if let Some(slot) = pos.get(&map.home_of(seg)).and_then(|&i| local.get_mut(i)) {
                    *slot += v;
                }
            }
        }
        local
    }
}

fn normalized_cov(values: &[f64]) -> Option<f64> {
    ebs_analysis::normalized_cov(values)
}

/// One balancing pass of Algorithm 1 at period `p`: detect exporters in
/// `current` (cluster-local per-BS traffic for the balanced measure) and
/// migrate their hottest segments. `current` is updated as importers
/// receive traffic. Returns the number of segments migrated.
///
/// Exposed so multi-phase schemes (Write-then-Read, §6.2) can chain passes
/// with different measures inside one period.
#[allow(clippy::too_many_arguments)]
pub fn balance_period(
    fleet: &Fleet,
    bss: &[BsId],
    traffic: &PeriodTraffic,
    p: usize,
    seg_map: &mut SegmentMap,
    current: &mut [f64],
    history: &[Vec<f64>],
    rng: &mut SimRng,
    config: &BalancerConfig,
) -> usize {
    let total: f64 = current.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let avg = total / bss.len() as f64;
    let periods = traffic.periods.len();
    let next = if p + 1 < periods {
        traffic.bs_totals(p + 1, seg_map, bss)
    } else {
        vec![0.0; bss.len()]
    };
    let mut migrated = 0usize;

    // Iterate exporters hottest-first for determinism. Sorting an
    // (index, value) snapshot — `total_cmp`, so the pass is total — keeps
    // the closure free of slice indexing; stale snapshot values are fine
    // because only the threshold check below reads the live view.
    let mut order: Vec<(usize, f64)> = current.iter().copied().enumerate().collect();
    order.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (exporter, _) in order {
        let Some(&exporter_load) = current.get(exporter) else {
            continue;
        };
        if exporter_load < config.exporter_ratio * avg {
            continue;
        }
        let Some(&exporter_bs) = bss.get(exporter) else {
            continue;
        };
        // This exporter's segments active this period, hottest first.
        let mut segs: Vec<(SegId, f64)> = traffic
            .periods
            .get(p)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .filter(|&&(seg, _)| seg_map.home_of(seg) == exporter_bs)
            .copied()
            .collect();
        segs.sort_by(|a, b| b.1.total_cmp(&a.1));
        let quota = config.move_quota * avg;
        let mut moved = 0.0;
        for (seg, v) in segs {
            if moved > quota {
                break;
            }
            let ctx = ImporterContext {
                current,
                history,
                next: &next,
                exporter,
            };
            let Some(mut importer) = select_importer(config.strategy, rng, &ctx) else {
                ebs_obs::counter_add("balance.migrations_aborted", 1);
                break;
            };
            if config.enforce_vd_spread {
                let Some(vd) = fleet.segments.get(seg).map(|s| s.vd) else {
                    continue;
                };
                let clash = |bs: BsId| {
                    fleet
                        .vds
                        .get(vd)
                        .is_some_and(|d| d.segments().any(|s| s != seg && seg_map.home_of(s) == bs))
                };
                if bss.get(importer).is_some_and(|&bs| clash(bs)) {
                    // Fall back to the least-loaded non-clashing BS.
                    let alt = current
                        .iter()
                        .zip(bss)
                        .enumerate()
                        .filter(|&(i, (_, &bs))| i != exporter && !clash(bs))
                        .min_by(|(_, (a, _)), (_, (b, _))| a.total_cmp(b))
                        .map(|(i, _)| i);
                    match alt {
                        Some(a) => importer = a,
                        None => {
                            ebs_obs::counter_add("balance.migrations_aborted", 1);
                            continue;
                        }
                    }
                }
            }
            let Some(&importer_bs) = bss.get(importer) else {
                ebs_obs::counter_add("balance.migrations_aborted", 1);
                continue;
            };
            seg_map.migrate(fleet, p as u32, seg, importer_bs);
            // Per Algorithm 1, only the working view of the balanced
            // measure is updated (line 8); the oracle's `next` snapshot is
            // deliberately left untouched — empirically, "correcting" it
            // spreads hot segments across several about-to-be-cold BSs and
            // doubles the migration churn at fleet scale.
            if let Some(load) = current.get_mut(importer) {
                *load += v;
            }
            moved += v;
            migrated += 1;
        }
    }
    migrated
}

/// Run Algorithm 1 over the storage cluster of `dc`.
pub fn run_balancer(
    fleet: &Fleet,
    metrics: &StorageMetrics,
    dc: DcId,
    config: &BalancerConfig,
) -> BalancerRun {
    let bss: Vec<BsId> = fleet.bss_of_dc(dc).to_vec();
    let traffic = PeriodTraffic::build(fleet, metrics, dc, config.measure);
    let mut seg_map = SegmentMap::from_fleet(fleet);
    let mut rng = SimRng::seed_from_u64(config.seed);
    let mut history: Vec<Vec<f64>> = vec![Vec::new(); bss.len()];
    let mut cov_series = Vec::new();
    let periods = traffic.periods.len();

    for p in 0..periods {
        let mut current = traffic.bs_totals(p, &seg_map, &bss);
        if let Some(c) = normalized_cov(&current) {
            cov_series.push(c);
        }
        for (h, &c) in history.iter_mut().zip(current.iter()) {
            h.push(c);
        }
        balance_period(
            fleet,
            &bss,
            &traffic,
            p,
            &mut seg_map,
            &mut current,
            &history,
            &mut rng,
            config,
        );
    }
    let migrations = seg_map.log().len();
    ebs_obs::counter_add("balance.migrations", migrations as u64);
    ebs_obs::counter_add("balance.balancer_runs", 1);
    BalancerRun {
        seg_map,
        periods: periods as u32,
        cov_series,
        migrations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workload::{generate, WorkloadConfig};

    fn dataset() -> ebs_workload::Dataset {
        generate(&WorkloadConfig::quick(61)).unwrap()
    }

    #[test]
    fn balancer_runs_and_conserves_segments() {
        let ds = dataset();
        let run = run_balancer(&ds.fleet, &ds.storage, DcId(0), &BalancerConfig::default());
        let counts = run.seg_map.load_counts(ds.fleet.block_servers.len());
        assert_eq!(counts.iter().sum::<usize>(), ds.fleet.segments.len());
        assert_eq!(run.migrations, run.seg_map.log().len());
        assert!(run.periods > 0);
    }

    #[test]
    fn hot_cluster_triggers_migrations() {
        let ds = dataset();
        let run = run_balancer(&ds.fleet, &ds.storage, DcId(0), &BalancerConfig::default());
        assert!(run.migrations > 0, "skewed traffic must trigger migrations");
    }

    #[test]
    fn strategies_produce_different_placements() {
        let ds = dataset();
        let mk = |strategy| {
            run_balancer(
                &ds.fleet,
                &ds.storage,
                DcId(0),
                &BalancerConfig {
                    strategy,
                    ..BalancerConfig::default()
                },
            )
        };
        let a = mk(ImporterSelect::MinTraffic);
        let b = mk(ImporterSelect::Ideal);
        // The placements should diverge somewhere.
        let diff = a
            .seg_map
            .as_slice()
            .iter()
            .zip(b.seg_map.as_slice())
            .filter(|(x, y)| x != y)
            .count();
        assert!(diff > 0, "MinTraffic and Ideal placed identically");
    }

    #[test]
    fn migrations_never_leave_the_dc() {
        let ds = dataset();
        let run = run_balancer(&ds.fleet, &ds.storage, DcId(0), &BalancerConfig::default());
        for m in run.seg_map.log() {
            let seg_dc = ds.fleet.dc_of_seg(m.seg);
            let to_dc = ds.fleet.storage_nodes[ds.fleet.block_servers[m.to].sn].dc;
            assert_eq!(seg_dc, to_dc);
        }
    }

    #[test]
    fn vd_spread_constraint_is_respected_by_migrations() {
        let ds = dataset();
        let cfg = BalancerConfig {
            enforce_vd_spread: true,
            ..BalancerConfig::default()
        };
        let run = run_balancer(&ds.fleet, &ds.storage, DcId(0), &cfg);
        // Every *migrated* segment must not share its destination BS with a
        // sibling segment of the same VD at the time of arrival. We verify
        // the weaker invariant on the final placement for migrated
        // segments: allowed collisions can only come from later moves of
        // siblings, which this config never makes to an occupied BS.
        for m in run.seg_map.log() {
            let vd = ds.fleet.segments[m.seg].vd;
            if run.seg_map.home_of(m.seg) != m.to {
                continue; // segment moved again later
            }
            let collisions = ds.fleet.vds[vd]
                .segments()
                .filter(|&s| s != m.seg && run.seg_map.home_of(s) == m.to)
                .count();
            assert_eq!(collisions, 0, "segment {} collides with a sibling", m.seg);
        }
    }

    #[test]
    fn cov_series_is_bounded() {
        let ds = dataset();
        let run = run_balancer(&ds.fleet, &ds.storage, DcId(0), &BalancerConfig::default());
        for &c in &run.cov_series {
            assert!((0.0..=1.0).contains(&c));
        }
    }
}
