//! Balanced write but skewed read (§6.2): Write-Only versus Write-then-Read
//! migration.
//!
//! The production balancer migrates on write traffic only; Figure 5(c)
//! simulates adding a second, read-driven pass per period (with the Ideal
//! importer) and finds it cuts read skew without hurting — indeed slightly
//! helping — write balance.

use crate::bs_balancer::{balance_period, BalancerConfig, PeriodTraffic};
use crate::importer::ImporterSelect;
use ebs_core::ids::{BsId, DcId};
use ebs_core::metric::{Measure, StorageMetrics};
use ebs_core::rng::SimRng;
use ebs_core::topology::Fleet;
use ebs_stack::segment::SegmentMap;

/// The two migration algorithms of Figure 5(c).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationScheme {
    /// Production behaviour: one write-driven pass per period.
    WriteOnly,
    /// Write-driven pass, then a read-driven pass, each period.
    WriteThenRead,
}

/// Per-period CoV series for both directions.
#[derive(Clone, Debug)]
pub struct RwCovSeries {
    /// Normalized CoV of per-BS *write* traffic, one entry per period with
    /// traffic.
    pub write: Vec<f64>,
    /// Normalized CoV of per-BS *read* traffic.
    pub read: Vec<f64>,
    /// Total migrations performed.
    pub migrations: usize,
}

/// Run one scheme over the storage cluster of `dc` and record per-period
/// read/write CoV (measured at the start of each period, i.e. reflecting
/// the previous periods' migrations).
pub fn run_scheme(
    fleet: &Fleet,
    metrics: &StorageMetrics,
    dc: DcId,
    scheme: MigrationScheme,
    config: &BalancerConfig,
) -> RwCovSeries {
    let bss: Vec<BsId> = fleet.bss_of_dc(dc).to_vec();
    let wt = PeriodTraffic::build(fleet, metrics, dc, Measure::WriteBytes);
    let rt = PeriodTraffic::build(fleet, metrics, dc, Measure::ReadBytes);
    let mut seg_map = SegmentMap::from_fleet(fleet);
    let mut rng = SimRng::seed_from_u64(config.seed);
    let mut w_history: Vec<Vec<f64>> = vec![Vec::new(); bss.len()];
    let mut r_history: Vec<Vec<f64>> = vec![Vec::new(); bss.len()];
    let mut out = RwCovSeries {
        write: Vec::new(),
        read: Vec::new(),
        migrations: 0,
    };

    let write_cfg = BalancerConfig {
        measure: Measure::WriteBytes,
        ..config.clone()
    };
    let read_cfg = BalancerConfig {
        measure: Measure::ReadBytes,
        strategy: ImporterSelect::Ideal,
        ..config.clone()
    };

    let periods = wt.periods.len();
    for p in 0..periods {
        let mut w_current = wt.bs_totals(p, &seg_map, &bss);
        let mut r_current = rt.bs_totals(p, &seg_map, &bss);
        if let Some(c) = ebs_analysis::normalized_cov(&w_current) {
            out.write.push(c);
        }
        if let Some(c) = ebs_analysis::normalized_cov(&r_current) {
            out.read.push(c);
        }
        for (i, h) in w_history.iter_mut().enumerate() {
            h.push(w_current[i]);
        }
        for (i, h) in r_history.iter_mut().enumerate() {
            h.push(r_current[i]);
        }
        out.migrations += balance_period(
            fleet,
            &bss,
            &wt,
            p,
            &mut seg_map,
            &mut w_current,
            &w_history,
            &mut rng,
            &write_cfg,
        );
        if scheme == MigrationScheme::WriteThenRead {
            out.migrations += balance_period(
                fleet,
                &bss,
                &rt,
                p,
                &mut seg_map,
                &mut r_current,
                &r_history,
                &mut rng,
                &read_cfg,
            );
        }
    }
    out
}

/// Median of a slice (`None` when empty); convenience for reporting.
pub fn median(v: &[f64]) -> Option<f64> {
    ebs_analysis::median(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workload::{generate, WorkloadConfig};

    #[test]
    fn write_then_read_migrates_more() {
        let ds = generate(&WorkloadConfig::quick(71)).unwrap();
        let cfg = BalancerConfig {
            strategy: ImporterSelect::Ideal,
            ..BalancerConfig::default()
        };
        let wo = run_scheme(
            &ds.fleet,
            &ds.storage,
            DcId(0),
            MigrationScheme::WriteOnly,
            &cfg,
        );
        let wr = run_scheme(
            &ds.fleet,
            &ds.storage,
            DcId(0),
            MigrationScheme::WriteThenRead,
            &cfg,
        );
        assert!(wr.migrations >= wo.migrations);
        assert!(wr.migrations > 0);
    }

    #[test]
    fn read_pass_does_not_disturb_either_direction() {
        // The paper's Figure 5(c) claims: (i) read migration does not
        // intensify write skew — it even helps slightly — and (ii) read
        // skew is alleviated. Claim (i) reproduces cleanly. Claim (ii) is
        // placement-dependent: our fleets *start* from a clean round-robin
        // spread, so chasing transient read bursts buys little (see
        // EXPERIMENTS.md); we assert read CoV stays within noise instead.
        let ds = generate(&WorkloadConfig::medium(72)).unwrap();
        let cfg = BalancerConfig {
            strategy: ImporterSelect::Ideal,
            ..BalancerConfig::default()
        };
        let wo = run_scheme(
            &ds.fleet,
            &ds.storage,
            DcId(0),
            MigrationScheme::WriteOnly,
            &cfg,
        );
        let wr = run_scheme(
            &ds.fleet,
            &ds.storage,
            DcId(0),
            MigrationScheme::WriteThenRead,
            &cfg,
        );
        let (w_wo, w_wr) = (median(&wo.write).unwrap(), median(&wr.write).unwrap());
        assert!(
            w_wr <= w_wo * 1.05,
            "write CoV must not degrade: write-only {w_wo:.3} vs write-then-read {w_wr:.3}"
        );
        let (r_wo, r_wr) = (median(&wo.read).unwrap(), median(&wr.read).unwrap());
        assert!(
            r_wr <= r_wo * 1.08,
            "read CoV outside noise band: write-only {r_wo:.3} vs write-then-read {r_wr:.3}"
        );
    }

    #[test]
    fn both_series_are_bounded() {
        let ds = generate(&WorkloadConfig::quick(73)).unwrap();
        let cfg = BalancerConfig::default();
        let out = run_scheme(
            &ds.fleet,
            &ds.storage,
            DcId(0),
            MigrationScheme::WriteThenRead,
            &cfg,
        );
        for &c in out.write.iter().chain(&out.read) {
            assert!((0.0..=1.0).contains(&c));
        }
        assert!(!out.write.is_empty());
    }
}
