//! # ebs-balance — the paper's load-balancing algorithms
//!
//! Two balancing layers are studied:
//!
//! * **Hypervisor (§4)** — [`wt_rebind`] simulates the periodic QP→WT
//!   rebinding of §4.3 (10 ms periods, 1.2× trigger, hottest/coldest swap)
//!   and reproduces its failure mode under sub-period bursts; [`dispatch`]
//!   quantifies the multi-WT dispatch model §4.4 argues for.
//! * **Storage cluster (§6)** — [`bs_balancer`] is Algorithm 1 (the
//!   HDFS/Ceph-style periodic segment balancer) with the five importer-
//!   selection strategies of [`importer`]; [`migration`] detects the
//!   frequent-migration pathology of §6.1.1; [`read_write`] compares
//!   Write-Only against Write-then-Read migration (§6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bs_balancer;
pub mod dispatch;
pub mod importer;
pub mod migration;
pub mod read_write;
pub mod wt_rebind;

pub use bs_balancer::{run_balancer, BalancerConfig, BalancerRun, PeriodTraffic};
pub use dispatch::{compare_fleet, HostingModel};
pub use importer::ImporterSelect;
pub use migration::{frequent_migration_proportion, migration_intervals};
pub use read_write::{run_scheme, MigrationScheme};
pub use wt_rebind::{simulate_fleet, simulate_node, RebindConfig, RebindOutcome};
