//! Resource Available Rate (Equation 1) and throttle attribution (§5.1–5.2).

use crate::scenario::ThrottleGroup;

/// RAR samples of a group: for every tick where at least one member is
/// throttled, `RAR(t) = (Cap − min(VM(t), Cap)) / Cap`, where `Cap` is the
/// summed member caps and `VM(t)` the summed *delivered* traffic (each
/// member clamped to its own cap — the paper measures post-throttle
/// traffic).
pub fn rar_samples(group: &ThrottleGroup) -> Vec<f64> {
    let cap = group.total_cap();
    if cap <= 0.0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for t in 0..group.ticks {
        if !group.any_throttled(t) {
            continue;
        }
        let delivered: f64 = group.members.iter().map(|m| m.demand(t).min(m.cap)).sum();
        out.push(((cap - delivered) / cap).clamp(0.0, 1.0));
    }
    ebs_obs::observe_many("throttle.rar", 0.0, 1.0, 20, &out);
    ebs_obs::counter_add("throttle.rar.samples", out.len() as u64);
    out
}

/// Normalized write-to-read ratio of the *throttled member* at each
/// throttled tick (Figure 3(c)): positive = writes drove the throttle.
pub fn throttled_wr_ratios(group: &ThrottleGroup) -> Vec<f64> {
    let mut out = Vec::new();
    for t in 0..group.ticks {
        for m in &group.members {
            if m.throttled(t) {
                if let Some(r) = ebs_analysis::wr_ratio(m.write[t], m.read[t]) {
                    out.push(r);
                }
            }
        }
    }
    out
}

/// Count of throttled (member, tick) pairs — used to compare how often the
/// throughput cap fires versus the IOPS cap.
pub fn throttle_event_count(group: &ThrottleGroup) -> usize {
    (0..group.ticks)
        .map(|t| group.members.iter().filter(|m| m.throttled(t)).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GroupKind, VdSeries};
    use ebs_core::ids::{VdId, VmId};

    fn group(members: Vec<VdSeries>) -> ThrottleGroup {
        let ticks = members[0].read.len();
        ThrottleGroup {
            kind: GroupKind::MultiVdVm(VmId(0)),
            members,
            ticks,
        }
    }

    fn vd(read: Vec<f64>, write: Vec<f64>, cap: f64) -> VdSeries {
        VdSeries {
            vd: VdId(0),
            read,
            write,
            cap,
        }
    }

    #[test]
    fn rar_reflects_headroom() {
        // Member 0 throttled at tick 0 (demand 100 ≥ cap 100); member 1
        // idle with cap 300 → delivered = 100, cap = 400, RAR = 0.75.
        let g = group(vec![
            vd(vec![0.0], vec![100.0], 100.0),
            vd(vec![0.0], vec![0.0], 300.0),
        ]);
        let rar = rar_samples(&g);
        assert_eq!(rar.len(), 1);
        assert!((rar[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn no_throttle_no_samples() {
        let g = group(vec![
            vd(vec![1.0, 2.0], vec![1.0, 2.0], 100.0),
            vd(vec![0.0, 0.0], vec![1.0, 1.0], 100.0),
        ]);
        assert!(rar_samples(&g).is_empty());
        assert_eq!(throttle_event_count(&g), 0);
    }

    #[test]
    fn demand_over_cap_is_clamped_in_rar() {
        // Demand 500 against cap 100: delivered clamps to 100.
        let g = group(vec![
            vd(vec![0.0], vec![500.0], 100.0),
            vd(vec![0.0], vec![0.0], 100.0),
        ]);
        let rar = rar_samples(&g);
        assert!((rar[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wr_ratio_identifies_write_driven_throttles() {
        let g = group(vec![
            vd(vec![10.0], vec![90.0], 100.0), // throttled, write-heavy
            vd(vec![0.0], vec![0.0], 100.0),
        ]);
        let ratios = throttled_wr_ratios(&g);
        assert_eq!(ratios.len(), 1);
        assert!((ratios[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn event_count_counts_member_ticks() {
        let g = group(vec![
            vd(vec![100.0, 100.0], vec![0.0, 0.0], 100.0), // throttled both ticks
            vd(vec![0.0, 200.0], vec![0.0, 0.0], 100.0),   // throttled tick 1
        ]);
        assert_eq!(throttle_event_count(&g), 3);
    }
}
