//! Throttle-study scenarios: multi-VD VMs and multi-VM nodes (§5.1).
//!
//! The paper's observation is about *groups* of disks whose caps could be
//! pooled: the VDs of one VM, or the VDs of one tenant's VMs co-located on
//! one compute node. This module extracts those groups from the metric
//! data as dense per-tick demand series (read/write split) plus each
//! member's cap in the studied dimension.

use ebs_core::ids::{CnId, QpId, UserId, VdId, VmId};
use ebs_core::metric::{ComputeMetrics, Measure};
use ebs_core::topology::Fleet;

/// Which cap dimension is studied (either can trigger the throttle, §5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CapDim {
    /// Bytes/second against `VdSpec::tput_cap`.
    Throughput,
    /// Operations/second against `VdSpec::iops_cap`.
    Iops,
}

impl CapDim {
    /// Both dimensions.
    pub const ALL: [CapDim; 2] = [CapDim::Throughput, CapDim::Iops];

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            CapDim::Throughput => "throughput",
            CapDim::Iops => "IOPS",
        }
    }
}

/// Demand series of one virtual disk in one dimension.
#[derive(Clone, Debug)]
pub struct VdSeries {
    /// The disk.
    pub vd: VdId,
    /// Per-tick read demand (rate: bytes/s or ops/s).
    pub read: Vec<f64>,
    /// Per-tick write demand.
    pub write: Vec<f64>,
    /// The cap in this dimension.
    pub cap: f64,
}

impl VdSeries {
    /// Total demand (read + write) at tick `t`.
    #[inline]
    pub fn demand(&self, t: usize) -> f64 {
        self.read[t] + self.write[t]
    }

    /// Whether the disk's demand hits its cap at tick `t`.
    #[inline]
    pub fn throttled(&self, t: usize) -> bool {
        self.demand(t) >= self.cap
    }
}

/// What kind of group this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupKind {
    /// All VDs of one VM (the VM mounts ≥ 2 disks).
    MultiVdVm(VmId),
    /// All VDs of one tenant's VMs co-located on one compute node
    /// (≥ 2 VMs of that tenant on the node).
    MultiVmNode(CnId, UserId),
}

/// A poolable group of disks.
#[derive(Clone, Debug)]
pub struct ThrottleGroup {
    /// Group identity.
    pub kind: GroupKind,
    /// Member demand series.
    pub members: Vec<VdSeries>,
    /// Number of ticks.
    pub ticks: usize,
}

impl ThrottleGroup {
    /// Sum of member caps.
    pub fn total_cap(&self) -> f64 {
        self.members.iter().map(|m| m.cap).sum()
    }

    /// Group demand at tick `t`.
    pub fn total_demand(&self, t: usize) -> f64 {
        self.members.iter().map(|m| m.demand(t)).sum()
    }

    /// Whether any member is throttled at tick `t`.
    pub fn any_throttled(&self, t: usize) -> bool {
        self.members.iter().any(|m| m.throttled(t))
    }
}

/// Build dense per-VD demand series for one dimension.
fn vd_series(fleet: &Fleet, metrics: &ComputeMetrics, dim: CapDim, vd: VdId) -> VdSeries {
    let ticks = metrics.ticks.ticks as usize;
    let dt = metrics.ticks.tick_secs;
    let (rm, wm) = match dim {
        CapDim::Throughput => (Measure::ReadBytes, Measure::WriteBytes),
        CapDim::Iops => (Measure::ReadOps, Measure::WriteOps),
    };
    let mut read = vec![0.0; ticks];
    let mut write = vec![0.0; ticks];
    for qp in fleet.vds[vd].qps() {
        let series = &metrics.per_qp[QpId(qp.0)];
        series.accumulate_into(&mut read, rm);
        series.accumulate_into(&mut write, wm);
    }
    for v in read.iter_mut().chain(write.iter_mut()) {
        *v /= dt; // volumes → rates
    }
    let spec = fleet.vds[vd].spec;
    let cap = match dim {
        CapDim::Throughput => spec.tput_cap,
        CapDim::Iops => spec.iops_cap,
    };
    VdSeries {
        vd,
        read,
        write,
        cap,
    }
}

/// Extract all multi-VD-VM and multi-VM-node groups of the fleet.
pub fn build_groups(fleet: &Fleet, metrics: &ComputeMetrics, dim: CapDim) -> Vec<ThrottleGroup> {
    let ticks = metrics.ticks.ticks as usize;
    let mut groups = Vec::new();

    // Multi-VD VMs.
    for vm in fleet.vms.iter() {
        let vds = fleet.vds_of_vm(vm.id);
        if vds.len() < 2 {
            continue;
        }
        groups.push(ThrottleGroup {
            kind: GroupKind::MultiVdVm(vm.id),
            members: vds
                .iter()
                .map(|&vd| vd_series(fleet, metrics, dim, vd))
                .collect(),
            ticks,
        });
    }

    // Multi-VM nodes: same tenant, same compute node, ≥ 2 VMs.
    let mut by_node_user: std::collections::BTreeMap<(CnId, UserId), Vec<VmId>> =
        std::collections::BTreeMap::new();
    for vm in fleet.vms.iter() {
        by_node_user
            .entry((vm.cn, vm.user))
            .or_default()
            .push(vm.id);
    }
    for ((cn, user), vms) in by_node_user {
        if vms.len() < 2 {
            continue;
        }
        let members: Vec<VdSeries> = vms
            .iter()
            .flat_map(|&vm| fleet.vds_of_vm(vm).iter().copied())
            .map(|vd| vd_series(fleet, metrics, dim, vd))
            .collect();
        if members.len() < 2 {
            continue;
        }
        groups.push(ThrottleGroup {
            kind: GroupKind::MultiVmNode(cn, user),
            members,
            ticks,
        });
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workload::{generate, WorkloadConfig};

    fn dataset() -> ebs_workload::Dataset {
        generate(&WorkloadConfig::quick(91)).unwrap()
    }

    #[test]
    fn groups_have_at_least_two_members() {
        let ds = dataset();
        for dim in CapDim::ALL {
            let groups = build_groups(&ds.fleet, &ds.compute, dim);
            assert!(!groups.is_empty());
            for g in &groups {
                assert!(g.members.len() >= 2, "{:?}", g.kind);
                assert!(g.total_cap() > 0.0);
            }
        }
    }

    #[test]
    fn whale_vm_forms_the_biggest_group() {
        let ds = dataset();
        let groups = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
        let max = groups.iter().map(|g| g.members.len()).max().unwrap();
        assert_eq!(max, ebs_workload::fleet::WHALE_VD_COUNT);
    }

    #[test]
    fn demand_matches_metric_totals() {
        let ds = dataset();
        let groups = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
        // Sum of all multi-VD-VM member demand-volumes must not exceed the
        // fleet total (each VD appears in at most one VM group).
        let dt = ds.compute.ticks.tick_secs;
        let vm_groups: f64 = groups
            .iter()
            .filter(|g| matches!(g.kind, GroupKind::MultiVdVm(_)))
            .flat_map(|g| g.members.iter())
            .map(|m| (m.read.iter().sum::<f64>() + m.write.iter().sum::<f64>()) * dt)
            .sum();
        let (r, w) = ds.total_bytes();
        assert!(vm_groups <= (r + w) * 1.000001);
        assert!(vm_groups > 0.0);
    }

    #[test]
    fn throttling_detection_uses_cap() {
        let m = VdSeries {
            vd: VdId(0),
            read: vec![5.0, 60.0],
            write: vec![5.0, 50.0],
            cap: 100.0,
        };
        assert!(!m.throttled(0));
        assert!(m.throttled(1));
    }

    #[test]
    fn some_group_sees_throttling() {
        // With bursty demand and real caps, at least one group should hit a
        // cap at some tick.
        let ds = dataset();
        let groups = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
        let any = groups
            .iter()
            .any(|g| (0..g.ticks).any(|t| g.any_throttled(t)));
        assert!(any, "no throttling anywhere — caps unrealistically loose");
    }
}
