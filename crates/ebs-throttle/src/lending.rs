//! Runtime limited lending — Algorithm 2 and the lending-gain simulation
//! (§5.3, Figure 3(f/g)).
//!
//! Lending operates in periods. Caps start at their subscribed values each
//! period; when a member first hits its cap, it borrows `p × AR(t)` of the
//! group's available resource, and the unthrottled members' caps shrink by
//! the lent amount (proportionally to their headroom). Because the lent
//! cap is only granted *after* the throttle and the lenders may burst later
//! in the period, lending can backfire — the negative-gain tail of
//! Figure 3(f).

use crate::scenario::ThrottleGroup;

/// Lending-simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct LendingConfig {
    /// Lending rate `p ∈ (0, 1)`.
    pub p: f64,
    /// Period length in ticks (caps reset at period boundaries).
    pub period_ticks: usize,
}

impl Default for LendingConfig {
    fn default() -> Self {
        Self {
            p: 0.8,
            period_ticks: 6,
        }
    }
}

/// Outcome for one group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LendingOutcome {
    /// Throttled member-ticks without lending.
    pub throttled_without: usize,
    /// Throttled member-ticks with lending.
    pub throttled_with: usize,
    /// `(t_w/o − t_w) / (t_w/o + t_w)` in `(-1, 1)`; positive = lending
    /// shortened the throttle. `None` when the group never throttles.
    pub gain: Option<f64>,
}

/// Simulate Algorithm 2 over one group.
pub fn simulate_lending(group: &ThrottleGroup, config: &LendingConfig) -> LendingOutcome {
    assert!(config.p > 0.0 && config.p < 1.0, "p must be in (0, 1)");
    assert!(config.period_ticks >= 1);
    let n = group.members.len();
    let base_caps: Vec<f64> = group.members.iter().map(|m| m.cap).collect();

    let mut throttled_without = 0usize;
    let mut throttled_with = 0usize;
    let mut caps = base_caps.clone();
    let mut lent_this_period = false;
    let mut grants = 0u64;
    let mut reclaims = 0u64;

    for t in 0..group.ticks {
        if t % config.period_ticks == 0 {
            caps.copy_from_slice(&base_caps);
            if lent_this_period {
                // The period boundary takes the lent cap back.
                reclaims += 1;
            }
            lent_this_period = false;
        }
        // Baseline: fixed caps.
        throttled_without += group
            .members
            .iter()
            .filter(|m| m.demand(t) >= m.cap)
            .count();

        // With lending: current caps.
        let throttled: Vec<usize> = (0..n)
            .filter(|&i| group.members[i].demand(t) >= caps[i])
            .collect();
        throttled_with += throttled.len();

        if !lent_this_period && !throttled.is_empty() {
            // First throttle of the period: compute AR and lend.
            let delivered: f64 = (0..n)
                .map(|i| group.members[i].demand(t).min(caps[i]))
                .sum();
            let cap_total: f64 = caps.iter().sum();
            let ar = (cap_total - delivered).max(0.0);
            let lent = config.p * ar;
            if lent > 0.0 {
                // Borrower: the throttled member with the highest demand.
                let borrower = *throttled
                    .iter()
                    .max_by(|&&a, &&b| {
                        group.members[a]
                            .demand(t)
                            .partial_cmp(&group.members[b].demand(t))
                            .expect("no NaNs")
                    })
                    .expect("non-empty");
                let headroom: Vec<f64> = (0..n)
                    .map(|i| {
                        if i == borrower {
                            0.0
                        } else {
                            (caps[i] - group.members[i].demand(t)).max(0.0)
                        }
                    })
                    .collect();
                let total_headroom: f64 = headroom.iter().sum();
                if total_headroom > 0.0 {
                    let lent = lent.min(total_headroom);
                    caps[borrower] += lent;
                    for i in 0..n {
                        caps[i] -= lent * headroom[i] / total_headroom;
                    }
                    lent_this_period = true;
                    grants += 1;
                }
            }
        }
    }
    if lent_this_period {
        // The run ends while a grant is outstanding: the simulation is
        // over, so the cap is reclaimed with it.
        reclaims += 1;
    }
    if ebs_obs::enabled() {
        let mut reg = ebs_obs::Registry::new();
        reg.counter_add("throttle.lending.grants", grants);
        reg.counter_add("throttle.lending.reclaims", reclaims);
        reg.counter_add(
            "throttle.lending.throttled_ticks_without",
            throttled_without as u64,
        );
        reg.counter_add(
            "throttle.lending.throttled_ticks_with",
            throttled_with as u64,
        );
        ebs_obs::merge(&reg);
    }
    let gain = if throttled_without + throttled_with > 0 {
        Some(
            (throttled_without as f64 - throttled_with as f64)
                / (throttled_without as f64 + throttled_with as f64),
        )
    } else {
        None
    };
    LendingOutcome {
        throttled_without,
        throttled_with,
        gain,
    }
}

/// Run the lending simulation over many groups, returning the gains of
/// groups that throttle at all.
pub fn lending_gains(groups: &[ThrottleGroup], config: &LendingConfig) -> Vec<f64> {
    groups
        .iter()
        .filter_map(|g| simulate_lending(g, config).gain)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GroupKind, VdSeries};
    use ebs_core::ids::{VdId, VmId};

    fn group(members: Vec<VdSeries>) -> ThrottleGroup {
        let ticks = members[0].read.len();
        ThrottleGroup {
            kind: GroupKind::MultiVdVm(VmId(0)),
            members,
            ticks,
        }
    }

    fn vd(write: Vec<f64>, cap: f64) -> VdSeries {
        let read = vec![0.0; write.len()];
        VdSeries {
            vd: VdId(0),
            read,
            write,
            cap,
        }
    }

    #[test]
    fn lending_relieves_a_sustained_throttle() {
        // Member 0 demands 150 against cap 100 for the whole period;
        // member 1 idles with cap 300. Lending p = 0.8 raises member 0's
        // cap above demand after the first tick.
        let g = group(vec![vd(vec![150.0; 6], 100.0), vd(vec![0.0; 6], 300.0)]);
        let out = simulate_lending(
            &g,
            &LendingConfig {
                p: 0.8,
                period_ticks: 6,
            },
        );
        assert_eq!(out.throttled_without, 6);
        assert!(out.throttled_with < 6, "lending should clear later ticks");
        assert!(out.gain.unwrap() > 0.0);
    }

    #[test]
    fn lender_burst_can_backfire() {
        // Member 0 throttles at tick 0; member 1 lends, then bursts to just
        // under its original cap — now above its reduced cap → re-throttle.
        let g = group(vec![
            vd(vec![150.0, 0.0, 0.0], 100.0),
            vd(vec![0.0, 95.0, 95.0], 100.0),
        ]);
        let out = simulate_lending(
            &g,
            &LendingConfig {
                p: 0.8,
                period_ticks: 3,
            },
        );
        // Without lending member 1 never throttles (95 < 100): baseline 1.
        assert_eq!(out.throttled_without, 1);
        assert!(
            out.throttled_with > out.throttled_without,
            "the lender must get burned: {out:?}"
        );
        assert!(out.gain.unwrap() < 0.0);
    }

    #[test]
    fn quiet_group_has_no_gain_sample() {
        let g = group(vec![vd(vec![1.0; 4], 100.0), vd(vec![2.0; 4], 100.0)]);
        let out = simulate_lending(&g, &LendingConfig::default());
        assert_eq!(out.gain, None);
    }

    #[test]
    fn caps_reset_each_period() {
        // Throttle in period 0 triggers lending; in period 1 the caps are
        // back, so the lender's 95-demand does not throttle.
        let g = group(vec![
            vd(vec![150.0, 0.0, 0.0, 0.0], 100.0),
            vd(vec![0.0, 0.0, 95.0, 95.0], 100.0),
        ]);
        let out = simulate_lending(
            &g,
            &LendingConfig {
                p: 0.8,
                period_ticks: 2,
            },
        );
        assert_eq!(out.throttled_with, out.throttled_without);
    }

    #[test]
    fn conservation_total_caps_unchanged_by_lending() {
        // Internal property: after lending, Σcaps must equal Σbase caps.
        // We check via a scenario where everything is observable: if caps
        // leaked, member 1 with demand just over half its cap would change
        // throttle state.
        let g = group(vec![
            vd(vec![150.0; 4], 100.0),
            vd(vec![40.0; 4], 100.0),
            vd(vec![40.0; 4], 100.0),
        ]);
        let out = simulate_lending(
            &g,
            &LendingConfig {
                p: 0.5,
                period_ticks: 4,
            },
        );
        // Baseline: member 0 throttled all 4 ticks.
        assert_eq!(out.throttled_without, 4);
        // Lending: AR = 300 − (100+40+40) = 120, lent = 60 → borrower cap
        // 160 ≥ 150 clears ticks 1–3; each lender keeps cap 70 > 40 and
        // never throttles. Only the triggering tick 0 counts.
        assert_eq!(out.throttled_with, 1);
    }

    #[test]
    fn gains_collect_over_groups() {
        let g1 = group(vec![vd(vec![150.0; 6], 100.0), vd(vec![0.0; 6], 300.0)]);
        let g2 = group(vec![vd(vec![1.0; 6], 100.0), vd(vec![1.0; 6], 100.0)]);
        let gains = lending_gains(&[g1, g2], &LendingConfig::default());
        assert_eq!(gains.len(), 1); // quiet group contributes nothing
    }
}
