//! # ebs-throttle — the hypervisor throttle study (§5)
//!
//! Per-VD throughput/IOPS caps protect SLOs but waste headroom: when one
//! disk of a VM throttles, its siblings almost always have spare cap. This
//! crate reproduces the whole §5 pipeline:
//!
//! * [`scenario`] — extract the poolable groups (multi-VD VMs and
//!   same-tenant multi-VM nodes) with per-tick demand and caps;
//! * [`rar`] — the Resource Available Rate of Equation 1 and the
//!   write/read attribution of throttles (Figure 3(b/c));
//! * [`reduction`] — the theoretical reduction rate of Equation 3
//!   (Figure 3(d/e));
//! * [`lending`] — the runtime limited-lending mechanism of Algorithm 2
//!   and its gain distribution, including the backfire case where a lender
//!   bursts after lending (Figure 3(f/g));
//! * [`predictive`] — the fix §5.3 proposes: lending guided by per-lender
//!   traffic forecasts, which shrinks the backfire tail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lending;
pub mod predictive;
pub mod rar;
pub mod reduction;
pub mod scenario;

pub use lending::{lending_gains, simulate_lending, LendingConfig, LendingOutcome};
pub use predictive::{predictive_lending_gains, simulate_predictive_lending, PredictiveConfig};
pub use rar::{rar_samples, throttle_event_count, throttled_wr_ratios};
pub use reduction::reduction_rates;
pub use scenario::{build_groups, CapDim, GroupKind, ThrottleGroup, VdSeries};
