//! Prediction-guided lending — the fix §5.3 calls for.
//!
//! Plain limited lending backfires when a lender bursts right after giving
//! cap away (the negative-gain tail of Figure 3(f)). The paper's takeaway:
//! *"a practical lending requires traffic prediction to adjust the lending
//! rate, ensuring the VD lending cap does not get throttled again."* This
//! module implements exactly that: before lending, each potential lender's
//! near-future demand is forecast from its history, and its contributed
//! headroom is computed against the *larger* of current and predicted
//! demand (padded by a safety margin). Lenders about to burst lend
//! nothing.

use crate::lending::{LendingConfig, LendingOutcome};
use crate::scenario::ThrottleGroup;
use ebs_predict::eval::Predictor;
use ebs_predict::LinearFit;

/// Configuration of prediction-guided lending.
#[derive(Clone, Copy, Debug)]
pub struct PredictiveConfig {
    /// The base lending parameters (rate `p`, period length).
    pub base: LendingConfig,
    /// Safety multiplier applied to the predicted lender demand (1.2 =
    /// assume the lender may need 20 % more than forecast).
    pub safety: f64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        Self {
            base: LendingConfig::default(),
            safety: 1.2,
        }
    }
}

/// Simulate prediction-guided lending over one group, forecasting each
/// lender's next-tick demand with `make_predictor` (one fresh model per
/// member; the default harness uses the paper's P1 linear fit, which is
/// cheap enough to refit per tick).
pub fn simulate_predictive_lending(
    group: &ThrottleGroup,
    config: &PredictiveConfig,
    make_predictor: &dyn Fn() -> Box<dyn Predictor>,
) -> LendingOutcome {
    let p = config.base.p;
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    assert!(
        config.safety >= 1.0,
        "safety margin must not discount demand"
    );
    let n = group.members.len();
    let base_caps: Vec<f64> = group.members.iter().map(|m| m.cap).collect();
    let mut predictors: Vec<Box<dyn Predictor>> = (0..n).map(|_| make_predictor()).collect();
    let mut histories: Vec<Vec<f64>> = vec![Vec::new(); n];

    let mut throttled_without = 0usize;
    let mut throttled_with = 0usize;
    let mut caps = base_caps.clone();
    let mut lent_this_period = false;

    for t in 0..group.ticks {
        if t % config.base.period_ticks == 0 {
            caps.copy_from_slice(&base_caps);
            lent_this_period = false;
        }
        throttled_without += group
            .members
            .iter()
            .filter(|m| m.demand(t) >= m.cap)
            .count();
        let throttled: Vec<usize> = (0..n)
            .filter(|&i| group.members[i].demand(t) >= caps[i])
            .collect();
        throttled_with += throttled.len();
        // Histories include the current tick so the one-step forecast below
        // really targets tick t+1 (what the lender will need *after*
        // lending).
        for (i, h) in histories.iter_mut().enumerate() {
            h.push(group.members[i].demand(t));
        }

        if !lent_this_period && !throttled.is_empty() {
            let delivered: f64 = (0..n)
                .map(|i| group.members[i].demand(t).min(caps[i]))
                .sum();
            let cap_total: f64 = caps.iter().sum();
            let ar = (cap_total - delivered).max(0.0);
            let lent_target = p * ar;
            if lent_target > 0.0 {
                let borrower = *throttled
                    .iter()
                    .max_by(|&&a, &&b| {
                        group.members[a]
                            .demand(t)
                            .partial_cmp(&group.members[b].demand(t))
                            .expect("no NaNs")
                    })
                    .expect("non-empty");
                // Prediction-guided headroom: lenders are charged for the
                // worst of what they use now and what they are forecast to
                // use next, times the safety margin.
                let headroom: Vec<f64> = (0..n)
                    .map(|i| {
                        if i == borrower {
                            return 0.0;
                        }
                        let predicted = if histories[i].len() >= 2 {
                            predictors[i].fit(&histories[i]);
                            predictors[i].predict_next(&histories[i])
                        } else {
                            group.members[i].demand(t)
                        };
                        let reserved = group.members[i].demand(t).max(predicted) * config.safety;
                        (caps[i] - reserved).max(0.0)
                    })
                    .collect();
                let total_headroom: f64 = headroom.iter().sum();
                if total_headroom > 0.0 {
                    let lent = lent_target.min(total_headroom);
                    caps[borrower] += lent;
                    for i in 0..n {
                        caps[i] -= lent * headroom[i] / total_headroom;
                    }
                    lent_this_period = true;
                }
            }
        }
    }
    let gain = if throttled_without + throttled_with > 0 {
        Some(
            (throttled_without as f64 - throttled_with as f64)
                / (throttled_without as f64 + throttled_with as f64),
        )
    } else {
        None
    };
    LendingOutcome {
        throttled_without,
        throttled_with,
        gain,
    }
}

/// Gains across many groups with the default (linear-fit) forecaster.
pub fn predictive_lending_gains(groups: &[ThrottleGroup], config: &PredictiveConfig) -> Vec<f64> {
    groups
        .iter()
        .filter_map(|g| {
            simulate_predictive_lending(g, config, &|| Box::new(LinearFit::default())).gain
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lending::simulate_lending;
    use crate::scenario::{CapDim, GroupKind, VdSeries};
    use ebs_core::ids::{VdId, VmId};

    fn group(members: Vec<VdSeries>) -> ThrottleGroup {
        let ticks = members[0].read.len();
        ThrottleGroup {
            kind: GroupKind::MultiVdVm(VmId(0)),
            members,
            ticks,
        }
    }

    fn vd(write: Vec<f64>, cap: f64) -> VdSeries {
        let read = vec![0.0; write.len()];
        VdSeries {
            vd: VdId(0),
            read,
            write,
            cap,
        }
    }

    #[test]
    fn predictive_lender_refuses_when_ramping_up() {
        // Member 1 ramps 20, 40, 60, 80 — plain lending at tick 3 (when
        // member 0 bursts) would hand away the headroom that member 1 is
        // about to need; linear fit sees the ramp and withholds it.
        let g = group(vec![
            vd(vec![0.0, 0.0, 0.0, 150.0, 0.0, 0.0], 100.0),
            vd(vec![20.0, 40.0, 60.0, 80.0, 95.0, 95.0], 100.0),
        ]);
        let base = LendingConfig {
            p: 0.9,
            period_ticks: 6,
        };
        let plain = simulate_lending(&g, &base);
        let predictive =
            simulate_predictive_lending(&g, &PredictiveConfig { base, safety: 1.1 }, &|| {
                Box::new(LinearFit::default())
            });
        assert!(
            predictive.throttled_with <= plain.throttled_with,
            "prediction must not be worse: {predictive:?} vs {plain:?}"
        );
        // And the lender never gets burned under prediction.
        assert_eq!(predictive.throttled_with, predictive.throttled_without);
    }

    #[test]
    fn predictive_still_lends_to_relieve_sustained_throttle() {
        let g = group(vec![vd(vec![150.0; 6], 100.0), vd(vec![5.0; 6], 300.0)]);
        let out = simulate_predictive_lending(&g, &PredictiveConfig::default(), &|| {
            Box::new(LinearFit::default())
        });
        assert!(out.throttled_with < out.throttled_without, "{out:?}");
        assert!(out.gain.unwrap() > 0.0);
    }

    #[test]
    fn predictive_cuts_the_negative_tail_fleet_wide() {
        let ds = ebs_workload::generate(&ebs_workload::WorkloadConfig::medium(111)).unwrap();
        let groups = crate::scenario::build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
        let base = LendingConfig {
            p: 0.8,
            period_ticks: 6,
        };
        let plain = crate::lending::lending_gains(&groups, &base);
        let predictive = predictive_lending_gains(&groups, &PredictiveConfig { base, safety: 1.2 });
        let neg = |v: &[f64]| v.iter().filter(|&&g| g < 0.0).count() as f64 / v.len() as f64;
        assert!(!plain.is_empty() && !predictive.is_empty());
        assert!(
            neg(&predictive) <= neg(&plain) + 1e-9,
            "prediction should shrink the backfire tail: {:.3} vs {:.3}",
            neg(&predictive),
            neg(&plain)
        );
    }

    #[test]
    fn quiet_groups_still_produce_no_gain() {
        let g = group(vec![vd(vec![1.0; 6], 100.0), vd(vec![1.0; 6], 100.0)]);
        let out = simulate_predictive_lending(&g, &PredictiveConfig::default(), &|| {
            Box::new(LinearFit::default())
        });
        assert_eq!(out.gain, None);
    }
}
