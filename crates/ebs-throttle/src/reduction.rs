//! Theoretical reduction rate of limited lending (Equation 3, Figure 3(d/e)).

use crate::scenario::ThrottleGroup;

/// Reduction-rate samples of a group at lending rate `p`: for every
/// `(member, tick)` where the member is throttled,
/// `RR = VD(t) / (VD(t) + p·AR(t))` with `AR(t)` the group's available
/// resource at that tick. Lower is better (shorter throttle after lending).
pub fn reduction_rates(group: &ThrottleGroup, p: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&p), "lending rate must be in [0, 1]");
    let cap = group.total_cap();
    let mut out = Vec::new();
    for t in 0..group.ticks {
        let delivered: f64 = group.members.iter().map(|m| m.demand(t).min(m.cap)).sum();
        let ar = (cap - delivered).max(0.0);
        for m in &group.members {
            if m.throttled(t) {
                let vd = m.demand(t).min(m.cap);
                if vd > 0.0 {
                    out.push(vd / (vd + p * ar));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GroupKind, VdSeries};
    use ebs_core::ids::{VdId, VmId};

    fn group(members: Vec<VdSeries>) -> ThrottleGroup {
        let ticks = members[0].read.len();
        ThrottleGroup {
            kind: GroupKind::MultiVdVm(VmId(0)),
            members,
            ticks,
        }
    }

    fn vd(write: Vec<f64>, cap: f64) -> VdSeries {
        let read = vec![0.0; write.len()];
        VdSeries {
            vd: VdId(0),
            read,
            write,
            cap,
        }
    }

    #[test]
    fn rr_shrinks_with_available_resource() {
        // Throttled member delivers 100; sibling idle with cap 300 → AR = 300.
        let g = group(vec![vd(vec![100.0], 100.0), vd(vec![0.0], 300.0)]);
        let rr_08 = reduction_rates(&g, 0.8);
        // RR = 100 / (100 + 0.8·300) = 100/340.
        assert!((rr_08[0] - 100.0 / 340.0).abs() < 1e-12);
        let rr_04 = reduction_rates(&g, 0.4);
        assert!(rr_04[0] > rr_08[0], "higher p must reduce more");
    }

    #[test]
    fn no_available_resource_means_no_reduction() {
        // Both members saturated: AR = 0 → RR = 1.
        let g = group(vec![vd(vec![100.0], 100.0), vd(vec![100.0], 100.0)]);
        let rr = reduction_rates(&g, 0.8);
        assert_eq!(rr.len(), 2);
        for r in rr {
            assert!((r - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rr_is_in_unit_interval() {
        let g = group(vec![
            vd(vec![100.0, 50.0, 100.0], 100.0),
            vd(vec![5.0, 0.0, 80.0], 200.0),
        ]);
        for p in [0.2, 0.5, 0.9] {
            for r in reduction_rates(&g, p) {
                assert!(r > 0.0 && r <= 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "lending rate")]
    fn invalid_p_rejected() {
        let g = group(vec![vd(vec![1.0], 1.0), vd(vec![0.0], 1.0)]);
        let _ = reduction_rates(&g, 1.5);
    }
}
