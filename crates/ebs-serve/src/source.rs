//! Trace ingestion for the serve loop: live generation, single-file
//! stores, and sharded store directories.
//!
//! The sharded path reads *events only* through the chunk layer, so it
//! accepts metricless shards (which `Dataset::load_sharded` rejects —
//! serving needs no metric series). Shards are decoded in parallel with
//! [`par_map_deterministic`] and concatenated in shard order — which is
//! VD-major order — then stable-sorted by timestamp; per DESIGN.md §15
//! this reproduces the unsharded event stream exactly, for any shard
//! count and any thread count.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use ebs_core::error::EbsError;
use ebs_core::io::IoEvent;
use ebs_core::parallel::par_map_deterministic;
use ebs_core::topology::Fleet;
use ebs_store::format::kind;
use ebs_store::{ChunkReader, ShardEntry, ShardMeta, MANIFEST_FILE};
use ebs_workload::store::decode_config;
use ebs_workload::{build_fleet, generate, load_manifest, Dataset, WorkloadConfig};

/// Where the serve loop's traffic comes from.
#[derive(Clone, Debug)]
pub enum ServeSource {
    /// Generate the trace live from a workload config (no store on disk).
    Generate(Box<WorkloadConfig>),
    /// Replay a single-file ebs-store container.
    Store(PathBuf),
    /// Replay a sharded store directory (events-only streaming read;
    /// metricless shards are fine).
    ShardedStore(PathBuf),
}

impl ServeSource {
    /// Classify a `--trace` path: a directory holding a shard manifest is
    /// a sharded store, anything else a single-file store.
    pub fn from_path(path: &Path) -> ServeSource {
        if path.join(MANIFEST_FILE).exists() {
            ServeSource::ShardedStore(path.to_path_buf())
        } else {
            ServeSource::Store(path.to_path_buf())
        }
    }
}

/// A loaded trace ready to serve: the rebuilt fleet plus the time-sorted
/// event stream.
pub struct LoadedTrace {
    /// The fleet rebuilt from the stored (or given) workload config.
    pub fleet: Fleet,
    /// The workload config the trace was generated with.
    pub config: WorkloadConfig,
    /// The full event stream, time-sorted.
    pub events: Vec<IoEvent>,
}

/// Read one shard file's event chunks (validating its SHARD_META header
/// and manifest-pinned event count), skipping any metric chunks.
fn read_shard_events(
    dir: &Path,
    index: usize,
    entry: &ShardEntry,
) -> Result<Vec<IoEvent>, EbsError> {
    let file = File::open(dir.join(&entry.name))?;
    let mut reader = ChunkReader::new(BufReader::new(file))?;
    let version = reader.version();
    let mut events: Vec<IoEvent> = Vec::new();
    let mut payload = Vec::new();
    let mut saw_meta = false;
    while let Some(chunk_kind) = reader.next_chunk_into(&mut payload)? {
        if !saw_meta {
            if chunk_kind != kind::SHARD_META {
                return Err(EbsError::corrupt_store(format!(
                    "shard file {} does not start with a SHARD_META chunk",
                    entry.name
                )));
            }
            let meta = ShardMeta::decode(&payload)?;
            if !meta.matches(index, entry) {
                return Err(EbsError::corrupt_store(format!(
                    "shard file {} claims shard {} over vds [{}, {}) but manifest entry \
                     {index} expects [{}, {})",
                    entry.name, meta.shard_index, meta.vd_lo, meta.vd_hi, entry.vd_lo, entry.vd_hi
                )));
            }
            saw_meta = true;
            continue;
        }
        if chunk_kind == kind::EVENTS {
            events.extend(ebs_store::decode_events(version, &payload)?);
        }
    }
    if events.len() as u64 != entry.events {
        return Err(EbsError::corrupt_store(format!(
            "manifest pins {} events for shard {} but its chunks held {}",
            entry.events,
            entry.name,
            events.len()
        )));
    }
    Ok(events)
}

/// Load the serve trace from `source`.
pub fn load(source: &ServeSource) -> Result<LoadedTrace, EbsError> {
    match source {
        ServeSource::Generate(config) => {
            let ds = generate(config)?;
            Ok(LoadedTrace {
                fleet: ds.fleet,
                config: ds.config,
                events: ds.events,
            })
        }
        ServeSource::Store(path) => {
            let ds = Dataset::load(path)?;
            Ok(LoadedTrace {
                fleet: ds.fleet,
                config: ds.config,
                events: ds.events,
            })
        }
        ServeSource::ShardedStore(dir) => {
            let manifest = load_manifest(dir)?;
            let config = decode_config(&manifest.config)?;
            let fleet = build_fleet(&config)?;
            if fleet.vd_count() as u64 != manifest.vd_count {
                return Err(EbsError::corrupt_store(format!(
                    "manifest names a {}-disk fleet but the stored config rebuilds {} disks",
                    manifest.vd_count,
                    fleet.vd_count()
                )));
            }
            let loads = par_map_deterministic(manifest.shards.as_slice(), |index, entry| {
                read_shard_events(dir, index, entry)
            });
            let mut events: Vec<IoEvent> =
                Vec::with_capacity(usize::try_from(manifest.total_events()).unwrap_or(0));
            for load in loads {
                events.extend(load?);
            }
            // Shard order is VD-major; a stable sort by time therefore
            // reproduces the unsharded stream (DESIGN.md §15).
            events.sort_by_key(|e| e.t_us);
            Ok(LoadedTrace {
                fleet,
                config,
                events,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ebs-serve-source-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn sharded_and_generated_streams_are_identical() {
        let config = WorkloadConfig::quick(77);
        let dir = tmp_dir("quick");
        let _ = std::fs::remove_dir_all(&dir);
        // Metricless shards: Dataset::load_sharded would refuse these, the
        // serve reader must not.
        ebs_workload::generate_sharded(&config, &dir, 3, false).unwrap();
        let loaded = load(&ServeSource::ShardedStore(dir.clone())).unwrap();
        let direct = load(&ServeSource::Generate(Box::new(config))).unwrap();
        assert_eq!(loaded.events, direct.events);
        assert_eq!(loaded.fleet.vd_count(), direct.fleet.vd_count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_path_detects_sharded_dirs() {
        let config = WorkloadConfig::quick(78);
        let dir = tmp_dir("detect");
        let _ = std::fs::remove_dir_all(&dir);
        ebs_workload::generate_sharded(&config, &dir, 2, false).unwrap();
        assert!(matches!(
            ServeSource::from_path(&dir),
            ServeSource::ShardedStore(_)
        ));
        assert!(matches!(
            ServeSource::from_path(Path::new("/no/such/file.ebs")),
            ServeSource::Store(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
