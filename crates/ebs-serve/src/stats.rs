//! Per-epoch statistics folded from one simulated epoch, and the
//! window-level SLO metrics derived from them.
//!
//! [`EpochStats`] is everything a policy may observe about one epoch:
//! the slice's [`SimStats`], per-entity traffic columns (worker threads,
//! BlockServers, segments, VDs), the latency distribution (exact p99 of
//! the epoch plus a fixed-bin histogram that merges across a window), and
//! optional cache hit counts. All sums are exact — byte counts are
//! integer-valued `f64`s well under 2^53 — so folds are independent of
//! accumulation grouping.

use ebs_analysis::Histogram;
use ebs_core::hash::FxHashMap;
use ebs_core::ids::{SegId, VdId};
use ebs_core::io::{IoEvent, Op};
use ebs_core::topology::Fleet;
use ebs_stack::route::RoutePlan;
use ebs_stack::sim::{SimOutput, SimStats};

use crate::window::{fold_sum, ratio};

/// Latency histogram bounds shared by every epoch so windows can merge
/// bin-by-bin (matches the `stack.lat.total_us` obs histogram).
pub const LAT_HIST_LO: f64 = 0.0;
/// Upper bound of the shared latency histogram (µs).
pub const LAT_HIST_HI: f64 = 50_000.0;
/// Bin count of the shared latency histogram.
pub const LAT_HIST_BINS: usize = 50;

/// Cache accesses/hits observed during one epoch (present only when the
/// serve loop runs its observational cache).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheEpoch {
    /// Page accesses offered to the cache.
    pub accesses: u64,
    /// Page hits.
    pub hits: u64,
}

/// Everything one epoch exposes to the policies and the metrics stream.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: u64,
    /// First microsecond of the epoch.
    pub start_us: u64,
    /// The simulator's slice statistics (ios, throttled, prefetch hits,
    /// GC runs, slice mean latency).
    pub sim: SimStats,
    /// Total bytes moved this epoch.
    pub bytes: u64,
    /// Read IOs this epoch.
    pub reads: u64,
    /// Exact p99 of end-to-end latency within the epoch (0 when empty).
    pub p99_us: f64,
    /// Fixed-bin latency histogram for window-merged percentiles.
    pub lat_hist: Histogram,
    /// IOs per compute node (dense, indexed by CN).
    pub cn_ios: Vec<u64>,
    /// Bytes per worker thread (dense, indexed by WT).
    pub wt_bytes: Vec<f64>,
    /// Bytes per BlockServer (dense, indexed by BS).
    pub bs_bytes: Vec<f64>,
    /// Bytes per active segment, sorted by segment id.
    pub seg_bytes: Vec<(SegId, f64)>,
    /// Bytes per active VD, sorted by VD id.
    pub vd_bytes: Vec<(VdId, f64)>,
    /// Cache counters when the serve cache is enabled.
    pub cache: Option<CacheEpoch>,
}

impl EpochStats {
    /// Fold one simulated epoch into its observable statistics.
    pub fn fold(
        fleet: &Fleet,
        epoch: u64,
        start_us: u64,
        events: &[IoEvent],
        plan: &RoutePlan,
        out: &SimOutput,
    ) -> Self {
        let mut bytes = 0u64;
        let mut reads = 0u64;
        let mut cn_ios = vec![0u64; fleet.compute_nodes.len()];
        let mut wt_bytes = vec![0.0f64; fleet.wt_total as usize];
        let mut bs_bytes = vec![0.0f64; fleet.block_servers.len()];
        let mut seg_map: FxHashMap<u32, f64> = FxHashMap::default();
        let mut vd_map: FxHashMap<u32, f64> = FxHashMap::default();
        for (i, ev) in events.iter().enumerate() {
            let sz = ev.size as u64;
            bytes += sz;
            if ev.op == Op::Read {
                reads += 1;
            }
            if let Some(cn) = plan.cn().get(i) {
                if let Some(slot) = cn_ios.get_mut(cn.index()) {
                    *slot += 1;
                }
            }
            if let Some(wt) = plan.wt().get(i) {
                if let Some(slot) = wt_bytes.get_mut(wt.index()) {
                    *slot += sz as f64;
                }
            }
            if let Some(bs) = plan.bs().get(i) {
                if let Some(slot) = bs_bytes.get_mut(bs.index()) {
                    *slot += sz as f64;
                }
            }
            if let Some(seg) = plan.seg().get(i) {
                *seg_map.entry(seg.0).or_insert(0.0) += sz as f64;
            }
            *vd_map.entry(ev.vd.0).or_insert(0.0) += sz as f64;
        }
        let mut seg_bytes: Vec<(SegId, f64)> =
            seg_map.into_iter().map(|(s, b)| (SegId(s), b)).collect();
        seg_bytes.sort_unstable_by_key(|(s, _)| s.0);
        let mut vd_bytes: Vec<(VdId, f64)> =
            vd_map.into_iter().map(|(v, b)| (VdId(v), b)).collect();
        vd_bytes.sort_unstable_by_key(|(v, _)| v.0);

        let mut lat_hist = Histogram::new(LAT_HIST_LO, LAT_HIST_HI, LAT_HIST_BINS);
        let mut lats: Vec<f64> = Vec::with_capacity(out.traces.len());
        for r in out.traces.records() {
            let t = r.lat.total_us();
            lat_hist.add(t);
            lats.push(t);
        }
        let p99_us = ebs_analysis::quantile(&lats, 0.99).unwrap_or(0.0);

        Self {
            epoch,
            start_us,
            sim: out.stats,
            bytes,
            reads,
            p99_us,
            lat_hist,
            cn_ios,
            wt_bytes,
            bs_bytes,
            seg_bytes,
            vd_bytes,
            cache: None,
        }
    }
}

/// Rolling SLO metrics folded over a window of epochs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowMetrics {
    /// Epochs in the window.
    pub epochs: usize,
    /// IOs across the window.
    pub ios: u64,
    /// Windowed p99 of end-to-end latency (µs), from the merged
    /// fixed-bin histograms (upper bin edge; 0 when the window is idle).
    pub p99_us: f64,
    /// Throttle waste: throttled IOs / IOs over the window.
    pub throttle_waste: f64,
    /// Migration churn: segment migrations applied during the window.
    pub migrations: u64,
    /// QP rebinds applied during the window.
    pub rebinds: u64,
    /// Cache hit ratio over the window (0 when no cache or idle).
    pub cache_hit: f64,
}

/// Per-epoch control actions actually applied (for churn metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppliedActions {
    /// WT pair swaps (QP rebinds).
    pub rebinds: u64,
    /// Lending grants.
    pub lends: u64,
    /// Lending reclaims.
    pub reclaims: u64,
    /// Segment migrations.
    pub migrations: u64,
    /// Cache resizes/flushes.
    pub cache_ops: u64,
    /// Actions rejected by validation.
    pub rejected: u64,
}

impl AppliedActions {
    /// Accumulate another epoch's counts.
    pub fn add(&mut self, other: &AppliedActions) {
        self.rebinds += other.rebinds;
        self.lends += other.lends;
        self.reclaims += other.reclaims;
        self.migrations += other.migrations;
        self.cache_ops += other.cache_ops;
        self.rejected += other.rejected;
    }

    /// Total applied actions (rejections excluded).
    pub fn total(&self) -> u64 {
        self.rebinds + self.lends + self.reclaims + self.migrations + self.cache_ops
    }
}

/// Quantile from a fixed-bin histogram: the upper edge of the bin where
/// the cumulative count first reaches `q · total` (0 for an empty
/// histogram). Deterministic and merge-stable across any epoch grouping.
pub fn hist_quantile(h: &Histogram, q: f64) -> f64 {
    let total = h.total();
    if total == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let target = (q * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in h.counts().iter().enumerate() {
        cum += c;
        if cum >= target {
            return h.bin_edges(i).1;
        }
    }
    h.hi()
}

/// Fold the window's epochs (plus the per-epoch applied-action log) into
/// rolling SLO metrics.
pub fn fold_window(epochs: &[EpochStats], actions: &[AppliedActions]) -> WindowMetrics {
    let ios = fold_sum(epochs, |e| e.sim.ios);
    let throttled = fold_sum(epochs, |e| e.sim.throttled);
    let mut merged = Histogram::new(LAT_HIST_LO, LAT_HIST_HI, LAT_HIST_BINS);
    for e in epochs {
        merged.merge(&e.lat_hist);
    }
    let accesses = fold_sum(epochs, |e| e.cache.map_or(0, |c| c.accesses));
    let hits = fold_sum(epochs, |e| e.cache.map_or(0, |c| c.hits));
    WindowMetrics {
        epochs: epochs.len(),
        ios,
        p99_us: hist_quantile(&merged, 0.99),
        throttle_waste: ratio(throttled, ios),
        migrations: fold_sum(actions, |a| a.migrations),
        rebinds: fold_sum(actions, |a| a.rebinds),
        cache_hit: ratio(hits, accesses),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_quantile_hits_the_right_bin() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for _ in 0..99 {
            h.add(5.0); // bin 0: (0, 10]
        }
        h.add(95.0); // bin 9
        assert_eq!(hist_quantile(&h, 0.5), 10.0);
        assert_eq!(hist_quantile(&h, 0.99), 10.0);
        assert_eq!(hist_quantile(&h, 1.0), 100.0);
        let empty = Histogram::new(0.0, 100.0, 10);
        assert_eq!(hist_quantile(&empty, 0.99), 0.0);
    }

    #[test]
    fn window_fold_rates() {
        let mk = |ios: u64, throttled: u64| EpochStats {
            epoch: 0,
            start_us: 0,
            sim: SimStats {
                ios,
                throttled,
                prefetch_hits: 0,
                gc_runs: 0,
                mean_latency_us: 0.0,
            },
            bytes: 0,
            reads: 0,
            p99_us: 0.0,
            lat_hist: Histogram::new(LAT_HIST_LO, LAT_HIST_HI, LAT_HIST_BINS),
            cn_ios: vec![],
            wt_bytes: vec![],
            bs_bytes: vec![],
            seg_bytes: vec![],
            vd_bytes: vec![],
            cache: Some(CacheEpoch {
                accesses: 10,
                hits: 5,
            }),
        };
        let epochs = [mk(80, 8), mk(20, 2)];
        let actions = [
            AppliedActions {
                migrations: 2,
                rebinds: 1,
                ..AppliedActions::default()
            },
            AppliedActions::default(),
        ];
        let w = fold_window(&epochs, &actions);
        assert_eq!(w.ios, 100);
        assert_eq!(w.throttle_waste, 0.1);
        assert_eq!(w.migrations, 2);
        assert_eq!(w.rebinds, 1);
        assert_eq!(w.cache_hit, 0.5);
    }
}
