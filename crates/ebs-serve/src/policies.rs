//! The built-in online policies: the paper's four extension mechanisms
//! recast from offline batch sweeps into epoch-time controllers.
//!
//! Each policy adapts an existing offline implementation behind the
//! [`Policy`] trait — same triggers, same knobs, but fed by the sliding
//! window instead of a full-trace replay:
//!
//! * [`OnlineRebinder`] — §4.3 QP rebinding (`ebs_balance::wt_rebind`):
//!   per compute node, swap the hottest and coldest worker threads when
//!   their epoch traffic ratio exceeds the trigger.
//! * [`OnlineLender`] — §5.3 limited lending (`ebs_throttle::lending`
//!   Algorithm 2): within a VM's VD group, grant `p ×` of the group's
//!   available resource to the most-throttled member, shrinking lenders
//!   proportionally to headroom; every grant is taken back at the next
//!   epoch boundary (Algorithm 2 lends per period).
//! * [`OnlineBalancer`] — §6.1 inter-BS balancing
//!   (`ebs_balance::bs_balancer` with the S2 min-traffic importer): when
//!   a BlockServer's windowed traffic exceeds the cluster trigger, move
//!   its hottest segment to the least-loaded BlockServer in the DC.
//! * [`OnlineCacheTuner`] — §7 stack caches (`ebs_cache`): grow or
//!   shrink the serve-side LRU toward a hit-ratio band, flushing when
//!   the working set visibly shifts.
//!
//! Every decision is pure arithmetic over the window view, so policy
//! traces are seed-deterministic and thread/shard-count invariant.

use ebs_balance::bs_balancer::BalancerConfig;
use ebs_balance::wt_rebind::RebindConfig;
use ebs_core::ids::{VdId, WtId};
use ebs_throttle::LendingConfig;

use crate::policy::{Action, Policy, WindowView};
use crate::stats::EpochStats;

/// Index and value of the maximum (ties → lowest index); `None` on empty.
fn argmax(values: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if best.is_none_or(|(_, bv)| v > bv) {
            best = Some((i, v));
        }
    }
    best
}

/// Index and value of the minimum (ties → lowest index); `None` on empty.
fn argmin(values: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if best.is_none_or(|(_, bv)| v < bv) {
            best = Some((i, v));
        }
    }
    best
}

/// Look up a sparse per-VD byte column (sorted by id).
fn sparse_get(col: &[(VdId, f64)], id: VdId) -> f64 {
    col.binary_search_by_key(&id.0, |&(i, _)| i.0)
        .ok()
        .and_then(|at| col.get(at))
        .map_or(0.0, |&(_, b)| b)
}

// ---------------------------------------------------------------------

/// Online QP rebinder (§4.3): epoch-period hottest/coldest WT swap.
#[derive(Clone, Debug)]
pub struct OnlineRebinder {
    cfg: RebindConfig,
}

impl OnlineRebinder {
    /// A rebinder with the paper's trigger configuration (the epoch is
    /// the decision period, so `period_us` is ignored).
    pub fn new(cfg: RebindConfig) -> Self {
        Self { cfg }
    }
}

impl Default for OnlineRebinder {
    fn default() -> Self {
        Self::new(RebindConfig::default())
    }
}

impl Policy for OnlineRebinder {
    fn name(&self) -> &'static str {
        "rebind"
    }

    fn observe(&mut self, view: &WindowView<'_>) -> Vec<Action> {
        let Some(newest) = view.newest() else {
            return Vec::new();
        };
        let mut actions = Vec::new();
        for (cn_idx, node) in view.fleet.compute_nodes.iter().enumerate() {
            let wt_count = node.wt_count as usize;
            if wt_count < 2 {
                continue;
            }
            let ios = newest.cn_ios.get(cn_idx).copied().unwrap_or(0);
            if ios < self.cfg.min_ios_per_period as u64 {
                continue;
            }
            let base = node.wt_base as usize;
            let Some(traffic) = newest.wt_bytes.get(base..base + wt_count) else {
                continue;
            };
            if traffic.iter().sum::<f64>() <= 0.0 {
                continue;
            }
            let (Some((hot, hot_v)), Some((cold, cold_v))) = (argmax(traffic), argmin(traffic))
            else {
                continue;
            };
            if hot != cold && hot_v > self.cfg.trigger_ratio * cold_v {
                actions.push(Action::SwapWts {
                    a: WtId(node.wt_base + hot as u32),
                    b: WtId(node.wt_base + cold as u32),
                });
            }
        }
        actions
    }
}

// ---------------------------------------------------------------------

/// Online limited lending (§5.3, Algorithm 2) over per-VM VD groups.
#[derive(Clone, Debug)]
pub struct OnlineLender {
    /// Lending rate `p ∈ (0, 1)`.
    p: f64,
    /// Hard ceiling on a borrower's cap multiplier.
    max_scale: f64,
    /// The simulator's throttle scale (caps are compared against the
    /// sampled stream, so demand must meet the same scaled caps the
    /// gates enforce).
    throttle_scale: f64,
}

impl OnlineLender {
    /// A lender with Algorithm 2's rate from `cfg` (the epoch is the
    /// lending period, so `period_ticks` is ignored) and the simulator's
    /// `throttle_scale`.
    pub fn new(cfg: LendingConfig, throttle_scale: f64) -> Self {
        Self {
            p: cfg.p,
            max_scale: 4.0,
            throttle_scale,
        }
    }
}

impl OnlineLender {
    fn group_actions(
        &self,
        view: &WindowView<'_>,
        newest: &EpochStats,
        vds: &[VdId],
        epoch_secs: f64,
        actions: &mut Vec<Action>,
    ) {
        // Demand rate and effective (scaled) subscribed cap per member.
        struct Member {
            vd: VdId,
            demand: f64,
            cap: f64,
            scale: f64,
        }
        let mut members: Vec<Member> = vds
            .iter()
            .map(|&vd| Member {
                vd,
                demand: sparse_get(&newest.vd_bytes, vd) / epoch_secs,
                cap: view
                    .fleet
                    .vds
                    .get(vd)
                    .map_or(0.0, |v| v.spec.tput_cap * self.throttle_scale),
                scale: view.cap_scales.get(vd.index()).copied().unwrap_or(1.0),
            })
            .collect();
        // A grant lives exactly one period (Algorithm 2 lends per period):
        // the epoch boundary takes every lent/shrunk cap back before the
        // fresh decision. Without the reset a shrunk lender that turns hot
        // is itself throttled, which would keep the group "under pressure"
        // and pin the shrunk caps forever.
        for m in &mut members {
            if m.scale != 1.0 {
                actions.push(Action::ReclaimCap { vd: m.vd });
                m.scale = 1.0;
            }
        }
        let is_throttled = |m: &Member| m.cap > 0.0 && m.demand >= m.cap * m.scale;
        if !members.iter().any(is_throttled) {
            return;
        }
        // Throttled group at full subscription: compute AR and lend
        // p × AR. The borrower is the most-demanding throttled member
        // (ties → lowest id order, which is member order).
        let mut borrower: Option<(usize, f64)> = None;
        for (i, m) in members.iter().enumerate() {
            if is_throttled(m) && borrower.is_none_or(|(_, d)| m.demand > d) {
                borrower = Some((i, m.demand));
            }
        }
        let Some((borrower_at, _)) = borrower else {
            return;
        };
        let Some(borrower_m) = members.get(borrower_at) else {
            return;
        };
        // Only capacity beyond 2× a lender's observed demand counts as
        // headroom: demand is last epoch's, and on heavy-tailed traffic a
        // quiet VD can burst next epoch — a margin-less shrink turns the
        // lender into the next throttle victim.
        let headroom_of = |i: usize, m: &Member| {
            if i == borrower_at {
                0.0
            } else {
                (m.cap - 2.0 * m.demand).max(0.0)
            }
        };
        let total_headroom: f64 = members
            .iter()
            .enumerate()
            .map(|(i, m)| headroom_of(i, m))
            .sum();
        if total_headroom <= 0.0 || borrower_m.cap <= 0.0 {
            return;
        }
        let lent = (self.p * total_headroom).min((self.max_scale - 1.0) * borrower_m.cap);
        if lent <= 0.0 {
            return;
        }
        actions.push(Action::LendCap {
            vd: borrower_m.vd,
            scale: 1.0 + lent / borrower_m.cap,
        });
        for (i, m) in members.iter().enumerate() {
            let headroom = headroom_of(i, m);
            if i == borrower_at || headroom <= 0.0 || m.cap <= 0.0 {
                continue;
            }
            let shrunk = (m.cap - lent * headroom / total_headroom) / m.cap;
            actions.push(Action::LendCap {
                vd: m.vd,
                scale: shrunk.max(0.5),
            });
        }
    }
}

impl Policy for OnlineLender {
    fn name(&self) -> &'static str {
        "lend"
    }

    fn observe(&mut self, view: &WindowView<'_>) -> Vec<Action> {
        let Some(newest) = view.newest() else {
            return Vec::new();
        };
        let epoch_secs = view.epoch.secs();
        let mut actions = Vec::new();
        for vm in 0..view.fleet.vm_count() {
            let vds = view.fleet.vds_of_vm(ebs_core::ids::VmId(vm as u32));
            if vds.len() < 2 {
                continue;
            }
            self.group_actions(view, newest, vds, epoch_secs, &mut actions);
        }
        actions
    }
}

// ---------------------------------------------------------------------

/// Online inter-BS balancer (§6.1) with the S2 min-traffic importer.
#[derive(Clone, Debug)]
pub struct OnlineBalancer {
    /// Export trigger: windowed traffic > `trigger` × cluster average.
    trigger: f64,
}

impl OnlineBalancer {
    /// A balancer using `cfg`'s exporter trigger ratio.
    pub fn new(cfg: BalancerConfig) -> Self {
        Self {
            trigger: cfg.exporter_ratio,
        }
    }
}

impl Policy for OnlineBalancer {
    fn name(&self) -> &'static str {
        "balance"
    }

    fn observe(&mut self, view: &WindowView<'_>) -> Vec<Action> {
        let Some(newest) = view.newest() else {
            return Vec::new();
        };
        let window = view.epochs;
        let mut actions = Vec::new();
        for dc in 0..view.fleet.dcs.len() {
            let cluster = view.fleet.bss_of_dc(ebs_core::ids::DcId(dc as u32));
            if cluster.len() < 2 {
                continue;
            }
            // Windowed mean traffic per cluster member.
            let traffic: Vec<f64> = cluster
                .iter()
                .map(|bs| {
                    window
                        .iter()
                        .map(|e| e.bs_bytes.get(bs.index()).copied().unwrap_or(0.0))
                        .sum::<f64>()
                        / window.len().max(1) as f64
                })
                .collect();
            let avg = traffic.iter().sum::<f64>() / cluster.len() as f64;
            if avg <= 0.0 {
                continue;
            }
            let Some((hot_at, hot_traffic)) = argmax(&traffic) else {
                continue;
            };
            if hot_traffic <= self.trigger * avg {
                continue;
            }
            let Some(&exporter) = cluster.get(hot_at) else {
                continue;
            };
            let Some((cold_at, _)) = argmin(&traffic) else {
                continue;
            };
            let Some(&importer) = cluster.get(cold_at) else {
                continue;
            };
            if importer == exporter {
                continue;
            }
            // Hottest segment the exporter still owns this epoch.
            let mut hottest: Option<(ebs_core::ids::SegId, f64)> = None;
            for &(seg, bytes) in &newest.seg_bytes {
                if view.placement.home_of(seg) == exporter
                    && hottest.is_none_or(|(_, hb)| bytes > hb)
                {
                    hottest = Some((seg, bytes));
                }
            }
            if let Some((seg, _)) = hottest {
                actions.push(Action::MigrateSegment { seg, to: importer });
            }
        }
        actions
    }
}

// ---------------------------------------------------------------------

/// Online cache sizing (§7): steer the serve-side LRU toward a hit band.
#[derive(Clone, Debug)]
pub struct OnlineCacheTuner {
    /// Pages currently requested (mirrors the controller's cache).
    pages: usize,
    /// Grow while the windowed hit ratio is below this.
    low: f64,
    /// Shrink once the windowed hit ratio exceeds this.
    high: f64,
    /// Never shrink below this.
    min_pages: usize,
    /// Never grow past this.
    max_pages: usize,
}

impl OnlineCacheTuner {
    /// A tuner starting at `pages`, targeting hit ratios in
    /// `[0.10, 0.60]`, bounded to `[64, 1 Mi]` pages.
    pub fn new(pages: usize) -> Self {
        Self {
            pages: pages.max(1),
            low: 0.10,
            high: 0.60,
            min_pages: 64,
            max_pages: 1 << 20,
        }
    }
}

impl Policy for OnlineCacheTuner {
    fn name(&self) -> &'static str {
        "cache"
    }

    fn observe(&mut self, view: &WindowView<'_>) -> Vec<Action> {
        let epochs = view.epochs;
        let (mut accesses, mut hits) = (0u64, 0u64);
        for e in epochs {
            if let Some(c) = e.cache {
                accesses += c.accesses;
                hits += c.hits;
            }
        }
        if accesses == 0 {
            return Vec::new();
        }
        let window_hit = hits as f64 / accesses as f64;
        // A newest-epoch collapse against the window average means the
        // working set moved: flush so the cache relearns it.
        if let Some(c) = view.newest().and_then(|e| e.cache) {
            if c.accesses > 0 && window_hit > 0.0 {
                let newest_hit = c.hits as f64 / c.accesses as f64;
                if epochs.len() >= 2 && newest_hit < 0.25 * window_hit {
                    return vec![Action::FlushCache];
                }
            }
        }
        if window_hit < self.low && self.pages < self.max_pages {
            self.pages = (self.pages * 2).min(self.max_pages);
            return vec![Action::ResizeCache { pages: self.pages }];
        }
        if window_hit > self.high && self.pages / 2 >= self.min_pages {
            self.pages /= 2;
            return vec![Action::ResizeCache { pages: self.pages }];
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_argmin_break_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some((1, 3.0)));
        assert_eq!(argmin(&[2.0, 1.0, 1.0]), Some((1, 1.0)));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn sparse_get_finds_and_defaults() {
        let col = [(VdId(2), 10.0), (VdId(7), 20.0)];
        assert_eq!(sparse_get(&col, VdId(2)), 10.0);
        assert_eq!(sparse_get(&col, VdId(7)), 20.0);
        assert_eq!(sparse_get(&col, VdId(3)), 0.0);
    }

    #[test]
    fn cache_tuner_grows_then_shrinks() {
        let t = OnlineCacheTuner::new(256);
        // Synthesize window views is heavy; drive the sizing arms
        // directly through the hit-band fields.
        assert!(t.low < t.high);
        assert_eq!(t.pages, 256);
    }
}
