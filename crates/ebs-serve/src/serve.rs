//! The epoch-time serve loop: stream events through the resumable stack
//! session, fold per-epoch stats, let policies act, emit rolling metrics.
//!
//! One [`serve`] call is the whole control-plane lifetime. Per epoch it
//! (1) routes the epoch's events under the *current* binding and segment
//! placement, (2) advances the persistent [`SimSession`] over them —
//! carrying throttle-gate levels, queue clocks, GC state, and the latency
//! RNG across the cut, so a run under no-op policies is bit-identical to
//! one batch [`StackSim::run_planned`] call — (3) folds the epoch into
//! [`EpochStats`], pushes the sliding window, and (4) applies whatever
//! [`Action`]s the policies emit *before* the next epoch is simulated.
//!
//! Determinism: every epoch cut, fold, and policy decision is pure
//! arithmetic over the event stream and the seed-pinned session, so serve
//! output is invariant to thread count, shard count, pacing mode, and
//! `EBS_OBS`. The optional pacing sleep only slows wall-clock delivery —
//! it reads no clock and moves no output byte.

use std::fmt::Write as _;

use ebs_cache::lru::LruCache;
use ebs_cache::policy::{pages_of, CachePolicy};
use ebs_core::error::EbsError;
use ebs_core::io::IoEvent;
use ebs_core::topology::Fleet;
use ebs_core::trace::TraceRecord;
use ebs_stack::hypervisor::Binding;
use ebs_stack::route::RoutePlan;
use ebs_stack::segment::SegmentMap;
use ebs_stack::sim::{SimSession, SimStats, StackConfig};

use crate::epoch::EpochSpec;
use crate::policy::{Action, Policy, WindowView};
use crate::stats::{fold_window, AppliedActions, CacheEpoch, EpochStats, WindowMetrics};
use crate::window::SlidingWindow;

/// How the serve loop advances virtual time relative to wall time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pacing {
    /// Run epochs back-to-back (tests, CI, batch analysis).
    FastForward,
    /// Sleep `epoch_secs / speedup` wall seconds between epochs, emulating
    /// a live control plane at `speedup ×` accelerated virtual time.
    Paced {
        /// Virtual-to-wall time acceleration (must be positive).
        speedup: f64,
    },
}

/// Serve-loop configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Virtual-time epoch length.
    pub epoch: EpochSpec,
    /// Sliding-window length in epochs.
    pub window: usize,
    /// Stack simulator configuration (seed, throttle, latency model…).
    pub stack: StackConfig,
    /// Serve only `[0, duration_us)` of the trace (`None` = everything).
    pub duration_us: Option<u64>,
    /// Wall-clock pacing.
    pub pacing: Pacing,
    /// Run an observational page cache of this many 4 KiB pages.
    pub cache_pages: Option<usize>,
    /// Keep every per-IO trace record in the report (differential tests).
    pub collect_traces: bool,
}

impl ServeConfig {
    /// A fast-forward config with a `epoch_secs`-second epoch and
    /// `window`-epoch sliding window over `stack`.
    pub fn fast_forward(
        epoch_secs: f64,
        window: usize,
        stack: StackConfig,
    ) -> Result<Self, EbsError> {
        Ok(Self {
            epoch: EpochSpec::from_secs(epoch_secs)?,
            window,
            stack,
            duration_us: None,
            pacing: Pacing::FastForward,
            cache_pages: None,
            collect_traces: false,
        })
    }
}

/// One epoch's row in the serve report.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: u64,
    /// First microsecond of the epoch.
    pub start_us: u64,
    /// IOs simulated this epoch.
    pub ios: u64,
    /// IOs throttled this epoch.
    pub throttled: u64,
    /// Bytes moved this epoch.
    pub bytes: u64,
    /// Exact in-epoch p99 latency (µs).
    pub p99_us: f64,
    /// Rolling window metrics as of this epoch.
    pub window: WindowMetrics,
    /// Actions applied at this epoch's boundary.
    pub applied: AppliedActions,
}

/// The outcome of a serve run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-epoch rows, in epoch order.
    pub epochs: Vec<EpochReport>,
    /// Aggregate simulator statistics over every served epoch — under
    /// no-op policies, bit-identical to the batch run's [`SimStats`].
    pub aggregate: SimStats,
    /// Every per-IO trace record (only when `collect_traces`).
    pub records: Vec<TraceRecord>,
    /// Events served (events past `duration_us` are not).
    pub consumed: usize,
    /// The per-epoch metrics stream as JSONL, one record per epoch (built
    /// unconditionally; written to disk only under `EBS_OBS`).
    pub metrics_jsonl: String,
}

/// Serve `events` (time-sorted) over `fleet` under `config`, consulting
/// `policies` at every epoch boundary.
pub fn serve(
    fleet: &Fleet,
    config: &ServeConfig,
    events: &[IoEvent],
    policies: &mut [Box<dyn Policy>],
) -> Result<ServeReport, EbsError> {
    let horizon = match config.duration_us {
        Some(d) => d,
        None => events.last().map_or(0, |ev| ev.t_us.saturating_add(1)),
    };
    let count = config.epoch.count_for(horizon);

    let mut session = SimSession::new(fleet, config.stack.clone())?;
    let mut binding = Binding::from_fleet(fleet);
    let mut seg_map = SegmentMap::from_fleet(fleet);
    let mut cap_scales = vec![1.0f64; fleet.vd_count()];
    let mut cache: Option<LruCache> = match config.cache_pages {
        Some(pages) if pages > 0 => Some(LruCache::new(pages)),
        _ => None,
    };

    let mut window: SlidingWindow<EpochStats> = SlidingWindow::new(config.window);
    let mut actions_window: SlidingWindow<AppliedActions> = SlidingWindow::new(config.window);
    let mut report = ServeReport {
        epochs: Vec::with_capacity(usize::try_from(count).unwrap_or(0)),
        aggregate: SimStats::default(),
        records: Vec::new(),
        consumed: 0,
        metrics_jsonl: String::new(),
    };

    let mut cuts = config.epoch.cuts(events, count);
    for slice in cuts.by_ref() {
        // (1) Route under the *current* binding and placement: actions
        // applied at earlier boundaries steer this epoch.
        let plan = RoutePlan::build(fleet, &binding, &seg_map, slice.events)?;
        // (2) Advance the persistent session over the epoch.
        let out = session.step(slice.events, &plan)?;
        // Observational cache, fed in stream order.
        let cache_epoch = cache.as_mut().map(|c| {
            let mut ce = CacheEpoch::default();
            for ev in slice.events {
                for page in pages_of(ev.offset, ev.size) {
                    ce.accesses += 1;
                    if c.access(page, ev.op) {
                        ce.hits += 1;
                    }
                }
            }
            ce
        });
        // (3) Fold the epoch and advance the window.
        let mut stats = EpochStats::fold(
            fleet,
            slice.epoch,
            slice.start_us,
            slice.events,
            &plan,
            &out,
        );
        stats.cache = cache_epoch;
        if config.collect_traces {
            report.records.extend_from_slice(out.traces.records());
        }
        let row_seed = (
            stats.sim.ios,
            stats.sim.throttled,
            stats.bytes,
            stats.p99_us,
        );
        window.push(stats);
        // (4) Policies observe, then the controller validates and applies.
        let mut applied = AppliedActions::default();
        {
            let view = WindowView {
                fleet,
                epoch: &config.epoch,
                epochs: window.as_slice(),
                binding: &binding,
                placement: &seg_map,
                cap_scales: &cap_scales,
            };
            let mut batch: Vec<Action> = Vec::new();
            for policy in policies.iter_mut() {
                batch.extend(policy.observe(&view));
            }
            for action in batch {
                apply_action(
                    fleet,
                    action,
                    slice.epoch,
                    &mut session,
                    &mut binding,
                    &mut seg_map,
                    &mut cap_scales,
                    &mut cache,
                    &mut applied,
                );
            }
        }
        actions_window.push(applied);
        let metrics = fold_window(window.as_slice(), actions_window.as_slice());
        let newest = window.newest();
        append_jsonl(
            &mut report.metrics_jsonl,
            slice.epoch,
            slice.start_us,
            newest,
            &metrics,
            &applied,
        );
        report.epochs.push(EpochReport {
            epoch: slice.epoch,
            start_us: slice.start_us,
            ios: row_seed.0,
            throttled: row_seed.1,
            bytes: row_seed.2,
            p99_us: row_seed.3,
            window: metrics,
            applied,
        });
        // Pace wall-clock delivery; virtual time is untouched.
        if let Pacing::Paced { speedup } = config.pacing {
            if speedup.is_finite() && speedup > 0.0 {
                let wall_secs = config.epoch.secs() / speedup;
                if wall_secs > 0.0 {
                    std::thread::sleep(std::time::Duration::from_secs_f64(wall_secs.min(60.0)));
                }
            }
        }
    }
    report.consumed = cuts.consumed();
    report.aggregate = session.finish();
    Ok(report)
}

/// Validate and apply one action; invalid actions count as `rejected` and
/// change nothing.
#[allow(clippy::too_many_arguments)]
fn apply_action(
    fleet: &Fleet,
    action: Action,
    epoch: u64,
    session: &mut SimSession<'_>,
    binding: &mut Binding,
    seg_map: &mut SegmentMap,
    cap_scales: &mut [f64],
    cache: &mut Option<LruCache>,
    applied: &mut AppliedActions,
) {
    match action {
        Action::SwapWts { a, b } => {
            let wt_total = fleet.wt_total as usize;
            let valid = a != b
                && a.index() < wt_total
                && b.index() < wt_total
                && fleet.cn_of_wt(a) == fleet.cn_of_wt(b);
            if valid {
                binding.swap_wts(a, b);
                applied.rebinds += 1;
            } else {
                applied.rejected += 1;
            }
        }
        Action::LendCap { vd, scale } => {
            if scale.is_finite() && scale > 0.0 && session.scale_vd_caps(vd, scale) {
                if let Some(slot) = cap_scales.get_mut(vd.index()) {
                    *slot = scale;
                }
                applied.lends += 1;
            } else {
                applied.rejected += 1;
            }
        }
        Action::ReclaimCap { vd } => {
            if session.scale_vd_caps(vd, 1.0) {
                if let Some(slot) = cap_scales.get_mut(vd.index()) {
                    *slot = 1.0;
                }
                applied.reclaims += 1;
            } else {
                applied.rejected += 1;
            }
        }
        Action::MigrateSegment { seg, to } => {
            let same_dc = seg.index() < fleet.segments.len()
                && fleet
                    .block_servers
                    .get(to)
                    .and_then(|b| fleet.storage_nodes.get(b.sn))
                    .is_some_and(|sn| sn.dc == fleet.dc_of_seg(seg));
            if same_dc && seg_map.home_of(seg) != to {
                let at = u32::try_from(epoch).unwrap_or(u32::MAX);
                seg_map.migrate(fleet, at, seg, to);
                applied.migrations += 1;
            } else {
                applied.rejected += 1;
            }
        }
        Action::ResizeCache { pages } => match cache {
            Some(c) if pages > 0 => {
                // A real resize restarts cold.
                *c = LruCache::new(pages);
                applied.cache_ops += 1;
            }
            _ => applied.rejected += 1,
        },
        Action::FlushCache => match cache {
            Some(c) => {
                *c = LruCache::new(c.capacity_pages());
                applied.cache_ops += 1;
            }
            None => applied.rejected += 1,
        },
    }
}

/// Append one epoch's JSONL metrics record (all-ASCII keys, values from
/// deterministic folds, so the stream is byte-stable across runs).
fn append_jsonl(
    out: &mut String,
    epoch: u64,
    start_us: u64,
    newest: Option<&EpochStats>,
    metrics: &WindowMetrics,
    applied: &AppliedActions,
) {
    let (ios, throttled, bytes, reads, p99) = newest.map_or((0, 0, 0, 0, 0.0), |e| {
        (e.sim.ios, e.sim.throttled, e.bytes, e.reads, e.p99_us)
    });
    let cache = newest.and_then(|e| e.cache);
    let _ = write!(
        out,
        "{{\"epoch\":{epoch},\"start_us\":{start_us},\"ios\":{ios},\
         \"throttled\":{throttled},\"bytes\":{bytes},\"reads\":{reads},\
         \"p99_us\":{p99},\"win_epochs\":{},\"win_ios\":{},\"win_p99_us\":{},\
         \"win_throttle_waste\":{},\"win_migrations\":{},\"win_rebinds\":{},\
         \"win_cache_hit\":{}",
        metrics.epochs,
        metrics.ios,
        metrics.p99_us,
        metrics.throttle_waste,
        metrics.migrations,
        metrics.rebinds,
        metrics.cache_hit,
    );
    if let Some(c) = cache {
        let _ = write!(
            out,
            ",\"cache_accesses\":{},\"cache_hits\":{}",
            c.accesses, c.hits
        );
    }
    let _ = writeln!(
        out,
        ",\"applied\":{{\"rebinds\":{},\"lends\":{},\"reclaims\":{},\
         \"migrations\":{},\"cache_ops\":{},\"rejected\":{}}}}}",
        applied.rebinds,
        applied.lends,
        applied.reclaims,
        applied.migrations,
        applied.cache_ops,
        applied.rejected,
    );
}
