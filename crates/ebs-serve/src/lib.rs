//! `ebs-serve`: an online control plane driving the stack simulator in
//! epoch time (DESIGN.md §17).
//!
//! The offline pipeline answers "what happened over the whole window";
//! this crate answers "what would a controller *do*, and when". It slices
//! a trace (replayed from an `ebs-store` container or sharded directory,
//! or generated live) into fixed virtual-time epochs, advances the
//! resumable [`ebs_stack::SimSession`] one epoch at a time, and lets
//! online [`Policy`] implementations — adapted from the paper's four
//! extension mechanisms — observe a sliding window of per-epoch stats and
//! steer the next epoch: rebinding queue pairs, lending throttle caps,
//! migrating segments, resizing the serve-side cache.
//!
//! Everything the loop emits is seed-deterministic and invariant to
//! thread count, shard count, and pacing mode; with only no-op policies a
//! serve run's aggregate equals the batch simulation bit-for-bit.

pub mod epoch;
pub mod policies;
pub mod policy;
pub mod serve;
pub mod source;
pub mod stats;
pub mod window;

pub use epoch::{EpochCuts, EpochSlice, EpochSpec};
pub use policies::{OnlineBalancer, OnlineCacheTuner, OnlineLender, OnlineRebinder};
pub use policy::{Action, NoopPolicy, Policy, WindowView};
pub use serve::{serve, EpochReport, Pacing, ServeConfig, ServeReport};
pub use source::{load, LoadedTrace, ServeSource};
pub use stats::{fold_window, AppliedActions, CacheEpoch, EpochStats, WindowMetrics};
pub use window::SlidingWindow;
