//! Sliding windows over per-epoch observations, plus the pure fold
//! arithmetic the rolling SLO metrics are computed with.
//!
//! A [`SlidingWindow`] keeps the most recent `len` epochs' stats; the
//! fold helpers reduce windowed numerators/denominators into rates and
//! ratios. Everything here is plain arithmetic over caller-supplied
//! values: no clocks, no RNG, no I/O — and, as a member of the `ebs-lint`
//! D3 *total* set, no panics on any input.

/// A bounded FIFO of the most recent observations, oldest first.
#[derive(Clone, Debug)]
pub struct SlidingWindow<T> {
    len: usize,
    items: Vec<T>,
}

impl<T> SlidingWindow<T> {
    /// A window holding at most `len` observations (`len` is clamped to
    /// at least 1: a zero-length window could never observe anything).
    pub fn new(len: usize) -> Self {
        Self {
            len: len.max(1),
            items: Vec::new(),
        }
    }

    /// Capacity of the window.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Observations currently held.
    pub fn occupancy(&self) -> usize {
        self.items.len()
    }

    /// Whether the window holds nothing yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Push the newest observation, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.items.len() >= self.len && !self.items.is_empty() {
            self.items.remove(0);
        }
        self.items.push(item);
    }

    /// The window's contents, oldest first.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// The most recent observation, if any.
    pub fn newest(&self) -> Option<&T> {
        self.items.last()
    }

    /// The oldest retained observation, if any.
    pub fn oldest(&self) -> Option<&T> {
        self.items.first()
    }
}

/// `num / den` as a ratio, `0.0` when the denominator is zero — the
/// convention for windowed rates (throttle waste, hit ratios) so an idle
/// window reads as a clean zero rather than a NaN.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Sum of a `u64` projection over the window, saturating (a window of
/// epoch counters cannot meaningfully exceed `u64::MAX`).
pub fn fold_sum<T>(items: &[T], f: impl Fn(&T) -> u64) -> u64 {
    items.iter().fold(0u64, |acc, it| acc.saturating_add(f(it)))
}

/// Sum of an `f64` projection over the window, in window order (oldest
/// first) so the fold is deterministic.
pub fn fold_sum_f64<T>(items: &[T], f: impl Fn(&T) -> f64) -> f64 {
    items.iter().fold(0.0f64, |acc, it| acc + f(it))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest_first() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for k in 0..5u64 {
            w.push(k);
        }
        assert_eq!(w.as_slice(), &[2, 3, 4]);
        assert_eq!(w.occupancy(), 3);
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.newest(), Some(&4));
        assert_eq!(w.oldest(), Some(&2));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut w = SlidingWindow::new(0);
        w.push(7u32);
        w.push(8u32);
        assert_eq!(w.as_slice(), &[8]);
    }

    #[test]
    fn ratio_of_idle_window_is_zero() {
        assert_eq!(ratio(0, 0), 0.0);
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(1, 4), 0.25);
    }

    #[test]
    fn folds_project_and_sum() {
        let xs = [(1u64, 0.5f64), (2, 0.25), (3, 0.125)];
        assert_eq!(fold_sum(&xs, |x| x.0), 6);
        assert_eq!(fold_sum_f64(&xs, |x| x.1), 0.875);
        assert_eq!(fold_sum(&xs, |_| u64::MAX), u64::MAX);
    }
}
