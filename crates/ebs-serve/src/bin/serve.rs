//! `serve` — run the online control plane over a trace or live workload.
//!
//! ```text
//! serve [--quick|--medium] [--trace <path>] [--shards <n>]
//!       [--epoch <virt-secs>] [--window <epochs>] [--policies <csv>]
//!       [--speedup <x>] [--duration <virt-secs>] [--cache-pages <n>]
//! ```
//!
//! `--trace <path>` replays an ebs-store trace: a directory holding a
//! shard manifest is read shard-by-shard (any shard count — metricless
//! shards are fine), anything else as a single-file store. A missing path
//! is populated first: the canonical dataset at the chosen scale is
//! generated into `path` as a sharded store (`--shards <n>` or
//! `EBS_SHARDS` to pin the shard count, else the thread count). Without
//! `--trace` the workload is generated in memory.
//!
//! `--policies` selects the online controllers (comma-separated):
//! `rebind`, `lend`, `balance`, `cache`, or `none`. Default:
//! `rebind,lend,balance`.
//!
//! Without `--speedup` the loop fast-forwards (tests, CI). With
//! `--speedup <x>` each epoch takes `epoch/x` wall seconds, emulating a
//! live control plane at `x ×` accelerated virtual time; pacing never
//! changes a single output byte.
//!
//! Stdout carries only deterministic serve output — identical across
//! runs, thread counts (`EBS_THREADS`), shard counts, pacing modes, and
//! `EBS_OBS`. Status goes to stderr. With `EBS_OBS=1` the per-epoch
//! metrics stream is additionally written to
//! `<EBS_OBS_OUT>_epochs.jsonl`.

use std::path::PathBuf;

use ebs_serve::{
    serve, EpochSpec, NoopPolicy, OnlineBalancer, OnlineCacheTuner, OnlineLender, OnlineRebinder,
    Pacing, Policy, ServeConfig, ServeSource,
};
use ebs_stack::sim::StackConfig;
use ebs_workload::WorkloadConfig;

/// The canonical experiment seed (`ebs_experiments::EXPERIMENT_SEED`), so
/// `serve` and the offline bins agree on generated traces.
const SEED: u64 = 0xEB5_2025;

/// Pages for the serve-side cache when `cache` is selected without an
/// explicit `--cache-pages` (16 MiB of 4 KiB pages).
const DEFAULT_CACHE_PAGES: usize = 4096;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--quick|--medium] [--trace <path>] [--shards <n>] \
         [--epoch <virt-secs>] [--window <epochs>] [--policies <csv>] \
         [--speedup <x>] [--duration <virt-secs>] [--cache-pages <n>]"
    );
    std::process::exit(2);
}

struct Args {
    quick: bool,
    medium: bool,
    trace: Option<PathBuf>,
    shards: Option<usize>,
    epoch_secs: f64,
    window: usize,
    policies: Vec<String>,
    speedup: Option<f64>,
    duration_secs: Option<f64>,
    cache_pages: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        medium: false,
        trace: None,
        shards: None,
        epoch_secs: 60.0,
        window: 5,
        policies: vec!["rebind".into(), "lend".into(), "balance".into()],
        speedup: None,
        duration_secs: None,
        cache_pages: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize| -> String {
        match argv.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => usage(),
        }
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--medium" => args.medium = true,
            "--trace" => {
                args.trace = Some(PathBuf::from(value(&argv, i)));
                i += 1;
            }
            "--shards" => {
                let n: usize = value(&argv, i)
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                args.shards = Some(n);
                i += 1;
            }
            "--epoch" => {
                args.epoch_secs = value(&argv, i)
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--window" => {
                args.window = value(&argv, i)
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--policies" => {
                args.policies = value(&argv, i)
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                i += 1;
            }
            "--speedup" => {
                args.speedup = Some(
                    value(&argv, i)
                        .parse()
                        .ok()
                        .filter(|s: &f64| s.is_finite() && *s > 0.0)
                        .unwrap_or_else(|| usage()),
                );
                i += 1;
            }
            "--duration" => {
                args.duration_secs = Some(
                    value(&argv, i)
                        .parse()
                        .ok()
                        .filter(|s: &f64| s.is_finite() && *s > 0.0)
                        .unwrap_or_else(|| usage()),
                );
                i += 1;
            }
            "--cache-pages" => {
                args.cache_pages = Some(
                    value(&argv, i)
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| usage()),
                );
                i += 1;
            }
            "--fast-forward" => args.speedup = None,
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn scale_config(args: &Args) -> WorkloadConfig {
    if args.quick {
        WorkloadConfig::quick(SEED)
    } else if args.medium {
        WorkloadConfig::medium(SEED)
    } else {
        WorkloadConfig {
            seed: SEED,
            ..WorkloadConfig::default()
        }
    }
}

fn build_policies(
    names: &[String],
    throttle_scale: f64,
    cache_pages: usize,
) -> Vec<Box<dyn Policy>> {
    let mut out: Vec<Box<dyn Policy>> = Vec::new();
    for name in names {
        match name.as_str() {
            "rebind" => out.push(Box::new(OnlineRebinder::default())),
            "lend" => out.push(Box::new(OnlineLender::new(
                ebs_throttle::LendingConfig::default(),
                throttle_scale,
            ))),
            "balance" => out.push(Box::new(OnlineBalancer::new(
                ebs_balance::bs_balancer::BalancerConfig::default(),
            ))),
            "cache" => out.push(Box::new(OnlineCacheTuner::new(cache_pages))),
            "none" | "noop" => out.push(Box::new(NoopPolicy)),
            other => {
                eprintln!("unknown policy {other:?} (known: rebind, lend, balance, cache, none)");
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();

    // Resolve the traffic source.
    let source = match &args.trace {
        Some(path) => {
            if path.join(ebs_store::MANIFEST_FILE).exists() || path.is_file() {
                ServeSource::from_path(path)
            } else {
                // First run: materialize the canonical trace as a sharded
                // store at `path` (bounded memory; metricless — serve does
                // not need the metric series).
                let config = scale_config(&args);
                let shards = ebs_workload::resolve_shards(args.shards);
                match ebs_workload::generate_sharded(&config, path, shards, false) {
                    Ok(manifest) => eprintln!(
                        "generated {} events into {} shard(s) at {}",
                        manifest.total_events(),
                        manifest.shards.len(),
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("cannot create trace store {}: {e}", path.display());
                        std::process::exit(2);
                    }
                }
                ServeSource::ShardedStore(path.clone())
            }
        }
        None => ServeSource::Generate(Box::new(scale_config(&args))),
    };
    let trace = match ebs_serve::load(&source) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot load serve trace: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "serving {} events over {} VDs",
        trace.events.len(),
        trace.fleet.vd_count()
    );

    // Build the serve configuration.
    let stack = StackConfig::default();
    let wants_cache = args.policies.iter().any(|p| p == "cache");
    let cache_pages = match (args.cache_pages, wants_cache) {
        (Some(n), _) => Some(n),
        (None, true) => Some(DEFAULT_CACHE_PAGES),
        (None, false) => None,
    };
    let epoch = match EpochSpec::from_secs(args.epoch_secs) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bad --epoch: {e}");
            std::process::exit(2);
        }
    };
    let config = ServeConfig {
        epoch,
        window: args.window,
        stack: stack.clone(),
        duration_us: args
            .duration_secs
            .map(|s| (s * 1e6).round().clamp(0.0, u64::MAX as f64) as u64),
        pacing: match args.speedup {
            Some(speedup) => Pacing::Paced { speedup },
            None => Pacing::FastForward,
        },
        cache_pages,
        collect_traces: false,
    };
    let mut policies = build_policies(
        &args.policies,
        stack.throttle_scale,
        cache_pages.unwrap_or(DEFAULT_CACHE_PAGES),
    );

    // The deterministic serve output.
    println!(
        "serve: epoch={}s window={} policies={}",
        config.epoch.secs(),
        config.window,
        args.policies.join(",")
    );
    let report = match serve(&trace.fleet, &config, &trace.events, &mut policies) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    };
    for row in &report.epochs {
        println!(
            "epoch {:>5} t={:>7}s ios={:>8} thr={:>6} bytes={:>12} p99={:>9.1}us | \
             win p99={:>8.1}us waste={:.4} mig={} reb={} hit={:.3} | \
             applied reb={} lend={} rec={} mig={} cache={} rej={}",
            row.epoch,
            row.start_us / 1_000_000,
            row.ios,
            row.throttled,
            row.bytes,
            row.p99_us,
            row.window.p99_us,
            row.window.throttle_waste,
            row.window.migrations,
            row.window.rebinds,
            row.window.cache_hit,
            row.applied.rebinds,
            row.applied.lends,
            row.applied.reclaims,
            row.applied.migrations,
            row.applied.cache_ops,
            row.applied.rejected,
        );
    }
    println!(
        "total: epochs={} consumed={} ios={} throttled={} prefetch_hits={} gc_runs={} mean_lat={:.3}us",
        report.epochs.len(),
        report.consumed,
        report.aggregate.ios,
        report.aggregate.throttled,
        report.aggregate.prefetch_hits,
        report.aggregate.gc_runs,
        report.aggregate.mean_latency_us,
    );

    // Rolling metrics stream (EBS_OBS gated; never touches stdout).
    ebs_obs::report::emit_stream("_epochs", &report.metrics_jsonl);
}
