//! Epoch arithmetic: slicing virtual time into fixed half-open windows.
//!
//! The serve loop advances in *epochs* — `[k·E, (k+1)·E)` microsecond
//! windows of virtual time. Every cut here is pure integer arithmetic so
//! the schedule is trivially deterministic and invariant to thread or
//! shard counts; an event whose timestamp lands exactly on a boundary
//! belongs to the *later* epoch (half-open intervals), so it is counted
//! exactly once.
//!
//! This module is in the `ebs-lint` D3 *total* set: malformed input
//! yields typed errors or saturating arithmetic, never a panic.

use ebs_core::error::EbsError;
use ebs_core::io::IoEvent;

/// Length of one virtual-time epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochSpec {
    epoch_us: u64,
}

impl EpochSpec {
    /// An epoch of `epoch_us` microseconds (must be ≥ 1).
    pub fn from_us(epoch_us: u64) -> Result<Self, EbsError> {
        if epoch_us == 0 {
            return Err(EbsError::invalid_config(
                "epoch length must be at least 1 µs",
            ));
        }
        Ok(Self { epoch_us })
    }

    /// An epoch of `secs` virtual seconds (must be positive and finite;
    /// rounded to whole microseconds, minimum 1 µs).
    pub fn from_secs(secs: f64) -> Result<Self, EbsError> {
        if !secs.is_finite() || secs <= 0.0 {
            return Err(EbsError::invalid_config(
                "epoch length must be a positive number of seconds",
            ));
        }
        let us = (secs * 1e6).round();
        if us >= u64::MAX as f64 {
            return Err(EbsError::invalid_config("epoch length overflows u64 µs"));
        }
        Self::from_us((us as u64).max(1))
    }

    /// Epoch length in microseconds.
    pub fn epoch_us(&self) -> u64 {
        self.epoch_us
    }

    /// Epoch length in virtual seconds.
    pub fn secs(&self) -> f64 {
        self.epoch_us as f64 / 1e6
    }

    /// Index of the epoch containing `t_us` (epoch `k` covers
    /// `[k·E, (k+1)·E)`).
    pub fn index_of(&self, t_us: u64) -> u64 {
        t_us / self.epoch_us
    }

    /// First microsecond of epoch `k` (saturating).
    pub fn start_us(&self, k: u64) -> u64 {
        k.saturating_mul(self.epoch_us)
    }

    /// One past the last microsecond of epoch `k` (saturating).
    pub fn end_us(&self, k: u64) -> u64 {
        self.start_us(k).saturating_add(self.epoch_us)
    }

    /// Number of epochs needed to cover `[0, horizon_us)` (zero for an
    /// empty horizon).
    pub fn count_for(&self, horizon_us: u64) -> u64 {
        horizon_us.div_ceil(self.epoch_us)
    }

    /// Cut a time-sorted event slice into `count` consecutive epoch
    /// slices (empty epochs included). Events at or past `count · E` are
    /// not yielded; [`EpochCuts::consumed`] reports how many were.
    pub fn cuts<'a>(&self, events: &'a [IoEvent], count: u64) -> EpochCuts<'a> {
        EpochCuts {
            events,
            spec: *self,
            k: 0,
            count,
            pos: 0,
        }
    }
}

/// One epoch's share of the stream.
#[derive(Clone, Copy, Debug)]
pub struct EpochSlice<'a> {
    /// Epoch index.
    pub epoch: u64,
    /// First microsecond of the epoch.
    pub start_us: u64,
    /// The epoch's events, in stream order (possibly empty).
    pub events: &'a [IoEvent],
}

/// Iterator over consecutive epoch slices of a time-sorted stream.
#[derive(Clone, Debug)]
pub struct EpochCuts<'a> {
    events: &'a [IoEvent],
    spec: EpochSpec,
    k: u64,
    count: u64,
    pos: usize,
}

impl<'a> EpochCuts<'a> {
    /// Events handed out so far (after exhaustion: events within the
    /// horizon; the remainder fell at or past `count · E`).
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for EpochCuts<'a> {
    type Item = EpochSlice<'a>;

    fn next(&mut self) -> Option<EpochSlice<'a>> {
        if self.k >= self.count {
            return None;
        }
        let k = self.k;
        self.k += 1;
        let end = self.spec.end_us(k);
        let lo = self.pos;
        while self.events.get(self.pos).is_some_and(|ev| ev.t_us < end) {
            self.pos += 1;
        }
        Some(EpochSlice {
            epoch: k,
            start_us: self.spec.start_us(k),
            events: self.events.get(lo..self.pos).unwrap_or(&[]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::ids::{QpId, VdId};
    use ebs_core::io::Op;

    fn ev(t_us: u64) -> IoEvent {
        IoEvent {
            t_us,
            vd: VdId(0),
            qp: QpId(0),
            op: Op::Read,
            size: 4096,
            offset: 0,
        }
    }

    #[test]
    fn spec_rejects_degenerate_lengths() {
        assert!(EpochSpec::from_us(0).is_err());
        assert!(EpochSpec::from_secs(0.0).is_err());
        assert!(EpochSpec::from_secs(-1.0).is_err());
        assert!(EpochSpec::from_secs(f64::NAN).is_err());
        assert!(EpochSpec::from_secs(f64::INFINITY).is_err());
        assert_eq!(EpochSpec::from_secs(1.0).unwrap().epoch_us(), 1_000_000);
        // Sub-microsecond epochs clamp to the 1 µs floor.
        assert_eq!(EpochSpec::from_secs(1e-9).unwrap().epoch_us(), 1);
    }

    #[test]
    fn boundary_event_lands_in_exactly_one_epoch() {
        let spec = EpochSpec::from_us(100).unwrap();
        // t = 100 is *exactly* the edge between epochs 0 and 1.
        let events = [ev(0), ev(99), ev(100), ev(101), ev(199), ev(200)];
        let slices: Vec<_> = spec.cuts(&events, 3).collect();
        assert_eq!(slices.len(), 3);
        let lens: Vec<usize> = slices.iter().map(|s| s.events.len()).collect();
        assert_eq!(lens, vec![2, 3, 1]);
        // Each event appears exactly once, in order.
        let total: usize = lens.iter().sum();
        assert_eq!(total, events.len());
        assert_eq!(slices[1].events[0].t_us, 100, "edge event opens epoch 1");
        assert_eq!(spec.index_of(100), 1);
        assert_eq!(spec.index_of(99), 0);
    }

    #[test]
    fn empty_epochs_are_yielded() {
        let spec = EpochSpec::from_us(10).unwrap();
        let events = [ev(0), ev(35)];
        let slices: Vec<_> = spec.cuts(&events, 4).collect();
        let lens: Vec<usize> = slices.iter().map(|s| s.events.len()).collect();
        assert_eq!(lens, vec![1, 0, 0, 1]);
        assert_eq!(slices[2].start_us, 20);
    }

    #[test]
    fn horizon_truncates_and_reports_consumption() {
        let spec = EpochSpec::from_us(10).unwrap();
        let events = [ev(0), ev(5), ev(25)];
        let mut cuts = spec.cuts(&events, 1);
        assert_eq!(cuts.by_ref().count(), 1);
        assert_eq!(cuts.consumed(), 2, "event at t=25 is past the horizon");
    }

    #[test]
    fn count_for_covers_the_horizon() {
        let spec = EpochSpec::from_us(60_000_000).unwrap();
        assert_eq!(spec.count_for(0), 0);
        assert_eq!(spec.count_for(1), 1);
        assert_eq!(spec.count_for(60_000_000), 1);
        assert_eq!(spec.count_for(60_000_001), 2);
        // The last event is *covered* by count_for(last + 1).
        let last = 7_200_000_000u64;
        let count = spec.count_for(last + 1);
        assert!(spec.start_us(count - 1) <= last && last < spec.end_us(count - 1));
    }

    #[test]
    fn saturating_edges_do_not_wrap() {
        let spec = EpochSpec::from_us(u64::MAX).unwrap();
        assert_eq!(spec.end_us(1), u64::MAX);
        assert_eq!(spec.start_us(u64::MAX), u64::MAX);
    }
}
