//! The online-policy abstraction: observe a sliding window, emit actions.
//!
//! A [`Policy`] runs at every epoch boundary. It sees a [`WindowView`] —
//! the most recent epochs' statistics plus the current control state
//! (QP binding, segment placement, outstanding lending grants) — and
//! returns [`Action`]s for the controller to validate and apply before
//! the next epoch is simulated. Policies never touch the simulator
//! directly: every mutation flows through the controller, which is what
//! keeps serve runs deterministic and the action log auditable.

use ebs_core::ids::{BsId, SegId, VdId, WtId};
use ebs_core::topology::Fleet;
use ebs_stack::hypervisor::Binding;
use ebs_stack::segment::SegmentMap;

use crate::epoch::EpochSpec;
use crate::stats::EpochStats;

/// One control-plane decision. Applied at an epoch boundary, in the order
/// policies emitted them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Swap the QP sets of two worker threads on the same compute node
    /// (the §4.3 rebind).
    SwapWts {
        /// One worker thread.
        a: WtId,
        /// The other worker thread.
        b: WtId,
    },
    /// Grant a lending multiplier: retarget `vd`'s throttle gate to
    /// `scale ×` its subscribed caps (`> 1` borrows, `< 1` lends out).
    LendCap {
        /// The VD whose caps change.
        vd: VdId,
        /// New cap multiplier.
        scale: f64,
    },
    /// Reclaim any outstanding grant: back to the subscribed caps.
    ReclaimCap {
        /// The VD whose caps reset.
        vd: VdId,
    },
    /// Migrate a segment to another BlockServer in the same data center
    /// (the §6 inter-BS balancer's move).
    MigrateSegment {
        /// The segment to move.
        seg: SegId,
        /// Destination BlockServer.
        to: BsId,
    },
    /// Resize the serve-side cache to `pages` 4 KiB pages (contents
    /// restart cold, as a real resize would).
    ResizeCache {
        /// New capacity in pages.
        pages: usize,
    },
    /// Drop the serve-side cache's contents, keeping its capacity.
    FlushCache,
}

/// What a policy observes at an epoch boundary.
pub struct WindowView<'a> {
    /// The fleet topology.
    pub fleet: &'a Fleet,
    /// The epoch schedule.
    pub epoch: &'a EpochSpec,
    /// The retained epochs, oldest first; the last entry is the epoch
    /// that just finished.
    pub epochs: &'a [EpochStats],
    /// Current QP → WT binding.
    pub binding: &'a Binding,
    /// Current segment placement.
    pub placement: &'a SegmentMap,
    /// Per-VD lending multipliers currently in force (dense, 1.0 = none).
    pub cap_scales: &'a [f64],
}

impl<'a> WindowView<'a> {
    /// The epoch that just finished (`None` before the first epoch).
    pub fn newest(&self) -> Option<&'a EpochStats> {
        self.epochs.last()
    }
}

/// An online control policy.
pub trait Policy {
    /// Short stable name (CLI selector, metrics label).
    fn name(&self) -> &'static str;

    /// Observe the window after an epoch completes; return the actions to
    /// apply before the next epoch. Must be deterministic in the view and
    /// the policy's own state.
    fn observe(&mut self, view: &WindowView<'_>) -> Vec<Action>;
}

/// The do-nothing policy: serving with only no-op policies reproduces the
/// batch simulation bit-for-bit (the serve differential invariant).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopPolicy;

impl Policy for NoopPolicy {
    fn name(&self) -> &'static str {
        "noop"
    }

    fn observe(&mut self, _view: &WindowView<'_>) -> Vec<Action> {
        Vec::new()
    }
}
