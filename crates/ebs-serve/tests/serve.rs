//! Integration tests for the serve loop: the serve-vs-batch differential,
//! epoch-cut conservation, source equivalence, and the determinism
//! invariants (thread count, shard count, obs on/off).

use ebs_core::parallel::set_thread_override;
use ebs_serve::{
    serve, EpochSpec, NoopPolicy, OnlineBalancer, OnlineCacheTuner, OnlineLender, OnlineRebinder,
    Pacing, Policy, ServeConfig, ServeReport, ServeSource,
};
use ebs_stack::sim::{StackConfig, StackSim};
use ebs_workload::{generate, Dataset, WorkloadConfig};

fn quick() -> Dataset {
    generate(&WorkloadConfig::quick(0xEB5_2025)).unwrap()
}

fn noop_policies() -> Vec<Box<dyn Policy>> {
    vec![Box::new(NoopPolicy)]
}

fn active_policies(stack: &StackConfig) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(OnlineRebinder::default()),
        Box::new(OnlineLender::new(
            ebs_throttle::LendingConfig::default(),
            stack.throttle_scale,
        )),
        Box::new(OnlineBalancer::new(
            ebs_balance::bs_balancer::BalancerConfig::default(),
        )),
        Box::new(OnlineCacheTuner::new(512)),
    ]
}

fn report_fingerprint(r: &ServeReport) -> String {
    let mut out = String::new();
    for row in &r.epochs {
        out.push_str(&format!(
            "{} {} {} {} {} {:?} {:?}\n",
            row.epoch, row.ios, row.throttled, row.bytes, row.p99_us, row.window, row.applied
        ));
    }
    out.push_str(&format!("{:?} {}\n", r.aggregate, r.consumed));
    out
}

/// With only no-op policies, a serve run's aggregate stats and per-IO
/// trace records equal the batch `StackSim` run bit-for-bit — the serve
/// differential invariant.
#[test]
fn noop_serve_equals_batch_run_bit_exactly() {
    let ds = quick();
    let stack = StackConfig::default();

    let mut sim = StackSim::new(&ds.fleet, stack.clone());
    let batch = sim.run(&ds.events).unwrap();

    let mut config = ServeConfig::fast_forward(60.0, 5, stack).unwrap();
    config.collect_traces = true;
    let report = serve(&ds.fleet, &config, &ds.events, &mut noop_policies()).unwrap();

    assert_eq!(report.aggregate, batch.stats);
    assert_eq!(report.records.len(), batch.traces.len());
    assert_eq!(report.records, batch.traces.records());
    assert_eq!(report.consumed, ds.events.len());
}

/// Every event lands in exactly one epoch: per-epoch IO counts sum to the
/// stream length for epoch lengths that do and do not divide the horizon.
#[test]
fn epoch_cuts_conserve_events() {
    let ds = quick();
    for epoch_secs in [60.0, 37.5, 1800.0] {
        let config = ServeConfig::fast_forward(epoch_secs, 3, StackConfig::default()).unwrap();
        let report = serve(&ds.fleet, &config, &ds.events, &mut noop_policies()).unwrap();
        let per_epoch: u64 = report.epochs.iter().map(|e| e.ios).sum();
        assert_eq!(per_epoch, ds.events.len() as u64, "epoch={epoch_secs}s");
        assert_eq!(report.aggregate.ios, ds.events.len() as u64);
    }
}

/// An event timestamped exactly on an epoch boundary is served once, in
/// the later epoch (half-open cuts at the serve level).
#[test]
fn boundary_event_serves_once_in_later_epoch() {
    let ds = quick();
    let spec = EpochSpec::from_secs(60.0).unwrap();
    // Find a boundary the trace actually crosses and plant an event on it:
    // reuse the trace's own events, so just assert conservation around
    // boundaries the stream hits.
    let edge_events = ds
        .events
        .iter()
        .filter(|ev| ev.t_us % spec.epoch_us() == 0)
        .count();
    let config = ServeConfig::fast_forward(60.0, 3, StackConfig::default()).unwrap();
    let report = serve(&ds.fleet, &config, &ds.events, &mut noop_policies()).unwrap();
    let per_epoch: u64 = report.epochs.iter().map(|e| e.ios).sum();
    assert_eq!(per_epoch, ds.events.len() as u64);
    // Sanity: the generated quick trace is dense enough that the epoch
    // index arithmetic was actually exercised.
    assert!(report.epochs.len() > 1);
    let _ = edge_events; // boundary hits are conserved by the sum above
}

/// Serving from a sharded store (any shard count, metricless) produces the
/// same report as serving the generated stream, and shard counts agree
/// with each other.
#[test]
fn sharded_sources_reproduce_generated_serve() {
    let config = WorkloadConfig::quick(0xEB5_2025);
    let ds = generate(&config).unwrap();
    let serve_cfg = ServeConfig::fast_forward(120.0, 4, StackConfig::default()).unwrap();
    let stack = serve_cfg.stack.clone();
    let base = serve(
        &ds.fleet,
        &serve_cfg,
        &ds.events,
        &mut active_policies(&stack),
    )
    .unwrap();
    let base_fp = report_fingerprint(&base);

    for shards in [2usize, 5] {
        let mut dir = std::env::temp_dir();
        dir.push(format!("ebs-serve-shards-{}-{shards}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ebs_workload::generate_sharded(&config, &dir, shards, false).unwrap();
        let trace = ebs_serve::load(&ServeSource::ShardedStore(dir.clone())).unwrap();
        assert_eq!(trace.events, ds.events, "shards={shards}");
        let report = serve(
            &trace.fleet,
            &serve_cfg,
            &trace.events,
            &mut active_policies(&stack),
        )
        .unwrap();
        assert_eq!(report_fingerprint(&report), base_fp, "shards={shards}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Active policies stay deterministic across thread counts, and the
/// metrics JSONL stream is byte-identical too.
#[test]
fn active_serve_is_thread_count_invariant() {
    let ds = quick();
    let config = ServeConfig {
        cache_pages: Some(512),
        ..ServeConfig::fast_forward(60.0, 5, StackConfig::default()).unwrap()
    };
    let stack = config.stack.clone();

    set_thread_override(Some(1));
    let one = serve(&ds.fleet, &config, &ds.events, &mut active_policies(&stack)).unwrap();
    set_thread_override(Some(4));
    let four = serve(&ds.fleet, &config, &ds.events, &mut active_policies(&stack)).unwrap();
    set_thread_override(None);

    assert_eq!(report_fingerprint(&one), report_fingerprint(&four));
    assert_eq!(one.metrics_jsonl, four.metrics_jsonl);
    // The active run must actually do something for this test to bite.
    let applied: u64 = one.epochs.iter().map(|e| e.applied.total()).sum();
    assert!(
        applied > 0,
        "active policies never acted on the quick trace"
    );
}

/// Observability may never move an output byte: serve reports are
/// identical with obs forced on and forced off (the PR 2 guarantee).
#[test]
fn obs_toggle_never_changes_serve_output() {
    let ds = quick();
    let mut config = ServeConfig::fast_forward(60.0, 5, StackConfig::default()).unwrap();
    config.collect_traces = true;
    config.cache_pages = Some(256);
    let stack = config.stack.clone();

    ebs_obs::set_obs_override(Some(false));
    let off = serve(&ds.fleet, &config, &ds.events, &mut active_policies(&stack)).unwrap();
    ebs_obs::set_obs_override(Some(true));
    let on = serve(&ds.fleet, &config, &ds.events, &mut active_policies(&stack)).unwrap();
    ebs_obs::set_obs_override(None);

    assert_eq!(report_fingerprint(&on), report_fingerprint(&off));
    assert_eq!(on.records, off.records);
    assert_eq!(on.metrics_jsonl, off.metrics_jsonl);
    // One JSONL record per epoch, every line a JSON object.
    assert_eq!(on.metrics_jsonl.lines().count(), on.epochs.len());
    for line in on.metrics_jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"epoch\":"));
        assert!(line.contains("\"win_p99_us\":"));
        assert!(line.contains("\"applied\":"));
    }
}

/// A duration cap truncates the horizon: events past it are not served
/// and `consumed` reports the cut.
#[test]
fn duration_caps_the_horizon() {
    let ds = quick();
    let last = ds.events.last().unwrap().t_us;
    let mut config = ServeConfig::fast_forward(60.0, 3, StackConfig::default()).unwrap();
    config.duration_us = Some(last / 2);
    let report = serve(&ds.fleet, &config, &ds.events, &mut noop_policies()).unwrap();
    assert!(report.consumed < ds.events.len());
    let per_epoch: u64 = report.epochs.iter().map(|e| e.ios).sum();
    assert_eq!(per_epoch, report.consumed as u64);
    assert_eq!(report.aggregate.ios, report.consumed as u64);
}

/// Paced mode changes wall-clock delivery only: with a huge speedup the
/// report matches fast-forward byte-for-byte.
#[test]
fn pacing_never_changes_output() {
    let ds = quick();
    let mut config = ServeConfig::fast_forward(600.0, 3, StackConfig::default()).unwrap();
    let fast = serve(&ds.fleet, &config, &ds.events, &mut noop_policies()).unwrap();
    config.pacing = Pacing::Paced { speedup: 1e9 };
    let paced = serve(&ds.fleet, &config, &ds.events, &mut noop_policies()).unwrap();
    assert_eq!(report_fingerprint(&fast), report_fingerprint(&paced));
}
