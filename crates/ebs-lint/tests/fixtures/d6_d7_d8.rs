pub fn d6_leak(m: &FxHashMap<u64, u64>) -> Vec<u64> {
    m.values().copied().collect()
}

pub fn d6_sorted(m: &FxHashMap<u64, u64>) -> Vec<u64> {
    let mut out: Vec<u64> = m.values().copied().collect();
    out.sort_unstable();
    out
}

pub fn d7_leak(items: &[f64], total: &Mutex<f64>) {
    par_map_deterministic(items, |_i, x| {
        *total.lock().expect("poisoned") += *x;
    });
}

pub fn d7_local(items: &[f64]) -> Vec<f64> {
    par_map_deterministic(items, |_i, x| {
        let mut acc = 0.0f64;
        acc += *x;
        acc
    })
}

pub struct Partial {
    pub sum: f64,
}

impl Partial {
    pub fn merge(&mut self, other: &Partial) {
        self.sum += other.sum;
    }
}

pub struct Positional {
    pub bins: Vec<f64>,
}

impl Positional {
    pub fn merge(&mut self, other: &Positional) {
        for (dst, src) in self.bins.iter_mut().zip(&other.bins) {
            *dst += *src;
        }
    }
}

pub fn d8_leak() -> Option<String> {
    std::env::var("RAYON_NUM_THREADS").ok()
}

pub fn d8_named() -> Option<String> {
    std::env::var("EBS_THREADS").ok()
}
