//! D3 fixture: panicking calls and unchecked indexing, plus the postfix
//! positions that must NOT count as indexing.

pub fn positives(v: &[u32], o: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = o.unwrap(); // line 5: D3
    let b = r.expect("present"); // line 6: D3
    if v.is_empty() {
        panic!("empty input"); // line 8: D3
    }
    match a {
        0 => unreachable!(), // line 11: D3
        1 => todo!(), // line 12: D3
        _ => {}
    }
    let c = v[0]; // line 15: D3 (ident before `[`)
    let d = v.iter().collect::<Vec<_>>()[0]; // line 16: D3 (`)` before `[`)
    let e = [1u32, 2][0]; // line 17: D3 (`]` before `[`; the literal itself is not)
    a + b + c + d + e
}

pub fn negatives(arr: [u32; 2], bytes: &mut [u8]) -> u32 {
    let [lo, hi] = arr; // `let [` destructures, no indexing
    bytes.first().copied().unwrap_or(0) as u32 + lo + hi
}

#[derive(Debug)]
pub struct Holder(pub Vec<u32>);
