//! Suppression fixture: directives with and without reasons.

pub fn properly_suppressed(o: Option<u32>) -> u32 {
    // ebs-lint: allow(D3) -- fixture demonstrates a reasoned same-item suppression
    o.unwrap()
}

pub fn suppressed_on_own_line(v: &[u32]) -> u32 {
    v[0] // ebs-lint: allow(D3) -- bounds proven by caller contract
}

pub fn missing_reason(o: Option<u32>) -> u32 {
    // ebs-lint: allow(D3)
    o.unwrap()
}

pub fn unknown_rule(o: Option<u32>) -> u32 {
    // ebs-lint: allow(D9) -- no such rule
    o.unwrap()
}
