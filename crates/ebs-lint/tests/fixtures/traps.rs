//! False-positive traps: every rule's trigger tokens appear here, but only
//! in positions the linter must ignore. A correct scan reports ZERO
//! violations for this file (as class `Lib`, non-total).

// Comments are not code: HashMap::new() .unwrap() panic! thread_rng()
// Instant::now SystemTime println! rand::random RandomState

pub fn strings() -> (&'static str, &'static str, &'static str) {
    let plain = "HashMap::new() and v[0].unwrap() and panic!(\"boom\")";
    let raw = r#"Instant::now() println! thread_rng() unreachable!"#;
    let hashes = r##"nested "quote" with SystemTime and .expect("x")"##;
    (plain, raw, hashes)
}

/* Block comment trap: /* nested */ todo! eprintln! OsRng from_entropy */

pub fn char_literals() -> (char, char) {
    ('[', '!') // a bracket in a char literal opens nothing
}

#[cfg(test)]
mod tests {
    // Test code may panic and read clocks (D2/D3/D4 are production rules).
    #[test]
    fn unwrap_and_clock_are_fine_here() {
        let t0 = std::time::Instant::now();
        let v = vec![1u32];
        assert_eq!(v[0], Some(1u32).unwrap());
        println!("elapsed {:?}", t0.elapsed());
    }
}
