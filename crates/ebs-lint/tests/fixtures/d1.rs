//! D1 fixture: default-hasher std maps, plus every exemption.
use std::collections::HashMap;
use std::collections::HashSet as Set;
use ebs_core::hash::FxBuildHasher;

pub fn positives() {
    let a: HashMap<u32, u32> = HashMap::new(); // line 7: two D1 hits
    let b = Set::new(); // line 8: aliased import is still a std set
    let c = std::collections::HashMap::with_capacity(4); // line 9
    drop((a, b, c));
}

pub fn negatives() {
    // Explicit hasher in the type: the caller chose, D1 is satisfied.
    let a: HashMap<u32, u32, FxBuildHasher> = HashMap::with_hasher(FxBuildHasher::default());
    let b: &HashMap<u32, u32, FxBuildHasher> = &a;
    let c = std::collections::BTreeMap::<u32, u32>::new();
    drop((b, c));
}
