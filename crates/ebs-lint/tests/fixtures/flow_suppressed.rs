pub fn d6_suppressed(m: &FxHashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    // ebs-lint: allow(D6) -- commutative integer sum, iteration order is unobservable
    for (_k, v) in m {
        acc += v;
    }
    acc
}

pub struct Telemetry {
    pub seconds: f64,
}

impl Telemetry {
    pub fn merge(&mut self, other: &Telemetry) {
        // ebs-lint: allow(D7) -- wall-clock telemetry fold, never reaches deterministic output
        self.seconds += other.seconds;
    }
}

pub fn ci_threads() -> Option<String> {
    // ebs-lint: allow(D8) -- documented escape hatch for external CI wrappers
    std::env::var("NUM_THREADS").ok()
}
