//! D2/D4/D5 fixture: wall clocks, terminal writes, ambient randomness.

pub fn clocks() {
    let t0 = std::time::Instant::now(); // line 4: D2
    let wall = std::time::SystemTime::now(); // line 5: D2
    drop((t0, wall));
}

pub fn prints(x: u32) {
    println!("x = {x}"); // line 10: D4
    eprintln!("x = {x}"); // line 11: D4
    dbg!(x); // line 12: D4
}

pub fn entropy() {
    let r = thread_rng(); // line 16: D5
    let v: u64 = rand::random(); // line 17: D5
    let s = std::collections::hash_map::RandomState::new(); // line 18: D5
    drop((r, v, s));
}

pub fn instant_without_now_is_fine(i: std::time::Instant) -> std::time::Instant {
    i
}
