//! End-to-end tests for the linter: fixture files with known violations
//! (and known traps), the suppression grammar, the baseline ratchet, and
//! a self-check over the real workspace.
//!
//! The fixture sources live in `tests/fixtures/` — cargo never compiles
//! them (only top-level files in `tests/` are targets) and the workspace
//! walker skips that directory for the same reason.

use ebs_lint::baseline::Baseline;
use ebs_lint::rules::{check_source, CheckOutcome, FileClass};
use std::path::PathBuf;

const D1: &str = include_str!("fixtures/d1.rs");
const D2_D4_D5: &str = include_str!("fixtures/d2_d4_d5.rs");
const D3: &str = include_str!("fixtures/d3.rs");
const D6_D7_D8: &str = include_str!("fixtures/d6_d7_d8.rs");
const FLOW_SUPPRESSED: &str = include_str!("fixtures/flow_suppressed.rs");
const TRAPS: &str = include_str!("fixtures/traps.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");

fn scan(class: FileClass, total: bool, src: &str) -> CheckOutcome {
    check_source("fixture.rs", class, total, src)
}

/// `(rule, line, col)` triples of a violation list, for compact asserts.
fn spans(vs: &[ebs_lint::diag::Violation]) -> Vec<(&str, u32, u32)> {
    vs.iter().map(|v| (v.rule, v.line, v.col)).collect()
}

#[test]
fn d1_flags_default_hashers_and_spares_explicit_ones() {
    let out = scan(FileClass::Lib, false, D1);
    assert!(out.ratchet.is_empty());
    let got = spans(&out.strict);
    assert_eq!(
        got,
        vec![("D1", 7, 12), ("D1", 7, 32), ("D1", 8, 13), ("D1", 9, 31)],
        "got {got:?}"
    );
}

#[test]
fn d1_applies_even_in_test_files() {
    // Determinism of tests is part of the invariant: no class exemption.
    let out = scan(FileClass::TestFile, false, D1);
    assert_eq!(out.strict.len(), 4);
}

#[test]
fn d2_d4_d5_fire_in_library_code() {
    let out = scan(FileClass::Lib, false, D2_D4_D5);
    let got = spans(&out.strict);
    let rules_on = |rule: &str| -> Vec<u32> {
        got.iter()
            .filter(|(r, _, _)| *r == rule)
            .map(|&(_, l, _)| l)
            .collect()
    };
    assert_eq!(rules_on("D2"), vec![4, 5], "got {got:?}");
    assert_eq!(rules_on("D4"), vec![10, 11, 12], "got {got:?}");
    assert_eq!(rules_on("D5"), vec![16, 17, 18], "got {got:?}");
    assert_eq!(got.len(), 8, "no other rule should fire: {got:?}");
}

#[test]
fn clock_and_print_rules_respect_file_class() {
    // Harness and obs code own the clock and the terminal…
    for class in [FileClass::Harness, FileClass::Obs] {
        let out = scan(class, false, D2_D4_D5);
        let got = spans(&out.strict);
        assert!(
            got.iter().all(|(r, _, _)| *r == "D5"),
            "{class:?} should only see D5: {got:?}"
        );
        // …but ambient randomness is banned everywhere.
        assert_eq!(got.len(), 3, "{class:?}: {got:?}");
    }
    // Bins must stay deterministic (D2/D5) but may print (no D4) and
    // panic on bad CLI input (no D3).
    let out = scan(FileClass::Bin, false, D2_D4_D5);
    let got = spans(&out.strict);
    assert_eq!(got.iter().filter(|(r, _, _)| *r == "D2").count(), 2);
    assert_eq!(got.iter().filter(|(r, _, _)| *r == "D4").count(), 0);
}

#[test]
fn d3_ratchets_outside_total_modules_and_hard_errors_inside() {
    let legacy = scan(FileClass::Lib, false, D3);
    assert!(legacy.strict.is_empty(), "got {:?}", spans(&legacy.strict));
    assert_eq!(
        spans(&legacy.ratchet)
            .iter()
            .map(|&(_, l, _)| l)
            .collect::<Vec<_>>(),
        vec![5, 6, 8, 11, 12, 15, 16, 17],
        "got {:?}",
        spans(&legacy.ratchet)
    );

    let total = scan(FileClass::Lib, true, D3);
    assert!(total.ratchet.is_empty());
    assert_eq!(total.strict.len(), 8, "got {:?}", spans(&total.strict));

    // Bins and test files may panic freely.
    for class in [FileClass::Bin, FileClass::TestFile] {
        let out = scan(class, false, D3);
        assert!(out.strict.is_empty() && out.ratchet.is_empty(), "{class:?}");
    }
}

#[test]
fn d6_d7_d8_flag_leaks_and_spare_the_canonical_shapes() {
    let out = scan(FileClass::Lib, false, D6_D7_D8);
    assert!(out.strict.is_empty(), "got {:?}", spans(&out.strict));
    let got = spans(&out.ratchet);
    // The leaks fire: hash iteration into a collect (D6), the locked
    // accumulator in the parallel closure and the non-positional float
    // merge (D7), the off-surface env read (D8), plus the `expect` the D7
    // leak rides on (D3). The canonical shapes — collect-then-sort,
    // closure-local accumulator, zip-of-partials merge, `EBS_*` read —
    // stay silent.
    assert_eq!(
        got,
        vec![
            ("D3", 13, 23),
            ("D6", 2, 7),
            ("D7", 13, 16),
            ("D7", 31, 18),
            ("D8", 48, 15),
        ],
        "got {got:?}"
    );
}

#[test]
fn flow_rules_honour_reasoned_suppressions() {
    let out = scan(FileClass::Lib, false, FLOW_SUPPRESSED);
    assert!(
        out.strict.is_empty() && out.ratchet.is_empty(),
        "suppressed flow findings leaked: strict {:?} ratchet {:?}",
        spans(&out.strict),
        spans(&out.ratchet)
    );
}

#[test]
fn trigger_tokens_in_strings_comments_and_tests_are_ignored() {
    let out = scan(FileClass::Lib, false, TRAPS);
    assert!(
        out.strict.is_empty() && out.ratchet.is_empty(),
        "traps fired: strict {:?} ratchet {:?}",
        spans(&out.strict),
        spans(&out.ratchet)
    );
}

#[test]
fn suppressions_need_a_reason_and_a_known_rule() {
    let out = scan(FileClass::Lib, false, SUPPRESSED);
    // Reasoned directives silence lines 5 and 9; the reasonless one (13)
    // and the unknown-rule one (18) are SUP violations and leave their
    // unwraps (14, 19) live.
    let strict = spans(&out.strict);
    assert_eq!(
        strict.iter().map(|&(r, l, _)| (r, l)).collect::<Vec<_>>(),
        vec![("SUP", 13), ("SUP", 18)],
        "got {strict:?}"
    );
    assert_eq!(
        spans(&out.ratchet)
            .iter()
            .map(|&(_, l, _)| l)
            .collect::<Vec<_>>(),
        vec![14, 19]
    );
}

// ---------------------------------------------------------------------
// Baseline ratchet, end to end over a throwaway workspace on disk.
// ---------------------------------------------------------------------

struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(name: &str, lib_rs: &str) -> Self {
        let root = std::env::temp_dir().join(format!("ebs-lint-{}-{name}", std::process::id()));
        let src = root.join("crates/foo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(src.join("lib.rs"), lib_rs).unwrap();
        Self { root }
    }

    fn write_baseline(&self, text: &str) {
        std::fs::write(self.root.join(ebs_lint::BASELINE_FILE), text).unwrap();
    }

    /// Add another source file (workspace-relative path).
    fn write_file(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, text).unwrap();
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

const ONE_UNWRAP: &str = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
const TWO_UNWRAPS: &str =
    "pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    x.unwrap() + y.unwrap()\n}\n";

#[test]
fn ratchet_rejects_new_unwraps_until_baselined() {
    let ws = TempWorkspace::new("ratchet", ONE_UNWRAP);

    // No baseline: the legacy site is a violation.
    let report = ebs_lint::run(&ws.root).unwrap();
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, "D3");
    assert!(report.violations[0].message.contains("allows 0"));

    // `ebs-lint baseline` semantics: write the live counts, now clean.
    let (_, live) = ebs_lint::run_with_baseline(&ws.root, &Baseline::default()).unwrap();
    ws.write_baseline(&live.render());
    let report = ebs_lint::run(&ws.root).unwrap();
    assert!(report.violations.is_empty());
    assert_eq!(report.baselined, 1);
    assert!(report.stale.is_empty());

    // A NEW unwrap exceeds the allowance: every site in the file reports.
    std::fs::write(ws.root.join("crates/foo/src/lib.rs"), TWO_UNWRAPS).unwrap();
    let report = ebs_lint::run(&ws.root).unwrap();
    assert_eq!(report.violations.len(), 2);
    assert!(report.violations[0].message.contains("allows 1"));
}

#[test]
fn stale_baseline_entries_fail_only_under_strict() {
    let ws = TempWorkspace::new("stale", ONE_UNWRAP);
    ws.write_baseline("[D3]\n\"crates/foo/src/lib.rs\" = 3\n");
    let report = ebs_lint::run(&ws.root).unwrap();
    assert!(report.violations.is_empty());
    assert_eq!(report.stale.len(), 1, "allowance 3 vs live 1 is stale");
    assert!(report.ok(false), "stale is advisory by default");
    assert!(
        !report.ok(true),
        "--strict-baseline turns stale into failure"
    );
}

#[test]
fn fixing_the_last_site_leaves_an_orphan_stale_entry() {
    let ws = TempWorkspace::new("orphan", "pub fn f(x: u32) -> u32 {\n    x\n}\n");
    ws.write_baseline("[D3]\n\"crates/foo/src/lib.rs\" = 1\n");
    let report = ebs_lint::run(&ws.root).unwrap();
    assert!(report.violations.is_empty());
    assert_eq!(
        report.stale,
        vec![("D3".into(), "crates/foo/src/lib.rs".into(), 0, 1)]
    );
}

// ---------------------------------------------------------------------
// D3v2 end to end: a total module reaching a panic through another file.
// ---------------------------------------------------------------------

#[test]
fn transitive_panic_from_a_total_module_is_reported_with_a_trace() {
    // `crates/ebs-stack/src/route.rs` is on the TOTAL_MODULES list, so the
    // temp workspace inherits its totality; the panic lives one hop away.
    let ws = TempWorkspace::new("d3v2", "pub fn unrelated() {}\n");
    ws.write_file(
        "crates/ebs-stack/src/route.rs",
        "pub fn plan(x: u32) -> u32 { crate::depth::probe(x) }\n",
    );
    ws.write_file(
        "crates/ebs-stack/src/depth.rs",
        "pub fn probe(x: u32) -> u32 { x.checked_add(1).unwrap() }\n",
    );
    let report = ebs_lint::run(&ws.root).unwrap();
    let d3v2: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "D3v2")
        .collect();
    assert_eq!(d3v2.len(), 1, "got {:?}", report.violations);
    let v = d3v2[0];
    assert_eq!(v.path, "crates/ebs-stack/src/depth.rs");
    assert_eq!(v.trace.len(), 2, "root → helper: {:?}", v.trace);
    assert!(
        v.trace[0].contains("ebs-stack::route::plan"),
        "{:?}",
        v.trace
    );
    assert!(v.trace[1].contains("probe"), "{:?}", v.trace);
    // The helper's local site also ratchets under plain D3.
    assert!(report.violations.iter().any(|v| v.rule == "D3"));
}

#[test]
fn suppressing_the_helper_site_clears_both_d3_and_d3v2() {
    let ws = TempWorkspace::new("d3v2-sup", "pub fn unrelated() {}\n");
    ws.write_file(
        "crates/ebs-stack/src/route.rs",
        "pub fn plan(x: u32) -> u32 { crate::depth::probe(x) }\n",
    );
    ws.write_file(
        "crates/ebs-stack/src/depth.rs",
        "pub fn probe(x: u32) -> u32 {\n\
            // ebs-lint: allow(D3) -- x is bounded far below u32::MAX by the caller\n\
            x.checked_add(1).unwrap()\n\
         }\n",
    );
    let report = ebs_lint::run(&ws.root).unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn d3v2_findings_ratchet_through_the_baseline_like_d3() {
    let ws = TempWorkspace::new("d3v2-ratchet", "pub fn unrelated() {}\n");
    ws.write_file(
        "crates/ebs-stack/src/route.rs",
        "pub fn plan(x: u32) -> u32 { crate::depth::probe(x) }\n",
    );
    ws.write_file(
        "crates/ebs-stack/src/depth.rs",
        "pub fn probe(x: u32) -> u32 { x.checked_add(1).unwrap() }\n",
    );
    // Baseline both the local D3 site and the reachability finding: clean.
    ws.write_baseline(
        "[D3]\n\"crates/ebs-stack/src/depth.rs\" = 1\n\
         [D3v2]\n\"crates/ebs-stack/src/depth.rs\" = 1\n",
    );
    let report = ebs_lint::run(&ws.root).unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.baselined, 2);
    assert!(report.stale.is_empty());
}

// ---------------------------------------------------------------------
// Self-check: the real workspace is clean modulo its checked-in baseline.
// ---------------------------------------------------------------------

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap();
    assert!(root.join("Cargo.toml").exists(), "bad root {root:?}");
    root
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let report = ebs_lint::run(&workspace_root()).unwrap();
    let rendered =
        ebs_lint::diag::render_human(&report.violations, report.files_scanned, report.baselined);
    assert!(report.violations.is_empty(), "{rendered}");
    assert!(report.files_scanned > 100, "walker found too few files");
}

#[test]
fn report_is_byte_identical_at_every_thread_count() {
    // The per-file scans run through `par_map_deterministic`; the rendered
    // report must not depend on how many workers the map used.
    let root = workspace_root();
    let mut renders: Vec<String> = Vec::new();
    for threads in [1usize, 2, 8] {
        ebs_core::parallel::set_thread_override(Some(threads));
        let report = ebs_lint::run(&root).unwrap();
        renders.push(ebs_lint::diag::render_json(
            &report.violations,
            report.files_scanned,
            report.baselined,
        ));
    }
    ebs_core::parallel::set_thread_override(None);
    assert!(!renders[0].is_empty());
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}

// ---------------------------------------------------------------------
// Property tests: the lexer → parser → rules → graph stack is total.
// ---------------------------------------------------------------------

mod never_panics {
    use super::*;
    use proptest::prelude::*;

    /// Source fragments biased toward the constructs the analyzer cares
    /// about: item boundaries, suppression directives, panicking calls,
    /// unbalanced brackets, raw strings, and comment edges.
    const FRAGMENTS: &[&str] = &[
        "fn ",
        "pub ",
        "impl ",
        "struct ",
        "mod ",
        "use ",
        "for ",
        "in ",
        "match ",
        "{",
        "}",
        "(",
        ")",
        "[",
        "]",
        "::",
        ".",
        ";",
        ",",
        "->",
        "=>",
        "=",
        "+=",
        "a",
        "b",
        "f64",
        "unwrap()",
        "expect(\"x\")",
        "panic!(\"y\")",
        "#[cfg(test)]",
        "#[test]",
        "// ebs-lint: allow(D3) -- r\n",
        "// ebs-lint: allow(",
        "/*",
        "*/",
        "\"",
        "r#\"",
        "'",
        "\n",
        "env::var(\"EBS_X\")",
        "par_map_deterministic",
        "merge",
        "FxHashMap",
        ".iter()",
        ".values()",
    ];

    proptest! {
        #[test]
        fn analyzer_is_total_on_fragment_soup(
            idx in prop::collection::vec(0usize..44, 0..64),
            total in any::<bool>(),
        ) {
            let src: String = idx.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect();
            let scan = ebs_lint::rules::scan_file("crates/ebs-x/src/fuzz.rs", FileClass::Lib, total, &src);
            let graph = ebs_lint::graph::build(&[ebs_lint::graph::FileItems {
                rel: "crates/ebs-x/src/fuzz.rs",
                total,
                items: &scan.items,
            }]);
            let _ = ebs_lint::graph::transitive_totality(&graph);
        }

        #[test]
        fn analyzer_is_total_on_arbitrary_bytes(
            bytes in prop::collection::vec(0u32..256, 0..256),
        ) {
            let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
            let src = String::from_utf8_lossy(&raw);
            let _ = ebs_lint::rules::scan_file("crates/ebs-x/src/fuzz.rs", FileClass::Lib, false, &src);
        }
    }
}
