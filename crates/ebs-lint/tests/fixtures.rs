//! End-to-end tests for the linter: fixture files with known violations
//! (and known traps), the suppression grammar, the baseline ratchet, and
//! a self-check over the real workspace.
//!
//! The fixture sources live in `tests/fixtures/` — cargo never compiles
//! them (only top-level files in `tests/` are targets) and the workspace
//! walker skips that directory for the same reason.

use ebs_lint::baseline::Baseline;
use ebs_lint::rules::{check_source, CheckOutcome, FileClass};
use std::path::PathBuf;

const D1: &str = include_str!("fixtures/d1.rs");
const D2_D4_D5: &str = include_str!("fixtures/d2_d4_d5.rs");
const D3: &str = include_str!("fixtures/d3.rs");
const TRAPS: &str = include_str!("fixtures/traps.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");

fn scan(class: FileClass, total: bool, src: &str) -> CheckOutcome {
    check_source("fixture.rs", class, total, src)
}

/// `(rule, line, col)` triples of a violation list, for compact asserts.
fn spans(vs: &[ebs_lint::diag::Violation]) -> Vec<(&str, u32, u32)> {
    vs.iter().map(|v| (v.rule, v.line, v.col)).collect()
}

#[test]
fn d1_flags_default_hashers_and_spares_explicit_ones() {
    let out = scan(FileClass::Lib, false, D1);
    assert!(out.ratchet.is_empty());
    let got = spans(&out.strict);
    assert_eq!(
        got,
        vec![("D1", 7, 12), ("D1", 7, 32), ("D1", 8, 13), ("D1", 9, 31)],
        "got {got:?}"
    );
}

#[test]
fn d1_applies_even_in_test_files() {
    // Determinism of tests is part of the invariant: no class exemption.
    let out = scan(FileClass::TestFile, false, D1);
    assert_eq!(out.strict.len(), 4);
}

#[test]
fn d2_d4_d5_fire_in_library_code() {
    let out = scan(FileClass::Lib, false, D2_D4_D5);
    let got = spans(&out.strict);
    let rules_on = |rule: &str| -> Vec<u32> {
        got.iter()
            .filter(|(r, _, _)| *r == rule)
            .map(|&(_, l, _)| l)
            .collect()
    };
    assert_eq!(rules_on("D2"), vec![4, 5], "got {got:?}");
    assert_eq!(rules_on("D4"), vec![10, 11, 12], "got {got:?}");
    assert_eq!(rules_on("D5"), vec![16, 17, 18], "got {got:?}");
    assert_eq!(got.len(), 8, "no other rule should fire: {got:?}");
}

#[test]
fn clock_and_print_rules_respect_file_class() {
    // Harness and obs code own the clock and the terminal…
    for class in [FileClass::Harness, FileClass::Obs] {
        let out = scan(class, false, D2_D4_D5);
        let got = spans(&out.strict);
        assert!(
            got.iter().all(|(r, _, _)| *r == "D5"),
            "{class:?} should only see D5: {got:?}"
        );
        // …but ambient randomness is banned everywhere.
        assert_eq!(got.len(), 3, "{class:?}: {got:?}");
    }
    // Bins must stay deterministic (D2/D5) but may print (no D4) and
    // panic on bad CLI input (no D3).
    let out = scan(FileClass::Bin, false, D2_D4_D5);
    let got = spans(&out.strict);
    assert_eq!(got.iter().filter(|(r, _, _)| *r == "D2").count(), 2);
    assert_eq!(got.iter().filter(|(r, _, _)| *r == "D4").count(), 0);
}

#[test]
fn d3_ratchets_outside_total_modules_and_hard_errors_inside() {
    let legacy = scan(FileClass::Lib, false, D3);
    assert!(legacy.strict.is_empty(), "got {:?}", spans(&legacy.strict));
    assert_eq!(
        spans(&legacy.ratchet)
            .iter()
            .map(|&(_, l, _)| l)
            .collect::<Vec<_>>(),
        vec![5, 6, 8, 11, 12, 15, 16, 17],
        "got {:?}",
        spans(&legacy.ratchet)
    );

    let total = scan(FileClass::Lib, true, D3);
    assert!(total.ratchet.is_empty());
    assert_eq!(total.strict.len(), 8, "got {:?}", spans(&total.strict));

    // Bins and test files may panic freely.
    for class in [FileClass::Bin, FileClass::TestFile] {
        let out = scan(class, false, D3);
        assert!(out.strict.is_empty() && out.ratchet.is_empty(), "{class:?}");
    }
}

#[test]
fn trigger_tokens_in_strings_comments_and_tests_are_ignored() {
    let out = scan(FileClass::Lib, false, TRAPS);
    assert!(
        out.strict.is_empty() && out.ratchet.is_empty(),
        "traps fired: strict {:?} ratchet {:?}",
        spans(&out.strict),
        spans(&out.ratchet)
    );
}

#[test]
fn suppressions_need_a_reason_and_a_known_rule() {
    let out = scan(FileClass::Lib, false, SUPPRESSED);
    // Reasoned directives silence lines 5 and 9; the reasonless one (13)
    // and the unknown-rule one (18) are SUP violations and leave their
    // unwraps (14, 19) live.
    let strict = spans(&out.strict);
    assert_eq!(
        strict.iter().map(|&(r, l, _)| (r, l)).collect::<Vec<_>>(),
        vec![("SUP", 13), ("SUP", 18)],
        "got {strict:?}"
    );
    assert_eq!(
        spans(&out.ratchet)
            .iter()
            .map(|&(_, l, _)| l)
            .collect::<Vec<_>>(),
        vec![14, 19]
    );
}

// ---------------------------------------------------------------------
// Baseline ratchet, end to end over a throwaway workspace on disk.
// ---------------------------------------------------------------------

struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(name: &str, lib_rs: &str) -> Self {
        let root = std::env::temp_dir().join(format!("ebs-lint-{}-{name}", std::process::id()));
        let src = root.join("crates/foo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(src.join("lib.rs"), lib_rs).unwrap();
        Self { root }
    }

    fn write_baseline(&self, text: &str) {
        std::fs::write(self.root.join(ebs_lint::BASELINE_FILE), text).unwrap();
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

const ONE_UNWRAP: &str = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
const TWO_UNWRAPS: &str =
    "pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    x.unwrap() + y.unwrap()\n}\n";

#[test]
fn ratchet_rejects_new_unwraps_until_baselined() {
    let ws = TempWorkspace::new("ratchet", ONE_UNWRAP);

    // No baseline: the legacy site is a violation.
    let report = ebs_lint::run(&ws.root).unwrap();
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, "D3");
    assert!(report.violations[0].message.contains("allows 0"));

    // `ebs-lint baseline` semantics: write the live counts, now clean.
    let (_, live) = ebs_lint::run_with_baseline(&ws.root, &Baseline::default()).unwrap();
    ws.write_baseline(&live.render());
    let report = ebs_lint::run(&ws.root).unwrap();
    assert!(report.violations.is_empty());
    assert_eq!(report.baselined, 1);
    assert!(report.stale.is_empty());

    // A NEW unwrap exceeds the allowance: every site in the file reports.
    std::fs::write(ws.root.join("crates/foo/src/lib.rs"), TWO_UNWRAPS).unwrap();
    let report = ebs_lint::run(&ws.root).unwrap();
    assert_eq!(report.violations.len(), 2);
    assert!(report.violations[0].message.contains("allows 1"));
}

#[test]
fn stale_baseline_entries_fail_only_under_strict() {
    let ws = TempWorkspace::new("stale", ONE_UNWRAP);
    ws.write_baseline("[D3]\n\"crates/foo/src/lib.rs\" = 3\n");
    let report = ebs_lint::run(&ws.root).unwrap();
    assert!(report.violations.is_empty());
    assert_eq!(report.stale.len(), 1, "allowance 3 vs live 1 is stale");
    assert!(report.ok(false), "stale is advisory by default");
    assert!(
        !report.ok(true),
        "--strict-baseline turns stale into failure"
    );
}

#[test]
fn fixing_the_last_site_leaves_an_orphan_stale_entry() {
    let ws = TempWorkspace::new("orphan", "pub fn f(x: u32) -> u32 {\n    x\n}\n");
    ws.write_baseline("[D3]\n\"crates/foo/src/lib.rs\" = 1\n");
    let report = ebs_lint::run(&ws.root).unwrap();
    assert!(report.violations.is_empty());
    assert_eq!(
        report.stale,
        vec![("D3".into(), "crates/foo/src/lib.rs".into(), 0, 1)]
    );
}

// ---------------------------------------------------------------------
// Self-check: the real workspace is clean modulo its checked-in baseline.
// ---------------------------------------------------------------------

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap();
    assert!(root.join("Cargo.toml").exists(), "bad root {root:?}");
    let report = ebs_lint::run(&root).unwrap();
    let rendered =
        ebs_lint::diag::render_human(&report.violations, report.files_scanned, report.baselined);
    assert!(report.violations.is_empty(), "{rendered}");
    assert!(report.files_scanned > 100, "walker found too few files");
}
