//! CLI for the in-repo static analyzer.
//!
//! ```text
//! cargo run -p ebs-lint -- check [--format json] [--strict-baseline] [--root DIR]
//! cargo run -p ebs-lint -- baseline [--root DIR]
//! cargo run -p ebs-lint -- graph <fn-path> [--root DIR]
//! ```
//!
//! `graph` prints a function's callers and callees from the computed
//! workspace call graph (`<fn-path>` is a bare name like `merge` or a
//! `::`-path suffix like `ebs_store::stream::StreamSummary::merge`) —
//! handy for reviewing D3v2 reachability traces.
//!
//! Exit codes: 0 clean, 1 violations (or stale baseline under
//! `--strict-baseline`, or no `graph` match), 2 usage or I/O error.

use ebs_lint::{analyze, baseline::Baseline, diag, find_root, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut query: Option<String> = None;
    let mut format_json = false;
    let mut strict_baseline = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" | "baseline" | "graph" if cmd.is_none() => cmd = Some(arg.as_str()),
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format_json = true,
                Some("human") => format_json = false,
                other => return usage(&format!("--format expects json|human, got {other:?}")),
            },
            "--strict-baseline" => strict_baseline = true,
            "--root" => match it.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage("--root expects a directory"),
            },
            other if cmd == Some("graph") && query.is_none() && !other.starts_with('-') => {
                query = Some(other.to_string());
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(cmd) = cmd else {
        return usage("expected a command: check | baseline | graph");
    };
    if cmd == "graph" && query.is_none() {
        return usage("graph expects a function path (e.g. `StreamSummary::merge`)");
    }

    let root =
        match root_arg.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
            Some(root) => root,
            None => return fail("could not locate the workspace root (no [workspace] Cargo.toml)"),
        };

    let baseline_path = root.join(BASELINE_FILE);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => return fail(&format!("{BASELINE_FILE}: {e}")),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return fail(&format!("{BASELINE_FILE}: {e}")),
    };

    let analysis = match analyze(&root, &baseline) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let (report, live) = (analysis.report, analysis.live);

    match cmd {
        "baseline" => {
            let text = live.render();
            if let Err(e) = std::fs::write(&baseline_path, &text) {
                return fail(&format!("writing {BASELINE_FILE}: {e}"));
            }
            let files: usize = live.counts.values().map(|m| m.len()).sum();
            println!(
                "wrote {} with {} ratcheted site(s) across {} [rule]/file entry(ies)",
                baseline_path.display(),
                live.total(),
                files
            );
            ExitCode::SUCCESS
        }
        "graph" => {
            let graph = &analysis.graph;
            let query = query.unwrap_or_default();
            let matches = graph.find(&query);
            if matches.is_empty() {
                eprintln!("ebs-lint: no workspace fn matches `{query}`");
                return ExitCode::FAILURE;
            }
            for id in matches {
                let f = &graph.fns[id];
                println!("fn {} ({}:{})", f.path(), f.file, f.line);
                if !f.panics.is_empty() {
                    println!("  panics: {} live site(s)", f.panics.len());
                }
                for c in graph.callers_of(id) {
                    let g = &graph.fns[c];
                    println!("  caller: {} ({}:{})", g.path(), g.file, g.line);
                }
                for &c in &graph.callees[id] {
                    let g = &graph.fns[c];
                    println!("  callee: {} ({}:{})", g.path(), g.file, g.line);
                }
            }
            ExitCode::SUCCESS
        }
        _ => {
            if format_json {
                print!(
                    "{}",
                    diag::render_json(&report.violations, report.files_scanned, report.baselined)
                );
            } else {
                print!(
                    "{}",
                    diag::render_human(&report.violations, report.files_scanned, report.baselined)
                );
                for (rule, path, livec, allowed) in &report.stale {
                    eprintln!(
                        "note: stale baseline entry [{rule}] \"{path}\" = {allowed} \
                         (live count {livec}); run `cargo run -p ebs-lint -- baseline`"
                    );
                }
            }
            if report.ok(strict_baseline) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ebs-lint: {msg}");
    eprintln!(
        "usage: ebs-lint check [--format json|human] [--strict-baseline] [--root DIR]\n\
                \x20      ebs-lint baseline [--root DIR]\n\
                \x20      ebs-lint graph <fn-path> [--root DIR]"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("ebs-lint: {msg}");
    ExitCode::from(2)
}
