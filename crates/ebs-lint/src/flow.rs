//! Dataflow heuristics for the determinism rules that need more context
//! than a single token: D6 (hash-iteration order leaking into results),
//! D7 (floating-point accumulation order in parallel regions and `merge`
//! reducers), and D8 (ambient configuration reads outside the `EBS_*`
//! surface).
//!
//! Like the rest of the linter these are token-level approximations, not
//! type checking: a name is "hash-typed" if any annotation or initializer
//! in the file binds it to a `HashMap`/`HashSet`/`Fx*` type, and
//! "float-typed" if bound to `f64`/`f32` (with one propagation round
//! through `for`-loop bindings so `for (dst, src) in a.iter_mut().zip(&b)`
//! inherits `a`/`b`'s floatness). The known miss modes are documented in
//! `DESIGN.md` §18; every finding is ratcheted, so a false positive costs
//! one reasoned suppression or baseline entry, never a broken build.

use crate::diag::Violation;
use crate::items::ItemTree;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// Methods that iterate a collection in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Hash-ordered collection type names (std and the workspace's Fx shims).
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Order-independent consumers: iterating a hash collection into these is
/// fine without a sort.
const ORDER_FREE_CALLS: &[&str] = &["count", "any", "all"];

/// Re-sorting collectors: landing hash-iteration output in one of these
/// canonicalizes the order again.
const ORDERED_SINKS: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];

/// Integer types: `sum::<u64>()` over any iteration order is exact.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Run D6/D7/D8 over one lexed file. Returns ratchet-eligible findings
/// (the caller filters suppressions and `#[cfg(test)]` regions).
pub fn check(path: &str, src: &str, toks: &[Tok], items: &ItemTree) -> Vec<Violation> {
    let mut out = Vec::new();
    let (hashy, floaty) = typed_names(toks, src);
    d6_iteration_order(path, src, toks, &hashy, &mut out);
    d7_parallel_reduction(path, src, toks, items, &floaty, &mut out);
    d8_ambient_config(path, src, toks, &mut out);
    out
}

fn mk(rule: &'static str, path: &str, t: &Tok, message: String) -> Violation {
    Violation {
        rule,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message,
        trace: Vec::new(),
    }
}

// ---------------------------------------------------------------------
// name → approximate type classification
// ---------------------------------------------------------------------

/// Collect the names this file binds to hash-ordered collections and to
/// floats, from `name: Type` annotations (including struct fields) and
/// `name = HashType::…` initializers, plus one propagation round through
/// `for`-pattern bindings.
fn typed_names(toks: &[Tok], src: &str) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut hashy: BTreeSet<String> = BTreeSet::new();
    let mut floaty: BTreeSet<String> = BTreeSet::new();

    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text(src);
        // `name : Type` (single colon) — annotation or struct field.
        let single_colon = toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            && !(i > 0 && toks[i - 1].is_punct(b':'));
        if single_colon {
            let (is_hash, is_float) = scan_type_tokens(toks, src, i + 2);
            if is_hash {
                hashy.insert(name.to_string());
            }
            if is_float {
                floaty.insert(name.to_string());
            }
        }
        // `name = HashType::…` initializer.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(b'='))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(b'='))
        {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(b';') && j < i + 10 {
                if toks[j].kind == TokKind::Ident && HASH_TYPES.contains(&toks[j].text(src)) {
                    hashy.insert(name.to_string());
                    break;
                }
                j += 1;
            }
        }
    }

    // One propagation round: `for (a, b) in <expr mentioning a float name>`
    // marks `a`/`b` float (covers the zip-of-partials merge shape).
    for i in 0..toks.len() {
        if !toks[i].is_ident(src, "for") || (i > 0 && toks[i - 1].is_punct(b'.')) {
            continue;
        }
        let mut pat: Vec<String> = Vec::new();
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_ident(src, "in") && !toks[j].is_punct(b'{') {
            if toks[j].kind == TokKind::Ident {
                pat.push(toks[j].text(src).to_string());
            }
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident(src, "in")) {
            continue;
        }
        let expr_start = j + 1;
        let mut k = expr_start;
        let mut depth = 0usize;
        let mut mentions_float = false;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth = depth.saturating_sub(1),
                TokKind::Punct(b'{') if depth == 0 => break,
                TokKind::Ident if floaty.contains(toks[k].text(src)) => mentions_float = true,
                _ => {}
            }
            k += 1;
        }
        if mentions_float {
            floaty.extend(pat);
        }
    }

    (hashy, floaty)
}

/// Scan type tokens starting at `j` (just after `:`) until the annotation
/// ends at depth 0. Reports whether the type mentions a hash collection /
/// a float scalar.
fn scan_type_tokens(toks: &[Tok], src: &str, j: usize) -> (bool, bool) {
    let mut angle = 0i32;
    let mut nest = 0i32;
    let mut is_hash = false;
    let mut is_float = false;
    let mut k = j;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') if !(k > 0 && toks[k - 1].is_punct(b'-')) => {
                angle -= 1;
                if angle < 0 {
                    break;
                }
            }
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => nest += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => {
                nest -= 1;
                if nest < 0 {
                    break;
                }
            }
            TokKind::Punct(b',') | TokKind::Punct(b';') | TokKind::Punct(b'=')
                if angle == 0 && nest == 0 =>
            {
                break
            }
            TokKind::Punct(b'{') | TokKind::Punct(b'}') => break,
            TokKind::Ident => {
                let name = t.text(src);
                if HASH_TYPES.contains(&name) {
                    is_hash = true;
                }
                if name == "f64" || name == "f32" {
                    is_float = true;
                }
            }
            _ => {}
        }
        k += 1;
    }
    (is_hash, is_float)
}

// ---------------------------------------------------------------------
// D6 — hash-iteration order leaking into results
// ---------------------------------------------------------------------

fn d6_iteration_order(
    path: &str,
    src: &str,
    toks: &[Tok],
    hashy: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    for i in 0..toks.len() {
        // `map.iter()` — receiver is the ident right before the dot.
        let method_site = toks[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i].text(src))
            && i >= 2
            && toks[i - 1].is_punct(b'.')
            && toks[i - 2].kind == TokKind::Ident
            && hashy.contains(toks[i - 2].text(src))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(b'('));
        // `for x in map {` / `for (k, v) in &self.map {` — only when the
        // loop expression is a plain place expression (calls are covered
        // by the method-site case).
        let for_site = toks[i].is_ident(src, "for")
            && !(i > 0 && (toks[i - 1].is_punct(b'.') || toks[i - 1].is_punct(b':')))
            && for_loop_over_hash(toks, src, i, hashy);
        if !(method_site || for_site) {
            continue;
        }
        if statement_is_order_free(toks, src, i) || let_binding_is_sorted(toks, src, i) {
            continue;
        }
        let recv = if method_site {
            toks[i - 2].text(src)
        } else {
            "the loop expression"
        };
        out.push(mk(
            "D6",
            path,
            &toks[i],
            format!(
                "iteration over hash-ordered `{recv}` can leak nondeterministic order into \
                 results; collect and sort (or use a BTree* collection / an order-free \
                 reduction) before emitting"
            ),
        ));
    }
}

/// Whether the `for` at `i` loops directly over a hash-named place
/// expression (`map`, `&map`, `&self.map` — no calls).
fn for_loop_over_hash(toks: &[Tok], src: &str, i: usize, hashy: &BTreeSet<String>) -> bool {
    let mut j = i + 1;
    while j < toks.len() && !toks[j].is_ident(src, "in") && !toks[j].is_punct(b'{') {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident(src, "in")) {
        return false;
    }
    let mut last_ident: Option<&str> = None;
    let mut k = j + 1;
    while k < toks.len() && !toks[k].is_punct(b'{') {
        match toks[k].kind {
            TokKind::Ident => last_ident = Some(toks[k].text(src)),
            TokKind::Punct(b'&') | TokKind::Punct(b'.') => {}
            // Any call, range, or index in the expression: not a plain
            // place; the method-site scan owns those.
            _ => return false,
        }
        k += 1;
    }
    last_ident.is_some_and(|n| hashy.contains(n))
}

/// Whether the statement containing token `i` ends in an order-independent
/// consumer: `count()/any()/all()`, an integer `sum::<uN>()`/`product`,
/// or a re-sorting `BTree*`/`BinaryHeap` collect.
fn statement_is_order_free(toks: &[Tok], src: &str, i: usize) -> bool {
    let (a, b) = statement_span(toks, i);
    let stmt = &toks[a..b];
    for (k, t) in stmt.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(src);
        if ORDERED_SINKS.contains(&name) {
            return true;
        }
        let called = stmt.get(k + 1).is_some_and(|n| n.is_punct(b'('));
        if called && ORDER_FREE_CALLS.contains(&name) {
            return true;
        }
        if (name == "sum" || name == "product")
            && stmt.get(k + 1).is_some_and(|n| n.is_punct(b':'))
            && stmt
                .iter()
                .skip(k + 2)
                .take(4)
                .any(|n| n.kind == TokKind::Ident && INT_TYPES.contains(&n.text(src)))
        {
            return true;
        }
    }
    false
}

/// If the statement containing `i` is a `let` binding, whether the bound
/// name is later sorted (`name.sort…`) anywhere in the file — the
/// collect-then-sort canonicalization pattern.
fn let_binding_is_sorted(toks: &[Tok], src: &str, i: usize) -> bool {
    let (a, _) = statement_span(toks, i);
    let mut j = a;
    if !toks.get(j).is_some_and(|t| t.is_ident(src, "let")) {
        return false;
    }
    j += 1;
    if toks.get(j).is_some_and(|t| t.is_ident(src, "mut")) {
        j += 1;
    }
    let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
        return false;
    };
    let name = name_tok.text(src);
    toks.windows(3).any(|w| {
        w[0].is_ident(src, name) && w[1].is_punct(b'.') && {
            w[2].kind == TokKind::Ident && w[2].text(src).starts_with("sort")
        }
    })
}

/// Token span `[start, end)` of the statement containing `i`: from just
/// after the previous `;`/`{`/`}` to the next `;` (or `{` for loop/if
/// headers) at paren depth 0.
fn statement_span(toks: &[Tok], i: usize) -> (usize, usize) {
    let mut a = i;
    while a > 0 {
        match toks[a - 1].kind {
            TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}') => break,
            _ => a -= 1,
        }
    }
    let mut b = i;
    let mut depth = 0usize;
    while b < toks.len() {
        match toks[b].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth = depth.saturating_sub(1),
            TokKind::Punct(b';') | TokKind::Punct(b'{') | TokKind::Punct(b'}') if depth == 0 => {
                break
            }
            _ => {}
        }
        b += 1;
    }
    (a, b.min(toks.len()))
}

// ---------------------------------------------------------------------
// D7 — float accumulation order in parallel regions and merge reducers
// ---------------------------------------------------------------------

fn d7_parallel_reduction(
    path: &str,
    src: &str,
    toks: &[Tok],
    items: &ItemTree,
    floaty: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    // --- inside par_map_deterministic / par_jobs argument lists ---------
    for i in 0..toks.len() {
        let is_par = toks[i].kind == TokKind::Ident
            && matches!(toks[i].text(src), "par_map_deterministic" | "par_jobs")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(b'('));
        if !is_par {
            continue;
        }
        let (open, close) = match match_paren(toks, i + 1) {
            Some(r) => r,
            None => continue,
        };
        let locals = closure_locals(toks, src, open, close);
        for k in open..close {
            if let Some(root) = float_compound_assign(toks, src, k, floaty) {
                if !locals.contains(root) {
                    out.push(mk(
                        "D7",
                        path,
                        &toks[k],
                        format!(
                            "float accumulation into captured `{root}` inside a parallel map; \
                             return per-item partials and reduce them in input order instead \
                             (the `StreamSummary::merge` exact-partials pattern)"
                        ),
                    ));
                }
            }
            if toks[k].kind == TokKind::Ident
                && toks[k].text(src) == "lock"
                && k > 0
                && toks[k - 1].is_punct(b'.')
                && toks.get(k + 1).is_some_and(|t| t.is_punct(b'('))
            {
                out.push(mk(
                    "D7",
                    path,
                    &toks[k],
                    "`.lock()` inside a parallel map closure: shared mutable state makes the \
                     reduction order scheduler-dependent; accumulate per item and merge in \
                     input order"
                        .to_string(),
                ));
            }
        }
    }

    // --- inside fns named `merge` (reducers) ----------------------------
    for f in &items.fns {
        if f.name != "merge" || f.body.1 <= f.body.0 {
            continue;
        }
        for k in f.body.0..f.body.1 {
            let Some(root) = float_compound_assign(toks, src, k, floaty) else {
                continue;
            };
            // The blessed exact-partials shape pairs partial vectors
            // positionally (`iter_mut().zip(…)`) so the adds happen in a
            // fixed sequential order; anything else must justify itself.
            let ctx_start = k.saturating_sub(40).max(f.body.0);
            let blessed = toks[ctx_start..k]
                .iter()
                .any(|t| t.kind == TokKind::Ident && matches!(t.text(src), "zip" | "iter_mut"));
            if !blessed {
                out.push(mk(
                    "D7",
                    path,
                    &toks[k],
                    format!(
                        "float accumulation into `{root}` in a `merge` reducer outside the \
                         exact-partials pattern; pair partial vectors positionally \
                         (`iter_mut().zip(…)`, as `StreamSummary::merge` does) so the \
                         addition order is fixed"
                    ),
                ));
            }
        }
    }
}

/// If token `k` starts a compound assignment (`+=`/`-=`/`*=`/`/=`) whose
/// statement touches floats, return the assigned place's root name.
fn float_compound_assign<'s>(
    toks: &'s [Tok],
    src: &'s str,
    k: usize,
    floaty: &BTreeSet<String>,
) -> Option<&'s str> {
    let op = matches!(
        toks[k].kind,
        TokKind::Punct(b'+') | TokKind::Punct(b'-') | TokKind::Punct(b'*') | TokKind::Punct(b'/')
    );
    let eq = toks.get(k + 1).is_some_and(|t| {
        t.is_punct(b'=') && t.start == toks[k].start + toks[k].len
            // not `==`/`=>` continuing
            && !toks.get(k + 2).is_some_and(|n| n.is_punct(b'=') && n.start == t.start + t.len)
    });
    if !(op && eq) {
        return None;
    }
    // `<<=`-style ops share the trailing byte check; exclude when the
    // previous token is the same punct glued on (`<<=`, `>>=` irrelevant
    // for floats anyway).
    let root = place_root(toks, src, k)?;
    let is_float = floaty.contains(root) || statement_touches_float(toks, src, k);
    if is_float {
        Some(root)
    } else {
        None
    }
}

/// Walk back from the operator at `k` over the assigned place expression
/// (`self.a[i] += …`, `*dst += …`) and return its root field/var name.
fn place_root<'s>(toks: &'s [Tok], src: &'s str, k: usize) -> Option<&'s str> {
    let mut j = k;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match toks[j].kind {
            TokKind::Punct(b']') | TokKind::Punct(b')') => {
                let close = if toks[j].is_punct(b']') { b']' } else { b')' };
                let open = if close == b']' { b'[' } else { b'(' };
                let mut depth = 0usize;
                loop {
                    match toks[j].kind {
                        TokKind::Punct(c) if c == close => depth += 1,
                        TokKind::Punct(c) if c == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        return None;
                    }
                    j -= 1;
                }
            }
            TokKind::Ident => return Some(toks[j].text(src)),
            _ => return None,
        }
    }
}

/// Whether the statement containing `k` mentions a float literal, an
/// `f64`/`f32` ident, or an `as f64` cast.
fn statement_touches_float(toks: &[Tok], src: &str, k: usize) -> bool {
    let (a, b) = statement_span(toks, k);
    toks[a..b].iter().any(|t| match t.kind {
        TokKind::Number => t.text(src).contains('.'),
        TokKind::Ident => matches!(t.text(src), "f64" | "f32"),
        _ => false,
    })
}

/// Token range `(open, close)` of the parenthesized list opening at `open`.
fn match_paren(toks: &[Tok], open: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct(b'(') => depth += 1,
            TokKind::Punct(b')') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
    }
    None
}

/// Names bound locally inside a parallel-call argument range: closure
/// parameters, `let` bindings, and `for` patterns. Accumulating into these
/// is per-item state, which `par_map_deterministic` returns in input order.
fn closure_locals(toks: &[Tok], src: &str, open: usize, close: usize) -> BTreeSet<String> {
    let mut locals = BTreeSet::new();
    let mut k = open;
    while k < close {
        let t = &toks[k];
        // `|a, b|` closure heads (after `(`, `,`, or `move`).
        if t.is_punct(b'|')
            && k > 0
            && (toks[k - 1].is_punct(b'(')
                || toks[k - 1].is_punct(b',')
                || toks[k - 1].is_ident(src, "move"))
        {
            let mut j = k + 1;
            while j < close && !toks[j].is_punct(b'|') {
                if toks[j].kind == TokKind::Ident {
                    locals.insert(toks[j].text(src).to_string());
                }
                j += 1;
            }
            k = j + 1;
            continue;
        }
        // `let [mut] pat =` and `for pat in`.
        if t.is_ident(src, "let") || t.is_ident(src, "for") {
            let stop_for = t.is_ident(src, "for");
            let mut j = k + 1;
            while j < close {
                let n = &toks[j];
                if n.is_punct(b'=') || n.is_punct(b';') || n.is_punct(b'{') {
                    break;
                }
                if stop_for && n.is_ident(src, "in") {
                    break;
                }
                if n.kind == TokKind::Ident {
                    locals.insert(n.text(src).to_string());
                }
                j += 1;
            }
            k = j;
            continue;
        }
        k += 1;
    }
    locals
}

// ---------------------------------------------------------------------
// D8 — ambient configuration reads
// ---------------------------------------------------------------------

fn d8_ambient_config(path: &str, src: &str, toks: &[Tok], out: &mut Vec<Violation>) {
    for i in 0..toks.len() {
        let is_env_var = toks[i].kind == TokKind::Ident
            && matches!(toks[i].text(src), "var" | "var_os")
            && i >= 3
            && toks[i - 1].is_punct(b':')
            && toks[i - 2].is_punct(b':')
            && toks[i - 3].is_ident(src, "env")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(b'('));
        if !is_env_var {
            continue;
        }
        let Some((open, close)) = match_paren(toks, i + 1) else {
            continue;
        };
        let arg = &toks[open + 1..close];
        let whitelisted = arg.iter().any(|t| match t.kind {
            // `"EBS_THREADS"` — a literal on the named surface.
            TokKind::Str => t
                .text(src)
                .trim_start_matches(['b', 'r', '#', '"'])
                .starts_with("EBS_"),
            // `THREADS_ENV` / `crate::OBS_OUT_ENV` — a named constant whose
            // `_ENV` suffix keeps the surface greppable.
            TokKind::Ident => t.text(src).ends_with("_ENV"),
            _ => false,
        });
        if !whitelisted {
            out.push(mk(
                "D8",
                path,
                &toks[i],
                "ambient `env::var` read outside the `EBS_*` config surface; route it \
                 through a named `…_ENV` constant with an `EBS_`-prefixed key so the \
                 config surface stays auditable"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn flow(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let tree = crate::items::parse("crates/ebs-x/src/m.rs", src, &lexed, &[]);
        check("crates/ebs-x/src/m.rs", src, &lexed.tokens, &tree)
    }

    fn rules(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn d6_flags_unsorted_hash_iteration() {
        let src = r#"
            fn f(m: FxHashMap<u64, u64>) -> Vec<u64> {
                m.values().copied().collect()
            }
        "#;
        assert_eq!(rules(&flow(src)), vec!["D6"]);
    }

    #[test]
    fn d6_accepts_collect_then_sort_and_order_free_reductions() {
        let src = r#"
            fn f(m: FxHashMap<u64, u64>) -> Vec<u64> {
                let mut out: Vec<u64> = m.values().copied().collect();
                out.sort_unstable();
                out
            }
            fn g(m: FxHashMap<u64, u64>) -> usize { m.keys().count() }
            fn h(m: FxHashMap<u64, u64>) -> u64 { m.values().copied().sum::<u64>() }
            fn b(m: FxHashMap<u64, u64>) -> BTreeMap<u64, u64> {
                m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, u64>>()
            }
        "#;
        assert_eq!(rules(&flow(src)), Vec::<&str>::new());
    }

    #[test]
    fn d6_flags_bare_for_loops_over_hash_maps() {
        let src = r#"
            fn f(m: &FxHashMap<u64, u64>, out: &mut Vec<u64>) {
                for (_k, v) in m { out.push(*v); }
            }
        "#;
        assert_eq!(rules(&flow(src)), vec!["D6"]);
    }

    #[test]
    fn d7_flags_captured_float_accumulation_and_locks_in_par_closures() {
        let src = r#"
            fn f(items: &[f64], total: &Total) {
                par_map_deterministic(items, |i, x| {
                    total.sum += *x;
                });
            }
            fn g(items: &[u64], m: &Mutex<f64>) {
                par_map_deterministic(items, |i, x| {
                    *m.lock().unwrap() += *x as f64;
                });
            }
        "#;
        let got = rules(&flow(src));
        assert!(got.contains(&"D7"), "got {got:?}");
        assert!(got.len() >= 2, "both the += and the lock: {got:?}");
    }

    #[test]
    fn d7_accepts_local_accumulators_and_zip_merges() {
        let src = r#"
            fn f(items: &[f64]) -> Vec<f64> {
                par_map_deterministic(items, |i, x| {
                    let mut acc = 0.0f64;
                    acc += *x;
                    acc
                })
            }
            struct S { vd_bytes: Vec<f64> }
            impl S {
                fn merge(&mut self, other: &S) {
                    for (dst, src) in self.vd_bytes.iter_mut().zip(&other.vd_bytes) {
                        *dst += *src;
                    }
                }
            }
        "#;
        assert_eq!(rules(&flow(src)), Vec::<&str>::new());
    }

    #[test]
    fn d7_flags_non_positional_float_merge() {
        let src = r#"
            struct S { total: f64 }
            impl S {
                fn merge(&mut self, other: &S) {
                    self.total += other.total;
                }
            }
        "#;
        assert_eq!(rules(&flow(src)), vec!["D7"]);
    }

    #[test]
    fn d8_flags_raw_env_reads_and_accepts_the_named_surface() {
        let src = r#"
            const THREADS_ENV: &str = "EBS_THREADS";
            fn a() { let _ = std::env::var("HOME"); }
            fn b() { let _ = std::env::var(THREADS_ENV); }
            fn c() { let _ = std::env::var("EBS_OBS"); }
            fn d() { let _ = std::env::var(crate::config::OBS_OUT_ENV); }
        "#;
        let got = flow(src);
        assert_eq!(rules(&got), vec!["D8"]);
        assert_eq!(got[0].line, 3);
    }
}
