//! A lightweight item-tree parser on top of the lexer: function, impl,
//! mod, and use extraction with spans.
//!
//! This is deliberately **not** a Rust parser. It recovers just enough
//! structure for workspace-level analysis — which functions exist, which
//! module path each lives under, which calls each body makes — by walking
//! the token stream with a brace-matching scope stack. The trade-offs are
//! documented in `DESIGN.md` §18; the parser is total (arbitrary token
//! soup never panics, it just yields fewer items).

use crate::lexer::{Lexed, Tok, TokKind};

/// How a call site names its callee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)` — a bare name, resolved through imports then scope.
    Bare,
    /// `recv.foo(…)` — a method call with an unknown receiver type.
    Method,
    /// `path::to::foo(…)` — qualified by at least one path segment.
    Path,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee name (last path segment).
    pub name: String,
    /// Leading path segments for [`CallKind::Path`] calls (`["ebs_analysis",
    /// "batch"]` for `ebs_analysis::batch::f(…)`); empty otherwise.
    pub qual: Vec<String>,
    /// How the callee was named.
    pub kind: CallKind,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based byte column of the callee name token.
    pub col: u32,
}

/// A panicking construct found inside a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Short description (`.unwrap()`, `panic!`, `[] indexing` …).
    pub what: String,
}

/// One function (free fn, method, or associated fn) extracted from a file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` self-type name, if any (`StreamSummary`
    /// for `impl StreamSummary { fn merge … }`).
    pub owner: Option<String>,
    /// Module path: crate name (dashes kept) then file/inline modules,
    /// e.g. `["ebs-store", "stream"]`.
    pub module: Vec<String>,
    /// Whether the fn takes `self` (i.e. is a method).
    pub has_self: bool,
    /// Whether the fn sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// 1-based byte column of the `fn` name.
    pub col: u32,
    /// Token-index range of the body (`{`..=`}`), empty for bodyless fns.
    pub body: (usize, usize),
    /// Call sites inside the body (innermost-fn attribution).
    pub calls: Vec<Call>,
    /// Panicking constructs inside the body (pre-suppression).
    pub panics: Vec<PanicSite>,
}

/// A `use` import: local alias → full path segments.
#[derive(Clone, Debug)]
pub struct UseImport {
    /// The name the import binds locally (`ccr`, or the `as` alias).
    pub alias: String,
    /// Full path, e.g. `["ebs_analysis", "ccr"]`.
    pub path: Vec<String>,
}

/// The item tree of one file.
#[derive(Clone, Debug, Default)]
pub struct ItemTree {
    /// All functions, in source order.
    pub fns: Vec<FnItem>,
    /// All `use` imports.
    pub uses: Vec<UseImport>,
}

/// Derive the base module path of a file from its workspace-relative path:
/// `crates/ebs-store/src/stream.rs` → `["ebs-store", "stream"]`,
/// `crates/ebs-core/src/lib.rs` → `["ebs-core"]`,
/// `crates/ebs-workload/src/dist/zipf.rs` → `["ebs-workload", "dist", "zipf"]`,
/// `src/lib.rs` → `["ebs"]`.
pub fn module_path_of(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest): (&str, &[&str]) = match parts.as_slice() {
        ["crates", krate, "src", rest @ ..] => (krate, rest),
        ["src", rest @ ..] => ("ebs", rest),
        [_, ..] => ("ebs", &parts[..0]),
        [] => ("ebs", &[]),
    };
    let mut out = vec![krate.to_string()];
    for (i, seg) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let base = seg.strip_suffix(".rs").unwrap_or(seg);
            if base != "lib" && base != "mod" && base != "main" {
                out.push(base.to_string());
            }
        } else {
            out.push((*seg).to_string());
        }
    }
    out
}

/// Method names the call-graph does **not** resolve, because they collide
/// with ubiquitous `std`/`core` methods: a `.get(…)` on a slice must not
/// create an edge to some workspace type's `get`. Explicit
/// `Type::name(…)` path calls still resolve. This is the analyzer's main
/// documented false-negative mode (`DESIGN.md` §18).
pub const STD_SHADOWED_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "bytes",
    "chain",
    "chars",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "finish",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "index",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_some",
    "is_none",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "ne",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "product",
    "push",
    "read",
    "read_exact",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "seek",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "starts_with",
    "step_by",
    "sum",
    "take",
    "then",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "write",
    "write_all",
    "zip",
];

/// Keywords that can be followed by `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// What kind of scope a `{` opened.
#[derive(Clone, Debug)]
enum Scope {
    /// `mod name { … }` — extends the module path.
    Mod(String),
    /// `impl Type { … }` / `trait Name { … }` — sets the owner.
    Impl(String),
    /// A function body: index into the output `fns`.
    Fn(usize),
    /// Any other brace (struct body, match arm, block, closure…).
    Plain,
}

/// Parse the item tree of one lexed file. `rel` is the workspace-relative
/// path (module-path derivation); `test_regions` are the `#[cfg(test)]`
/// line spans from [`crate::rules`].
pub fn parse(rel: &str, src: &str, lexed: &Lexed, test_regions: &[(u32, u32)]) -> ItemTree {
    let toks = &lexed.tokens;
    let base_module = module_path_of(rel);
    let in_test = |line: u32| -> bool { test_regions.iter().any(|&(a, b)| line >= a && line <= b) };

    let mut out = ItemTree::default();
    let mut scopes: Vec<Scope> = Vec::new();
    // Set when `mod`/`impl`/`trait`/`fn` announced an upcoming `{`.
    let mut pending: Option<Scope> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {
                let name = t.text(src);
                match name {
                    "use" if !prev_is_path_sep(toks, i) => {
                        let (imports, next) = parse_use(toks, src, i);
                        out.uses.extend(imports);
                        i = next;
                        continue;
                    }
                    "mod" if !prev_is_path_sep(toks, i) => {
                        if let Some(n) = toks.get(i + 1) {
                            if n.kind == TokKind::Ident {
                                // `mod name;` declares an out-of-line file;
                                // only `mod name {` opens an inline scope.
                                pending = Some(Scope::Mod(n.text(src).to_string()));
                                i += 2;
                                continue;
                            }
                        }
                    }
                    "impl" | "trait" if !prev_is_path_sep(toks, i) => {
                        let (owner, next) = parse_impl_head(toks, src, i + 1);
                        pending = Some(Scope::Impl(owner));
                        i = next;
                        continue;
                    }
                    "fn" if !prev_is_path_sep(toks, i) => {
                        if let Some((item, next)) =
                            parse_fn_head(toks, src, i, &scopes, &base_module, &in_test, &mut out)
                        {
                            pending = item.map(Scope::Fn);
                            i = next;
                            continue;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            TokKind::Punct(b'{') => {
                scopes.push(pending.take().unwrap_or(Scope::Plain));
                i += 1;
            }
            TokKind::Punct(b'}') => {
                if let Some(Scope::Fn(fx)) = scopes.last() {
                    if let Some(f) = out.fns.get_mut(*fx) {
                        f.body.1 = i;
                    }
                }
                scopes.pop();
                i += 1;
            }
            TokKind::Punct(b';') => {
                // `mod name;` / stray pending never materialized.
                pending = None;
                i += 1;
            }
            _ => i += 1,
        }
    }

    attach_calls_and_panics(&mut out, toks, src);
    out
}

/// Whether the token before `i` is a path separator / field dot, which
/// makes an identifier *not* a keyword position (`x.use_count` etc. cannot
/// occur, but `r#use`-free callers guard anyway).
fn prev_is_path_sep(toks: &[Tok], i: usize) -> bool {
    i > 0 && (toks[i - 1].is_punct(b':') || toks[i - 1].is_punct(b'.'))
}

/// Parse a `use …;` statement starting at `i` (the `use` token). Returns
/// the flattened imports and the index just past the closing `;`.
fn parse_use(toks: &[Tok], src: &str, i: usize) -> (Vec<UseImport>, usize) {
    // Collect the statement's tokens.
    let mut end = i;
    while end < toks.len() && !toks[end].is_punct(b';') {
        end += 1;
    }
    let stmt = &toks[i + 1..end.min(toks.len())];
    let mut out = Vec::new();
    flatten_use(stmt, src, &mut Vec::new(), &mut out);
    (out, end + 1)
}

/// Recursively flatten a use-tree token slice into (alias, path) pairs.
/// `prefix` carries the path segments accumulated so far.
fn flatten_use(stmt: &[Tok], src: &str, prefix: &mut Vec<String>, out: &mut Vec<UseImport>) {
    let mut i = 0usize;
    let depth_at_entry = prefix.len();
    while i < stmt.len() {
        let t = &stmt[i];
        match t.kind {
            TokKind::Ident => {
                let name = t.text(src);
                if name == "as" {
                    // `… as Alias`: rebind the last emitted import.
                    if let (Some(a), Some(last)) = (stmt.get(i + 1), out.last_mut()) {
                        if a.kind == TokKind::Ident {
                            last.alias = a.text(src).to_string();
                        }
                    }
                    i += 2;
                    continue;
                }
                // Lookahead: `name ::` extends the path; `name` alone (or
                // before `,`/`}`/`as`) is a leaf.
                let extends = stmt.get(i + 1).is_some_and(|n| n.is_punct(b':'))
                    && stmt.get(i + 2).is_some_and(|n| n.is_punct(b':'));
                prefix.push(name.to_string());
                if !extends {
                    out.push(UseImport {
                        alias: name.to_string(),
                        path: prefix.clone(),
                    });
                    prefix.pop();
                    i += 1;
                    continue;
                }
                i += 3;
                // `name::{…}` — recurse over the braced group.
                if stmt.get(i).is_some_and(|n| n.is_punct(b'{')) {
                    let mut depth = 0usize;
                    let open = i;
                    while i < stmt.len() {
                        match stmt[i].kind {
                            TokKind::Punct(b'{') => depth += 1,
                            TokKind::Punct(b'}') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                    let inner = &stmt[open + 1..i.min(stmt.len())];
                    split_use_group(inner, src, prefix, out);
                    prefix.truncate(depth_at_entry);
                    i += 1;
                }
            }
            TokKind::Punct(b'*') => {
                // Glob import: nothing nameable to record.
                prefix.truncate(depth_at_entry);
                i += 1;
            }
            TokKind::Punct(b',') => {
                prefix.truncate(depth_at_entry);
                i += 1;
            }
            _ => i += 1,
        }
    }
    prefix.truncate(depth_at_entry);
}

/// Split a `{a, b::c, d as e}` group on top-level commas and flatten each.
fn split_use_group(inner: &[Tok], src: &str, prefix: &mut Vec<String>, out: &mut Vec<UseImport>) {
    let mut start = 0usize;
    let mut depth = 0usize;
    for k in 0..=inner.len() {
        let at_comma = k < inner.len() && inner[k].is_punct(b',') && depth == 0;
        if k == inner.len() || at_comma {
            if start < k {
                flatten_use(&inner[start..k], src, prefix, out);
            }
            start = k + 1;
            continue;
        }
        match inner[k].kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
}

/// Parse an `impl`/`trait` head starting just after the keyword. Returns
/// the self-type (or trait) name and the index of the body `{` (or as far
/// as scanning got). For `impl Trait for Type`, the name is `Type`; for
/// `impl fmt::Display for S`, it is `S` (the last segment of the first
/// top-level path after `for`).
fn parse_impl_head(toks: &[Tok], src: &str, start: usize) -> (String, usize) {
    let mut i = start;
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut past_for = false;
    let mut angle = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct(b'{') | TokKind::Punct(b';') => break,
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') if !(i > 0 && toks[i - 1].is_punct(b'-')) => {
                angle = angle.saturating_sub(1);
            }
            TokKind::Ident if angle == 0 => {
                let name = t.text(src);
                if name == "for" {
                    past_for = true;
                } else if name == "where" {
                    break; // head is over; scan forward to the `{` below
                } else if !matches!(name, "dyn" | "mut" | "const" | "unsafe") {
                    // Only record the tail segment of a path: `fmt::Display`
                    // records `Display`.
                    let is_tail = !(toks.get(i + 1).is_some_and(|n| n.is_punct(b':'))
                        && toks.get(i + 2).is_some_and(|n| n.is_punct(b':')));
                    let slot = if past_for {
                        &mut after_for
                    } else {
                        &mut before_for
                    };
                    if is_tail && slot.is_none() {
                        *slot = Some(name.to_string());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    while i < toks.len() && !toks[i].is_punct(b'{') && !toks[i].is_punct(b';') {
        i += 1;
    }
    let owner = after_for.or(before_for).unwrap_or_else(|| "?".to_string());
    (owner, i)
}

/// Parse a `fn` head at token `i` (the `fn` keyword). Registers the item
/// and returns `(Some(fn_index)` if a body follows, `None` for bodyless
/// declarations`)`, plus the index of the body `{` / past the `;`.
#[allow(clippy::too_many_arguments)]
fn parse_fn_head(
    toks: &[Tok],
    src: &str,
    i: usize,
    scopes: &[Scope],
    base_module: &[String],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut ItemTree,
) -> Option<(Option<usize>, usize)> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text(src).to_string();

    // Module path and owner from the scope stack.
    let mut module: Vec<String> = base_module.to_vec();
    let mut owner: Option<String> = None;
    for s in scopes {
        match s {
            Scope::Mod(m) => module.push(m.clone()),
            Scope::Impl(t) => owner = Some(t.clone()),
            _ => {}
        }
    }

    // Scan the signature for `self` (methods) and the body `{` or `;`.
    let mut j = i + 2;
    let mut has_self = false;
    let mut paren = 0usize;
    let mut seen_params = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct(b'(') => {
                paren += 1;
                seen_params = true;
            }
            TokKind::Punct(b')') => paren = paren.saturating_sub(1),
            TokKind::Ident if paren >= 1 && t.text(src) == "self" => has_self = true,
            TokKind::Punct(b'{') if paren == 0 && seen_params => break,
            TokKind::Punct(b';') if paren == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let has_body = toks.get(j).is_some_and(|t| t.is_punct(b'{'));
    let idx = out.fns.len();
    out.fns.push(FnItem {
        name,
        owner,
        module,
        has_self,
        in_test: in_test(name_tok.line),
        line: name_tok.line,
        col: name_tok.col,
        body: if has_body { (j, j) } else { (0, 0) },
        calls: Vec::new(),
        panics: Vec::new(),
    });
    if has_body {
        Some((Some(idx), j))
    } else {
        Some((None, j + 1))
    }
}

/// Second pass: walk every fn body and record call sites and panicking
/// constructs, attributing each token to the innermost enclosing fn.
fn attach_calls_and_panics(tree: &mut ItemTree, toks: &[Tok], src: &str) {
    // Sort body ranges so innermost-enclosing lookup is a scan of starts.
    // Fn bodies nest strictly (token ranges are properly nested), so the
    // innermost enclosing body is the one with the greatest start ≤ i.
    let mut order: Vec<usize> = (0..tree.fns.len())
        .filter(|&k| {
            let (a, b) = tree.fns[k].body;
            b > a
        })
        .collect();
    order.sort_by_key(|&k| tree.fns[k].body.0);

    for idx in 0..toks.len() {
        let Some(&owner_fn) = order.iter().rev().find(|&&k| {
            let (a, b) = tree.fns[k].body;
            idx > a && idx < b
        }) else {
            continue;
        };
        let t = &toks[idx];
        match t.kind {
            TokKind::Ident => {
                let name = t.text(src);
                let next_paren = toks.get(idx + 1).is_some_and(|n| n.is_punct(b'('));
                let next_bang = toks.get(idx + 1).is_some_and(|n| n.is_punct(b'!'));
                if next_bang {
                    if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") {
                        tree.fns[owner_fn].panics.push(PanicSite {
                            line: t.line,
                            col: t.col,
                            what: format!("`{name}!`"),
                        });
                    }
                    continue;
                }
                if !next_paren {
                    continue;
                }
                let prev_dot = idx > 0 && toks[idx - 1].is_punct(b'.');
                let prev_path =
                    idx > 1 && toks[idx - 1].is_punct(b':') && toks[idx - 2].is_punct(b':');
                if prev_dot {
                    if matches!(name, "unwrap" | "expect") {
                        tree.fns[owner_fn].panics.push(PanicSite {
                            line: t.line,
                            col: t.col,
                            what: format!("`.{name}()`"),
                        });
                        continue;
                    }
                    tree.fns[owner_fn].calls.push(Call {
                        name: name.to_string(),
                        qual: Vec::new(),
                        kind: CallKind::Method,
                        line: t.line,
                        col: t.col,
                    });
                } else if prev_path {
                    let qual = leading_path(toks, src, idx);
                    tree.fns[owner_fn].calls.push(Call {
                        name: name.to_string(),
                        qual,
                        kind: CallKind::Path,
                        line: t.line,
                        col: t.col,
                    });
                } else if !NON_CALL_KEYWORDS.contains(&name) {
                    tree.fns[owner_fn].calls.push(Call {
                        name: name.to_string(),
                        qual: Vec::new(),
                        kind: CallKind::Bare,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            TokKind::Punct(b'[') if crate::rules::is_index_expr(toks, src, idx) => {
                tree.fns[owner_fn].panics.push(PanicSite {
                    line: t.line,
                    col: t.col,
                    what: "`[]` indexing".to_string(),
                });
            }
            _ => {}
        }
    }
}

/// Collect the path segments leading into a `::name(` call at `idx`:
/// `a::b::name(` → `["a", "b"]`. Skips turbofish generics.
fn leading_path(toks: &[Tok], src: &str, idx: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = idx; // at the callee name
    loop {
        if j < 2 || !toks[j - 1].is_punct(b':') || !toks[j - 2].is_punct(b':') {
            break;
        }
        let mut k = j - 3; // candidate segment end
                           // Skip a generic-argument list `<…>` between `segment` and `::`.
        if toks.get(k).is_some_and(|t| t.is_punct(b'>')) {
            let mut angle = 0usize;
            loop {
                match toks.get(k).map(|t| t.kind) {
                    Some(TokKind::Punct(b'>')) => angle += 1,
                    Some(TokKind::Punct(b'<')) => {
                        angle -= 1;
                        if angle == 0 {
                            break;
                        }
                    }
                    None => break,
                    _ => {}
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            if k == 0 {
                break;
            }
            k -= 1;
        }
        match toks.get(k) {
            Some(t) if t.kind == TokKind::Ident => {
                segs.push(t.text(src).to_string());
                j = k;
            }
            _ => break,
        }
    }
    segs.reverse();
    segs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ItemTree {
        let lexed = lex(src);
        let regions = crate::rules::cfg_test_regions(&lexed.tokens, src);
        parse("crates/ebs-x/src/m.rs", src, &lexed, &regions)
    }

    #[test]
    fn module_paths_follow_file_layout() {
        assert_eq!(
            module_path_of("crates/ebs-store/src/stream.rs"),
            vec!["ebs-store", "stream"]
        );
        assert_eq!(
            module_path_of("crates/ebs-core/src/lib.rs"),
            vec!["ebs-core"]
        );
        assert_eq!(
            module_path_of("crates/ebs-workload/src/dist/zipf.rs"),
            vec!["ebs-workload", "dist", "zipf"]
        );
        assert_eq!(module_path_of("src/lib.rs"), vec!["ebs"]);
    }

    #[test]
    fn fns_methods_and_mods_are_extracted() {
        let src = r#"
            pub fn free(x: u32) -> u32 { helper(x) }
            fn helper(x: u32) -> u32 { x }
            pub struct S { v: Vec<u32> }
            impl S {
                pub fn method(&self) -> usize { self.v.capacity() }
                fn assoc() -> S { S { v: Vec::new() } }
            }
            mod inner {
                pub fn nested() {}
            }
            impl std::fmt::Display for S {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
        "#;
        let t = tree(src);
        let names: Vec<(&str, Option<&str>, bool)> = t
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref(), f.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None, false),
                ("helper", None, false),
                ("method", Some("S"), true),
                ("assoc", Some("S"), false),
                ("nested", None, false),
                ("fmt", Some("S"), true),
            ]
        );
        let nested = &t.fns[4];
        assert_eq!(nested.module, vec!["ebs-x", "m", "inner"]);
    }

    #[test]
    fn calls_are_attributed_to_the_innermost_fn() {
        let src = r#"
            fn outer() {
                alpha();
                fn inner() { beta(); }
                let c = |x: u32| gamma(x);
                c(1);
            }
        "#;
        let t = tree(src);
        let outer = &t.fns[0];
        let inner = &t.fns[1];
        let outer_calls: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(outer_calls.contains(&"alpha"));
        assert!(
            outer_calls.contains(&"gamma"),
            "closure body belongs to outer"
        );
        assert!(!outer_calls.contains(&"beta"));
        assert_eq!(
            inner
                .calls
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["beta"]
        );
    }

    #[test]
    fn call_kinds_and_paths() {
        let src = r#"
            fn f() {
                bare();
                recv.method_name(1);
                ebs_analysis::batch::keyed_sums(a, b, c);
                Self::assoc();
                EbsError::corrupt_store("x");
            }
        "#;
        let t = tree(src);
        let calls = &t.fns[0].calls;
        let find = |n: &str| calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(find("bare").kind, CallKind::Bare);
        assert_eq!(find("method_name").kind, CallKind::Method);
        let ks = find("keyed_sums");
        assert_eq!(ks.kind, CallKind::Path);
        assert_eq!(ks.qual, vec!["ebs_analysis", "batch"]);
        assert_eq!(find("assoc").qual, vec!["Self"]);
        assert_eq!(find("corrupt_store").qual, vec!["EbsError"]);
    }

    #[test]
    fn panic_sites_are_recorded_per_fn() {
        let src = r#"
            fn a(x: Option<u32>, v: &[u32]) -> u32 { x.unwrap() + v[0] }
            fn b() { panic!("no"); }
            fn clean(x: u32) -> u32 { x + 1 }
        "#;
        let t = tree(src);
        assert_eq!(t.fns[0].panics.len(), 2);
        assert_eq!(t.fns[1].panics.len(), 1);
        assert!(t.fns[2].panics.is_empty());
    }

    #[test]
    fn use_imports_flatten_groups_and_aliases() {
        let src = r#"
            use ebs_analysis::{ccr, p2a};
            use ebs_core::hash::FxHashMap as Map;
            use crate::columns::decode_events_v1;
            use std::io::Read;
        "#;
        let t = tree(src);
        let find = |a: &str| t.uses.iter().find(|u| u.alias == a).unwrap();
        assert_eq!(find("ccr").path, vec!["ebs_analysis", "ccr"]);
        assert_eq!(find("p2a").path, vec!["ebs_analysis", "p2a"]);
        assert_eq!(find("Map").path, vec!["ebs_core", "hash", "FxHashMap"]);
        assert_eq!(
            find("decode_events_v1").path,
            vec!["crate", "columns", "decode_events_v1"]
        );
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { live(); }\n}\n";
        let t = tree(src);
        assert!(!t.fns[0].in_test);
        assert!(t.fns[1].in_test);
    }

    #[test]
    fn totality_on_malformed_input() {
        for bad in [
            "fn",
            "fn {",
            "impl",
            "use ::{{{",
            "fn f(",
            "mod",
            "trait X",
            "fn f<const N: usize>()",
        ] {
            let _ = tree(bad);
        }
    }
}
