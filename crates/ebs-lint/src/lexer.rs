//! A lightweight Rust lexer: just enough tokenization to analyze source
//! structurally without a full parser.
//!
//! The point of lexing (rather than regex-matching lines) is that rule
//! scanning must never fire inside string literals, char literals, raw
//! strings, or comments — `"HashMap::new()"` in a doc string is not a
//! violation — and must survive the constructs that break naive scanners:
//! nested block comments, `r#"…"#` raw strings with arbitrary hash runs,
//! lifetimes vs. char literals, raw identifiers. Everything the rules need
//! is a token stream with byte-accurate spans plus the comment list (for
//! suppression directives).

/// Kinds of tokens the rule engine distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// Lifetime such as `'a` (quote included in the span).
    Lifetime,
    /// Numeric literal (integer or float, suffix included).
    Number,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"` ….
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A single punctuation byte (`.`, `[`, `<`, `!`, …).
    Punct(u8),
}

/// One token with its span. Lines and columns are 1-based; `col` counts
/// bytes from the line start (the workspace is ASCII-clean in practice).
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the token start in the source.
    pub start: usize,
    /// Byte length of the token.
    pub len: usize,
    /// 1-based line of the token start.
    pub line: u32,
    /// 1-based byte column of the token start.
    pub col: u32,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.start + self.len]
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == name
    }

    /// Whether this token is the punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

/// A comment with its line extent, kept out of the token stream but
/// available to the suppression scanner.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text including the delimiters (`// …` or `/* … */`).
    pub text: String,
    /// 1-based first line the comment touches.
    pub line: u32,
    /// 1-based last line the comment touches.
    pub end_line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, comments and whitespace removed.
    pub tokens: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. The lexer is total: malformed input
/// (an unterminated string, a stray byte) never panics — the remainder is
/// consumed as best-effort tokens.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    text: &'s str,
    pos: usize,
    line: u32,
    line_start: usize,
    out: Lexed,
}

impl<'s> Lexer<'s> {
    fn new(text: &'s str) -> Self {
        Self {
            src: text.as_bytes(),
            text,
            pos: 0,
            line: 1,
            line_start: 0,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn col(&self, at: usize) -> u32 {
        (at - self.line_start) as u32 + 1
    }

    /// Advance one byte, tracking line starts.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokKind, start: usize, start_line: u32, start_col: u32) {
        self.out.tokens.push(Tok {
            kind,
            start,
            len: self.pos - start,
            line: start_line,
            col: start_col,
        });
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            let start = self.pos;
            let start_line = self.line;
            let start_col = self.col(start);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => {
                    self.string_literal();
                    self.push(TokKind::Str, start, start_line, start_col);
                }
                b'\'' => self.quote(start, start_line, start_col),
                b'r' | b'b' | b'c' if self.raw_or_prefixed_string() => {
                    self.push(TokKind::Str, start, start_line, start_col);
                }
                b'b' if self.peek(1) == b'\'' => {
                    // Byte literal b'x'.
                    self.bump();
                    self.char_literal();
                    self.push(TokKind::Char, start, start_line, start_col);
                }
                _ if is_ident_start(c) => {
                    self.ident();
                    self.push(TokKind::Ident, start, start_line, start_col);
                }
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokKind::Number, start, start_line, start_col);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), start, start_line, start_col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.out.comments.push(Comment {
            text: self.text[start..self.pos].to_string(),
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump_n(2); // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text: self.text[start..self.pos].to_string(),
            line,
            end_line: self.line,
        });
    }

    /// Plain `"…"` string with escapes; leaves `pos` after the closing quote.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// `'a` lifetime vs `'x'` char literal.
    fn quote(&mut self, start: usize, start_line: u32, start_col: u32) {
        // Char literal if it is `'\…'`, or `'X'` (one char then a quote).
        if self.peek(1) == b'\\' || (self.peek(1) != 0 && self.peek(2) == b'\'') {
            self.char_literal();
            self.push(TokKind::Char, start, start_line, start_col);
        } else {
            // Lifetime: consume the quote plus identifier characters.
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.push(TokKind::Lifetime, start, start_line, start_col);
        }
    }

    /// Consume a char/byte literal starting at the quote; handles escapes.
    fn char_literal(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// If positioned at a raw/byte/C string prefix (`r"`, `r#"`, `br"`,
    /// `b"`, `cr#"` …), consume the whole literal and return true.
    /// Raw identifiers (`r#ident`) are left alone.
    fn raw_or_prefixed_string(&mut self) -> bool {
        let mut k = 0usize;
        // Optional one- or two-letter prefix out of {b, c} x {r} or bare r.
        match (self.peek(0), self.peek(1)) {
            (b'b' | b'c', b'r') => k = 2,
            (b'r' | b'b' | b'c', _) => k = 1,
            _ => {}
        }
        let raw = self
            .src
            .get(self.pos..self.pos + k)
            .is_some_and(|p| p.contains(&b'r'));
        if raw {
            // Count hashes after the prefix.
            let mut hashes = 0usize;
            while self.peek(k + hashes) == b'#' {
                hashes += 1;
            }
            if self.peek(k + hashes) != b'"' {
                return false; // raw identifier `r#foo` or plain ident
            }
            self.bump_n(k + hashes + 1);
            // Scan to `"` followed by `hashes` hashes.
            while self.pos < self.src.len() {
                if self.peek(0) == b'"' {
                    let mut got = 0usize;
                    while got < hashes && self.peek(1 + got) == b'#' {
                        got += 1;
                    }
                    if got == hashes {
                        self.bump_n(1 + hashes);
                        return true;
                    }
                }
                self.bump();
            }
            return true; // unterminated: consumed to EOF, stay total
        }
        // Non-raw prefixed string: b"…" / c"…".
        if k == 1 && self.peek(1) == b'"' {
            self.bump();
            self.string_literal();
            return true;
        }
        false
    }

    fn ident(&mut self) {
        // Raw identifier prefix `r#` (callers already excluded raw strings).
        if self.peek(0) == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
            self.bump_n(2);
        }
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
    }

    fn number(&mut self) {
        // Integer part (decimal, hex, octal, binary — letters are folded in
        // by the continue-class below, which also eats type suffixes).
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        // Fractional part only when followed by a digit — `1..10` must lex
        // as Number(1) Punct(.) Punct(.) Number(10).
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let src = r##"let x = "unwrap() inside"; // panic! here
        /* HashMap::new() /* nested */ still comment */ foo"##;
        let toks = kinds(src);
        // The string literal is ONE Str token; no Ident token leaks out of it.
        assert!(toks
            .iter()
            .all(|(k, t)| *k == TokKind::Str || !t.contains("unwrap")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "foo"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn raw_strings_with_hash_runs() {
        let src = r####"let s = r#"say "unwrap()""#; after"####;
        let toks = kinds(src);
        assert!(toks.iter().any(|(_, t)| t == "after"));
        assert!(toks
            .iter()
            .all(|(k, t)| *k == TokKind::Str || !t.contains("unwrap")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'b'; let n = '\\n'; }";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn spans_are_line_col_accurate() {
        let src = "a\n  bcd";
        let lexed = lex(src);
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = kinds("for i in 1..10 { x[i] }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Number && t == "1"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Number && t == "10"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Number && t.contains('.')));
    }

    #[test]
    fn totality_on_malformed_input() {
        for bad in ["\"unterminated", "r#\"open", "/* open", "'\\", "€"] {
            let _ = lex(bad); // must not panic
        }
    }
}
