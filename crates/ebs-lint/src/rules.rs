//! The rule engine: scans one lexed file and reports violations of the
//! workspace invariants.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | `D1` | No `std::collections::HashMap/HashSet` with the default (SipHash, per-process-seeded) hasher — use `ebs_core::hash::Fx*`. |
//! | `D2` | No `Instant::now` / `SystemTime` outside `bench`, the shims, `ebs-obs`, and test code — wall clocks do not belong in deterministic paths. |
//! | `D3` | No `unwrap()/expect()/panic!/unreachable!/todo!/unimplemented!` and no unchecked slice indexing. Hard error in *total* modules; ratcheted via `lint-baseline.toml` elsewhere. |
//! | `D4` | No `println!/eprintln!/print!/eprint!/dbg!` in library code — bins, harnesses, and the obs emitters own the terminal. |
//! | `D5` | No ambient randomness (`thread_rng`, `rand::…`, `RandomState`, `from_entropy`, `getrandom`, `OsRng`) — only `ebs_core::rng`. |
//! | `D3v2` | Workspace-level: no fn in a total module may *reach* a panicking construct through the call graph ([`crate::graph`]). Ratcheted. |
//! | `D6` | No hash-ordered iteration flowing into results without a canonicalizing sort ([`crate::flow`]). Ratcheted. |
//! | `D7` | No float accumulation in parallel-map closures or `merge` reducers outside the exact-partials pattern ([`crate::flow`]). Ratcheted. |
//! | `D8` | No `env::var` outside the named `EBS_*` config surface ([`crate::flow`]). Ratcheted. |
//!
//! Any finding can be silenced in place with
//! `// ebs-lint: allow(D3) -- <reason>` on the offending line or the line
//! above; the reason is mandatory (a bare `allow` is itself a violation,
//! rule `SUP`).

use crate::diag::Violation;
use crate::lexer::{lex, Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// How a file is classified for rule applicability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library source: every rule applies.
    Lib,
    /// Binary targets (`src/bin/*`, `src/main.rs`): may print and panic on
    /// bad CLI input, must still be deterministic (D1/D2/D5).
    Bin,
    /// `examples/`: like bins.
    Example,
    /// Integration tests (`tests/` directories): D1/D5 only.
    TestFile,
    /// Bench and offline test-harness shims (`bench`, `criterion-shim`,
    /// `proptest-shim`): may read clocks and print; D3 still ratchets.
    Harness,
    /// `ebs-obs`: the observability layer owns the clock and the emitters;
    /// D2/D4 exempt by design.
    Obs,
}

/// Per-file scan result, split by enforcement mode.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Hard errors: not eligible for the baseline.
    pub strict: Vec<Violation>,
    /// Ratchet-eligible findings (D3 outside total modules, D6/D7/D8):
    /// compared against `lint-baseline.toml` by the caller, per rule
    /// section (count may only decrease).
    pub ratchet: Vec<Violation>,
}

/// Full per-file scan: rule findings plus the parsed item tree the
/// workspace passes (call graph, D3v2) build on.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Strict + ratchet findings, suppressions already applied.
    pub outcome: CheckOutcome,
    /// The file's item tree. Panic sites inside `#[cfg(test)]` fns or
    /// covered by an `allow(D3)`/`allow(D3v2)` suppression are removed, so
    /// the reachability pass sees only live, unexcused sites.
    pub items: crate::items::ItemTree,
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [u8]`, `let [a, b] = …`, `dyn [T]`-ish positions).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// All valid rule ids, for suppression validation. `D3v2` is the
/// workspace-level transitive-totality rule ([`crate::graph`]); `D6`-`D8`
/// are the dataflow rules ([`crate::flow`]).
pub const RULE_IDS: &[&str] = &["D1", "D2", "D3", "D3v2", "D4", "D5", "D6", "D7", "D8"];

/// Rules whose findings ratchet through `lint-baseline.toml` (outside
/// total modules) instead of failing outright.
pub const RATCHET_RULES: &[&str] = &["D3", "D3v2", "D6", "D7", "D8"];

/// Scan `src` (at workspace-relative `path`, classified `class`;
/// `total` = D3-strict total module). Returns strict + ratchet findings,
/// already filtered through inline suppressions and `#[cfg(test)]` regions.
pub fn check_source(path: &str, class: FileClass, total: bool, src: &str) -> CheckOutcome {
    scan_file(path, class, total, src).outcome
}

/// Like [`check_source`], but also returns the parsed item tree for the
/// workspace-level passes (one lex, one parse per file).
pub fn scan_file(path: &str, class: FileClass, total: bool, src: &str) -> FileScan {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let test_regions = cfg_test_regions(toks, src);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| line >= a && line <= b);
    let (suppressions, mut sup_violations) = parse_suppressions(path, &lexed, toks);
    for v in &mut sup_violations {
        v.path = path.to_string();
    }
    let mut items = crate::items::parse(path, src, &lexed, &test_regions);

    let mut raw: Vec<(Violation, bool)> = Vec::new(); // (violation, ratchetable)
    let mk = |rule: &'static str, t: &Tok, message: String| Violation {
        rule,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message,
        trace: Vec::new(),
    };

    // ---- D1: default-hasher std maps --------------------------------
    let use_ranges = use_statement_ranges(toks, src);
    let std_imports = std_collections_imports(toks, src, &use_ranges);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(src);
        let base = match std_imports.iter().find(|(_, alias)| alias == name) {
            Some((orig, _)) => Some(orig.as_str()),
            None if (name == "HashMap" || name == "HashSet") && qualified_std(toks, src, i) => {
                Some(name)
            }
            None => None,
        };
        let Some(base) = base else { continue };
        if in_use_range(&use_ranges, i) {
            continue; // the import itself is not a use site
        }
        if !hasher_is_explicit(toks, src, i, base) {
            let fx = if base == "HashMap" {
                "FxHashMap"
            } else {
                "FxHashSet"
            };
            raw.push((
                mk(
                    "D1",
                    t,
                    format!(
                        "`std::collections::{base}` with the default SipHash hasher; \
                         use `ebs_core::hash::{fx}` (deterministic, ~2-3x faster on small keys)"
                    ),
                ),
                false,
            ));
        }
    }

    // ---- D2: wall clocks --------------------------------------------
    let d2_applies = matches!(class, FileClass::Lib | FileClass::Bin | FileClass::Example);
    if d2_applies {
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text(src) {
                "SystemTime" => raw.push((
                    mk(
                        "D2",
                        t,
                        "`SystemTime` reads the wall clock; deterministic code must take \
                         time from simulation state (or live in `ebs-obs`/`bench`)"
                            .to_string(),
                    ),
                    false,
                )),
                "Instant"
                    if toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(b':'))
                        && toks.get(i + 3).is_some_and(|t| t.is_ident(src, "now")) =>
                {
                    raw.push((
                        mk(
                            "D2",
                            t,
                            "`Instant::now` outside `bench`/`ebs-obs`/tests; wrap timing in \
                             `ebs_obs` (it is a no-op when observability is off)"
                                .to_string(),
                        ),
                        false,
                    ));
                }
                _ => {}
            }
        }
    }

    // ---- D3: panics and unchecked indexing --------------------------
    let d3_scope = match class {
        FileClass::Lib | FileClass::Obs => true,
        // A panic in a bench harness, bin, or example aborts that run only —
        // the no-panic discipline targets library code consumed by others.
        FileClass::Harness | FileClass::Bin | FileClass::Example | FileClass::TestFile => false,
    };
    if d3_scope {
        for i in 0..toks.len() {
            let t = &toks[i];
            let finding = match t.kind {
                TokKind::Ident => {
                    let name = t.text(src);
                    let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct(b'!'));
                    let prev_dot = i > 0 && toks[i - 1].is_punct(b'.');
                    let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct(b'('));
                    match name {
                        "unwrap" | "expect" if prev_dot && next_paren => Some(format!(
                            "`.{name}()` can panic; return a typed `ebs_core::error::EbsError` \
                             instead"
                        )),
                        "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => {
                            Some(format!("`{name}!` in library code; return a typed error"))
                        }
                        _ => None,
                    }
                }
                TokKind::Punct(b'[') if is_index_expr(toks, src, i) => Some(
                    "unchecked slice indexing can panic; use `.get()`/`.get_mut()` and map \
                     the `None` to a typed error"
                        .to_string(),
                ),
                _ => None,
            };
            if let Some(msg) = finding {
                raw.push((mk("D3", t, msg), !total));
            }
        }
    }

    // ---- D4: printing from library code -----------------------------
    if class == FileClass::Lib {
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && matches!(
                    t.text(src),
                    "println" | "eprintln" | "print" | "eprint" | "dbg"
                )
                && toks.get(i + 1).is_some_and(|n| n.is_punct(b'!'))
            {
                raw.push((
                    mk(
                        "D4",
                        t,
                        format!(
                            "`{}!` in library code; only bins and the `ebs-obs` emitters \
                             may write to the terminal",
                            t.text(src)
                        ),
                    ),
                    false,
                ));
            }
        }
    }

    // ---- D5: ambient randomness -------------------------------------
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(src);
        let hit = match name {
            "thread_rng" | "from_entropy" | "RandomState" | "getrandom" | "OsRng" => true,
            "rand" => {
                toks.get(i + 1).is_some_and(|t| t.is_punct(b':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            }
            _ => false,
        };
        if hit {
            raw.push((
                mk(
                    "D5",
                    t,
                    format!(
                        "`{name}` is ambient randomness; every random draw must come from a \
                         seeded `ebs_core::rng` stream"
                    ),
                ),
                false,
            ));
        }
    }

    // ---- D6/D7/D8: dataflow rules -----------------------------------
    // Applied to everything that feeds deterministic output — including
    // bins and examples, which write the gold masters.
    if matches!(
        class,
        FileClass::Lib | FileClass::Bin | FileClass::Example | FileClass::Obs
    ) {
        raw.extend(
            crate::flow::check(path, src, toks, &items)
                .into_iter()
                .map(|v| (v, true)),
        );
    }

    // ---- filter: cfg(test) regions + suppressions -------------------
    let mut out = CheckOutcome::default();
    out.strict.append(&mut sup_violations);
    for (v, ratchetable) in raw {
        // D1/D5 guard determinism of the tests themselves; the rest are
        // production-path rules and skip test-gated code.
        let exempt_in_tests = !matches!(v.rule, "D1" | "D5");
        if exempt_in_tests && in_test(v.line) {
            continue;
        }
        if suppressions
            .iter()
            .any(|s| s.rule == v.rule && s.covers == v.line)
        {
            continue;
        }
        if ratchetable {
            out.ratchet.push(v);
        } else {
            out.strict.push(v);
        }
    }

    // Excused panic sites (suppressed D3/D3v2) drop out of the item tree
    // so the reachability pass does not re-report them.
    for f in &mut items.fns {
        f.panics.retain(|p| {
            !suppressions
                .iter()
                .any(|s| (s.rule == "D3" || s.rule == "D3v2") && s.covers == p.line)
        });
    }

    FileScan {
        outcome: out,
        items,
    }
}

/// A validated suppression directive: silences `rule` on line `covers`.
#[derive(Debug)]
struct Suppression {
    rule: String,
    covers: u32,
}

/// Parse `// ebs-lint: allow(D3) -- reason` directives out of the comment
/// list. A directive on a line with code covers that line; a standalone
/// comment covers the next line. Malformed directives (missing reason,
/// unknown rule) are violations themselves.
fn parse_suppressions(
    path: &str,
    lexed: &Lexed,
    toks: &[Tok],
) -> (Vec<Suppression>, Vec<Violation>) {
    let code_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let Some(at) = c.text.find("ebs-lint:") else {
            continue;
        };
        let covers = if code_lines.contains(&c.line) {
            c.line
        } else {
            c.end_line + 1
        };
        let mut fail = |msg: String| {
            bad.push(Violation {
                rule: "SUP",
                path: path.to_string(),
                line: c.line,
                col: 1,
                message: msg,
                trace: Vec::new(),
            })
        };
        let rest = c.text[at + "ebs-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            fail(
                "malformed ebs-lint directive; expected \
                 `ebs-lint: allow(<rule>) -- <reason>`"
                    .to_string(),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("unclosed `allow(` in ebs-lint directive".to_string());
            continue;
        };
        let (rule_list, after) = rest.split_at(close);
        let after = after[1..].trim_start(); // drop ')'
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            fail(
                "suppression without a reason; write \
                 `ebs-lint: allow(<rule>) -- <why this site is exempt>`"
                    .to_string(),
            );
            continue;
        }
        for rule in rule_list.split(',').map(str::trim) {
            if !RULE_IDS.contains(&rule) {
                fail(format!("unknown rule `{rule}` in ebs-lint directive"));
                continue;
            }
            sups.push(Suppression {
                rule: rule.to_string(),
                covers,
            });
        }
    }
    (sups, bad)
}

/// Compute `(start_line, end_line)` regions of items gated by
/// `#[cfg(test)]` or `#[test]`. Brace balancing over the token stream is
/// exact because strings and comments are already stripped.
pub fn cfg_test_regions(toks: &[Tok], src: &str) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_punct(b'#') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct(b'!')) {
            j += 1; // inner attribute `#![…]`
        }
        if !toks.get(j).is_some_and(|t| t.is_punct(b'[')) {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0usize;
        let mut k = j;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if k >= toks.len() {
            break;
        }
        let inner = &toks[j + 1..k];
        let gated = matches!(
            inner
                .iter()
                .map(|t| t.text(src))
                .collect::<Vec<_>>()
                .as_slice(),
            ["cfg", "(", "test", ")"] | ["test"]
        );
        if !gated {
            i = k + 1;
            continue;
        }
        // Skip any further attributes, then span the gated item.
        let mut m = k + 1;
        while toks.get(m).is_some_and(|t| t.is_punct(b'#'))
            && toks.get(m + 1).is_some_and(|t| t.is_punct(b'['))
        {
            let mut d = 0usize;
            while m < toks.len() {
                match toks[m].kind {
                    TokKind::Punct(b'[') => d += 1,
                    TokKind::Punct(b']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            m += 1;
        }
        // Walk to the item's end: `;` before any body, or the matching `}`.
        let mut braces = 0usize;
        let mut end_line = toks.get(m).map_or(toks[k].line, |t| t.line);
        while m < toks.len() {
            match toks[m].kind {
                TokKind::Punct(b'{') => braces += 1,
                TokKind::Punct(b'}') => {
                    braces = braces.saturating_sub(1);
                    if braces == 0 {
                        end_line = toks[m].line;
                        break;
                    }
                }
                TokKind::Punct(b';') if braces == 0 => {
                    end_line = toks[m].line;
                    break;
                }
                _ => {}
            }
            end_line = toks[m].line;
            m += 1;
        }
        regions.push((toks[attr_start].line, end_line));
        i = m + 1;
    }
    regions
}

/// Token-index ranges `[start, end]` of `use …;` statements.
fn use_statement_ranges(toks: &[Tok], src: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_use = toks[i].is_ident(src, "use")
            && (i == 0 || !toks[i - 1].is_punct(b':') && !toks[i - 1].is_punct(b'.'));
        if is_use {
            let start = i;
            while i < toks.len() && !toks[i].is_punct(b';') {
                i += 1;
            }
            ranges.push((start, i));
        }
        i += 1;
    }
    ranges
}

fn in_use_range(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i <= b)
}

/// Names under which this file imports `std::collections::{HashMap,HashSet}`
/// (original, local-alias) — the alias differs for `… as Map` imports.
fn std_collections_imports(
    toks: &[Tok],
    src: &str,
    ranges: &[(usize, usize)],
) -> Vec<(String, String)> {
    let mut imports = Vec::new();
    for &(a, b) in ranges {
        let stmt = &toks[a..=b.min(toks.len() - 1)];
        let mentions_std_collections = stmt.windows(4).any(|w| {
            w[0].is_ident(src, "std")
                && w[1].is_punct(b':')
                && w[2].is_punct(b':')
                && w[3].is_ident(src, "collections")
        });
        if !mentions_std_collections {
            continue;
        }
        for (k, t) in stmt.iter().enumerate() {
            let name = if t.kind == TokKind::Ident {
                t.text(src)
            } else {
                continue;
            };
            if name != "HashMap" && name != "HashSet" {
                continue;
            }
            let alias = match (stmt.get(k + 1), stmt.get(k + 2)) {
                (Some(asn), Some(al)) if asn.is_ident(src, "as") && al.kind == TokKind::Ident => {
                    al.text(src)
                }
                _ => name,
            };
            imports.push((name.to_string(), alias.to_string()));
        }
    }
    imports
}

/// Whether the ident at `i` is reached through a `std::collections::` (or
/// `collections::`) path.
fn qualified_std(toks: &[Tok], src: &str, i: usize) -> bool {
    i >= 3
        && toks[i - 1].is_punct(b':')
        && toks[i - 2].is_punct(b':')
        && toks[i - 3].is_ident(src, "collections")
}

/// Whether the `HashMap`/`HashSet` use at token `i` explicitly supplies a
/// hasher: enough generic arguments (3 for maps, 2 for sets), or a
/// `with_hasher`-family constructor.
fn hasher_is_explicit(toks: &[Tok], src: &str, i: usize, base: &str) -> bool {
    let needed = if base == "HashMap" { 3 } else { 2 };
    let mut j = i + 1;
    // Turbofish `::<…>` or associated path `::name`.
    if toks.get(j).is_some_and(|t| t.is_punct(b':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(b':'))
    {
        j += 2;
        if let Some(t) = toks.get(j) {
            if t.kind == TokKind::Ident {
                return matches!(t.text(src), "with_hasher" | "with_capacity_and_hasher");
            }
        }
    }
    match toks.get(j) {
        Some(t) if t.is_punct(b'<') => count_generic_args(toks, j) >= needed,
        _ => false,
    }
}

/// Count top-level generic arguments of the `<…>` opening at token `lt`.
fn count_generic_args(toks: &[Tok], lt: usize) -> usize {
    let mut angle = 1usize;
    let mut nest = 0usize; // (), [], {} nesting
    let mut commas = 0usize;
    let mut saw_any = false;
    let mut j = lt + 1;
    while j < toks.len() && angle > 0 {
        match toks[j].kind {
            TokKind::Punct(b'<') => angle += 1,
            TokKind::Punct(b'>') => {
                // `->` in fn-pointer types does not close an angle bracket.
                if !(j > 0 && toks[j - 1].is_punct(b'-')) {
                    angle -= 1;
                }
            }
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => nest += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                nest = nest.saturating_sub(1)
            }
            TokKind::Punct(b',') if angle == 1 && nest == 0 => commas += 1,
            _ => saw_any = true,
        }
        j += 1;
    }
    if saw_any || commas > 0 {
        commas + 1
    } else {
        0
    }
}

/// Whether the `[` at token `i` opens an index expression (postfix
/// position) rather than a slice/array type, pattern, literal, or
/// attribute.
pub fn is_index_expr(toks: &[Tok], src: &str, i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match toks[i - 1].kind {
        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&toks[i - 1].text(src)),
        // `)`/`]`/`?` end a postfix expression; a number is a tuple-field
        // access (`pair.0[k]`).
        TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'?') => true,
        TokKind::Number => true,
        _ => false,
    }
}
