//! The ratchet baseline: `lint-baseline.toml` freezes the count of legacy
//! sites per (rule, file) for every ratcheted rule — `[D3]` panicking
//! calls outside the total modules, `[D3v2]` transitive-panic
//! reachability, `[D6]`/`[D7]`/`[D8]` dataflow findings. A check fails
//! when a file's live count *exceeds* its frozen count — so new
//! `unwrap()`s cannot land — while deleting one only makes the baseline
//! stale (tightened with `ebs-lint baseline`, enforced with
//! `--strict-baseline` in CI).
//!
//! The format is a strict, hand-parsed TOML subset — one table per rule,
//! one quoted-path key per file:
//!
//! ```toml
//! [D3]
//! "crates/ebs-analysis/src/ccr.rs" = 2
//! ```

use std::collections::BTreeMap;

/// Parsed baseline: rule → path → allowed count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Allowed legacy counts, keyed by rule then workspace-relative path.
    pub counts: BTreeMap<String, BTreeMap<String, usize>>,
}

impl Baseline {
    /// Allowed count for `(rule, path)`; zero when absent.
    pub fn allowed(&self, rule: &str, path: &str) -> usize {
        self.counts
            .get(rule)
            .and_then(|m| m.get(path))
            .copied()
            .unwrap_or(0)
    }

    /// Total number of frozen sites.
    pub fn total(&self) -> usize {
        self.counts.values().flat_map(|m| m.values()).sum()
    }

    /// Parse the baseline file contents. Unknown syntax is an error — a
    /// typo in the ratchet must not silently widen it.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut out = Baseline::default();
        let mut section: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("line {}: unclosed section header", lineno + 1));
                };
                let name = name.trim();
                if name.is_empty() {
                    return Err(format!("line {}: empty section name", lineno + 1));
                }
                section = Some(name.to_string());
                continue;
            }
            let Some(section) = section.as_ref() else {
                return Err(format!(
                    "line {}: entry before any [RULE] section",
                    lineno + 1
                ));
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `\"path\" = count`", lineno + 1));
            };
            let key = key.trim();
            let path = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("line {}: path must be double-quoted", lineno + 1))?;
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: count is not an integer", lineno + 1))?;
            if count == 0 {
                return Err(format!(
                    "line {}: zero-count entries must be deleted, not listed",
                    lineno + 1
                ));
            }
            let prev = out
                .counts
                .entry(section.clone())
                .or_default()
                .insert(path.to_string(), count);
            if prev.is_some() {
                return Err(format!("line {}: duplicate entry for {path}", lineno + 1));
            }
        }
        Ok(out)
    }

    /// Serialize deterministically (sorted rules, sorted paths).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# ebs-lint ratchet baseline — legacy sites per ratcheted rule: [D3]\n\
             # unwrap/expect/panic/indexing outside the total modules, [D3v2]\n\
             # transitive-panic reachability from the total set, [D6] hash-iteration\n\
             # order, [D7] parallel float reduction, [D8] ambient config reads.\n\
             # Counts may only DECREASE; regenerate with\n\
             # `cargo run -p ebs-lint -- baseline` after removing a site.\n",
        );
        for (rule, files) in &self.counts {
            if files.is_empty() {
                continue;
            }
            out.push_str(&format!("\n[{rule}]\n"));
            for (path, count) in files {
                out.push_str(&format!("\"{path}\" = {count}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.counts
            .entry("D3".to_string())
            .or_default()
            .insert("crates/x/src/a.rs".to_string(), 3);
        b.counts
            .entry("D3".to_string())
            .or_default()
            .insert("crates/x/src/b.rs".to_string(), 1);
        let text = b.render();
        assert_eq!(Baseline::parse(&text).unwrap(), b);
        assert_eq!(b.allowed("D3", "crates/x/src/a.rs"), 3);
        assert_eq!(b.allowed("D3", "crates/x/src/zzz.rs"), 0);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("\"a.rs\" = 1").is_err()); // no section
        assert!(Baseline::parse("[D3]\na.rs = 1").is_err()); // unquoted
        assert!(Baseline::parse("[D3]\n\"a.rs\" = x").is_err()); // not a count
        assert!(Baseline::parse("[D3]\n\"a.rs\" = 0").is_err()); // zero entry
        assert!(Baseline::parse("[D3]\n\"a.rs\" = 1\n\"a.rs\" = 2").is_err()); // dup
        assert!(Baseline::parse("[D3\n").is_err()); // unclosed header
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let b = Baseline::parse("# header\n\n[D3]\n# note\n\"a.rs\" = 2\n").unwrap();
        assert_eq!(b.allowed("D3", "a.rs"), 2);
    }
}
