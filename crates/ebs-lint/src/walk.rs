//! Workspace discovery: which `.rs` files to scan, how each is classified,
//! and which modules are *total* (D3-strict).

use crate::rules::FileClass;
use std::path::{Path, PathBuf};

/// Crates whose whole tree is a bench/test harness: clocks and printing are
/// their job.
const HARNESS_CRATES: &[&str] = &["bench", "criterion-shim", "proptest-shim"];

/// Modules that must be *total*: hostile input yields typed errors, never a
/// panic. D3 is a hard error here — no baseline, only reasoned inline
/// suppressions.
pub const TOTAL_MODULES: &[&str] = &[
    "crates/ebs-store/src/reader.rs",
    "crates/ebs-store/src/bytes.rs",
    "crates/ebs-store/src/codec.rs",
    "crates/ebs-store/src/columns.rs",
    "crates/ebs-store/src/manifest.rs",
    "crates/ebs-store/src/seal.rs",
    "crates/ebs-store/src/stream.rs",
    "crates/ebs-workload/src/import.rs",
    "crates/ebs-workload/src/store.rs",
    "crates/ebs-stack/src/route.rs",
    "crates/ebs-serve/src/epoch.rs",
    "crates/ebs-serve/src/window.rs",
];

/// One file scheduled for scanning.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative, `/`-separated path (the diagnostic span prefix).
    pub rel: String,
    /// Rule-applicability class.
    pub class: FileClass,
    /// Whether this is a D3-strict total module.
    pub total: bool,
}

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    if let ["crates", krate, rest @ ..] = parts.as_slice() {
        if HARNESS_CRATES.contains(krate) {
            return FileClass::Harness;
        }
        if rest.first() == Some(&"tests") {
            return FileClass::TestFile;
        }
        if *krate == "ebs-obs" {
            return FileClass::Obs;
        }
        if rest.first() == Some(&"examples") {
            return FileClass::Example;
        }
        if rel.contains("/src/bin/") || rest == ["src", "main.rs"] {
            return FileClass::Bin;
        }
        return FileClass::Lib;
    }
    match parts.first().copied() {
        Some("tests") => FileClass::TestFile,
        Some("examples") => FileClass::Example,
        Some("src") if rel.contains("/bin/") || rel.ends_with("/main.rs") => FileClass::Bin,
        _ => FileClass::Lib,
    }
}

/// Discover every `.rs` file under the workspace `root`, classified and
/// sorted by relative path (so reports and baselines are deterministic).
pub fn discover(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut rels: Vec<String> = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), root, &mut rels)?;
    }
    rels.sort();
    Ok(rels
        .into_iter()
        .map(|rel| SourceFile {
            abs: root.join(&rel),
            class: classify(&rel),
            total: TOTAL_MODULES.contains(&rel.as_str()),
            rel,
        })
        .collect())
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            // `tests/fixtures/` holds deliberate-violation inputs for the
            // linter's own test suite; cargo never compiles them (only
            // top-level files in `tests/` are test targets), so they are
            // not code and are not scanned.
            if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        assert_eq!(classify("crates/ebs-core/src/hash.rs"), FileClass::Lib);
        assert_eq!(
            classify("crates/ebs-experiments/src/bin/all.rs"),
            FileClass::Bin
        );
        assert_eq!(classify("crates/ebs-lint/src/main.rs"), FileClass::Bin);
        assert_eq!(classify("crates/ebs-obs/src/report.rs"), FileClass::Obs);
        assert_eq!(
            classify("crates/bench/src/bin/bench.rs"),
            FileClass::Harness
        );
        assert_eq!(
            classify("crates/proptest-shim/src/lib.rs"),
            FileClass::Harness
        );
        assert_eq!(
            classify("crates/ebs-lint/tests/fixtures.rs"),
            FileClass::TestFile
        );
        assert_eq!(classify("tests/determinism.rs"), FileClass::TestFile);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
    }

    #[test]
    fn total_modules_are_store_workload_io_and_routing() {
        assert!(TOTAL_MODULES.contains(&"crates/ebs-store/src/reader.rs"));
        // The v2 decode kernels and the frame seal sit on the hostile-input
        // path, so they are D3-strict like the reader that calls them.
        assert!(TOTAL_MODULES.contains(&"crates/ebs-store/src/codec.rs"));
        assert!(TOTAL_MODULES.contains(&"crates/ebs-store/src/seal.rs"));
        assert!(TOTAL_MODULES.contains(&"crates/ebs-workload/src/import.rs"));
        // The route plan resolves untrusted (offset, VD) pairs for every
        // simulated event; it must surface malformed input as errors, not
        // panics.
        assert!(TOTAL_MODULES.contains(&"crates/ebs-stack/src/route.rs"));
        // The serve loop's epoch and window arithmetic steers a long-running
        // control plane; a malformed epoch spec or an empty window must come
        // back as a value, never a panic.
        assert!(TOTAL_MODULES.contains(&"crates/ebs-serve/src/epoch.rs"));
        assert!(TOTAL_MODULES.contains(&"crates/ebs-serve/src/window.rs"));
        assert!(!TOTAL_MODULES.contains(&"crates/ebs-store/src/writer.rs"));
    }
}
