//! Diagnostics: the violation record, deterministic ordering, and the
//! human / JSON renderers.

use std::fmt::Write as _;

/// One rule violation at a source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`D1` … `D8`, `D3v2`, or `SUP` for malformed suppressions).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to use instead.
    pub message: String,
    /// Call-graph reachability path for `D3v2` findings: one
    /// `crate::module::fn (file:line)` hop per element, total root first,
    /// panicking fn last. Empty for per-file rules.
    pub trace: Vec<String>,
}

/// Sort violations into the canonical report order (path, line, col, rule)
/// so output is byte-identical regardless of walk or scan order.
pub fn sort(violations: &mut [Violation]) {
    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Render violations in the rustc-like human format.
pub fn render_human(violations: &[Violation], files_scanned: usize, baselined: usize) -> String {
    let mut out = String::new();
    for v in violations {
        let _ = writeln!(out, "error[{}]: {}", v.rule, v.message);
        let _ = writeln!(out, "  --> {}:{}:{}", v.path, v.line, v.col);
        for (i, hop) in v.trace.iter().enumerate() {
            let _ = writeln!(out, "  {}{hop}", if i == 0 { "trace: " } else { "     → " });
        }
    }
    let verdict = if violations.is_empty() {
        "clean"
    } else {
        "FAILED"
    };
    let _ = writeln!(
        out,
        "ebs-lint: {verdict} — {} violation(s), {files_scanned} file(s) scanned, \
         {baselined} legacy site(s) covered by lint-baseline.toml",
        violations.len()
    );
    out
}

/// Render violations as a single JSON document (`--format json`).
///
/// Hand-rolled serialization: the linter is dependency-free by design, and
/// the schema is flat enough that escaping strings is the only subtlety.
pub fn render_json(violations: &[Violation], files_scanned: usize, baselined: usize) -> String {
    let mut out = String::from("{\"version\":1,\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let trace: Vec<String> = v.trace.iter().map(|h| json_str(h)).collect();
        let _ = write!(
            out,
            "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{},\"trace\":[{}]}}",
            json_str(v.rule),
            json_str(&v.path),
            v.line,
            v.col,
            json_str(&v.message),
            trace.join(",")
        );
    }
    let _ = write!(
        out,
        "],\"files_scanned\":{files_scanned},\"baselined\":{baselined},\"ok\":{}}}",
        violations.is_empty()
    );
    out.push('\n');
    out
}

/// JSON string escape.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(path: &str, line: u32, col: u32) -> Violation {
        Violation {
            rule: "D1",
            path: path.to_string(),
            line,
            col,
            message: "m \"q\"".to_string(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn ordering_is_path_line_col() {
        let mut vs = vec![
            v("b.rs", 1, 1),
            v("a.rs", 9, 1),
            v("a.rs", 2, 5),
            v("a.rs", 2, 3),
        ];
        sort(&mut vs);
        let order: Vec<(String, u32, u32)> =
            vs.iter().map(|v| (v.path.clone(), v.line, v.col)).collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2, 3),
                ("a.rs".to_string(), 2, 5),
                ("a.rs".to_string(), 9, 1),
                ("b.rs".to_string(), 1, 1),
            ]
        );
    }

    #[test]
    fn json_escapes_and_reports_ok_flag() {
        let doc = render_json(&[v("a.rs", 1, 2)], 3, 0);
        assert!(doc.contains("\"m \\\"q\\\"\""));
        assert!(doc.contains("\"ok\":false"));
        let clean = render_json(&[], 3, 1);
        assert!(clean.contains("\"ok\":true"));
        assert!(clean.contains("\"baselined\":1"));
    }

    #[test]
    fn human_format_has_spans() {
        let text = render_human(&[v("crates/x/src/a.rs", 7, 4)], 1, 0);
        assert!(text.contains("error[D1]"));
        assert!(text.contains("--> crates/x/src/a.rs:7:4"));
    }
}
