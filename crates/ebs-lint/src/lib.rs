//! `ebs-lint`: in-repo static analysis enforcing the workspace's
//! determinism, no-panic, and hot-path invariants.
//!
//! See [`rules`] for the rule catalogue (per-file D1–D5 plus the dataflow
//! rules D6–D8), [`items`]/[`graph`] for the workspace-level item tree,
//! call graph, and the transitive-totality rule D3v2, [`baseline`] for
//! the ratchet, and `DESIGN.md` §13/§18 for the policy rationale. The
//! crate depends only on `ebs-core` (for the deterministic parallel map
//! it both uses and polices) — its own lexer, TOML-subset parser, and
//! JSON writer keep it working whatever state the rest of the workspace
//! is in.

pub mod baseline;
pub mod diag;
pub mod flow;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod walk;

use baseline::Baseline;
use diag::Violation;
use std::collections::BTreeMap;
use std::path::Path;

/// Name of the checked-in ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// The outcome of a full workspace check.
#[derive(Debug)]
pub struct Report {
    /// Violations to report (sorted; empty means the check passes).
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of legacy sites covered by the baseline.
    pub baselined: usize,
    /// `(rule, path, live, allowed)` entries where the baseline allows more
    /// than the live count — candidates for tightening.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl Report {
    /// Whether the check passes (`strict_baseline` also fails on stale
    /// baseline entries, the CI ratchet-tightening guard).
    pub fn ok(&self, strict_baseline: bool) -> bool {
        self.violations.is_empty() && (!strict_baseline || self.stale.is_empty())
    }
}

/// A full workspace analysis: the reconciled report, the live ratchet
/// counts, and the call graph (for the `graph` CLI subcommand and tests).
#[derive(Debug)]
pub struct Analysis {
    /// The reconciled check report.
    pub report: Report,
    /// Live per-(rule, file) ratchet counts — what `ebs-lint baseline`
    /// writes.
    pub live: Baseline,
    /// The resolved workspace call graph.
    pub graph: graph::CallGraph,
}

/// Run every rule over the workspace at `root` and reconcile ratcheted
/// findings with the checked-in baseline.
pub fn run(root: &Path) -> Result<Report, String> {
    let baseline_path = root.join(BASELINE_FILE);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("{BASELINE_FILE}: {e}"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("{BASELINE_FILE}: {e}")),
    };
    let (report, _) = run_with_baseline(root, &baseline)?;
    Ok(report)
}

/// Like [`run`], but with an explicit baseline; also returns the live
/// per-file ratchet counts (what `ebs-lint baseline` writes).
pub fn run_with_baseline(root: &Path, baseline: &Baseline) -> Result<(Report, Baseline), String> {
    let analysis = analyze(root, baseline)?;
    Ok((analysis.report, analysis.live))
}

/// Full analysis: per-file scans (in parallel, results in deterministic
/// input order), the workspace call graph, the D3v2 reachability pass,
/// and baseline reconciliation.
pub fn analyze(root: &Path, baseline: &Baseline) -> Result<Analysis, String> {
    let files = walk::discover(root).map_err(|e| format!("walking {}: {e}", root.display()))?;

    // Per-file scans are independent; `par_map_deterministic` returns
    // results in input order, so the report is byte-identical at any
    // thread count (pinned by a test).
    let scans: Vec<Result<rules::FileScan, String>> =
        ebs_core::parallel::par_map_deterministic(&files, |_, f| {
            let src =
                std::fs::read_to_string(&f.abs).map_err(|e| format!("reading {}: {e}", f.rel))?;
            Ok(rules::scan_file(&f.rel, f.class, f.total, &src))
        });
    let mut violations: Vec<Violation> = Vec::new();
    let mut ratchet_by: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
    let mut ok_scans: Vec<(usize, rules::FileScan)> = Vec::new();
    for (i, scan) in scans.into_iter().enumerate() {
        let mut scan = scan?;
        violations.append(&mut scan.outcome.strict);
        for v in scan.outcome.ratchet.drain(..) {
            ratchet_by
                .entry((v.rule.to_string(), v.path.clone()))
                .or_default()
                .push(v);
        }
        ok_scans.push((i, scan));
    }

    // Workspace pass: build the call graph over library-shaped files and
    // run the transitive-totality analysis.
    let graph_inputs: Vec<graph::FileItems<'_>> = ok_scans
        .iter()
        .filter(|(i, _)| {
            matches!(
                files[*i].class,
                rules::FileClass::Lib | rules::FileClass::Obs
            )
        })
        .map(|(i, scan)| graph::FileItems {
            rel: &files[*i].rel,
            total: files[*i].total,
            items: &scan.items,
        })
        .collect();
    let call_graph = graph::build(&graph_inputs);
    for v in graph::transitive_totality(&call_graph) {
        ratchet_by
            .entry((v.rule.to_string(), v.path.clone()))
            .or_default()
            .push(v);
    }

    // Reconcile ratcheted findings with the baseline, per (rule, file).
    let mut baselined = 0usize;
    let mut stale = Vec::new();
    let mut live = Baseline::default();
    for ((rule, path), found) in &ratchet_by {
        live.counts
            .entry(rule.clone())
            .or_default()
            .insert(path.clone(), found.len());
        let allowed = baseline.allowed(rule, path);
        if found.len() > allowed {
            for v in found {
                let mut v = v.clone();
                v.message = format!(
                    "{} — file has {} ratcheted {rule} site(s) but {BASELINE_FILE} allows {}",
                    v.message,
                    found.len(),
                    allowed
                );
                violations.push(v);
            }
        } else {
            baselined += found.len();
            if found.len() < allowed {
                stale.push((rule.clone(), path.clone(), found.len(), allowed));
            }
        }
    }
    // Baseline entries for files with no remaining findings are stale too.
    for (rule, per_file) in &baseline.counts {
        for (path, &allowed) in per_file {
            let live_count = ratchet_by
                .get(&(rule.clone(), path.clone()))
                .map_or(0, Vec::len);
            if live_count == 0 {
                stale.push((rule.clone(), path.clone(), 0, allowed));
            }
        }
    }
    stale.sort();
    stale.dedup();

    diag::sort(&mut violations);
    Ok(Analysis {
        report: Report {
            violations,
            files_scanned: files.len(),
            baselined,
            stale,
        },
        live,
        graph: call_graph,
    })
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
