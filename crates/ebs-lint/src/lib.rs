//! `ebs-lint`: in-repo static analysis enforcing the workspace's
//! determinism, no-panic, and hot-path invariants.
//!
//! See [`rules`] for the rule catalogue (D1–D5), [`baseline`] for the
//! ratchet, and `DESIGN.md` §13 for the policy rationale. The crate is
//! deliberately dependency-free — its own lexer, TOML-subset parser, and
//! JSON writer — so it keeps working whatever state the rest of the
//! workspace is in.

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use baseline::Baseline;
use diag::Violation;
use std::collections::BTreeMap;
use std::path::Path;

/// Name of the checked-in ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// The outcome of a full workspace check.
#[derive(Debug)]
pub struct Report {
    /// Violations to report (sorted; empty means the check passes).
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of legacy sites covered by the baseline.
    pub baselined: usize,
    /// `(rule, path, live, allowed)` entries where the baseline allows more
    /// than the live count — candidates for tightening.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl Report {
    /// Whether the check passes (`strict_baseline` also fails on stale
    /// baseline entries, the CI ratchet-tightening guard).
    pub fn ok(&self, strict_baseline: bool) -> bool {
        self.violations.is_empty() && (!strict_baseline || self.stale.is_empty())
    }
}

/// Run every rule over the workspace at `root` and reconcile D3 findings
/// with the checked-in baseline.
pub fn run(root: &Path) -> Result<Report, String> {
    let baseline_path = root.join(BASELINE_FILE);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("{BASELINE_FILE}: {e}"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("{BASELINE_FILE}: {e}")),
    };
    let (report, _) = run_with_baseline(root, &baseline)?;
    Ok(report)
}

/// Like [`run`], but with an explicit baseline; also returns the live
/// per-file D3 ratchet counts (what `ebs-lint baseline` writes).
pub fn run_with_baseline(root: &Path, baseline: &Baseline) -> Result<(Report, Baseline), String> {
    let files = walk::discover(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut violations: Vec<Violation> = Vec::new();
    let mut ratchet_by_file: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    for f in &files {
        let src = std::fs::read_to_string(&f.abs).map_err(|e| format!("reading {}: {e}", f.rel))?;
        let mut outcome = rules::check_source(&f.rel, f.class, f.total, &src);
        violations.append(&mut outcome.strict);
        if !outcome.ratchet.is_empty() {
            ratchet_by_file
                .entry(f.rel.clone())
                .or_default()
                .append(&mut outcome.ratchet);
        }
    }

    // Reconcile ratchetable D3 findings with the baseline.
    let mut baselined = 0usize;
    let mut stale = Vec::new();
    let mut live = Baseline::default();
    for (path, found) in &ratchet_by_file {
        live.counts
            .entry("D3".to_string())
            .or_default()
            .insert(path.clone(), found.len());
        let allowed = baseline.allowed("D3", path);
        if found.len() > allowed {
            for v in found {
                let mut v = v.clone();
                v.message = format!(
                    "{} — file has {} ratcheted D3 site(s) but {BASELINE_FILE} allows {}",
                    v.message,
                    found.len(),
                    allowed
                );
                violations.push(v);
            }
        } else {
            baselined += found.len();
            if found.len() < allowed {
                stale.push(("D3".to_string(), path.clone(), found.len(), allowed));
            }
        }
    }
    // Baseline entries for files with no remaining findings are stale too.
    for (rule, per_file) in &baseline.counts {
        for (path, &allowed) in per_file {
            let live_count = ratchet_by_file.get(path).map_or(0, Vec::len);
            if live_count == 0 {
                stale.push((rule.clone(), path.clone(), 0, allowed));
            }
        }
    }
    stale.sort();
    stale.dedup();

    diag::sort(&mut violations);
    Ok((
        Report {
            violations,
            files_scanned: files.len(),
            baselined,
            stale,
        },
        live,
    ))
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
