//! The workspace call graph: approximate symbol resolution over the item
//! trees of every scanned file, plus the D3v2 transitive-totality
//! reachability analysis.
//!
//! Resolution is **name + module-path** based (no type inference):
//!
//! * `path::to::f(…)` resolves to workspace functions named `f` whose
//!   module path / impl owner contains every path segment (after mapping
//!   `crate`/`self`/`super` to the calling crate). An unmatched qualifier
//!   (e.g. `Vec::new`) resolves to nothing — it is a `std` call.
//! * bare `f(…)` resolves through the file's `use` imports first, then by
//!   name with same-module > same-crate > workspace preference.
//! * `.m(…)` method calls resolve to every workspace method named `m`,
//!   **except** names on [`crate::items::STD_SHADOWED_METHODS`] (ubiquitous
//!   std names like `get`/`iter`/`push`), which resolve to nothing.
//!
//! The bias is deliberate: over-resolution would manufacture panic
//! reachability that no fix can remove; under-resolution is a documented
//! false-negative mode (`DESIGN.md` §18) backed up by the per-file D3
//! ratchet, which still counts every local panic site.

use crate::diag::Violation;
use crate::items::{CallKind, PanicSite, STD_SHADOWED_METHODS};
use std::collections::BTreeMap;

/// One function node in the workspace graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// The function's name.
    pub name: String,
    /// Impl/trait self-type owner, if any.
    pub owner: Option<String>,
    /// Module path (crate first, dashes kept).
    pub module: Vec<String>,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based definition line.
    pub line: u32,
    /// 1-based definition column.
    pub col: u32,
    /// Whether the fn is a method (takes `self`).
    pub has_self: bool,
    /// Whether the defining file is a D3-total module.
    pub total: bool,
    /// Surviving panic sites (suppressed and test-gated sites removed).
    pub panics: Vec<PanicSite>,
}

impl FnNode {
    /// Canonical display path: `crate::module::Owner::name`.
    pub fn path(&self) -> String {
        let mut out = self.module.join("::");
        if let Some(owner) = &self.owner {
            out.push_str("::");
            out.push_str(owner);
        }
        out.push_str("::");
        out.push_str(&self.name);
        out
    }
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All graph nodes, in (file, source) order.
    pub fns: Vec<FnNode>,
    /// Resolved callee edges per node (sorted, deduplicated).
    pub callees: Vec<Vec<usize>>,
}

/// Input to the graph builder: one file's items plus metadata.
pub struct FileItems<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Whether the file is a D3-total module.
    pub total: bool,
    /// The parsed item tree (panic sites already filtered).
    pub items: &'a crate::items::ItemTree,
}

fn norm(seg: &str) -> String {
    seg.replace('-', "_")
}

/// Build the call graph over `files` (callers must pre-filter to library
/// classes — bins, examples, tests, and harnesses are not part of the
/// library call surface).
pub fn build(files: &[FileItems<'_>]) -> CallGraph {
    // ---- collect nodes ------------------------------------------------
    let mut fns: Vec<FnNode> = Vec::new();
    // (file index, fn index within file) → node id, plus per-node the raw
    // calls and per-file import maps.
    let mut raw_calls: Vec<&[crate::items::Call]> = Vec::new();
    let mut node_file: Vec<usize> = Vec::new();
    let mut imports: Vec<BTreeMap<&str, &crate::items::UseImport>> = Vec::new();
    for (fx, f) in files.iter().enumerate() {
        let mut map = BTreeMap::new();
        for u in &f.items.uses {
            map.insert(u.alias.as_str(), u);
        }
        imports.push(map);
        for item in &f.items.fns {
            if item.in_test {
                continue;
            }
            fns.push(FnNode {
                name: item.name.clone(),
                owner: item.owner.clone(),
                module: item.module.clone(),
                file: f.rel.to_string(),
                line: item.line,
                col: item.col,
                has_self: item.has_self,
                total: f.total,
                panics: item.panics.clone(),
            });
            raw_calls.push(&item.calls);
            node_file.push(fx);
        }
    }

    // ---- name index ---------------------------------------------------
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(id);
    }

    // ---- resolve edges ------------------------------------------------
    let mut callees: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
    for id in 0..fns.len() {
        let caller = &fns[id];
        let file_imports = &imports[node_file[id]];
        let mut edges: Vec<usize> = Vec::new();
        for call in raw_calls[id] {
            resolve_call(caller, call, file_imports, &by_name, &fns, &mut edges);
        }
        edges.sort_unstable();
        edges.dedup();
        callees.push(edges);
    }
    CallGraph { fns, callees }
}

/// Append resolved candidate node ids for one call site to `edges`.
fn resolve_call(
    caller: &FnNode,
    call: &crate::items::Call,
    file_imports: &BTreeMap<&str, &crate::items::UseImport>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    fns: &[FnNode],
    edges: &mut Vec<usize>,
) {
    match call.kind {
        CallKind::Method => {
            if STD_SHADOWED_METHODS.contains(&call.name.as_str()) {
                return;
            }
            if let Some(cands) = by_name.get(call.name.as_str()) {
                edges.extend(cands.iter().copied().filter(|&c| fns[c].has_self));
            }
        }
        CallKind::Path => {
            resolve_qualified(caller, &call.name, &call.qual, by_name, fns, edges);
        }
        CallKind::Bare => {
            // Imports first: `use ebs_analysis::ccr;` makes `ccr(…)` a
            // qualified call on the imported path.
            if let Some(imp) = file_imports.get(call.name.as_str()) {
                if let Some((real, qual)) = imp.path.split_last() {
                    resolve_qualified(caller, real, qual, by_name, fns, edges);
                    return;
                }
            }
            let Some(cands) = by_name.get(call.name.as_str()) else {
                return;
            };
            // Same module > same crate > whole workspace.
            let same_module: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| fns[c].module == caller.module)
                .collect();
            if !same_module.is_empty() {
                edges.extend(same_module);
                return;
            }
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| fns[c].module.first() == caller.module.first())
                .collect();
            if !same_crate.is_empty() {
                edges.extend(same_crate);
                return;
            }
            edges.extend(cands.iter().copied());
        }
    }
}

/// Resolve `qual::name(…)`: candidates named `name` whose context (module
/// segments + owner) contains every qualifier segment. `crate`/`self`/
/// `super` map to the calling crate; `Self` maps to the caller's owner.
fn resolve_qualified(
    caller: &FnNode,
    name: &str,
    qual: &[String],
    by_name: &BTreeMap<&str, Vec<usize>>,
    fns: &[FnNode],
    edges: &mut Vec<usize>,
) {
    let Some(cands) = by_name.get(name) else {
        return;
    };
    let caller_crate = caller.module.first().map(|c| norm(c)).unwrap_or_default();
    let segs: Vec<String> = qual
        .iter()
        .map(|s| match s.as_str() {
            "crate" | "self" | "super" => caller_crate.clone(),
            "Self" => caller.owner.clone().unwrap_or_default(),
            other => norm(other),
        })
        .collect();
    for &c in cands {
        let cand = &fns[c];
        let ctx: Vec<String> = cand
            .module
            .iter()
            .map(|m| norm(m))
            .chain(cand.owner.iter().map(|o| norm(o)))
            .collect();
        if segs.iter().all(|s| !s.is_empty() && ctx.contains(s)) {
            edges.push(c);
        }
    }
}

impl CallGraph {
    /// Direct callers of `id` (computed on demand; sorted).
    pub fn callers_of(&self, id: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .callees
            .iter()
            .enumerate()
            .filter(|(_, es)| es.contains(&id))
            .map(|(c, _)| c)
            .collect();
        out.sort_unstable();
        out
    }

    /// Find nodes whose canonical path ends with `query` (segment-aligned)
    /// or whose bare name equals `query`.
    pub fn find(&self, query: &str) -> Vec<usize> {
        let nq = norm(query);
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                if norm(&f.name) == nq {
                    return true;
                }
                let path = norm(&f.path());
                path == nq || path.ends_with(&format!("::{nq}"))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// D3v2 transitive totality: no function defined in a total module may
/// *reach* a panicking construct anywhere in the workspace graph. Returns
/// one violation per reachable panicking function, anchored at its first
/// panic site, with the full reachability trace from a total root.
pub fn transitive_totality(graph: &CallGraph) -> Vec<Violation> {
    let n = graph.fns.len();
    // Multi-source BFS from every total fn, tracking a parent edge so each
    // reached node has one deterministic shortest trace.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = (0..n)
        .filter(|&i| graph.fns[i].total)
        .inspect(|&i| seen[i] = true)
        .collect();
    while let Some(u) = queue.pop_front() {
        for &v in &graph.callees[u] {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }

    let mut out = Vec::new();
    for (v, &reached) in seen.iter().enumerate() {
        if !reached || graph.fns[v].panics.is_empty() {
            continue;
        }
        let node = &graph.fns[v];
        // Walk the parent chain back to a total root.
        let mut chain = vec![v];
        let mut cur = v;
        while let Some(p) = parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        let root = &graph.fns[chain[0]];
        let site = &node.panics[0];
        let hops: Vec<String> = chain
            .iter()
            .map(|&h| {
                let f = &graph.fns[h];
                format!("{} ({}:{})", f.path(), f.file, f.line)
            })
            .collect();
        let extra = node.panics.len() - 1;
        let suffix = if extra > 0 {
            format!(" (+{extra} more site(s) in this fn)")
        } else {
            String::new()
        };
        out.push(Violation {
            rule: "D3v2",
            path: node.file.clone(),
            line: site.line,
            col: site.col,
            message: format!(
                "total fn `{}` reaches {} here via {}{suffix}; make the helper total \
                 (typed error / `.get()`) or suppress with a reason",
                root.path(),
                site.what,
                hops.join(" → "),
            ),
            trace: hops,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{scan_file, FileClass, FileScan};

    /// A synthetic workspace: `(rel, total, scan)` triples, graph on demand.
    struct Ws {
        files: Vec<(String, bool, FileScan)>,
    }

    impl Ws {
        fn new() -> Self {
            Self { files: Vec::new() }
        }

        fn file(mut self, rel: &str, total: bool, src: &str) -> Self {
            let scan = scan_file(rel, FileClass::Lib, total, src);
            self.files.push((rel.to_string(), total, scan));
            self
        }

        fn graph(&self) -> CallGraph {
            let inputs: Vec<FileItems<'_>> = self
                .files
                .iter()
                .map(|(rel, total, scan)| FileItems {
                    rel,
                    total: *total,
                    items: &scan.items,
                })
                .collect();
            build(&inputs)
        }
    }

    #[test]
    fn bfs_terminates_on_cycles_and_reports_the_reachable_panic() {
        // enter (total) → ping ↔ pong, and pong panics. The cycle must not
        // hang the BFS, and exactly one violation (pong's site) comes back.
        let g = Ws::new()
            .file(
                "crates/ebs-a/src/total.rs",
                true,
                "pub fn enter(x: u32) -> u32 { crate::loops::ping(x) }\n",
            )
            .file(
                "crates/ebs-a/src/loops.rs",
                false,
                "pub fn ping(x: u32) -> u32 { if x > 0 { pong(x - 1) } else { x } }\n\
                 pub fn pong(x: u32) -> u32 { ping(x.checked_sub(1).unwrap()) }\n",
            )
            .graph();
        let vs = transitive_totality(&g);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, "D3v2");
        assert_eq!(vs[0].path, "crates/ebs-a/src/loops.rs");
        assert!(
            vs[0].message.contains("ebs-a::total::enter"),
            "trace should start at the total root: {}",
            vs[0].message
        );
        assert!(vs[0].trace.len() >= 2, "{:?}", vs[0].trace);
    }

    #[test]
    fn std_shadowed_method_names_do_not_resolve() {
        // `.index(…)` and `.finish(…)` are ubiquitous std names; a workspace
        // method sharing the name must not manufacture reachability.
        let g = Ws::new()
            .file(
                "crates/ebs-a/src/total.rs",
                true,
                "pub fn enter(v: &Table, h: &mut H) -> u32 { v.index(3); h.finish(); 0 }\n",
            )
            .file(
                "crates/ebs-b/src/table.rs",
                false,
                "pub struct Table { v: Vec<u32> }\n\
                 impl Table {\n\
                     pub fn index(&self, i: usize) -> u32 { self.v[i] }\n\
                     pub fn finish(&self) -> u32 { self.v[0] }\n\
                 }\n",
            )
            .graph();
        assert!(
            transitive_totality(&g).is_empty(),
            "shadowed names resolved: {:?}",
            transitive_totality(&g)
        );
    }

    #[test]
    fn custom_method_names_do_resolve_across_crates() {
        let g = Ws::new()
            .file(
                "crates/ebs-a/src/total.rs",
                true,
                "pub fn enter(p: &mut Plan) { p.rebuild(); }\n",
            )
            .file(
                "crates/ebs-b/src/plan.rs",
                false,
                "pub struct Plan { cache: Vec<u32> }\n\
                 impl Plan {\n\
                     pub fn rebuild(&mut self) { self.cache[0] = 1; }\n\
                 }\n",
            )
            .graph();
        let vs = transitive_totality(&g);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].path, "crates/ebs-b/src/plan.rs");
    }

    #[test]
    fn qualified_cross_crate_paths_resolve_and_unmatched_qualifiers_do_not() {
        let decode = "pub fn decode(x: &[u8]) -> u32 { x[0] as u32 }\n";
        // Matching qualifier: `ebs_b::codec::decode` reaches the helper.
        let hit = Ws::new()
            .file(
                "crates/ebs-a/src/total.rs",
                true,
                "pub fn enter(b: &[u8]) -> u32 { ebs_b::codec::decode(b) }\n",
            )
            .file("crates/ebs-b/src/codec.rs", false, decode)
            .graph();
        assert_eq!(transitive_totality(&hit).len(), 1);

        // Unmatched qualifier (`other_ns::decode`) is a std/foreign call:
        // it must resolve to nothing rather than to every `decode`.
        let miss = Ws::new()
            .file(
                "crates/ebs-a/src/total.rs",
                true,
                "pub fn enter(b: &[u8]) -> u32 { other_ns::decode(b) }\n",
            )
            .file("crates/ebs-b/src/codec.rs", false, decode)
            .graph();
        assert!(transitive_totality(&miss).is_empty());
    }

    #[test]
    fn suppressed_panic_sites_do_not_propagate_reachability() {
        let g = Ws::new()
            .file(
                "crates/ebs-a/src/total.rs",
                true,
                "pub fn enter(x: u32) -> u32 { crate::help::probe(x) }\n",
            )
            .file(
                "crates/ebs-a/src/help.rs",
                false,
                "pub fn probe(x: u32) -> u32 {\n\
                     // ebs-lint: allow(D3) -- bounded by the caller's contract\n\
                     x.checked_add(1).unwrap()\n\
                 }\n",
            )
            .graph();
        assert!(transitive_totality(&g).is_empty());
    }

    #[test]
    fn test_gated_fns_stay_out_of_the_graph() {
        let g = Ws::new()
            .file(
                "crates/ebs-a/src/lib.rs",
                true,
                "pub fn enter() -> u32 { 0 }\n\
                 #[cfg(test)]\n\
                 mod tests {\n\
                     fn helper() { enter(); panic!(\"test-only\") }\n\
                 }\n",
            )
            .graph();
        assert_eq!(g.fns.len(), 1, "only `enter` is a graph node");
        assert!(transitive_totality(&g).is_empty());
    }

    #[test]
    fn find_and_callers_of_answer_graph_queries() {
        let g = Ws::new()
            .file(
                "crates/ebs-a/src/m.rs",
                false,
                "pub fn caller() { helper() }\npub fn helper() {}\n",
            )
            .graph();
        let helper = g.find("helper");
        assert_eq!(helper.len(), 1);
        assert_eq!(g.find("ebs_a::m::helper").len(), 1, "path suffix query");
        assert_eq!(g.find("nonexistent"), Vec::<usize>::new());
        let callers = g.callers_of(helper[0]);
        assert_eq!(callers.len(), 1);
        assert_eq!(g.fns[callers[0]].name, "caller");
    }
}
