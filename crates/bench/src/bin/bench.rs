//! Wall-clock baseline for the parallel execution layer.
//!
//! Times the three parallelized hot paths — dataset generation, the full
//! `bin/all` experiment driver, and the cache/balance sweeps — once with
//! the pool pinned to one thread (the pure serial path) and once pinned to
//! an **explicit** multi-thread count, then writes the timings, speedups,
//! and both thread counts to `BENCH_parallel.json`. (An earlier version
//! ran the "parallel" leg at the ambient thread count, which on a 1-CPU
//! container is also 1 — every recorded speedup was a vacuous ≈1.0 and
//! the JSON did not say so.)
//!
//! Usage: `bench [--quick|--medium|--full] [--iters N] [--threads N]
//! [--out PATH]`. `--threads` defaults to `max(4, available cores)` so the
//! parallel leg genuinely exercises the fan-out even on small hosts.
//! Every pair also asserts the parallel output equals the serial output,
//! so the baseline doubles as an end-to-end determinism check.

use ebs_balance::wt_rebind::{simulate_fleet, RebindConfig};
use ebs_core::parallel::{current_threads, set_thread_override};
use ebs_experiments::{dataset, driver, fig7, Scale, EXPERIMENT_SEED};
use ebs_workload::generate;
use std::time::Instant;

/// Best-of-`iters` wall time of `f`, in seconds, plus the last result.
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("at least one iteration"))
}

/// One serial-vs-parallel measurement.
struct Entry {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s
    }
}

/// Measure `f` at 1 thread and at `par_threads` threads, asserting the
/// outputs match.
fn measure<T: PartialEq>(
    name: &'static str,
    iters: usize,
    par_threads: usize,
    mut f: impl FnMut() -> T,
) -> Entry {
    set_thread_override(Some(1));
    let (serial_s, serial_out) = time_best(iters, &mut f);
    set_thread_override(Some(par_threads));
    let (parallel_s, parallel_out) = time_best(iters, &mut f);
    set_thread_override(None);
    assert!(
        serial_out == parallel_out,
        "{name}: parallel output diverged from serial"
    );
    Entry {
        name,
        serial_s,
        parallel_s,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Medium
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let iters: usize = flag("--iters")
        .map(|v| v.parse().expect("--iters N"))
        .unwrap_or(3);
    let par_threads: usize = flag("--threads")
        .map(|v| v.parse().expect("--threads N"))
        .filter(|&n| n > 1)
        .unwrap_or_else(|| current_threads().max(4));
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_parallel.json".to_string());

    let scale_name = format!("{scale:?}").to_lowercase();
    eprintln!(
        "benchmarking at scale {scale_name}, serial (1 thread) vs parallel ({par_threads} threads), best of {iters}"
    );

    let cfg = scale.config(EXPERIMENT_SEED);
    let mut entries = Vec::new();

    entries.push(measure("workload_generate", iters, par_threads, || {
        let ds = generate(&cfg).expect("canonical config must validate");
        let (read, write) = ds.total_bytes();
        (ds.events.len(), read.to_bits(), write.to_bits())
    }));

    let ds = dataset(scale);
    entries.push(measure("experiments_all", iters, par_threads, || {
        driver::run_all(&ds)
    }));

    let by_vd = driver::events_partition(&ds);
    entries.push(measure("cache_sweep", iters, par_threads, || {
        fig7::panel_a(&by_vd)
            .into_iter()
            .map(|r| (r.block_size, r.hit_ratio.p50.to_bits()))
            .collect::<Vec<_>>()
    }));
    entries.push(measure("balance_sweep", iters, par_threads, || {
        simulate_fleet(&ds.fleet, &ds.events, &RebindConfig::default())
    }));

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str("  \"serial_threads\": 1,\n");
    json.push_str(&format!("  \"parallel_threads\": {par_threads},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"paths\": [\n");
    for (i, e) in entries.iter().enumerate() {
        eprintln!(
            "{:>20}: serial {:8.3}s  parallel {:8.3}s  speedup {:5.2}x",
            e.name,
            e.serial_s,
            e.parallel_s,
            e.speedup()
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3}}}{}\n",
            e.name,
            e.serial_s,
            e.parallel_s,
            e.speedup(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write baseline");
    eprintln!("wrote {out_path}");
    // With EBS_OBS=1 the timed runs also populated the metrics registry;
    // drop the run report next to the baseline.
    ebs_obs::report::emit_global();
}
