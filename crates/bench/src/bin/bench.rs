//! Wall-clock baselines for the performance-critical layers, in two modes.
//!
//! **`--mode parallel`** (default) times the parallelized hot paths —
//! dataset generation, the full `bin/all` experiment driver, the
//! cache/balance sweeps, and the sharded generate/replay pipeline — once
//! with the pool pinned to one thread (the pure serial path) and once
//! pinned to an **explicit** multi-thread count, then writes the timings,
//! speedups, both thread counts, and the host's physical cpu count to
//! `BENCH_parallel.json`. Every leg takes one untimed warmup pass before
//! the best-of-N timing. (An earlier version ran the "parallel" leg at
//! the ambient thread count, which on a 1-CPU container is also 1 — every
//! recorded speedup was a vacuous ≈1.0 and the JSON did not say so;
//! `host_cpus` now makes that visible.) `--assert-scaling` fails the run
//! if any parallel leg is slower than serial — for CI on multi-core
//! runners; it degrades to a warning on single-cpu hosts.
//!
//! **`--mode hotpath`** times the zero-copy event index and the O(1) cache
//! kernels against the pre-optimization implementations, which are kept
//! verbatim in `ebs_cache::reference` — so every before/after pair runs in
//! the *same binary on the same host*, serial (1 thread pinned), and each
//! pair asserts the two legs produce identical results before a speedup is
//! recorded. Results go to `BENCH_hotpath.json`.
//!
//! **`--mode store`** races the `ebs-store` columnar container against the
//! CSV export for the same trace: encode, decode, and streaming-aggregate
//! throughput, plus on-disk size. Each pair asserts both legs reconstruct
//! the same events (or the same statistics) before a speedup is recorded.
//! Results go to `BENCH_store.json`; the run fails if decode is not ≥3x
//! faster than CSV parse or the store is not ≤0.5x the CSV size.
//!
//! **`--mode sim`** races the staged columnar stack simulator against the
//! preserved event-at-a-time `ebs_stack::reference` path: one standalone
//! run (speedup recorded for the record), and a 16-point latency sweep
//! where the staged side shares one `RoutePlan` + one RNG drain across
//! every point (the speedup the restructuring exists for, asserted ≥3x at
//! medium/full scale). Also times `experiments_all` against the recorded
//! pre-optimization wall time (asserted ≥2x at medium, the scale the
//! baseline was recorded at). Per-pass timings (route plan, pass A+B1
//! setup, cold and warm sweep points) go into `BENCH_sim.json`.
//!
//! Usage: `bench [--mode parallel|hotpath|store|sim]
//! [--quick|--medium|--full] [--iters N] [--threads N] [--out PATH]`.
//! `--threads` (parallel mode only) defaults to `max(4, available cores)`
//! so the parallel leg genuinely exercises the fan-out even on small
//! hosts.

use ebs_balance::wt_rebind::{simulate_fleet, RebindConfig};
use ebs_cache::hottest_block::{
    events_by_vd, hot_rate, hottest_block, HottestBlock, BLOCK_SIZES, HOT_RATE_WINDOW_US,
};
use ebs_cache::policy::{CachePolicy, PAGE_BYTES};
use ebs_cache::reference::{ref_hot_rate, RefFifoCache, RefLruCache};
use ebs_cache::simulate::{simulate, Algorithm};
use ebs_cache::{FifoCache, FrozenCache, LruCache};
use ebs_core::ids::VdId;
use ebs_core::index::EventIndex;
use ebs_core::io::Op;
use ebs_core::parallel::{current_threads, set_thread_override};
use ebs_experiments::{dataset, driver, fig7, Scale, EXPERIMENT_SEED};
use ebs_workload::{generate, Dataset};
use std::time::Instant;

/// Best-of-`iters` wall time of `f` after one untimed warmup pass, in
/// seconds, plus the last result. The warmup absorbs one-time costs —
/// page faults, lazy allocations, file-cache population — that would
/// otherwise land in the first timed iteration and, with few iters,
/// survive the min.
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = Some(f());
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("at least one iteration"))
}

/// One before/after (or serial/parallel) measurement.
struct Entry {
    name: &'static str,
    base_s: f64,
    new_s: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.base_s / self.new_s
    }
}

/// Measure `f` at 1 thread and at `par_threads` threads, asserting the
/// outputs match.
fn measure<T: PartialEq>(
    name: &'static str,
    iters: usize,
    par_threads: usize,
    mut f: impl FnMut() -> T,
) -> Entry {
    set_thread_override(Some(1));
    let (serial_s, serial_out) = time_best(iters, &mut f);
    set_thread_override(Some(par_threads));
    let (parallel_s, parallel_out) = time_best(iters, &mut f);
    set_thread_override(None);
    assert!(
        serial_out == parallel_out,
        "{name}: parallel output diverged from serial"
    );
    Entry {
        name,
        base_s: serial_s,
        new_s: parallel_s,
    }
}

/// Measure a before/after pair on the same inputs, asserting both legs
/// produce the same value. Caller is responsible for thread pinning.
fn measure_pair<T: PartialEq>(
    name: &'static str,
    iters: usize,
    mut before: impl FnMut() -> T,
    mut after: impl FnMut() -> T,
) -> Entry {
    let (base_s, base_out) = time_best(iters, &mut before);
    let (new_s, new_out) = time_best(iters, &mut after);
    assert!(
        base_out == new_out,
        "{name}: optimized output diverged from the reference"
    );
    Entry {
        name,
        base_s,
        new_s,
    }
}

/// Emit the measured entries as JSON (plus a console table) and write the
/// file. `labels` names the two timing columns.
fn write_report(out_path: &str, header: &str, labels: (&str, &str), entries: &[Entry]) {
    let mut json = String::from("{\n");
    json.push_str(header);
    json.push_str("  \"paths\": [\n");
    for (i, e) in entries.iter().enumerate() {
        eprintln!(
            "{:>20}: {} {:8.3}s  {} {:8.3}s  speedup {:5.2}x",
            e.name,
            labels.0,
            e.base_s,
            labels.1,
            e.new_s,
            e.speedup()
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"{}_s\": {:.6}, \"{}_s\": {:.6}, \"speedup\": {:.3}}}{}\n",
            e.name,
            labels.0,
            e.base_s,
            labels.1,
            e.new_s,
            e.speedup(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, json).expect("write baseline");
    eprintln!("wrote {out_path}");
}

/// Physical parallelism of this host, recorded next to every speedup so
/// a ≈1.0x figure from a 1-CPU container is never mistaken for a
/// regression (threads > cores can only timeslice, never speed up).
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The serial-vs-parallel baseline (BENCH_parallel.json).
fn run_parallel_mode(
    scale: Scale,
    iters: usize,
    par_threads: usize,
    assert_scaling: bool,
    out_path: &str,
) {
    let scale_name = format!("{scale:?}").to_lowercase();
    let cpus = host_cpus();
    eprintln!(
        "benchmarking at scale {scale_name}, serial (1 thread) vs parallel ({par_threads} threads), \
         best of {iters} after warmup, host has {cpus} cpu(s)"
    );

    let cfg = scale.config(EXPERIMENT_SEED);
    let mut entries = Vec::new();

    entries.push(measure("workload_generate", iters, par_threads, || {
        let ds = generate(&cfg).expect("canonical config must validate");
        let (read, write) = ds.total_bytes();
        (ds.events.len(), read.to_bits(), write.to_bits())
    }));

    let ds = dataset(scale);
    entries.push(measure("experiments_all", iters, par_threads, || {
        driver::run_all(&ds)
    }));

    let idx = ds.index();
    entries.push(measure("cache_sweep", iters, par_threads, || {
        fig7::panel_a(idx)
            .into_iter()
            .map(|r| (r.block_size, r.hit_ratio.p50.to_bits()))
            .collect::<Vec<_>>()
    }));
    entries.push(measure("balance_sweep", iters, par_threads, || {
        simulate_fleet(&ds.fleet, &ds.events, &RebindConfig::default())
    }));

    // The sharded fleet path: per-shard generation and streaming replay.
    // The shard count is fixed at `par_threads` for both legs, so the
    // measured difference is pure thread fan-out, not work partitioning;
    // the store bytes are identical either way.
    let shard_dir = std::env::temp_dir().join(format!("ebs-bench-shards-{}", std::process::id()));
    entries.push(measure("sharded_generate", iters, par_threads, || {
        std::fs::remove_dir_all(&shard_dir).ok();
        let m = ebs_workload::generate_sharded(&cfg, &shard_dir, par_threads, false)
            .expect("sharded generate");
        (m.total_events(), m.total_bytes())
    }));
    entries.push(measure("sharded_replay", iters, par_threads, || {
        let (m, s) = ebs_workload::replay_summary(&shard_dir).expect("sharded replay");
        (
            m.total_events(),
            s.ccr(0.2).map(f64::to_bits),
            s.p2a().map(f64::to_bits),
        )
    }));
    std::fs::remove_dir_all(&shard_dir).ok();

    let header = format!(
        "  \"scale\": \"{scale_name}\",\n  \"host_cpus\": {cpus},\n  \"serial_threads\": 1,\n  \"parallel_threads\": {par_threads},\n  \"iters\": {iters},\n"
    );
    write_report(out_path, &header, ("serial", "parallel"), &entries);

    if assert_scaling {
        // Meaningful only when the parallel leg had real cores to use;
        // on a smaller host the flag degrades to a warning so one CI
        // recipe works everywhere.
        if cpus >= 2 {
            for e in &entries {
                assert!(
                    e.speedup() >= 1.0,
                    "{}: parallel leg slower than serial ({:.2}x) on a {cpus}-cpu host",
                    e.name,
                    e.speedup()
                );
            }
        } else {
            eprintln!("--assert-scaling skipped: host has a single cpu, speedups are vacuous");
        }
    }
}

/// A deterministic skewed page stream for the cache-kernel micros:
/// 70 % in a hot set, 30 % over a wide range (mirrors the paper's
/// hot-block pattern at page granularity).
fn page_stream(n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11;
            if h % 10 < 7 {
                h % 8192
            } else {
                h % 4_000_000
            }
        })
        .collect()
}

/// Replay `stream` through `policy`, returning (hits, final residency).
fn replay<P: CachePolicy + ?Sized>(policy: &mut P, stream: &[u64]) -> u64 {
    let mut hits = 0u64;
    for &p in stream {
        if policy.access(p, Op::Read) {
            hits += 1;
        }
    }
    hits
}

/// The pre-optimization Figure 7(a) inner loop: dynamic dispatch over the
/// old LRU/FIFO kernels, per-VD event `Vec`s. Kept here (not in the
/// library) because it exists only to be raced against `fig7::panel_a`.
fn panel_a_reference(ds: &Dataset) -> Vec<(Algorithm, u64, u64)> {
    let by_vd = events_by_vd(&ds.fleet, &ds.events);
    let mut out = Vec::new();
    for &bs in &BLOCK_SIZES {
        for algo in Algorithm::ALL {
            let mut hits = 0u64;
            let mut accesses = 0u64;
            for (i, evs) in by_vd.iter().enumerate() {
                if evs.len() < ebs_experiments::fig6::MIN_EVENTS {
                    continue;
                }
                let Some(hb) = hottest_block(VdId::from_index(i), evs, bs) else {
                    continue;
                };
                let pages = (hb.block_size / PAGE_BYTES).max(1) as usize;
                let mut policy: Box<dyn CachePolicy> = match algo {
                    Algorithm::Fifo => Box::new(RefFifoCache::new(pages)),
                    Algorithm::Lru => Box::new(RefLruCache::new(pages)),
                    Algorithm::Frozen => Box::new(FrozenCache::covering_bytes(
                        hb.block * hb.block_size,
                        hb.block_size,
                    )),
                };
                let stats = simulate(policy.as_mut(), evs);
                hits += stats.hits;
                accesses += stats.accesses;
            }
            out.push((
                algo,
                bs,
                hits.wrapping_mul(1_000_003).wrapping_add(accesses),
            ));
        }
    }
    out
}

/// The optimized Figure 7(a) inner loop on the shared index, folded to the
/// same digest as [`panel_a_reference`] for the output-equality assert.
fn panel_a_indexed(idx: &EventIndex) -> Vec<(Algorithm, u64, u64)> {
    let mut out = Vec::new();
    for &bs in &BLOCK_SIZES {
        for algo in Algorithm::ALL {
            let mut hits = 0u64;
            let mut accesses = 0u64;
            for (i, evs) in idx.vd_slices().into_iter().enumerate() {
                if evs.len() < ebs_experiments::fig6::MIN_EVENTS {
                    continue;
                }
                let Some(hb) = hottest_block(VdId::from_index(i), evs, bs) else {
                    continue;
                };
                let pages = (hb.block_size / PAGE_BYTES).max(1) as usize;
                let stats = match algo {
                    Algorithm::Fifo => {
                        let mut p = FifoCache::new(pages);
                        simulate(&mut p, evs)
                    }
                    Algorithm::Lru => {
                        let mut p = LruCache::new(pages);
                        simulate(&mut p, evs)
                    }
                    Algorithm::Frozen => {
                        let mut p =
                            FrozenCache::covering_bytes(hb.block * hb.block_size, hb.block_size);
                        simulate(&mut p, evs)
                    }
                };
                hits += stats.hits;
                accesses += stats.accesses;
            }
            out.push((
                algo,
                bs,
                hits.wrapping_mul(1_000_003).wrapping_add(accesses),
            ));
        }
    }
    out
}

/// Per-VD hottest blocks over owned per-VD `Vec`s (before leg input).
fn hot_blocks_of(by_vd: &[Vec<ebs_core::io::IoEvent>], bs: u64) -> Vec<(usize, HottestBlock)> {
    by_vd
        .iter()
        .enumerate()
        .filter_map(|(i, evs)| hottest_block(VdId::from_index(i), evs, bs).map(|hb| (i, hb)))
        .collect()
}

/// The old-vs-new kernel baseline (BENCH_hotpath.json). Everything is
/// pinned to one thread: this mode measures single-core kernel cost, not
/// fan-out.
fn run_hotpath_mode(scale: Scale, iters: usize, out_path: &str) {
    let scale_name = format!("{scale:?}").to_lowercase();
    eprintln!(
        "benchmarking hot-path kernels at scale {scale_name}, before (reference) vs after (optimized), serial, best of {iters}"
    );
    set_thread_override(Some(1));

    let ds = dataset(scale);
    let mut entries = Vec::new();

    // Tentpole: one shared index build vs the per-VD copying partition.
    entries.push(measure_pair(
        "partition_build",
        iters,
        || {
            let by_vd = events_by_vd(&ds.fleet, &ds.events);
            by_vd.iter().map(Vec::len).collect::<Vec<_>>()
        },
        || {
            let idx = EventIndex::build(&ds.fleet, &ds.events);
            (0..idx.vd_count())
                .map(|i| idx.vd(VdId::from_index(i)).len())
                .collect::<Vec<_>>()
        },
    ));

    // Satellite: Dataset::events_for_vd, old linear filter vs index view.
    let idx = ds.index();
    entries.push(measure_pair(
        "vd_lookup",
        iters,
        || {
            (0..ds.fleet.vd_count())
                .map(|i| {
                    let vd = VdId::from_index(i);
                    ds.events.iter().filter(|e| e.vd == vd).count()
                })
                .sum::<usize>()
        },
        || {
            (0..ds.fleet.vd_count())
                .map(|i| idx.vd(VdId::from_index(i)).len())
                .sum::<usize>()
        },
    ));

    // Cache-kernel micros on a fixed skewed stream.
    let stream = page_stream(2_000_000);
    let capacity = (256 << 20) / PAGE_BYTES as usize; // 256 MiB of 4 KiB pages
    entries.push(measure_pair(
        "lru_access",
        iters,
        || {
            let mut c = RefLruCache::new(capacity);
            (replay(&mut c, &stream), c.residency())
        },
        || {
            let mut c = LruCache::new(capacity);
            (replay(&mut c, &stream), c.residency())
        },
    ));
    entries.push(measure_pair(
        "fifo_access",
        iters,
        || {
            let mut c = RefFifoCache::new(capacity);
            (replay(&mut c, &stream), c.residency())
        },
        || {
            let mut c = FifoCache::new(capacity);
            (replay(&mut c, &stream), c.residency())
        },
    ));

    // hot_rate: per-window hash map vs linear run-scan, over real VD data.
    let by_vd = events_by_vd(&ds.fleet, &ds.events);
    let hot = hot_blocks_of(&by_vd, 64 << 20);
    entries.push(measure_pair(
        "hot_rate",
        iters,
        || {
            hot.iter()
                .filter_map(|(i, hb)| ref_hot_rate(&by_vd[*i], hb, HOT_RATE_WINDOW_US, 3))
                .map(f64::to_bits)
                .collect::<Vec<_>>()
        },
        || {
            hot.iter()
                .filter_map(|(i, hb)| {
                    hot_rate(idx.vd(VdId::from_index(*i)), hb, HOT_RATE_WINDOW_US, 3)
                })
                .map(f64::to_bits)
                .collect::<Vec<_>>()
        },
    ));
    drop(by_vd);
    drop(hot);

    // The headline: the full Figure 7(a) policy × block-size sweep.
    entries.push(measure_pair(
        "cache_sweep",
        iters,
        || panel_a_reference(&ds),
        || panel_a_indexed(idx),
    ));

    // experiments_all has no in-binary "before" leg (the old partition
    // path is gone from the driver); record its absolute time so runs can
    // be compared across commits.
    let (run_all_s, _) = time_best(iters, || driver::run_all(&ds));
    eprintln!(
        "{:>20}: {:8.3}s (absolute, for cross-commit comparison)",
        "experiments_all", run_all_s
    );

    set_thread_override(None);

    let header = format!(
        "  \"scale\": \"{scale_name}\",\n  \"threads\": 1,\n  \"iters\": {iters},\n  \"experiments_all_s\": {run_all_s:.6},\n"
    );
    write_report(out_path, &header, ("before", "after"), &entries);
}

/// `experiments_all` wall time recorded on this host before the staged
/// sim pipeline and the cached attention refits landed
/// (`BENCH_hotpath.json` history: medium scale, 1 thread pinned). The
/// sim-mode gate is ≥2x this figure.
const BASELINE_EXPERIMENTS_ALL_S: f64 = 2.407;

/// Latency points in the sim-mode sweep leg.
const SWEEP_POINTS: usize = 16;

/// Order-sensitive digest of a simulation output. The stats carry the
/// exact f64 sum of every per-event latency, so any divergence anywhere
/// moves `mean_latency_us`; a strided fold over full records adds
/// structural coverage without the digest itself dominating the timed
/// loop (exhaustive staged == reference equality is pinned separately by
/// the differential tests). Kept cheap on purpose: it runs inside both
/// timed legs.
fn sim_digest(o: &ebs_stack::SimOutput) -> (u64, u64, u64, u64) {
    let mut h = 0u64;
    for r in o.traces.records().iter().step_by(16) {
        for bits in [
            r.lat.compute_us.to_bits(),
            r.lat.frontend_us.to_bits(),
            r.lat.block_server_us.to_bits(),
            r.lat.backend_us.to_bits(),
            r.lat.chunk_server_us.to_bits(),
        ] {
            h = h.rotate_left(7) ^ bits;
        }
        h = h.wrapping_add(r.wt.index() as u64 ^ ((r.seg.index() as u64) << 20));
    }
    (
        o.traces.len() as u64,
        o.stats.mean_latency_us.to_bits(),
        o.stats.throttled ^ (o.stats.prefetch_hits << 24) ^ (o.stats.gc_runs << 48),
        h,
    )
}

/// The staged-vs-reference simulator baseline (BENCH_sim.json): the
/// columnar three-pass pipeline against the preserved per-event loop,
/// standalone and under a config sweep, serial.
fn run_sim_mode(scale: Scale, iters: usize, out_path: &str) {
    use ebs_stack::sim::{StackConfig, StackSim, StackSweep};
    use ebs_stack::ReferenceSim;

    let scale_name = format!("{scale:?}").to_lowercase();
    eprintln!(
        "benchmarking stack sim at scale {scale_name}, reference (per-event) vs staged \
         (columnar), serial, best of {iters}"
    );
    set_thread_override(Some(1));
    let ds = dataset(scale);
    let events = ds.events.len();
    let base_cfg = StackConfig::default();

    let mut entries = Vec::new();

    // One standalone run. The staged pipeline pays columnar
    // materialization here without amortizing it, so this pair is recorded
    // for honesty, not gated.
    entries.push(measure_pair(
        "stack_sim_run",
        iters,
        || {
            sim_digest(
                &ReferenceSim::new(&ds.fleet, base_cfg.clone())
                    .run(&ds.events)
                    .expect("generated events are time-sorted"),
            )
        },
        || {
            let mut sim = StackSim::new(&ds.fleet, base_cfg.clone());
            sim_digest(
                &sim.run(&ds.events)
                    .expect("generated events are time-sorted"),
            )
        },
    ));

    // The headline: a latency sweep. The old way is one full simulation
    // per config point; the staged way shares one route plan, one state
    // replay, and one RNG drain across all of them.
    // A replication-tail ablation: each point scales the ChunkServer
    // write stage. Varying one stage is the common sweep shape, and it is
    // what the staged side's stage cache is built for — the five
    // untouched stages re-evaluate exactly once across the whole sweep.
    let sweep_cfgs: Vec<StackConfig> = (0..SWEEP_POINTS)
        .map(|i| {
            let mut c = base_cfg.clone();
            c.latency.cs_write.base_us *= 1.0 + 0.05 * i as f64;
            c.latency.cs_write.tail_mult *= 1.0 + 0.01 * i as f64;
            c
        })
        .collect();
    entries.push(measure_pair(
        "stack_sim_sweep16",
        iters,
        || {
            sweep_cfgs
                .iter()
                .map(|c| {
                    sim_digest(
                        &ReferenceSim::new(&ds.fleet, c.clone())
                            .run(&ds.events)
                            .expect("generated events are time-sorted"),
                    )
                })
                .collect::<Vec<_>>()
        },
        || {
            let sim = StackSim::new(&ds.fleet, base_cfg.clone());
            let plan = sim
                .plan(&ds.events)
                .expect("generated events are time-sorted");
            let mut sweep = StackSweep::new(&ds.fleet, &ds.events, &plan, base_cfg.clone())
                .expect("base config is sweepable");
            sweep_cfgs
                .iter()
                .map(|c| sim_digest(&sweep.run_point(c).expect("points vary latency only")))
                .collect::<Vec<_>>()
        },
    ));

    // Per-pass costs, for the record: where a staged run's time goes.
    let sim = StackSim::new(&ds.fleet, base_cfg.clone());
    let (route_plan_s, plan) = time_best(iters, || {
        sim.plan(&ds.events)
            .expect("generated events are time-sorted")
    });
    let (sweep_setup_s, _) = time_best(iters, || {
        StackSweep::new(&ds.fleet, &ds.events, &plan, base_cfg.clone())
            .map(|_| ())
            .expect("base config is sweepable")
    });
    let mut sweep = StackSweep::new(&ds.fleet, &ds.events, &plan, base_cfg.clone())
        .expect("base config is sweepable");
    let t0 = Instant::now();
    let cold = sweep.run_point(&base_cfg).expect("base point");
    let point_cold_s = t0.elapsed().as_secs_f64();
    let (point_warm_s, warm_digest) = time_best(iters, || {
        sim_digest(&sweep.run_point(&base_cfg).expect("base point"))
    });
    assert_eq!(
        sim_digest(&cold),
        warm_digest,
        "warm point diverged from cold"
    );
    eprintln!(
        "passes: route_plan {route_plan_s:.4}s, A+B1 setup {sweep_setup_s:.4}s, \
         cold point {point_cold_s:.4}s, warm point {point_warm_s:.4}s"
    );

    // experiments_all: absolute wall time against the recorded
    // pre-optimization baseline.
    let (run_all_s, _) = time_best(iters, || driver::run_all(&ds));
    let all_speedup = BASELINE_EXPERIMENTS_ALL_S / run_all_s;
    eprintln!(
        "{:>20}: {run_all_s:8.3}s (recorded baseline {BASELINE_EXPERIMENTS_ALL_S:.3}s, \
         {all_speedup:.2}x)",
        "experiments_all"
    );
    set_thread_override(None);

    let sweep_entry = &entries[1];
    // Quick-scale slices are too small for the setup amortization to show
    // fully, so the smoke floor is relaxed there; the 3x gate binds at
    // the scales the work is sized for.
    let sweep_floor = if scale == Scale::Quick { 1.5 } else { 3.0 };
    assert!(
        sweep_entry.speedup() >= sweep_floor,
        "staged sweep must be >={sweep_floor}x the per-point reference, measured {:.2}x",
        sweep_entry.speedup()
    );
    if scale == Scale::Medium {
        // The baseline was recorded at medium scale on this host; other
        // scales have no comparable figure.
        assert!(
            all_speedup >= 2.0,
            "experiments_all must be >=2x the recorded {BASELINE_EXPERIMENTS_ALL_S:.3}s \
             baseline, measured {all_speedup:.2}x ({run_all_s:.3}s)"
        );
    }

    let header = format!(
        "  \"scale\": \"{scale_name}\",\n  \"threads\": 1,\n  \"iters\": {iters},\n  \
         \"events\": {events},\n  \"sweep_points\": {SWEEP_POINTS},\n  \
         \"route_plan_s\": {route_plan_s:.6},\n  \"sweep_setup_s\": {sweep_setup_s:.6},\n  \
         \"point_cold_s\": {point_cold_s:.6},\n  \"point_warm_s\": {point_warm_s:.6},\n  \
         \"experiments_all_s\": {run_all_s:.6},\n  \
         \"baseline_experiments_all_s\": {BASELINE_EXPERIMENTS_ALL_S},\n  \
         \"experiments_all_speedup\": {all_speedup:.3},\n"
    );
    write_report(out_path, &header, ("reference", "staged"), &entries);
}

/// v1 decode throughput recorded on this host before the v2 batched
/// codecs landed (BENCH_store.json history, medium scale). The v2 gate is
/// ≥5x this figure.
const BASELINE_DECODE_EVENTS_PER_S: f64 = 18_652_169.0;

/// Build a format-v1 container around `events`: the exact byte layout the
/// pre-v2 writer produced (per-value LEB128 payloads), used to race the
/// legacy decoder against v2 inside one binary on one host.
fn v1_container(events: &[ebs_core::io::IoEvent], per_chunk: usize) -> Vec<u8> {
    use ebs_store::columns::encode_events_v1;
    use ebs_store::format::kind;
    use ebs_store::{crc32, ByteWriter, MAGIC};

    let mut bytes = Vec::new();
    let frame = |bytes: &mut Vec<u8>, chunk_kind: u8, payload: &[u8]| {
        bytes.push(chunk_kind);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
    };
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&1u32.to_le_bytes());
    let mut chunks = 0u64;
    for chunk in events.chunks(per_chunk.max(1)) {
        let payload = encode_events_v1(chunk).expect("v1 encode");
        frame(&mut bytes, kind::EVENTS, &payload);
        chunks += 1;
    }
    let mut end = ByteWriter::new();
    end.put_varint(chunks);
    end.put_varint(events.len() as u64);
    frame(&mut bytes, kind::END, &end.into_bytes());
    bytes
}

/// The store-vs-CSV baseline (BENCH_store.json): same trace, columnar
/// container against the CSV pipeline, serial.
fn run_store_mode(scale: Scale, iters: usize, out_path: &str) {
    use ebs_store::{fold_store, ChunkReader, StoreWriter, StreamSummary, EVENTS_PER_CHUNK};
    use ebs_workload::export::{
        read_events_csv, write_compute_metrics_csv, write_events_csv, write_specs_csv,
        write_storage_metrics_csv,
    };

    let scale_name = format!("{scale:?}").to_lowercase();
    eprintln!(
        "benchmarking trace store at scale {scale_name}, csv vs ebs-store, serial, best of {iters}"
    );
    set_thread_override(Some(1));
    let ds = dataset(scale);
    let events = ds.events.len();

    // The CSV side of the size comparison: all four tables, since the
    // store holds config + specs + both metric domains + events.
    let mut csv_events = Vec::new();
    write_events_csv(&ds, &mut csv_events).expect("csv encode");
    let mut csv_total = csv_events.len();
    type CsvLeg = fn(&Dataset, &mut Vec<u8>) -> std::io::Result<()>;
    let legs: [CsvLeg; 3] = [
        |ds, w| write_compute_metrics_csv(ds, w),
        |ds, w| write_storage_metrics_csv(ds, w),
        |ds, w| write_specs_csv(ds, w),
    ];
    for writer in legs {
        let mut buf = Vec::new();
        writer(&ds, &mut buf).expect("csv encode");
        csv_total += buf.len();
    }

    // Events-only store container, the counterpart of events.csv.
    let store_trace = {
        let mut w = StoreWriter::new(Vec::new()).expect("store header");
        w.write_events_chunked(&ds.events, EVENTS_PER_CHUNK)
            .expect("store encode");
        w.finish().expect("store finish")
    };
    // The full container, the counterpart of the 4-file CSV export.
    let store_full = {
        use ebs_store::format::kind;
        use ebs_workload::store::{encode_config, spec_rows};
        let mut w = StoreWriter::new(Vec::new()).expect("store header");
        w.write_chunk(kind::CONFIG, &encode_config(&ds.config))
            .expect("config chunk");
        w.write_specs(&spec_rows(&ds.fleet).expect("generated fleet is well-formed"))
            .expect("specs chunk");
        w.write_series(
            kind::COMPUTE_METRICS,
            ds.compute.ticks,
            ds.compute.per_qp.as_slice(),
        )
        .expect("compute chunk");
        w.write_series(
            kind::STORAGE_METRICS,
            ds.storage.ticks,
            ds.storage.per_seg.as_slice(),
        )
        .expect("storage chunk");
        w.write_events_chunked(&ds.events, EVENTS_PER_CHUNK)
            .expect("event chunks");
        w.finish().expect("store finish")
    };

    let mut entries = Vec::new();
    entries.push(measure_pair(
        "trace_encode",
        iters,
        || {
            let mut buf = Vec::new();
            write_events_csv(&ds, &mut buf).expect("csv encode");
            events
        },
        || {
            let mut w = StoreWriter::new(Vec::new()).expect("store header");
            w.write_events_chunked(&ds.events, EVENTS_PER_CHUNK)
                .expect("store encode");
            w.finish().expect("store finish");
            events
        },
    ));
    // Store decode runs the staged batch pipeline the format is designed
    // for: borrow each CRC-verified chunk straight out of the image
    // (no payload copy), decode it into reused column scratch, and fuse
    // rows into one reused output vector — zero allocation per chunk, and
    // zero per-iteration, in steady state. Legs are compared by an O(1)
    // digest so the output buffer can be reused across iterations.
    let decode_staged = |bytes: &[u8],
                         scratch: &mut ebs_store::EventScratch,
                         out: &mut Vec<ebs_core::io::IoEvent>| {
        use ebs_store::columns::{decode_events_v2_into, events_from_columns};
        use ebs_store::format::kind;
        out.clear();
        let mut r = ebs_store::SliceChunkReader::new(bytes).expect("store header");
        while let Some((chunk_kind, payload)) = r.next_chunk().expect("store walk") {
            if chunk_kind != kind::EVENTS {
                continue;
            }
            decode_events_v2_into(payload, scratch).expect("store decode");
            events_from_columns(&scratch.columns(), out).expect("store decode");
        }
    };
    let trace_digest =
        |evs: &[ebs_core::io::IoEvent]| (evs.len(), evs.first().copied(), evs.last().copied());
    let mut scratch = ebs_store::EventScratch::new();
    let mut rows: Vec<ebs_core::io::IoEvent> = Vec::with_capacity(events);
    entries.push(measure_pair(
        "trace_decode",
        iters,
        || trace_digest(&read_events_csv(csv_events.as_slice()).expect("csv parse")),
        || {
            decode_staged(&store_trace, &mut scratch, &mut rows);
            trace_digest(&rows)
        },
    ));
    // The v2 headline: legacy per-value v1 decode vs the batched column
    // decode, same trace, same binary, same host. This relative pair keeps
    // the comparison meaningful on any machine; the absolute gate below
    // pins the 5x target to the recorded baseline. The v1 leg runs the
    // pipeline that shipped with v1 — buffered chunk walk, per-value
    // varints, a fresh event batch per chunk, 64 Ki events per chunk —
    // which is the pipeline the recorded baseline measured.
    let store_v1 = v1_container(&ds.events, 65_536);
    entries.push(measure_pair(
        "decode_v1_v2",
        iters,
        || {
            let mut out = Vec::with_capacity(events);
            for batch in ChunkReader::new(store_v1.as_slice())
                .expect("store header")
                .into_event_chunks()
            {
                out.extend(batch.expect("store decode"));
            }
            trace_digest(&out)
        },
        || {
            decode_staged(&store_trace, &mut scratch, &mut rows);
            trace_digest(&rows)
        },
    ));
    // Streaming aggregation: CCR / P2A / median request size straight off
    // the serialized bytes, without materializing the trace.
    let ticks = ds.config.storage_ticks();
    let vd_count = ds.fleet.vd_count();
    let digest = |s: &StreamSummary| {
        (
            s.ccr(0.2).map(f64::to_bits),
            s.p2a().map(f64::to_bits),
            s.size_quantile(0.5).map(f64::to_bits),
        )
    };
    entries.push(measure_pair(
        "stream_aggregate",
        iters,
        || {
            let evs = read_events_csv(csv_events.as_slice()).expect("csv parse");
            let mut s = StreamSummary::new(vd_count, ticks);
            s.fold_chunk(&evs).expect("fold");
            digest(&s)
        },
        || {
            let mut s = StreamSummary::new(vd_count, ticks);
            let reader = ChunkReader::new(store_trace.as_slice()).expect("store header");
            fold_store(reader, &mut s).expect("fold");
            digest(&s)
        },
    ));
    set_thread_override(None);

    // Per-column byte accounting for both containers, so a future size
    // regression points at a specific column instead of an opaque ratio.
    let trace_stats =
        ebs_store::StoreStats::scan(store_trace.as_slice()).expect("trace store scan");
    let full_stats = ebs_store::StoreStats::scan(store_full.as_slice()).expect("full store scan");
    for line in full_stats.render() {
        eprintln!("{line}");
    }

    // The asserted ratio compares equivalent data: the events-only container
    // against events.csv. Since v2 packs integral metric samples as integer
    // columns, the full 4-table comparison is gated too.
    let size_ratio = store_trace.len() as f64 / csv_events.len() as f64;
    let full_ratio = store_full.len() as f64 / csv_total as f64;
    let decode = &entries[1];
    let v1_v2 = &entries[2];
    let decode_rate = events as f64 / decode.new_s;
    eprintln!(
        "decode: v2 batched {:.1}M ev/s, v1 per-value {:.1}M ev/s ({:.2}x), recorded v1 \
         baseline {:.1}M ev/s ({:.2}x)",
        decode_rate / 1e6,
        events as f64 / v1_v2.base_s / 1e6,
        v1_v2.speedup(),
        BASELINE_DECODE_EVENTS_PER_S / 1e6,
        decode_rate / BASELINE_DECODE_EVENTS_PER_S
    );
    eprintln!(
        "on-disk: trace store {} bytes vs events.csv {} bytes (ratio {:.3}); \
         full store {} bytes vs all csv tables {} bytes (ratio {:.3})",
        store_trace.len(),
        csv_events.len(),
        size_ratio,
        store_full.len(),
        csv_total,
        full_ratio
    );
    assert!(
        decode.speedup() >= 3.0,
        "store decode must be >=3x faster than CSV parse, measured {:.2}x",
        decode.speedup()
    );
    assert!(
        v1_v2.speedup() >= 3.0,
        "v2 batched decode must be >=3x faster than the v1 per-value decode, \
         measured {:.2}x",
        v1_v2.speedup()
    );
    if scale != Scale::Quick {
        // The absolute gate matches the scale the baseline was recorded at;
        // quick-scale traces are too small to time it meaningfully.
        assert!(
            decode_rate >= 5.0 * BASELINE_DECODE_EVENTS_PER_S,
            "v2 decode must reach 5x the recorded v1 baseline \
             ({BASELINE_DECODE_EVENTS_PER_S:.0} ev/s), measured {decode_rate:.0} ev/s"
        );
    }
    assert!(
        size_ratio <= 0.5,
        "trace store must be <=0.5x the size of events.csv, measured {size_ratio:.3}"
    );
    if scale != Scale::Quick {
        // Quick-scale containers are dominated by the dense metric grids
        // (hundreds of KB of series over <1k events), so the full-tables
        // ratio says nothing about the event codecs there.
        assert!(
            full_ratio <= 0.5,
            "full store must be <=0.5x the size of the CSV tables, measured {full_ratio:.3}"
        );
    }

    let col = &trace_stats.columns;
    let header = format!(
        "  \"scale\": \"{scale_name}\",\n  \"threads\": 1,\n  \"iters\": {iters},\n  \
         \"events\": {events},\n  \"csv_bytes\": {},\n  \
         \"store_bytes\": {},\n  \"size_ratio\": {size_ratio:.4},\n  \
         \"full_csv_bytes\": {csv_total},\n  \"full_store_bytes\": {},\n  \
         \"full_size_ratio\": {full_ratio:.4},\n  \
         \"encode_events_per_s\": {:.0},\n  \"decode_events_per_s\": {:.0},\n  \
         \"decode_v1_events_per_s\": {:.0},\n  \"stream_events_per_s\": {:.0},\n  \
         \"event_column_bytes\": {{\"header\": {}, \"timestamps\": {}, \"vd\": {}, \
         \"qp\": {}, \"size\": {}, \"offset\": {}}},\n  \
         \"full_chunk_bytes\": {{\"events\": {}, \"compute\": {}, \"storage\": {}, \
         \"specs\": {}, \"config\": {}, \"frames\": {}}},\n",
        csv_events.len(),
        store_trace.len(),
        store_full.len(),
        events as f64 / entries[0].new_s,
        decode_rate,
        events as f64 / v1_v2.base_s,
        events as f64 / entries[3].new_s,
        col.header,
        col.timestamps,
        col.vd,
        col.qp,
        col.size,
        col.offset,
        full_stats.events_bytes,
        full_stats.compute_bytes,
        full_stats.storage_bytes,
        full_stats.specs_bytes,
        full_stats.config_bytes,
        full_stats.frame_bytes + full_stats.end_bytes + full_stats.other_bytes,
    );
    write_report(out_path, &header, ("csv", "store"), &entries);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Medium
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let iters: usize = flag("--iters")
        .map(|v| v.parse().expect("--iters N"))
        .unwrap_or(3);
    let mode = flag("--mode").unwrap_or_else(|| "parallel".to_string());

    match mode.as_str() {
        "parallel" => {
            let par_threads: usize = flag("--threads")
                .map(|v| v.parse().expect("--threads N"))
                .filter(|&n| n > 1)
                .unwrap_or_else(|| current_threads().max(4));
            let out_path = flag("--out").unwrap_or_else(|| "BENCH_parallel.json".to_string());
            let assert_scaling = args.iter().any(|a| a == "--assert-scaling");
            run_parallel_mode(scale, iters, par_threads, assert_scaling, &out_path);
        }
        "hotpath" => {
            let out_path = flag("--out").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
            run_hotpath_mode(scale, iters, &out_path);
        }
        "store" => {
            let out_path = flag("--out").unwrap_or_else(|| "BENCH_store.json".to_string());
            run_store_mode(scale, iters, &out_path);
        }
        "sim" => {
            let out_path = flag("--out").unwrap_or_else(|| "BENCH_sim.json".to_string());
            run_sim_mode(scale, iters, &out_path);
        }
        other => {
            eprintln!(
                "unknown --mode {other:?} (expected \"parallel\", \"hotpath\", \"store\", or \"sim\")"
            );
            std::process::exit(2);
        }
    }
    // With EBS_OBS=1 the timed runs also populated the metrics registry;
    // drop the run report next to the baseline.
    ebs_obs::report::emit_global();
}
