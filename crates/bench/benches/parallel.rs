//! Serial vs parallel benchmarks for the three hot paths behind
//! `ebs_core::parallel`: dataset generation, the experiment driver, and
//! the cache/balance sweeps. Each pair pins the thread count with
//! `set_thread_override` — 1 thread is the pure serial path — so the same
//! code is measured at both ends.

use criterion::{criterion_group, criterion_main, Criterion};
use ebs_balance::wt_rebind::{simulate_fleet, RebindConfig};
use ebs_core::parallel::set_thread_override;
use ebs_experiments::driver;
use ebs_experiments::{dataset, Scale};
use ebs_workload::{generate, WorkloadConfig};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let cfg = WorkloadConfig::medium(7);
    let mut g = c.benchmark_group("parallel/generate_medium");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        set_thread_override(Some(1));
        b.iter(|| generate(black_box(&cfg)).unwrap());
        set_thread_override(None);
    });
    g.bench_function("parallel", |b| {
        b.iter(|| generate(black_box(&cfg)).unwrap());
    });
    g.finish();
}

fn bench_driver(c: &mut Criterion) {
    let ds = dataset(Scale::Quick);
    let mut g = c.benchmark_group("parallel/experiments_quick");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        set_thread_override(Some(1));
        b.iter(|| driver::run_all(black_box(&ds)));
        set_thread_override(None);
    });
    g.bench_function("parallel", |b| {
        b.iter(|| driver::run_all(black_box(&ds)));
    });
    g.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    let ds = generate(&WorkloadConfig::medium(9)).unwrap();
    let idx = ds.index();
    let mut g = c.benchmark_group("parallel/sweeps_medium");
    g.sample_size(10);
    g.bench_function("cache_serial", |b| {
        set_thread_override(Some(1));
        b.iter(|| ebs_experiments::fig7::panel_a(black_box(idx)));
        set_thread_override(None);
    });
    g.bench_function("cache_parallel", |b| {
        b.iter(|| ebs_experiments::fig7::panel_a(black_box(idx)));
    });
    g.bench_function("rebind_serial", |b| {
        set_thread_override(Some(1));
        b.iter(|| simulate_fleet(&ds.fleet, black_box(&ds.events), &RebindConfig::default()));
        set_thread_override(None);
    });
    g.bench_function("rebind_parallel", |b| {
        b.iter(|| simulate_fleet(&ds.fleet, black_box(&ds.events), &RebindConfig::default()));
    });
    g.finish();
}

criterion_group!(benches, bench_generation, bench_driver, bench_sweeps);
criterion_main!(benches);
