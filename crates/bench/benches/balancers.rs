//! Balancer benchmarks: Algorithm 1 over a cluster per importer strategy,
//! and the 10 ms QP-rebinding simulation over a fleet's event stream.

use criterion::{criterion_group, criterion_main, Criterion};
use ebs_balance::bs_balancer::{run_balancer, BalancerConfig};
use ebs_balance::importer::ImporterSelect;
use ebs_balance::wt_rebind::{simulate_fleet, RebindConfig};
use ebs_core::ids::DcId;
use ebs_workload::{generate, WorkloadConfig};
use std::hint::black_box;

fn bench_bs_balancer(c: &mut Criterion) {
    let ds = generate(&WorkloadConfig::quick(6)).unwrap();
    let mut g = c.benchmark_group("balance/algorithm1");
    g.sample_size(20);
    for strategy in [
        ImporterSelect::MinTraffic,
        ImporterSelect::Ideal,
        ImporterSelect::Lunule,
    ] {
        let cfg = BalancerConfig {
            strategy,
            ..BalancerConfig::default()
        };
        g.bench_function(strategy.label(), |b| {
            b.iter(|| run_balancer(black_box(&ds.fleet), black_box(&ds.storage), DcId(0), &cfg))
        });
    }
    g.finish();
}

fn bench_rebind(c: &mut Criterion) {
    let ds = generate(&WorkloadConfig::quick(7)).unwrap();
    let mut g = c.benchmark_group("balance/wt_rebind");
    g.sample_size(20);
    g.bench_function("fleet_10ms_periods", |b| {
        b.iter(|| {
            simulate_fleet(
                black_box(&ds.fleet),
                black_box(&ds.events),
                &RebindConfig::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bs_balancer, bench_rebind);
criterion_main!(benches);
