//! Predictor benchmarks: fit + one-step forecast cost for the P1–P5
//! lineup — the training-overhead half of the paper's accuracy/overhead
//! trade-off (§6.1.3).

use criterion::{criterion_group, criterion_main, Criterion};
use ebs_predict::eval::Predictor;
use ebs_predict::{Arima, AttentionRegressor, Gbdt, LinearFit};
use std::hint::black_box;

fn traffic_series(n: usize) -> Vec<f64> {
    let mut s = vec![40.0, 44.0];
    for i in 2..n {
        let noise = (((i * 40503) % 89) as f64 - 44.0) * 0.2;
        let burst = if i % 37 == 0 { 120.0 } else { 0.0 };
        s.push(0.6 * s[i - 1] + 0.3 * s[i - 2] + 5.0 + noise + burst);
    }
    s
}

fn bench_fit(c: &mut Criterion) {
    let series = traffic_series(400);
    let mut g = c.benchmark_group("predict/fit_400_periods");
    g.bench_function("linear", |b| {
        let mut m = LinearFit::default();
        b.iter(|| m.fit(black_box(&series)))
    });
    g.bench_function("arima", |b| {
        let mut m = Arima::default();
        b.iter(|| m.fit(black_box(&series)))
    });
    g.sample_size(10);
    g.bench_function("gbdt", |b| {
        let mut m = Gbdt::default();
        b.iter(|| m.fit(black_box(&series)))
    });
    g.bench_function("attention", |b| {
        let mut m = AttentionRegressor::default();
        b.iter(|| m.fit(black_box(&series)))
    });
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let series = traffic_series(400);
    let mut g = c.benchmark_group("predict/one_step");
    let mut linear = LinearFit::default();
    linear.fit(&series);
    g.bench_function("linear", |b| {
        b.iter(|| linear.predict_next(black_box(&series)))
    });
    let mut arima = Arima::default();
    arima.fit(&series);
    g.bench_function("arima", |b| {
        b.iter(|| arima.predict_next(black_box(&series)))
    });
    let mut gbdt = Gbdt::default();
    gbdt.fit(&series);
    g.bench_function("gbdt", |b| b.iter(|| gbdt.predict_next(black_box(&series))));
    let mut attention = AttentionRegressor::default();
    attention.fit(&series);
    g.bench_function("attention", |b| {
        b.iter(|| attention.predict_next(black_box(&series)))
    });
    g.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
