//! Cache-policy benchmarks: per-access cost of FIFO, LRU, and FrozenHot,
//! and a full per-VD trace-driven simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ebs_cache::hottest_block::hottest_block;
use ebs_cache::policy::CachePolicy;
use ebs_cache::simulate::{build_policy, simulate, Algorithm};
use ebs_cache::{FifoCache, FrozenCache, LruCache};
use ebs_core::ids::VdId;
use ebs_core::io::Op;
use ebs_workload::{generate, WorkloadConfig};
use std::hint::black_box;

fn access_stream(n: usize) -> Vec<u64> {
    // 70 % hits a 1k-page hot set, 30 % uniform over 1M pages.
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11;
            if h % 10 < 7 {
                h % 1024
            } else {
                h % 1_000_000
            }
        })
        .collect()
}

fn bench_policy_access(c: &mut Criterion) {
    let stream = access_stream(100_000);
    let mut g = c.benchmark_group("cache/access_100k");
    g.bench_function("fifo", |b| {
        b.iter_batched(
            || FifoCache::new(4096),
            |mut cache| {
                for &p in &stream {
                    black_box(cache.access(p, Op::Read));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("lru", |b| {
        b.iter_batched(
            || LruCache::new(4096),
            |mut cache| {
                for &p in &stream {
                    black_box(cache.access(p, Op::Read));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("frozen", |b| {
        b.iter_batched(
            || FrozenCache::new(0, 4096),
            |mut cache| {
                for &p in &stream {
                    black_box(cache.access(p, Op::Read));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_trace_simulation(c: &mut Criterion) {
    let ds = generate(&WorkloadConfig::quick(5)).unwrap();
    let by_vd = ds.index().vd_slices();
    let (idx, &events) = by_vd
        .iter()
        .enumerate()
        .max_by_key(|(_, e)| e.len())
        .expect("non-empty");
    let hb = hottest_block(VdId::from_index(idx), events, 256 << 20).unwrap();
    let mut g = c.benchmark_group("cache/simulate_busiest_vd");
    for algo in Algorithm::ALL {
        g.bench_function(algo.label(), |b| {
            b.iter_batched(
                || build_policy(algo, &hb),
                |mut policy| simulate(policy.as_mut(), black_box(events)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policy_access, bench_trace_simulation);
criterion_main!(benches);
