//! End-to-end stack-path benchmark: IOs/second through the full simulated
//! pipeline (hypervisor → throttle → networks → BS → CS), plus the cost of
//! the per-IO building blocks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ebs_core::rng::SimRng;
use ebs_stack::latency::LatencyModel;
use ebs_stack::sim::{StackConfig, StackSim};
use ebs_stack::throttle_gate::TokenBucket;
use ebs_workload::{generate, WorkloadConfig};
use std::hint::black_box;

fn bench_full_path(c: &mut Criterion) {
    let ds = generate(&WorkloadConfig::quick(8)).unwrap();
    let mut g = c.benchmark_group("stack/route_events");
    g.throughput(Throughput::Elements(ds.events.len() as u64));
    g.sample_size(10);
    for (name, throttle) in [("with_throttle", true), ("no_throttle", false)] {
        let cfg = StackConfig {
            apply_throttle: throttle,
            ..StackConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter_batched(
                || StackSim::new(&ds.fleet, cfg.clone()),
                |mut sim| sim.run(black_box(&ds.events)).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let model = LatencyModel::default();
    let mut rng = SimRng::seed_from_u64(1);
    c.bench_function("stack/latency_sample", |b| {
        b.iter(|| black_box(model.frontend.sample(&mut rng, 65536)))
    });
    c.bench_function("stack/token_bucket_admit", |b| {
        let mut bucket = TokenBucket::new(1e9, 1e9);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            black_box(bucket.admit(t, 4096.0))
        })
    });
}

criterion_group!(benches, bench_full_path, bench_primitives);
criterion_main!(benches);
