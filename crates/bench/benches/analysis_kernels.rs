//! Statistics-kernel benchmarks: CCR, P2A, CoV, quantiles, and metric
//! roll-ups at realistic sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use ebs_analysis::aggregate::{rollup_compute, ComputeLevel};
use ebs_analysis::{ccr, normalized_cov, p2a, quantile};
use ebs_core::metric::Measure;
use ebs_workload::{generate, WorkloadConfig};
use std::hint::black_box;

fn series(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 2654435761) % 10_007) as f64).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let v = series(10_000);
    c.bench_function("analysis/ccr_10k", |b| b.iter(|| ccr(black_box(&v), 0.01)));
    c.bench_function("analysis/p2a_10k", |b| b.iter(|| p2a(black_box(&v))));
    c.bench_function("analysis/normalized_cov_10k", |b| {
        b.iter(|| normalized_cov(black_box(&v)))
    });
    c.bench_function("analysis/quantile_10k", |b| {
        b.iter(|| quantile(black_box(&v), 0.99))
    });
}

fn bench_rollup(c: &mut Criterion) {
    let ds = generate(&WorkloadConfig::quick(3)).unwrap();
    c.bench_function("analysis/rollup_vm_level", |b| {
        b.iter(|| {
            rollup_compute(
                black_box(&ds.fleet),
                black_box(&ds.compute),
                ComputeLevel::Vm,
                Measure::TotalBytes,
                |_| true,
            )
        })
    });
}

criterion_group!(benches, bench_kernels, bench_rollup);
criterion_main!(benches);
