//! Generator benchmarks: fleet construction, envelope generation, and the
//! full dataset pipeline at quick scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ebs_core::rng::SimRng;
use ebs_workload::dist::onoff::{OnOffEnvelope, OnOffParams};
use ebs_workload::dist::zipf::zipf_weights;
use ebs_workload::{build_fleet, generate, WorkloadConfig};
use std::hint::black_box;

fn bench_fleet_build(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick(1);
    c.bench_function("fleet/build_quick", |b| {
        b.iter(|| build_fleet(black_box(&cfg)).unwrap())
    });
}

fn bench_envelopes(c: &mut Criterion) {
    c.bench_function("envelope/steady_4320_ticks", |b| {
        b.iter_batched(
            || SimRng::seed_from_u64(7),
            |mut rng| OnOffEnvelope::generate(&mut rng, 4320, &OnOffParams::steady()),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("envelope/bursty_4320_ticks", |b| {
        b.iter_batched(
            || SimRng::seed_from_u64(7),
            |mut rng| OnOffEnvelope::generate(&mut rng, 4320, &OnOffParams::bursty()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_zipf(c: &mut Criterion) {
    c.bench_function("zipf/weights_10000", |b| {
        b.iter(|| zipf_weights(black_box(10_000), black_box(1.2)))
    });
}

fn bench_full_generation(c: &mut Criterion) {
    let cfg = WorkloadConfig::quick(2);
    let mut g = c.benchmark_group("generate");
    g.sample_size(10);
    g.bench_function("quick_dataset", |b| {
        b.iter(|| generate(black_box(&cfg)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fleet_build,
    bench_envelopes,
    bench_zipf,
    bench_full_generation
);
criterion_main!(benches);
