//! Macro-benchmarks: one timed run per paper artifact at quick scale —
//! how long does it take to regenerate each table/figure end to end?

use criterion::{criterion_group, criterion_main, Criterion};
use ebs_experiments::*;
use std::hint::black_box;

fn bench_experiments(c: &mut Criterion) {
    let ds = dataset(Scale::Quick);
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table2", |b| b.iter(|| table2::run(black_box(&ds))));
    g.bench_function("table3", |b| b.iter(|| table3::run(black_box(&ds))));
    g.bench_function("table4", |b| b.iter(|| table4::run(black_box(&ds))));
    g.bench_function("fig2", |b| b.iter(|| fig2::run(black_box(&ds))));
    g.bench_function("fig3", |b| b.iter(|| fig3::run(black_box(&ds))));
    g.bench_function("fig5", |b| b.iter(|| fig5::run(black_box(&ds))));
    g.bench_function("fig6", |b| b.iter(|| fig6::run(black_box(&ds))));
    g.finish();

    // fig4 (five balancer runs + five predictors) and fig7 (three cache
    // policies × six block sizes × all VDs) are the heavy ones; time them
    // with fewer samples.
    let mut heavy = c.benchmark_group("experiments_heavy");
    heavy.sample_size(10);
    heavy.bench_function("fig4", |b| b.iter(|| fig4::run(black_box(&ds))));
    let sim = stack_traces(&ds);
    heavy.bench_function("fig7", |b| {
        b.iter(|| fig7::run(black_box(&ds), black_box(&sim)))
    });
    heavy.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
