//! Sharded streaming generation and replay: bounded-memory trace
//! production at fleet scale (DESIGN.md §15).
//!
//! [`generate`](crate::generate) materializes every sampled event in one
//! `Vec<IoEvent>` before anything runs, which caps the reachable fleet
//! size far below the paper's ~140k VDs. This module removes that cap by
//! giving each worker *ownership* of a contiguous VD range — a shard.
//! A shard generates its VDs one at a time, streams their events into its
//! own `ebs-store` container chunk by chunk, and never holds more than
//! one chunk's worth of events plus one VD's partial; shards share only
//! the read-only fleet and traffic plan, never event buffers. A
//! [`ShardManifest`] written alongside the shard files records the fleet
//! dimensions and per-shard VD ranges, so replay can size its
//! accumulators and fan shards back out without rebuilding the fleet.
//!
//! Determinism is inherited, not re-proved: every VD draws from its own
//! RNG stream keyed by `(master seed, vd id)`, so the events a VD emits
//! do not depend on which shard — or how many shards — generated it.
//! Within a shard, events are buffered VD-major (the same order the
//! unsharded generator concatenates partials) and each flushed chunk is
//! stable-sorted by timestamp, which the v2 event codec requires. Since
//! a stable sort never reorders equal keys, globally stable-sorting the
//! concatenated shard streams by timestamp reproduces *exactly* the event
//! order of [`generate`](crate::generate) — that is what makes
//! [`Dataset::load_sharded`] byte-identical to in-memory generation, and
//! the streaming [`replay_summary`] is shard-count invariant besides
//! because every [`StreamSummary`] accumulator is an integer-valued `f64`
//! below 2^53, where addition is exact and associative.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use ebs_core::error::EbsError;
use ebs_core::ids::{IdVec, VdId};
use ebs_core::io::IoEvent;
use ebs_core::metric::{ComputeMetrics, Series, StorageMetrics};
use ebs_core::parallel::par_map_deterministic;
use ebs_core::rng::RngFactory;
use ebs_core::time::TickSpec;
use ebs_core::topology::Fleet;
use ebs_store::format::{kind, EVENTS_PER_CHUNK};
use ebs_store::manifest::{shard_file_name, ShardEntry, ShardManifest, ShardMeta, MANIFEST_FILE};
use ebs_store::stream::{fold_store, StreamSummary};
use ebs_store::{decode_series_set, ChunkReader, StoreWriter};

use crate::config::WorkloadConfig;
use crate::dataset::Dataset;
use crate::fleet::build_fleet;
use crate::generator::generate_vd;
use crate::spatial::{build_plan, TrafficPlan};
use crate::store::{decode_config, encode_config, validate_events};

/// Environment variable selecting the shard count for sharded runs.
pub const SHARDS_ENV: &str = "EBS_SHARDS";

/// Shard count resolution: an explicit request wins, then `EBS_SHARDS`,
/// then one shard per worker thread (the natural ownership grain).
pub fn resolve_shards(requested: Option<usize>) -> usize {
    requested
        .or_else(|| {
            std::env::var(SHARDS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        })
        .filter(|&n| n > 0)
        .unwrap_or_else(ebs_core::parallel::current_threads)
}

/// A partition of the fleet's VD id space into contiguous, disjoint,
/// covering ranges — one per shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<(u64, u64)>,
}

impl ShardPlan {
    /// Split `[0, vd_count)` into `shards` near-equal contiguous ranges
    /// (proportional cuts, so sizes differ by at most one VD). The shard
    /// count is clamped to the VD count — a shard always owns at least
    /// one VD.
    pub fn balanced(vd_count: u64, shards: usize) -> Self {
        if vd_count == 0 {
            return Self { ranges: Vec::new() };
        }
        let shards = (shards.max(1) as u64).min(vd_count);
        let ranges = (0..shards)
            .map(|i| (i * vd_count / shards, (i + 1) * vd_count / shards))
            .collect();
        Self { ranges }
    }

    /// One shard per data center. Fleet construction adds VDs DC by DC,
    /// so each DC's VDs form one contiguous id range.
    pub fn per_dc(fleet: &Fleet) -> Self {
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let mut prev_dc = None;
        for vd in fleet.vds.iter() {
            let dc = fleet.dc_of_vd(vd.id);
            let id = vd.id.index() as u64;
            match ranges.last_mut() {
                Some(last) if prev_dc == Some(dc) => last.1 = id + 1,
                _ => ranges.push((id, id + 1)),
            }
            prev_dc = Some(dc);
        }
        Self { ranges }
    }

    /// The shard ranges, in VD order.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the plan holds no shards (empty fleet).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Generate a sharded trace into `dir` with a [`ShardPlan::balanced`]
/// split over `shards` shards. See [`generate_sharded_plan`].
pub fn generate_sharded(
    config: &WorkloadConfig,
    dir: impl AsRef<Path>,
    shards: usize,
    with_metrics: bool,
) -> Result<ShardManifest, EbsError> {
    config.validate()?;
    let fleet = build_fleet(config)?;
    let plan = ShardPlan::balanced(fleet.vd_count() as u64, shards);
    generate_sharded_fleet(config, fleet, &plan, dir, with_metrics)
}

/// Generate a sharded trace into `dir`, one shard file per range of
/// `shard_plan`, plus a `manifest.ebs` describing the set.
///
/// Each shard worker owns its range end to end: it generates the range's
/// VDs one at a time, streams their events into `dir/shard-NNNN.ebs` in
/// [`EVENTS_PER_CHUNK`]-sized chunks (each chunk stable-sorted by
/// timestamp for the v2 codec), and returns only its manifest entry.
/// Peak memory per worker is one chunk buffer plus one VD partial —
/// independent of the fleet size — so the run's RSS is bounded by the
/// fleet/plan structures, not by the trace.
///
/// With `with_metrics` the per-QP and per-segment metric series are also
/// accumulated (shard-local, contiguous entity ranges) and written to the
/// shard file, which is what [`Dataset::load_sharded`] needs to rebuild a
/// full [`Dataset`]; without it they are dropped as they are generated
/// and memory stays bounded even at millions of VDs.
pub fn generate_sharded_plan(
    config: &WorkloadConfig,
    dir: impl AsRef<Path>,
    shard_plan: &ShardPlan,
    with_metrics: bool,
) -> Result<ShardManifest, EbsError> {
    config.validate()?;
    let fleet = build_fleet(config)?;
    generate_sharded_fleet(config, fleet, shard_plan, dir, with_metrics)
}

/// Shared body of the sharded generators, over an already-built fleet.
fn generate_sharded_fleet(
    config: &WorkloadConfig,
    fleet: Fleet,
    shard_plan: &ShardPlan,
    dir: impl AsRef<Path>,
    with_metrics: bool,
) -> Result<ShardManifest, EbsError> {
    let dir = dir.as_ref();
    let vd_count = fleet.vd_count() as u64;
    let mut expect_lo = 0u64;
    for &(lo, hi) in shard_plan.ranges() {
        if lo != expect_lo || hi <= lo || hi > vd_count {
            return Err(EbsError::invalid_config(format!(
                "shard plan range [{lo}, {hi}) does not partition [0, {vd_count}) in order"
            )));
        }
        expect_lo = hi;
    }
    if expect_lo != vd_count {
        return Err(EbsError::invalid_config(format!(
            "shard plan covers [0, {expect_lo}) but the fleet has {vd_count} VDs"
        )));
    }
    std::fs::create_dir_all(dir)?;
    let traffic = build_plan(config, &fleet);
    let rngf = RngFactory::new(config.seed).child("traffic");
    let shard_count = shard_plan.len();
    let results = par_map_deterministic(shard_plan.ranges(), |index, &range| {
        write_shard(
            config,
            &fleet,
            &traffic,
            &rngf,
            dir,
            index,
            shard_count,
            range,
            with_metrics,
        )
    });
    let shards = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let sticks = config.storage_ticks();
    let manifest = ShardManifest {
        vd_count,
        tick_secs: sticks.tick_secs,
        ticks: sticks.ticks,
        config: encode_config(config),
        shards,
    };
    manifest.save(BufWriter::new(File::create(dir.join(MANIFEST_FILE))?))?;
    Ok(manifest)
}

/// Generate and persist one shard: the worker body of the sharded
/// generators. Returns the shard's manifest entry.
#[allow(clippy::too_many_arguments)]
fn write_shard(
    config: &WorkloadConfig,
    fleet: &Fleet,
    traffic: &TrafficPlan,
    rngf: &RngFactory,
    dir: &Path,
    index: usize,
    shard_count: usize,
    (vd_lo, vd_hi): (u64, u64),
    with_metrics: bool,
) -> Result<ShardEntry, EbsError> {
    let name = shard_file_name(index);
    let file = File::create(dir.join(&name))?;
    let mut writer = StoreWriter::new(BufWriter::new(file))?;
    let meta = ShardMeta {
        shard_index: index as u64,
        shard_count: shard_count as u64,
        vd_lo,
        vd_hi,
    };
    writer.write_chunk(kind::SHARD_META, &meta.encode())?;

    // Shard-local metric accumulators. Entity ids are assigned in VD
    // order, so a contiguous VD range owns contiguous QP and segment
    // ranges and the shard's series are simply the concatenation of its
    // per-VD series in order.
    let mut qp_series: Vec<Series> = Vec::new();
    let mut seg_series: Vec<Series> = Vec::new();
    let mut buf: Vec<IoEvent> = Vec::with_capacity(2 * EVENTS_PER_CHUNK);
    let mut chunk: Vec<IoEvent> = Vec::with_capacity(EVENTS_PER_CHUNK);
    let mut events = 0u64;
    let mut bytes = 0u64;
    for raw_id in vd_lo..vd_hi {
        let id = u32::try_from(raw_id).map_err(|_| {
            EbsError::invalid_config(format!("vd id {raw_id} does not fit the id space"))
        })?;
        let vd = fleet.vds.get(VdId(id)).ok_or_else(|| {
            EbsError::invalid_config(format!(
                "shard range names vd {id} but the fleet has {} disks",
                fleet.vd_count()
            ))
        })?;
        let mut partial = generate_vd(config, fleet, traffic, rngf, vd);
        events += partial.events.len() as u64;
        bytes += partial
            .events
            .iter()
            .map(|e| u64::from(e.size))
            .sum::<u64>();
        buf.append(&mut partial.events);
        if with_metrics {
            qp_series.extend(partial.qp_series);
            seg_series.extend(partial.seg_series);
        }
        while buf.len() >= EVENTS_PER_CHUNK {
            chunk.clear();
            chunk.extend(buf.drain(..EVENTS_PER_CHUNK));
            // The v2 codec requires each chunk time-sorted; the sort is
            // stable, so equal timestamps keep their VD-major order and
            // a global stable re-sort reproduces the unsharded stream.
            chunk.sort_by_key(|e| e.t_us);
            writer.write_events(&chunk)?;
        }
    }
    if !buf.is_empty() {
        buf.sort_by_key(|e| e.t_us);
        writer.write_events(&buf)?;
    }
    if with_metrics {
        writer.write_series(kind::COMPUTE_METRICS, config.compute_ticks(), &qp_series)?;
        writer.write_series(kind::STORAGE_METRICS, config.storage_ticks(), &seg_series)?;
    }
    writer.finish()?;
    Ok(ShardEntry {
        name,
        vd_lo,
        vd_hi,
        events,
        bytes,
    })
}

/// Open a shard file and verify its SHARD_META chunk against the
/// manifest entry that names it. Returns the reader positioned after the
/// meta chunk.
fn open_shard(
    dir: &Path,
    index: usize,
    entry: &ShardEntry,
) -> Result<ChunkReader<BufReader<File>>, EbsError> {
    let file = File::open(dir.join(&entry.name))?;
    let mut reader = ChunkReader::new(BufReader::new(file))?;
    let mut payload = Vec::new();
    let chunk_kind = reader.next_chunk_into(&mut payload)?.ok_or_else(|| {
        EbsError::corrupt_store(format!("shard file {} holds no chunks", entry.name))
    })?;
    if chunk_kind != kind::SHARD_META {
        return Err(EbsError::corrupt_store(format!(
            "shard file {} does not start with a SHARD_META chunk",
            entry.name
        )));
    }
    let meta = ShardMeta::decode(&payload)?;
    if !meta.matches(index, entry) {
        return Err(EbsError::corrupt_store(format!(
            "shard file {} claims shard {} over vds [{}, {}) but the manifest entry \
             {index} expects [{}, {})",
            entry.name, meta.shard_index, meta.vd_lo, meta.vd_hi, entry.vd_lo, entry.vd_hi
        )));
    }
    Ok(reader)
}

/// Load the manifest of the sharded trace in `dir`.
pub fn load_manifest(dir: impl AsRef<Path>) -> Result<ShardManifest, EbsError> {
    ShardManifest::load(BufReader::new(File::open(
        dir.as_ref().join(MANIFEST_FILE),
    )?))
}

/// Stream-replay a sharded trace: fold every shard's EVENTS chunks into a
/// per-shard [`StreamSummary`] (shards fan out across worker threads,
/// each reading only its own file) and merge the partials in shard order.
///
/// Memory is bounded by one chunk per worker plus the O(vd_count + ticks)
/// summaries — the trace itself is never materialized. The merged summary
/// is bit-identical for any shard count and any thread count.
pub fn replay_summary(dir: impl AsRef<Path>) -> Result<(ShardManifest, StreamSummary), EbsError> {
    let dir = dir.as_ref();
    let manifest = load_manifest(dir)?;
    let vd_count = usize::try_from(manifest.vd_count).map_err(|_| {
        EbsError::corrupt_store(format!(
            "manifest names a {}-disk fleet, beyond this platform's address space",
            manifest.vd_count
        ))
    })?;
    let ticks = manifest.tick_spec();
    let results = par_map_deterministic(manifest.shards.as_slice(), |index, entry| {
        let reader = open_shard(dir, index, entry)?;
        let mut summary = StreamSummary::new(vd_count, ticks);
        let end = fold_store(reader, &mut summary)?;
        if end.events != entry.events {
            return Err(EbsError::corrupt_store(format!(
                "manifest pins {} events for shard {} but the file holds {}",
                entry.events, entry.name, end.events
            )));
        }
        Ok(summary)
    });
    let mut total = StreamSummary::new(vd_count, ticks);
    for partial in results {
        total.merge(&partial?)?;
    }
    Ok((manifest, total))
}

/// One shard's decoded content during [`Dataset::load_sharded`].
struct ShardLoad {
    events: Vec<IoEvent>,
    qp_series: Vec<Series>,
    seg_series: Vec<Series>,
}

/// Read and decode one whole shard file (events + metric series).
fn load_shard(
    dir: &Path,
    index: usize,
    entry: &ShardEntry,
    cticks: TickSpec,
    sticks: TickSpec,
) -> Result<ShardLoad, EbsError> {
    let mut reader = open_shard(dir, index, entry)?;
    let version = reader.version();
    let mut events: Vec<IoEvent> = Vec::new();
    let mut qp_series: Option<Vec<Series>> = None;
    let mut seg_series: Option<Vec<Series>> = None;
    let mut payload = Vec::new();
    while let Some(chunk_kind) = reader.next_chunk_into(&mut payload)? {
        match chunk_kind {
            kind::EVENTS => events.extend(ebs_store::decode_events(version, &payload)?),
            kind::COMPUTE_METRICS => {
                let (ticks, series) = decode_series_set(version, &payload, "compute")?;
                if ticks != cticks {
                    return Err(EbsError::corrupt_store(format!(
                        "shard {} compute metrics use a different tick grid than the config",
                        entry.name
                    )));
                }
                qp_series = Some(series);
            }
            kind::STORAGE_METRICS => {
                let (ticks, series) = decode_series_set(version, &payload, "storage")?;
                if ticks != sticks {
                    return Err(EbsError::corrupt_store(format!(
                        "shard {} storage metrics use a different tick grid than the config",
                        entry.name
                    )));
                }
                seg_series = Some(series);
            }
            _ => {}
        }
    }
    if events.len() as u64 != entry.events {
        return Err(EbsError::corrupt_store(format!(
            "manifest pins {} events for shard {} but its chunks held {}",
            entry.events,
            entry.name,
            events.len()
        )));
    }
    let (qp_series, seg_series) = match (qp_series, seg_series) {
        (Some(q), Some(s)) => (q, s),
        _ => {
            return Err(EbsError::corrupt_store(format!(
                "shard {} carries no metric chunks: it was generated without metrics \
                 and can only be replayed through the streaming summary",
                entry.name
            )))
        }
    };
    Ok(ShardLoad {
        events,
        qp_series,
        seg_series,
    })
}

impl Dataset {
    /// Load a sharded trace directory back into a full in-memory
    /// [`Dataset`], byte-identical to the one [`crate::generate`] returns
    /// for the stored config.
    ///
    /// Shard streams are concatenated in shard order — which is VD-major
    /// order — and stable-sorted by timestamp; since each shard chunk was
    /// itself stable-sorted, equal timestamps sit in VD-major order
    /// throughout and the final sort reproduces exactly the unsharded
    /// event stream. Metric series concatenate in the same order because
    /// entity ids are assigned in VD order. Requires shards generated
    /// `with_metrics`.
    pub fn load_sharded(dir: impl AsRef<Path>) -> Result<Self, EbsError> {
        let dir = dir.as_ref();
        let manifest = load_manifest(dir)?;
        let config = decode_config(&manifest.config)?;
        let fleet = build_fleet(&config)?;
        if fleet.vd_count() as u64 != manifest.vd_count {
            return Err(EbsError::corrupt_store(format!(
                "manifest names a {}-disk fleet but the stored config rebuilds {} disks",
                manifest.vd_count,
                fleet.vd_count()
            )));
        }
        let plan = build_plan(&config, &fleet);
        let cticks = config.compute_ticks();
        let sticks = config.storage_ticks();
        let loads = par_map_deterministic(manifest.shards.as_slice(), |index, entry| {
            load_shard(dir, index, entry, cticks, sticks)
        });
        let mut events: Vec<IoEvent> =
            Vec::with_capacity(usize::try_from(manifest.total_events()).unwrap_or(0));
        let mut per_qp: Vec<Series> = Vec::new();
        let mut per_seg: Vec<Series> = Vec::new();
        for load in loads {
            let load = load?;
            events.extend(load.events);
            per_qp.extend(load.qp_series);
            per_seg.extend(load.seg_series);
        }
        if per_qp.len() != fleet.qps.len() || per_seg.len() != fleet.segments.len() {
            return Err(EbsError::corrupt_store(format!(
                "shards carry {} QP / {} segment series but the fleet has {} / {}",
                per_qp.len(),
                per_seg.len(),
                fleet.qps.len(),
                fleet.segments.len()
            )));
        }
        events.sort_by_key(|e| e.t_us);
        validate_events(&events, &fleet)?;
        Ok(Dataset {
            fleet,
            plan,
            compute: ComputeMetrics {
                ticks: cticks,
                per_qp: IdVec::from_vec(per_qp),
            },
            storage: StorageMetrics {
                ticks: sticks,
                per_seg: IdVec::from_vec(per_seg),
            },
            events,
            config,
            index: Default::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ebs-shard-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn balanced_plan_partitions_the_id_space() {
        for (vds, shards) in [(10u64, 3usize), (1, 8), (8, 8), (7, 2), (1000, 16)] {
            let plan = ShardPlan::balanced(vds, shards);
            assert!(plan.len() <= shards && !plan.is_empty());
            let mut next = 0;
            for &(lo, hi) in plan.ranges() {
                assert_eq!(lo, next);
                assert!(hi > lo);
                next = hi;
            }
            assert_eq!(next, vds, "vds={vds} shards={shards}");
        }
        assert!(ShardPlan::balanced(0, 4).is_empty());
    }

    #[test]
    fn per_dc_plan_matches_dc_boundaries() {
        let cfg = WorkloadConfig::medium(5);
        let fleet = build_fleet(&cfg).unwrap();
        let plan = ShardPlan::per_dc(&fleet);
        assert_eq!(plan.len(), cfg.dc_count as usize);
        for &(lo, hi) in plan.ranges() {
            let dc = fleet.dc_of_vd(VdId(lo as u32));
            for id in lo..hi {
                assert_eq!(fleet.dc_of_vd(VdId(id as u32)), dc);
            }
        }
        let total: u64 = plan.ranges().iter().map(|&(lo, hi)| hi - lo).sum();
        assert_eq!(total, fleet.vd_count() as u64);
    }

    #[test]
    fn sharded_store_reloads_byte_identical_to_generation() {
        let cfg = WorkloadConfig::quick(91);
        let ds = generate(&cfg).unwrap();
        for shards in [1usize, 3] {
            let dir = tmp_dir(&format!("reload-{shards}"));
            let manifest = generate_sharded(&cfg, &dir, shards, true).unwrap();
            assert_eq!(manifest.total_events(), ds.events.len() as u64);
            let loaded = Dataset::load_sharded(&dir).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            assert_eq!(loaded.events, ds.events, "shards={shards}");
            assert_eq!(
                loaded.compute.per_qp.as_slice(),
                ds.compute.per_qp.as_slice()
            );
            assert_eq!(
                loaded.storage.per_seg.as_slice(),
                ds.storage.per_seg.as_slice()
            );
        }
    }

    #[test]
    fn replay_summary_is_shard_count_invariant() {
        let cfg = WorkloadConfig::quick(92);
        let mut reports = Vec::new();
        for shards in [1usize, 2, 8] {
            let dir = tmp_dir(&format!("invariant-{shards}"));
            generate_sharded(&cfg, &dir, shards, false).unwrap();
            let (manifest, summary) = replay_summary(&dir).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            assert_eq!(
                manifest.shards.len(),
                shards.min(manifest.vd_count as usize)
            );
            reports.push((
                summary.events(),
                summary.bytes(),
                summary.vd_bytes().to_vec(),
                summary.tick_bytes().to_vec(),
                summary.ccr(0.8).map(f64::to_bits),
                summary.p2a().map(f64::to_bits),
                summary.size_quantile(0.5).map(f64::to_bits),
            ));
        }
        for pair in reports.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn metricless_shards_refuse_full_load_but_stream_fine() {
        let cfg = WorkloadConfig::quick(93);
        let dir = tmp_dir("metricless");
        generate_sharded(&cfg, &dir, 2, false).unwrap();
        let err = Dataset::load_sharded(&dir).unwrap_err();
        assert!(matches!(err, EbsError::CorruptStore(_)), "{err}");
        let (_, summary) = replay_summary(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let ds = generate(&cfg).unwrap();
        assert_eq!(summary.events(), ds.events.len() as u64);
    }

    #[test]
    fn swapped_shard_files_are_detected() {
        let cfg = WorkloadConfig::quick(94);
        let dir = tmp_dir("swapped");
        generate_sharded(&cfg, &dir, 2, false).unwrap();
        let a = dir.join(shard_file_name(0));
        let b = dir.join(shard_file_name(1));
        let tmp = dir.join("swap.tmp");
        std::fs::rename(&a, &tmp).unwrap();
        std::fs::rename(&b, &a).unwrap();
        std::fs::rename(&tmp, &b).unwrap();
        let err = replay_summary(&dir).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(err, EbsError::CorruptStore(_)), "{err}");
    }

    #[test]
    fn truncated_shard_is_detected() {
        let cfg = WorkloadConfig::quick(95);
        let dir = tmp_dir("truncated");
        generate_sharded(&cfg, &dir, 2, false).unwrap();
        let path = dir.join(shard_file_name(1));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let err = replay_summary(&dir).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn resolve_shards_prefers_explicit_request() {
        assert_eq!(resolve_shards(Some(5)), 5);
        assert!(resolve_shards(None) >= 1);
    }
}
