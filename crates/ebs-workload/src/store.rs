//! Dataset persistence: [`Dataset::save`] / [`Dataset::load`] over the
//! `ebs-store` columnar container, plus a streaming event reader for
//! analyses that never need the whole trace in memory.
//!
//! The fleet and the traffic plan are *not* stored: both are deterministic
//! functions of the [`WorkloadConfig`] (`build_fleet` + `build_plan` draw
//! from seeded RNG streams), so the store carries the config as its own
//! chunk and the loader rebuilds them. The specification chunk is still
//! written — the loader cross-checks it row-for-row against the rebuilt
//! fleet, so a store paired with the wrong code version (or a tampered
//! config chunk) fails loudly instead of silently re-deriving different
//! subscriptions.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use ebs_core::error::EbsError;
use ebs_core::ids::IdVec;
use ebs_core::io::IoEvent;
use ebs_core::metric::{ComputeMetrics, Series, StorageMetrics};
use ebs_core::time::TickSpec;
use ebs_core::topology::Fleet;
use ebs_store::columns::{decode_series_set, decode_specs, SpecRow};
use ebs_store::format::{kind, EVENTS_PER_CHUNK};
use ebs_store::{ByteReader, ByteWriter, ChunkReader, EventChunks, StoreWriter};

use crate::config::WorkloadConfig;
use crate::dataset::Dataset;
use crate::fleet::build_fleet;
use crate::spatial::build_plan;

/// Encode a [`WorkloadConfig`] as a store payload. Floats travel as raw
/// bits, so the round trip is exact even for non-decimal-representable
/// values.
pub fn encode_config(config: &WorkloadConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varint(config.seed);
    w.put_varint(u64::from(config.dc_count));
    w.put_varint(u64::from(config.cns_per_dc));
    w.put_varint(u64::from(config.sns_per_dc));
    w.put_varint(u64::from(config.bss_per_sn));
    w.put_varint(u64::from(config.users_per_dc));
    w.put_varint(u64::from(config.vms_per_dc));
    w.put_f64_bits(config.duration_secs);
    w.put_f64_bits(config.compute_tick_secs);
    w.put_f64_bits(config.storage_tick_secs);
    w.put_f64_bits(config.traffic_scale);
    w.put_varint(config.dc_skew.len() as u64);
    for &s in &config.dc_skew {
        w.put_f64_bits(s);
    }
    w.put_u8(u8::from(config.whale_tenant));
    w.into_bytes()
}

/// Decode a [`WorkloadConfig`] payload. The decoded config is validated —
/// a store whose config cannot generate a fleet is reported as corrupt,
/// not handed to the generator to panic on.
pub fn decode_config(payload: &[u8]) -> Result<WorkloadConfig, EbsError> {
    let mut r = ByteReader::new(payload, "config chunk");
    let seed = r.get_varint()?;
    let dc_count = r.get_varint_u32()?;
    let cns_per_dc = r.get_varint_u32()?;
    let sns_per_dc = r.get_varint_u32()?;
    let bss_per_sn = r.get_varint_u32()?;
    let users_per_dc = r.get_varint_u32()?;
    let vms_per_dc = r.get_varint_u32()?;
    let duration_secs = r.get_f64_bits()?;
    let compute_tick_secs = r.get_f64_bits()?;
    let storage_tick_secs = r.get_f64_bits()?;
    let traffic_scale = r.get_f64_bits()?;
    let declared = r.get_varint()?;
    let skew_len = r.check_count(declared, 8)?;
    let mut dc_skew = Vec::with_capacity(skew_len);
    for _ in 0..skew_len {
        dc_skew.push(r.get_f64_bits()?);
    }
    let whale_tenant = match r.get_u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(EbsError::corrupt_store(format!(
                "config chunk: whale_tenant flag is {other}, not 0/1"
            )))
        }
    };
    r.expect_end()?;
    let config = WorkloadConfig {
        seed,
        dc_count,
        cns_per_dc,
        sns_per_dc,
        bss_per_sn,
        users_per_dc,
        vms_per_dc,
        duration_secs,
        compute_tick_secs,
        storage_tick_secs,
        traffic_scale,
        dc_skew,
        whale_tenant,
    };
    config.validate().map_err(|e| {
        EbsError::corrupt_store(format!("config chunk decodes to an invalid config: {e}"))
    })?;
    Ok(config)
}

/// The specification dataset of a fleet, one [`SpecRow`] per VD in id
/// order — what [`Dataset::save`] writes and the loader cross-checks.
///
/// A VD naming a VM outside the fleet is [`EbsError::InvalidSpec`]: every
/// builder-produced fleet satisfies the invariant, but fleets can also
/// arrive from imported CSVs, so this stays total instead of panicking.
pub fn spec_rows(fleet: &Fleet) -> Result<Vec<SpecRow>, EbsError> {
    fleet
        .vds
        .iter()
        .map(|vd| {
            let vm = fleet.vms.get(vd.vm).ok_or_else(|| {
                EbsError::invalid_spec(format!(
                    "vd names vm {} but the fleet has {} VMs",
                    vd.vm.0,
                    fleet.vms.len()
                ))
            })?;
            Ok(SpecRow {
                vm: vd.vm.0,
                app: vm.app,
                capacity_bytes: vd.spec.capacity_bytes,
                qp_count: vd.spec.qp_count,
                tput_cap: vd.spec.tput_cap,
                iops_cap: vd.spec.iops_cap,
            })
        })
        .collect()
}

impl Dataset {
    /// Persist this dataset to `path` as an ebs-store container.
    ///
    /// Chunk order is canonical (config, specs, compute metrics, storage
    /// metrics, event chunks, end), so saving the same dataset twice —
    /// or saving a loaded dataset — produces byte-identical files.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), EbsError> {
        let file = File::create(path.as_ref())?;
        let mut w = StoreWriter::new(BufWriter::new(file))?;
        w.write_chunk(kind::CONFIG, &encode_config(&self.config))?;
        w.write_specs(&spec_rows(&self.fleet)?)?;
        w.write_series(
            kind::COMPUTE_METRICS,
            self.compute.ticks,
            self.compute.per_qp.as_slice(),
        )?;
        w.write_series(
            kind::STORAGE_METRICS,
            self.storage.ticks,
            self.storage.per_seg.as_slice(),
        )?;
        w.write_events_chunked(&self.events, EVENTS_PER_CHUNK)?;
        w.finish()?;
        Ok(())
    }

    /// Load a dataset from an ebs-store container at `path`.
    ///
    /// The fleet and plan are rebuilt deterministically from the stored
    /// config; the stored specification chunk is verified against the
    /// rebuilt fleet and every event is range-checked against it, so a
    /// corrupt or mismatched store surfaces as a typed error — never as a
    /// panic in a downstream consumer like `EventIndex::build`.
    ///
    /// The file is consumed in one streaming pass with a single reused
    /// payload buffer: each chunk is decoded as it arrives and its sealed
    /// bytes are dropped before the next chunk is read, so peak memory is
    /// the decoded dataset plus one chunk — not, as with a materialize-
    /// then-decode load, every compressed payload *and* the decoded data
    /// at once.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, EbsError> {
        let file = File::open(path.as_ref())?;
        let mut reader = ChunkReader::new(BufReader::new(file))?;
        let version = reader.version();

        let mut config_chunk: Option<WorkloadConfig> = None;
        let mut specs_chunk: Option<Vec<SpecRow>> = None;
        let mut compute_chunk: Option<(TickSpec, Vec<Series>)> = None;
        let mut storage_chunk: Option<(TickSpec, Vec<Series>)> = None;
        let mut events: Vec<IoEvent> = Vec::new();
        let mut payload = Vec::new();
        while let Some(chunk_kind) = reader.next_chunk_into(&mut payload)? {
            match chunk_kind {
                kind::CONFIG => set_unique(&mut config_chunk, decode_config(&payload)?, "config")?,
                kind::SPECS => set_unique(&mut specs_chunk, decode_specs(&payload)?, "specs")?,
                kind::COMPUTE_METRICS => set_unique(
                    &mut compute_chunk,
                    decode_series_set(version, &payload, "compute")?,
                    "compute metrics",
                )?,
                kind::STORAGE_METRICS => set_unique(
                    &mut storage_chunk,
                    decode_series_set(version, &payload, "storage")?,
                    "storage metrics",
                )?,
                kind::EVENTS => events.extend(ebs_store::decode_events(version, &payload)?),
                _ => {}
            }
        }
        let end = reader
            .end_summary()
            .ok_or_else(|| EbsError::truncated("store has no end chunk".to_string()))?;

        let config = require_chunk(config_chunk, "config")?;
        let fleet = build_fleet(&config)?;
        let plan = build_plan(&config, &fleet);

        let stored_specs = require_chunk(specs_chunk, "specs")?;
        let rebuilt_specs = spec_rows(&fleet)?;
        if stored_specs != rebuilt_specs {
            return Err(EbsError::corrupt_store(format!(
                "specification chunk ({} rows) does not match the fleet rebuilt \
                 from the stored config ({} VDs): store and generator disagree",
                stored_specs.len(),
                rebuilt_specs.len()
            )));
        }

        let (cticks, per_qp) = require_chunk(compute_chunk, "compute metrics")?;
        check_entity_count("compute", per_qp.len(), fleet.qps.len())?;
        let (sticks, per_seg) = require_chunk(storage_chunk, "storage metrics")?;
        check_entity_count("storage", per_seg.len(), fleet.segments.len())?;

        if events.len() as u64 != end.events {
            return Err(EbsError::truncated(format!(
                "end chunk pins {} events but chunks held {}",
                end.events,
                events.len()
            )));
        }
        validate_events(&events, &fleet)?;

        Ok(Dataset {
            fleet,
            plan,
            compute: ComputeMetrics {
                ticks: cticks,
                per_qp: IdVec::from_vec(per_qp),
            },
            storage: StorageMetrics {
                ticks: sticks,
                per_seg: IdVec::from_vec(per_seg),
            },
            events,
            config,
            index: Default::default(),
        })
    }
}

/// Open a streaming event reader over the store at `path`: yields decoded
/// event batches one chunk at a time (non-event chunks are skipped), so
/// aggregations such as [`ebs_store::StreamSummary`] run in O(chunk)
/// memory regardless of trace size.
pub fn stream_events(path: impl AsRef<Path>) -> Result<EventChunks<BufReader<File>>, EbsError> {
    let file = File::open(path.as_ref())?;
    Ok(ChunkReader::new(BufReader::new(file))?.into_event_chunks())
}

/// Record a decoded singleton chunk; a second sighting is corruption.
fn set_unique<T>(slot: &mut Option<T>, value: T, what: &str) -> Result<(), EbsError> {
    if slot.is_some() {
        return Err(EbsError::corrupt_store(format!(
            "store has more than one {what} chunk"
        )));
    }
    *slot = Some(value);
    Ok(())
}

/// Unwrap a singleton chunk slot; absence is corruption.
fn require_chunk<T>(slot: Option<T>, what: &str) -> Result<T, EbsError> {
    slot.ok_or_else(|| EbsError::corrupt_store(format!("store has no {what} chunk")))
}

/// A metric chunk must carry exactly one series per fleet entity.
fn check_entity_count(domain: &str, got: usize, want: usize) -> Result<(), EbsError> {
    if got != want {
        return Err(EbsError::corrupt_store(format!(
            "{domain} metrics carry {got} series but the fleet has {want} entities"
        )));
    }
    Ok(())
}

/// Range-check loaded events against the rebuilt fleet: timestamps sorted
/// across chunks, VD ids in range, QPs owned by the event's VD. Everything
/// `EventIndex::build` asserts is verified here first with typed errors.
pub(crate) fn validate_events(events: &[IoEvent], fleet: &Fleet) -> Result<(), EbsError> {
    let mut prev = 0u64;
    for (i, ev) in events.iter().enumerate() {
        if ev.t_us < prev {
            return Err(EbsError::corrupt_store(format!(
                "event {i} at {} us breaks the global time sort (previous {prev})",
                ev.t_us
            )));
        }
        prev = ev.t_us;
        let vd = fleet.vds.get(ev.vd).ok_or_else(|| {
            EbsError::corrupt_store(format!(
                "event {i} names vd {} but the fleet has {} disks",
                ev.vd.0,
                fleet.vds.len()
            ))
        })?;
        let qp_ok = ev.qp.0 >= vd.qp_base && ev.qp.0 < vd.qp_base + u32::from(vd.spec.qp_count);
        if !qp_ok {
            return Err(EbsError::corrupt_store(format!(
                "event {i} books qp {} which vd {} does not own",
                ev.qp.0, ev.vd.0
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ebs-store-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn config_round_trips_exactly() {
        for config in [
            WorkloadConfig::default(),
            WorkloadConfig::quick(7),
            WorkloadConfig::medium(0xDEAD_BEEF),
        ] {
            let payload = encode_config(&config);
            let back = decode_config(&payload).unwrap();
            assert_eq!(format!("{config:?}"), format!("{back:?}"));
            assert_eq!(payload, encode_config(&back));
        }
    }

    #[test]
    fn invalid_decoded_config_is_corrupt_store() {
        let mut config = WorkloadConfig::quick(1);
        config.dc_count = 0; // encodes fine, validates never
        let payload = encode_config(&config);
        assert!(matches!(
            decode_config(&payload),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn spec_rows_reject_vd_naming_a_missing_vm() {
        let ds = generate(&WorkloadConfig::quick(3)).unwrap();
        assert!(spec_rows(&ds.fleet).is_ok());
        let mut fleet = ds.fleet;
        fleet.vms = ebs_core::ids::IdVec::new(); // every VD now dangles
        assert!(matches!(spec_rows(&fleet), Err(EbsError::InvalidSpec(_))));
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let ds = generate(&WorkloadConfig::quick(11)).unwrap();
        let p1 = tmp("first.ebs");
        let p2 = tmp("second.ebs");
        ds.save(&p1).unwrap();
        let loaded = Dataset::load(&p1).unwrap();
        loaded.save(&p2).unwrap();
        let b1 = std::fs::read(&p1).unwrap();
        let b2 = std::fs::read(&p2).unwrap();
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        assert_eq!(b1, b2, "save -> load -> save changed bytes");
    }

    #[test]
    fn loaded_dataset_matches_generated() {
        let ds = generate(&WorkloadConfig::quick(23)).unwrap();
        let p = tmp("roundtrip.ebs");
        ds.save(&p).unwrap();
        let loaded = Dataset::load(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(loaded.events, ds.events);
        assert_eq!(
            loaded.compute.per_qp.as_slice(),
            ds.compute.per_qp.as_slice()
        );
        assert_eq!(
            loaded.storage.per_seg.as_slice(),
            ds.storage.per_seg.as_slice()
        );
        assert_eq!(loaded.fleet.vd_count(), ds.fleet.vd_count());
        // The rebuilt index works over loaded events (same shape as fresh).
        assert_eq!(loaded.index().len(), ds.index().len());
    }

    #[test]
    fn streaming_reader_sees_the_full_trace() {
        let ds = generate(&WorkloadConfig::quick(31)).unwrap();
        let p = tmp("stream.ebs");
        ds.save(&p).unwrap();
        let mut streamed = Vec::new();
        for batch in stream_events(&p).unwrap() {
            streamed.extend(batch.unwrap());
        }
        std::fs::remove_file(&p).ok();
        assert_eq!(streamed, ds.events);
    }

    #[test]
    fn tampered_spec_chunk_is_detected() {
        let ds = generate(&WorkloadConfig::quick(47)).unwrap();
        let p = tmp("tamper.ebs");
        ds.save(&p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::remove_file(&p).ok();
        // Re-frame the file with a forged config chunk whose seed differs:
        // the rebuilt fleet then disagrees with the stored specs.
        let mut forged_config = ds.config;
        forged_config.seed ^= 1;
        let mut r = ebs_store::ChunkReader::new(bytes.as_slice()).unwrap();
        let chunks = r.read_all().unwrap();
        let mut w = ebs_store::StoreWriter::new(Vec::new()).unwrap();
        for c in &chunks {
            if c.kind == kind::CONFIG {
                w.write_chunk(kind::CONFIG, &encode_config(&forged_config))
                    .unwrap();
            } else {
                w.write_chunk(c.kind, &c.payload).unwrap();
            }
        }
        let forged = w.finish().unwrap();
        let p2 = tmp("tamper-forged.ebs");
        std::fs::write(&p2, forged).unwrap();
        let err = Dataset::load(&p2).unwrap_err();
        std::fs::remove_file(&p2).ok();
        assert!(matches!(err, EbsError::CorruptStore(_)), "{err}");
    }
}
