//! Per-application workload profiles.
//!
//! Table 4 of the paper shows that skewness varies strongly by application
//! class: BigData carries the most traffic but is the least skewed, Docker
//! the most skewed; reads are consistently more skewed and more bursty than
//! writes. Each [`AppProfile`] encodes those shapes for one class: traffic
//! intensity (lognormal across VMs), temporal envelopes (ON/OFF), intra-VM
//! weight skew (VM→VD and VD→QP Zipf exponents), IO-size mixtures, and the
//! LBA hot-spot model of §7.

use crate::dist::onoff::OnOffParams;
use ebs_core::apps::AppClass;
use ebs_core::rng::SimRng;
use ebs_core::units::{KIB, MIB};

/// IO-size mixture: weights over the fixed size classes
/// 4 KiB / 16 KiB / 64 KiB / 256 KiB / 1 MiB.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeMix {
    /// Mixture weights, one per size class (need not be normalized).
    pub weights: [f64; 5],
}

/// The size classes the mixture draws from, in bytes.
pub const SIZE_CLASSES: [u32; 5] = [
    (4 * KIB) as u32,
    (16 * KIB) as u32,
    (64 * KIB) as u32,
    (256 * KIB) as u32,
    MIB as u32,
];

impl SizeMix {
    /// Mean IO size of the mixture in bytes.
    pub fn mean(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .zip(SIZE_CLASSES)
            .map(|(w, s)| w * s as f64)
            .sum::<f64>()
            / total
    }

    /// Draw one IO size.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        // ebs-lint: allow(D3) -- choose_weighted index is below weights.len() == SIZE_CLASSES.len()
        SIZE_CLASSES[rng.choose_weighted(&self.weights)]
    }
}

/// LBA hot-spot parameters (§7): a contiguous hot region per VD absorbs a
/// large share of traffic; writes hit it sequentially, reads mostly
/// re-reference it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HotSpotProfile {
    /// Fraction of write bytes landing in the hot region.
    pub hot_frac_write: f64,
    /// Fraction of read bytes landing in the hot region.
    pub hot_frac_read: f64,
    /// Lognormal μ of the hot-region size (bytes).
    pub region_mu: f64,
    /// Lognormal σ of the hot-region size.
    pub region_sigma: f64,
    /// Probability that a hot write *rewrites* a recently written offset
    /// instead of advancing the sequential cursor (journal-style
    /// overwrite churn — the re-reference locality that makes FIFO/LRU
    /// caches effective in Figure 7(a)).
    pub rewrite_frac: f64,
}

/// Complete generative profile for one application class.
#[derive(Clone, Copy, Debug)]
pub struct AppProfile {
    /// The class this profile describes.
    pub app: AppClass,
    /// Share of VMs running this class (population mix).
    pub population_weight: f64,
    /// Mean per-VM write throughput in bytes/second.
    pub write_mean_bps: f64,
    /// Mean per-VM read throughput in bytes/second.
    pub read_mean_bps: f64,
    /// Lognormal σ of per-VM write intensity (spatial write skew).
    pub sigma_write: f64,
    /// Lognormal σ of per-VM read intensity (spatial read skew).
    pub sigma_read: f64,
    /// Temporal envelope of write traffic.
    pub write_onoff: OnOffParams,
    /// Temporal envelope of read traffic.
    pub read_onoff: OnOffParams,
    /// Zipf exponent of VM→VD *read* traffic weights. Reads concentrate
    /// on very few disks (§4.2's ≈0.97 median CoV; §3.2's read skew).
    pub vd_zipf_read: f64,
    /// Zipf exponent of VM→VD *write* traffic weights.
    pub vd_zipf_write: f64,
    /// Zipf exponent of VD→QP write weights (writes concentrate hard).
    pub qp_zipf_write: f64,
    /// Zipf exponent of VD→QP read weights (reads spread a bit more).
    pub qp_zipf_read: f64,
    /// Write IO-size mixture.
    pub write_sizes: SizeMix,
    /// Read IO-size mixture.
    pub read_sizes: SizeMix,
    /// LBA hot-spot model.
    pub hot: HotSpotProfile,
    /// Weights over mounting 1..=6 VDs per VM.
    pub vd_count_weights: [f64; 6],
    /// Weights over VD tiers `[Standard, Performance, Premium]`.
    pub tier_weights: [f64; 3],
    /// Lognormal μ of VD capacity in GiB.
    pub capacity_mu_gib: f64,
    /// Lognormal σ of VD capacity.
    pub capacity_sigma: f64,
}

impl AppProfile {
    /// Lognormal μ for the per-VM write intensity (so that the mean is
    /// `write_mean_bps` despite the σ-driven tail).
    pub fn write_mu(&self) -> f64 {
        self.write_mean_bps.ln() - self.sigma_write.powi(2) / 2.0
    }

    /// Lognormal μ for the per-VM read intensity.
    pub fn read_mu(&self) -> f64 {
        self.read_mean_bps.ln() - self.sigma_read.powi(2) / 2.0
    }

    /// The profile for an application class.
    pub fn for_app(app: AppClass) -> AppProfile {
        match app {
            AppClass::BigData => AppProfile {
                app,
                population_weight: 0.18,
                write_mean_bps: 30.0e6,
                read_mean_bps: 8.4e6,
                sigma_write: 1.0,
                sigma_read: 1.2,
                write_onoff: OnOffParams {
                    duty: 0.7,
                    max_on: 300.0,
                    on_alpha: 0.9,
                    max_amp: 6.0,
                    amp_alpha: 2.0,
                },
                read_onoff: OnOffParams {
                    duty: 0.15,
                    max_on: 100.0,
                    on_alpha: 1.0,
                    max_amp: 60.0,
                    amp_alpha: 1.3,
                },
                vd_zipf_read: 2.6,
                vd_zipf_write: 2.0,
                qp_zipf_write: 2.2,
                qp_zipf_read: 0.7,
                write_sizes: SizeMix {
                    weights: [0.05, 0.10, 0.20, 0.30, 0.35],
                },
                read_sizes: SizeMix {
                    weights: [0.05, 0.10, 0.20, 0.30, 0.35],
                },
                hot: HotSpotProfile {
                    hot_frac_write: 0.45,
                    hot_frac_read: 0.25,
                    region_mu: (512.0 * MIB as f64).ln(),
                    region_sigma: 0.8,
                    rewrite_frac: 0.50,
                },
                vd_count_weights: [0.25, 0.25, 0.2, 0.15, 0.1, 0.05],
                tier_weights: [0.2, 0.5, 0.3],
                capacity_mu_gib: 5.3, // median ≈ 200 GiB
                capacity_sigma: 0.9,
            },
            AppClass::WebApp => AppProfile {
                app,
                population_weight: 0.25,
                write_mean_bps: 4.0e6,
                read_mean_bps: 0.21e6,
                sigma_write: 1.6,
                sigma_read: 2.2,
                write_onoff: OnOffParams {
                    duty: 0.5,
                    max_on: 200.0,
                    on_alpha: 1.0,
                    max_amp: 20.0,
                    amp_alpha: 1.6,
                },
                read_onoff: OnOffParams {
                    duty: 0.04,
                    max_on: 30.0,
                    on_alpha: 1.2,
                    max_amp: 300.0,
                    amp_alpha: 1.0,
                },
                vd_zipf_read: 3.6,
                vd_zipf_write: 2.6,
                qp_zipf_write: 2.8,
                qp_zipf_read: 0.9,
                write_sizes: SizeMix {
                    weights: [0.60, 0.20, 0.15, 0.05, 0.0],
                },
                read_sizes: SizeMix {
                    weights: [0.55, 0.25, 0.15, 0.05, 0.0],
                },
                hot: HotSpotProfile {
                    hot_frac_write: 0.65,
                    hot_frac_read: 0.35,
                    region_mu: (160.0 * MIB as f64).ln(),
                    region_sigma: 1.0,
                    rewrite_frac: 0.55,
                },
                vd_count_weights: [0.6, 0.25, 0.1, 0.05, 0.0, 0.0],
                tier_weights: [0.7, 0.25, 0.05],
                capacity_mu_gib: 4.0, // median ≈ 55 GiB
                capacity_sigma: 0.8,
            },
            AppClass::Middleware => AppProfile {
                app,
                population_weight: 0.18,
                write_mean_bps: 15.0e6,
                read_mean_bps: 3.8e6,
                sigma_write: 1.8,
                sigma_read: 2.3,
                write_onoff: OnOffParams {
                    duty: 0.6,
                    max_on: 250.0,
                    on_alpha: 0.9,
                    max_amp: 12.0,
                    amp_alpha: 1.8,
                },
                read_onoff: OnOffParams {
                    duty: 0.06,
                    max_on: 50.0,
                    on_alpha: 1.1,
                    max_amp: 250.0,
                    amp_alpha: 1.0,
                },
                vd_zipf_read: 3.2,
                vd_zipf_write: 2.4,
                qp_zipf_write: 2.5,
                qp_zipf_read: 0.8,
                write_sizes: SizeMix {
                    weights: [0.20, 0.20, 0.30, 0.20, 0.10],
                },
                read_sizes: SizeMix {
                    weights: [0.30, 0.25, 0.25, 0.15, 0.05],
                },
                hot: HotSpotProfile {
                    hot_frac_write: 0.70,
                    hot_frac_read: 0.30,
                    region_mu: (256.0 * MIB as f64).ln(),
                    region_sigma: 0.9,
                    rewrite_frac: 0.60,
                },
                vd_count_weights: [0.4, 0.3, 0.15, 0.1, 0.05, 0.0],
                tier_weights: [0.35, 0.45, 0.2],
                capacity_mu_gib: 4.6, // median ≈ 100 GiB
                capacity_sigma: 0.9,
            },
            AppClass::FileSystem => AppProfile {
                app,
                population_weight: 0.04,
                write_mean_bps: 1.5e6,
                read_mean_bps: 1.7e6,
                sigma_write: 2.8,
                sigma_read: 2.4,
                write_onoff: OnOffParams {
                    duty: 0.08,
                    max_on: 60.0,
                    on_alpha: 1.0,
                    max_amp: 150.0,
                    amp_alpha: 1.1,
                },
                read_onoff: OnOffParams {
                    duty: 0.05,
                    max_on: 40.0,
                    on_alpha: 1.1,
                    max_amp: 200.0,
                    amp_alpha: 1.0,
                },
                vd_zipf_read: 2.8,
                vd_zipf_write: 2.6,
                qp_zipf_write: 2.0,
                qp_zipf_read: 0.8,
                write_sizes: SizeMix {
                    weights: [0.05, 0.10, 0.25, 0.30, 0.30],
                },
                read_sizes: SizeMix {
                    weights: [0.05, 0.10, 0.25, 0.30, 0.30],
                },
                hot: HotSpotProfile {
                    hot_frac_write: 0.50,
                    hot_frac_read: 0.30,
                    region_mu: (768.0 * MIB as f64).ln(),
                    region_sigma: 1.0,
                    rewrite_frac: 0.45,
                },
                vd_count_weights: [0.45, 0.3, 0.15, 0.1, 0.0, 0.0],
                tier_weights: [0.5, 0.4, 0.1],
                capacity_mu_gib: 5.8, // median ≈ 330 GiB
                capacity_sigma: 1.0,
            },
            AppClass::Database => AppProfile {
                app,
                population_weight: 0.20,
                write_mean_bps: 11.0e6,
                read_mean_bps: 4.7e6,
                sigma_write: 2.0,
                sigma_read: 2.4,
                write_onoff: OnOffParams {
                    duty: 0.8,
                    max_on: 400.0,
                    on_alpha: 0.8,
                    max_amp: 8.0,
                    amp_alpha: 2.0,
                },
                read_onoff: OnOffParams {
                    duty: 0.08,
                    max_on: 40.0,
                    on_alpha: 1.2,
                    max_amp: 350.0,
                    amp_alpha: 0.95,
                },
                vd_zipf_read: 3.8,
                vd_zipf_write: 2.8,
                qp_zipf_write: 3.0,
                qp_zipf_read: 0.9,
                write_sizes: SizeMix {
                    weights: [0.50, 0.30, 0.15, 0.05, 0.0],
                },
                read_sizes: SizeMix {
                    weights: [0.45, 0.30, 0.20, 0.05, 0.0],
                },
                hot: HotSpotProfile {
                    hot_frac_write: 0.75,
                    hot_frac_read: 0.40,
                    region_mu: (224.0 * MIB as f64).ln(),
                    region_sigma: 0.9,
                    rewrite_frac: 0.65,
                },
                vd_count_weights: [0.3, 0.35, 0.2, 0.1, 0.04, 0.01],
                tier_weights: [0.2, 0.45, 0.35],
                capacity_mu_gib: 5.0, // median ≈ 150 GiB
                capacity_sigma: 0.9,
            },
            AppClass::Docker => AppProfile {
                app,
                population_weight: 0.15,
                write_mean_bps: 14.0e6,
                read_mean_bps: 5.2e6,
                sigma_write: 2.2,
                sigma_read: 2.8,
                write_onoff: OnOffParams {
                    duty: 0.35,
                    max_on: 150.0,
                    on_alpha: 1.0,
                    max_amp: 30.0,
                    amp_alpha: 1.4,
                },
                read_onoff: OnOffParams {
                    duty: 0.03,
                    max_on: 25.0,
                    on_alpha: 1.2,
                    max_amp: 500.0,
                    amp_alpha: 0.9,
                },
                vd_zipf_read: 4.0,
                vd_zipf_write: 3.0,
                qp_zipf_write: 3.0,
                qp_zipf_read: 1.0,
                write_sizes: SizeMix {
                    weights: [0.35, 0.25, 0.25, 0.10, 0.05],
                },
                read_sizes: SizeMix {
                    weights: [0.30, 0.25, 0.25, 0.15, 0.05],
                },
                hot: HotSpotProfile {
                    hot_frac_write: 0.70,
                    hot_frac_read: 0.45,
                    region_mu: (160.0 * MIB as f64).ln(),
                    region_sigma: 1.1,
                    rewrite_frac: 0.60,
                },
                vd_count_weights: [0.35, 0.3, 0.2, 0.1, 0.04, 0.01],
                tier_weights: [0.3, 0.45, 0.25],
                capacity_mu_gib: 4.4, // median ≈ 80 GiB
                capacity_sigma: 0.9,
            },
        }
    }

    /// All six profiles in Table 4 row order.
    pub fn all() -> Vec<AppProfile> {
        AppClass::ALL
            .iter()
            .map(|&a| AppProfile::for_app(a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_weights_roughly_normalize() {
        let total: f64 = AppProfile::all().iter().map(|p| p.population_weight).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "population weights sum to {total}"
        );
    }

    #[test]
    fn reads_are_more_skewed_and_burstier_than_writes() {
        for p in AppProfile::all() {
            assert!(
                p.sigma_read >= p.sigma_write || p.app == AppClass::FileSystem,
                "{}: read σ should dominate (except FS, Table 4)",
                p.app
            );
            assert!(
                p.read_onoff.duty <= p.write_onoff.duty,
                "{}: read duty",
                p.app
            );
            assert!(
                p.read_onoff.max_amp >= p.write_onoff.max_amp,
                "{}: read amp",
                p.app
            );
        }
    }

    #[test]
    fn bigdata_hottest_docker_most_skewed() {
        let bd = AppProfile::for_app(AppClass::BigData);
        let dk = AppProfile::for_app(AppClass::Docker);
        // BigData: largest mean traffic (share leader), smallest σ.
        for p in AppProfile::all() {
            assert!(bd.write_mean_bps >= p.write_mean_bps);
            assert!(bd.sigma_read <= p.sigma_read);
        }
        // Docker: largest read σ (most skewed reads in Table 4).
        for p in AppProfile::all() {
            assert!(dk.sigma_read >= p.sigma_read);
        }
    }

    #[test]
    fn writes_concentrate_on_fewer_qps_than_reads() {
        for p in AppProfile::all() {
            assert!(p.qp_zipf_write > p.qp_zipf_read, "{}", p.app);
        }
    }

    #[test]
    fn size_mix_mean_and_samples() {
        let mut rng = SimRng::seed_from_u64(1);
        for p in AppProfile::all() {
            let m = p.write_sizes.mean();
            assert!(m >= 4096.0 && m <= MIB as f64);
            for _ in 0..100 {
                let s = p.read_sizes.sample(&mut rng);
                assert!(SIZE_CLASSES.contains(&s));
            }
        }
    }

    #[test]
    fn lognormal_mu_preserves_mean() {
        // E[lognormal(mu, sigma)] = exp(mu + sigma²/2) must equal the mean.
        for p in AppProfile::all() {
            let m = (p.write_mu() + p.sigma_write.powi(2) / 2.0).exp();
            assert!((m - p.write_mean_bps).abs() / p.write_mean_bps < 1e-9);
            let m = (p.read_mu() + p.sigma_read.powi(2) / 2.0).exp();
            assert!((m - p.read_mean_bps).abs() / p.read_mean_bps < 1e-9);
        }
    }

    #[test]
    fn hot_fractions_are_probabilities() {
        for p in AppProfile::all() {
            assert!((0.0..=1.0).contains(&p.hot.hot_frac_write));
            assert!((0.0..=1.0).contains(&p.hot.hot_frac_read));
            assert!(p.hot.hot_frac_write > p.hot.hot_frac_read, "{}", p.app);
        }
    }
}
