//! Workload-generator configuration.
//!
//! The paper's fleet (60k VMs, 140k VDs, 12 h at 1 s granularity) does not
//! fit a laptop-scale reproduction, so the generator is parameterized: the
//! default config keeps the 12-hour window but uses a few hundred VMs per
//! data center at 10 s compute-metric / 30 s storage-metric granularity —
//! enough entities and ticks for every skewness statistic to have the
//! paper's shape. [`WorkloadConfig::quick`] is a miniature for tests.

use ebs_core::error::EbsError;
use ebs_core::time::{TickSpec, OBSERVATION_SECS};

/// Configuration of one synthetic-dataset generation run.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Master seed; everything else is derived deterministically.
    pub seed: u64,
    /// Number of data centers ("DC-1" … ).
    pub dc_count: u32,
    /// Compute nodes per DC.
    pub cns_per_dc: u32,
    /// Storage nodes per DC.
    pub sns_per_dc: u32,
    /// BlockServer processes per storage node.
    pub bss_per_sn: u32,
    /// Tenants per DC (tenants are global; this scales the pool).
    pub users_per_dc: u32,
    /// Target VMs per DC (clamped to the hosting capacity of the nodes).
    pub vms_per_dc: u32,
    /// Observation-window length in seconds (paper: 12 h).
    pub duration_secs: f64,
    /// Compute-domain metric tick width in seconds.
    pub compute_tick_secs: f64,
    /// Storage-domain metric tick width in seconds (the balancer operates
    /// on 30 s periods, so this defaults to 30).
    pub storage_tick_secs: f64,
    /// Global multiplier on traffic intensities.
    pub traffic_scale: f64,
    /// Per-DC skewness multiplier applied to the lognormal σ of VM
    /// intensities; the paper's DC-2 is visibly less skewed than DC-1/DC-3.
    pub dc_skew: Vec<f64>,
    /// Give tenant 0 a "whale" VM mounting many VDs (the 32-VD VM of
    /// Figure 3(a)).
    pub whale_tenant: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 0xEB5_5EED,
            dc_count: 3,
            cns_per_dc: 48,
            sns_per_dc: 20,
            bss_per_sn: 1,
            users_per_dc: 110,
            vms_per_dc: 170,
            duration_secs: OBSERVATION_SECS,
            compute_tick_secs: 10.0,
            storage_tick_secs: 30.0,
            traffic_scale: 1.0,
            dc_skew: vec![1.0, 0.65, 1.15],
            whale_tenant: true,
        }
    }
}

impl WorkloadConfig {
    /// A miniature config for unit/integration tests: one DC, a couple of
    /// minutes, a handful of nodes.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            dc_count: 1,
            cns_per_dc: 8,
            sns_per_dc: 4,
            bss_per_sn: 1,
            users_per_dc: 12,
            vms_per_dc: 24,
            duration_secs: 1800.0,
            compute_tick_secs: 5.0,
            storage_tick_secs: 15.0,
            traffic_scale: 1.0,
            dc_skew: vec![1.0],
            whale_tenant: true,
        }
    }

    /// A mid-size config for integration tests that need real statistics
    /// without the full default cost.
    pub fn medium(seed: u64) -> Self {
        Self {
            seed,
            dc_count: 2,
            cns_per_dc: 20,
            sns_per_dc: 8,
            bss_per_sn: 1,
            users_per_dc: 40,
            vms_per_dc: 60,
            duration_secs: 2.0 * 3600.0,
            compute_tick_secs: 10.0,
            storage_tick_secs: 30.0,
            traffic_scale: 1.0,
            dc_skew: vec![1.0, 0.7],
            whale_tenant: true,
        }
    }

    /// Compute-domain tick grid.
    pub fn compute_ticks(&self) -> TickSpec {
        TickSpec::covering(self.duration_secs, self.compute_tick_secs)
    }

    /// Storage-domain tick grid.
    pub fn storage_ticks(&self) -> TickSpec {
        TickSpec::covering(self.duration_secs, self.storage_tick_secs)
    }

    /// Validate ranges and cross-field consistency.
    pub fn validate(&self) -> Result<(), EbsError> {
        if self.dc_count == 0 || self.cns_per_dc == 0 || self.sns_per_dc == 0 {
            return Err(EbsError::invalid_config("need at least one DC, CN, and SN"));
        }
        if self.bss_per_sn == 0 {
            return Err(EbsError::invalid_config("need at least one BS per SN"));
        }
        if self.users_per_dc == 0 || self.vms_per_dc == 0 {
            return Err(EbsError::invalid_config("need users and VMs"));
        }
        if self.duration_secs <= 0.0 {
            return Err(EbsError::invalid_config("duration must be positive"));
        }
        if self.compute_tick_secs <= 0.0 || self.storage_tick_secs <= 0.0 {
            return Err(EbsError::invalid_config("tick widths must be positive"));
        }
        if self.traffic_scale <= 0.0 {
            return Err(EbsError::invalid_config("traffic scale must be positive"));
        }
        if self.dc_skew.len() < self.dc_count as usize {
            return Err(EbsError::invalid_config(format!(
                "dc_skew has {} entries for {} DCs",
                self.dc_skew.len(),
                self.dc_count
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        WorkloadConfig::default().validate().unwrap();
        WorkloadConfig::quick(1).validate().unwrap();
        WorkloadConfig::medium(1).validate().unwrap();
    }

    #[test]
    fn tick_grids_cover_window() {
        let c = WorkloadConfig::default();
        assert_eq!(c.compute_ticks().ticks, 4320);
        assert_eq!(c.storage_ticks().ticks, 1440);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = WorkloadConfig::quick(1);
        c.dc_count = 0;
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::quick(1);
        c.duration_secs = -1.0;
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::quick(1);
        c.dc_count = 2; // dc_skew only has one entry
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::quick(1);
        c.traffic_scale = 0.0;
        assert!(c.validate().is_err());
    }
}
