//! The generated dataset: everything the paper's analyses consume.

use crate::config::WorkloadConfig;
use crate::spatial::TrafficPlan;
use ebs_core::index::EventIndex;
use ebs_core::io::IoEvent;
use ebs_core::metric::{ComputeMetrics, StorageMetrics};
use ebs_core::topology::Fleet;
use std::sync::OnceLock;

/// Lazily-built [`EventIndex`] cache. Cloning a dataset resets the cache
/// (the clone rebuilds on first use); equality/debug ignore it.
#[derive(Default)]
pub(crate) struct IndexCell(OnceLock<EventIndex>);

impl Clone for IndexCell {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl std::fmt::Debug for IndexCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(idx) => write!(f, "IndexCell(built, {} events)", idx.len()),
            None => f.write_str("IndexCell(unbuilt)"),
        }
    }
}

/// One complete synthetic dataset, the stand-in for the paper's production
/// collection (§2.3): fleet topology + specification data, compute- and
/// storage-domain metric data, and the 1/3200-sampled IO events.
///
/// The metric data records *demand* (pre-throttle traffic); the throttle
/// study in `ebs-throttle` applies caps on top, exactly as the paper's
/// simulations do.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Fleet topology and per-VD specifications.
    pub fleet: Fleet,
    /// The spatial plan the generator drew (useful for calibration tests).
    pub plan: TrafficPlan,
    /// Compute-domain metric data (per QP).
    pub compute: ComputeMetrics,
    /// Storage-domain metric data (per segment).
    pub storage: StorageMetrics,
    /// Sampled IO events, sorted by timestamp.
    pub events: Vec<IoEvent>,
    /// The generating configuration.
    pub config: WorkloadConfig,
    /// Shared event index over `events`, built on first use (see
    /// [`Dataset::index`]).
    pub(crate) index: IndexCell,
}

impl Dataset {
    /// Number of sampled trace events.
    pub fn trace_count(&self) -> usize {
        self.events.len()
    }

    /// Sampled trace counts by direction `(reads, writes)`.
    pub fn trace_rw_counts(&self) -> (usize, usize) {
        let reads = self.events.iter().filter(|e| e.op.is_read()).count();
        (reads, self.events.len() - reads)
    }

    /// Total metric-data traffic `(read_bytes, write_bytes)` over the
    /// window, from the compute domain (the full population, not the
    /// sample).
    pub fn total_bytes(&self) -> (f64, f64) {
        let t = self.compute.total();
        (t.read.bytes, t.write.bytes)
    }

    /// The shared [`EventIndex`] over this dataset's sampled events — the
    /// per-VD / per-QP / per-segment / per-window views every trace-driven
    /// analysis borrows. Built exactly once per dataset instance (lazily,
    /// thread-safe); every later call is a pointer read.
    pub fn index(&self) -> &EventIndex {
        self.index
            .0
            .get_or_init(|| EventIndex::build(&self.fleet, &self.events))
    }

    /// Sampled events belonging to one VD, in time order — an O(1) borrow
    /// from the shared index (previously an O(V·E) linear filter).
    pub fn events_for_vd(&self, vd: ebs_core::ids::VdId) -> &[IoEvent] {
        self.index().vd(vd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-index `events_for_vd`: a full-stream linear filter.
    fn filter_events_for_vd(ds: &Dataset, vd: ebs_core::ids::VdId) -> Vec<IoEvent> {
        ds.events.iter().filter(|e| e.vd == vd).copied().collect()
    }

    #[test]
    fn indexed_vd_events_match_the_linear_filter() {
        let ds = crate::generate(&crate::WorkloadConfig::quick(4242)).unwrap();
        for i in 0..ds.fleet.vd_count() {
            let vd = ebs_core::ids::VdId::from_index(i);
            assert_eq!(
                ds.events_for_vd(vd),
                filter_events_for_vd(&ds, vd).as_slice(),
                "VD {i}: index lookup disagrees with the linear filter"
            );
        }
    }

    #[test]
    fn index_is_built_once_and_survives_clone() {
        let ds = crate::generate(&crate::WorkloadConfig::quick(4243)).unwrap();
        let first = ds.index() as *const EventIndex;
        assert_eq!(ds.index() as *const EventIndex, first, "index rebuilt");
        let cloned = ds.clone();
        assert_eq!(cloned.index().len(), ds.index().len());
    }
}
