//! The generated dataset: everything the paper's analyses consume.

use crate::config::WorkloadConfig;
use crate::spatial::TrafficPlan;
use ebs_core::io::IoEvent;
use ebs_core::metric::{ComputeMetrics, StorageMetrics};
use ebs_core::topology::Fleet;

/// One complete synthetic dataset, the stand-in for the paper's production
/// collection (§2.3): fleet topology + specification data, compute- and
/// storage-domain metric data, and the 1/3200-sampled IO events.
///
/// The metric data records *demand* (pre-throttle traffic); the throttle
/// study in `ebs-throttle` applies caps on top, exactly as the paper's
/// simulations do.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Fleet topology and per-VD specifications.
    pub fleet: Fleet,
    /// The spatial plan the generator drew (useful for calibration tests).
    pub plan: TrafficPlan,
    /// Compute-domain metric data (per QP).
    pub compute: ComputeMetrics,
    /// Storage-domain metric data (per segment).
    pub storage: StorageMetrics,
    /// Sampled IO events, sorted by timestamp.
    pub events: Vec<IoEvent>,
    /// The generating configuration.
    pub config: WorkloadConfig,
}

impl Dataset {
    /// Number of sampled trace events.
    pub fn trace_count(&self) -> usize {
        self.events.len()
    }

    /// Sampled trace counts by direction `(reads, writes)`.
    pub fn trace_rw_counts(&self) -> (usize, usize) {
        let reads = self.events.iter().filter(|e| e.op.is_read()).count();
        (reads, self.events.len() - reads)
    }

    /// Total metric-data traffic `(read_bytes, write_bytes)` over the
    /// window, from the compute domain (the full population, not the
    /// sample).
    pub fn total_bytes(&self) -> (f64, f64) {
        let t = self.compute.total();
        (t.read.bytes, t.write.bytes)
    }

    /// Sampled events belonging to one VD, in time order.
    pub fn events_for_vd(&self, vd: ebs_core::ids::VdId) -> Vec<&IoEvent> {
        self.events.iter().filter(|e| e.vd == vd).collect()
    }
}
