//! Per-VD logical-block-address model (§7).
//!
//! The paper finds that each VD's IO concentrates on a small "hottest
//! block": for the median VD a 64 MiB block covering 3 % of the LBA absorbs
//! 18 % of accesses; hot blocks are write-dominant (sequential writes with
//! journal-style overwrite churn, which is why FIFO ≈ LRU in Figure 7(a))
//! and stay hot in roughly half of the 5-minute windows (hot rate ≈ 50 %,
//! Figure 6(d)). At the segment level, traffic is overwhelmingly
//! single-sided — a segment is either read-dominant or write-dominant
//! (Figure 5(b)).
//!
//! [`LbaModel`] reproduces that structure with several independent hot
//! *spots* per direction — a VD hosts a handful of hot files, not one:
//!
//! * **write spots** are streamed sequentially (per-spot cursor, wrapping)
//!   with a configurable fraction of journal-style rewrites of recent
//!   offsets;
//! * **read spots** are re-referenced uniformly;
//! * spot placement is independent, so the segments they land in are
//!   usually single-sided, and a frozen cache pinned at the single hottest
//!   block covers only the top spot — the reason FrozenHot trails FIFO/LRU
//!   at small cache sizes and only catches up once the cache spans every
//!   spot (Figure 7(a)).
//!
//! The fraction of traffic hitting the hot set is modulated per 5-minute
//! window so the hot rate lands near 50 %.

use crate::profile::HotSpotProfile;
use ebs_core::io::Op;
use ebs_core::rng::SimRng;
use ebs_core::units::{KIB, MIB, SEGMENT_BYTES};

/// Smallest / largest hot-spot size the model will generate.
const MIN_REGION: u64 = 8 * MIB;
const MAX_REGION: u64 = 2048 * MIB;

/// Window width used for hot-fraction modulation (the paper re-checks the
/// hottest block over 5-minute windows).
pub const HOT_WINDOW_SECS: f64 = 300.0;

/// Span behind a spot's cursor that journal-style rewrites target.
const REWRITE_WINDOW: u64 = 8 * MIB;

/// One contiguous hot spot, fully inside a single segment.
#[derive(Clone, Copy, Debug)]
struct HotSpot {
    start: u64,
    len: u64,
    cursor: u64,
}

impl HotSpot {
    fn generate(rng: &mut SimRng, capacity: u64, mu: f64, sigma: f64) -> HotSpot {
        let raw = crate::dist::gaussian::lognormal(rng, mu, sigma);
        let len = (raw as u64)
            .clamp(MIN_REGION, MAX_REGION)
            .min(capacity / 2)
            .max(MIN_REGION.min(capacity / 2).max(4 * KIB));
        let seg_count = capacity.div_ceil(SEGMENT_BYTES).max(1);
        let seg = rng.below(seg_count);
        let seg_start = seg * SEGMENT_BYTES;
        let seg_len = SEGMENT_BYTES.min(capacity - seg_start);
        let len = len.min(seg_len);
        let slack = seg_len.saturating_sub(len);
        let start = seg_start + if slack > 0 { rng.below(slack + 1) } else { 0 };
        HotSpot {
            start,
            len,
            cursor: 0,
        }
    }

    fn segment_index(&self) -> u32 {
        (self.start / SEGMENT_BYTES) as u32
    }

    fn contains(&self, offset: u64) -> bool {
        offset >= self.start && offset < self.start + self.len
    }
}

/// LBA access model of one virtual disk.
#[derive(Clone, Debug)]
pub struct LbaModel {
    capacity: u64,
    write_spots: Vec<HotSpot>,
    read_spots: Vec<HotSpot>,
    /// Popularity weights over spots (shared shape for both directions;
    /// index 0 is the dominant spot).
    write_weights: Vec<f64>,
    read_weights: Vec<f64>,
    hot_frac_write: f64,
    hot_frac_read: f64,
    rewrite_frac: f64,
    noise_seed: u64,
}

impl LbaModel {
    /// Build the model for a VD of `capacity` bytes under a hot-spot
    /// profile. Each spot fits in one segment; write and read spots are
    /// placed independently (and so usually land in different segments).
    pub fn generate(rng: &mut SimRng, capacity: u64, profile: &HotSpotProfile) -> Self {
        let n_write = 2 + rng.below(3) as usize; // 2..=4 hot write files
        let n_read = 1 + rng.below(2) as usize; // 1..=2 hot read sets
        let spots = |rng: &mut SimRng, n: usize, mu: f64| -> Vec<HotSpot> {
            (0..n)
                .map(|_| HotSpot::generate(rng, capacity, mu, profile.region_sigma))
                .collect()
        };
        let write_spots = spots(rng, n_write, profile.region_mu);
        let read_spots = spots(rng, n_read, profile.region_mu - 0.3);
        let weights = |n: usize| crate::dist::zipf::zipf_weights(n, 0.6);
        Self {
            capacity,
            write_weights: weights(n_write),
            read_weights: weights(n_read),
            write_spots,
            read_spots,
            hot_frac_write: profile.hot_frac_write,
            hot_frac_read: profile.hot_frac_read,
            rewrite_frac: profile.rewrite_frac,
            noise_seed: rng.next_u64(),
        }
    }

    fn spots(&self, op: Op) -> &[HotSpot] {
        match op {
            Op::Write => &self.write_spots,
            Op::Read => &self.read_spots,
        }
    }

    fn weights(&self, op: Op) -> &[f64] {
        match op {
            Op::Write => &self.write_weights,
            Op::Read => &self.read_weights,
        }
    }

    /// Number of hot spots for `op`.
    pub fn spot_count(&self, op: Op) -> usize {
        self.spots(op).len()
    }

    /// Start offset of the *dominant* hot spot for `op`.
    pub fn hot_start(&self, op: Op) -> u64 {
        self.spots(op)[0].start
    }

    /// Length of the dominant hot spot for `op` in bytes.
    pub fn hot_len(&self, op: Op) -> u64 {
        self.spots(op)[0].len
    }

    /// Index of the segment containing the dominant hot spot for `op`.
    pub fn hot_segment_index(&self, op: Op) -> u32 {
        self.spots(op)[0].segment_index()
    }

    /// Baseline (unmodulated) fraction of `op` traffic hitting its spots.
    pub fn base_hot_frac(&self, op: Op) -> f64 {
        match op {
            Op::Read => self.hot_frac_read,
            Op::Write => self.hot_frac_write,
        }
    }

    /// Whether `offset` falls inside any `op` hot spot.
    pub fn in_hot_region(&self, op: Op, offset: u64) -> bool {
        self.spots(op).iter().any(|s| s.contains(offset))
    }

    /// Whether `offset` falls inside the *dominant* `op` hot spot.
    pub fn in_top_spot(&self, op: Op, offset: u64) -> bool {
        self.spots(op)[0].contains(offset)
    }

    /// Hot fraction during 5-minute window `window_idx`: the baseline
    /// scaled by a deterministic per-(VD, op, window) factor in
    /// `[0.2, 1.8]`, so over many windows the hot set beats its own
    /// long-run rate about half the time (Figure 6(d)).
    pub fn hot_frac_at(&self, op: Op, window_idx: u32) -> f64 {
        let salt = match op {
            Op::Write => 0x57u64,
            Op::Read => 0x52u64,
        };
        let mut h = self.noise_seed
            ^ salt.rotate_left(41)
            ^ (window_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        (self.base_hot_frac(op) * (0.2 + 1.6 * u)).clamp(0.0, 0.95)
    }

    /// Draw the offset of one IO. Hot writes pick a spot by popularity and
    /// either stream sequentially (advancing that spot's cursor, wrapping)
    /// or rewrite a recent offset behind the cursor; hot reads re-reference
    /// a popularity-weighted spot uniformly; cold IOs are uniform over the
    /// whole LBA. All offsets are 4 KiB-aligned and clipped so
    /// `offset + size <= capacity`.
    pub fn offset(&mut self, rng: &mut SimRng, op: Op, size: u32, window_idx: u32) -> u64 {
        let hot = rng.chance(self.hot_frac_at(op, window_idx));
        let offset = if hot {
            let k = rng.choose_weighted(self.weights(op));
            match op {
                Op::Write => {
                    let spot = &mut self.write_spots[k];
                    if rng.chance(self.rewrite_frac) && spot.cursor > 0 {
                        // Journal-style overwrite: rewrite a recently
                        // written offset behind this spot's cursor.
                        let span = spot.cursor.min(REWRITE_WINDOW);
                        let back = rng.below(span.max(1));
                        (spot.start + spot.cursor.saturating_sub(back + size as u64))
                            .min(spot.start + spot.len.saturating_sub(size as u64))
                    } else {
                        let pos = spot.start + spot.cursor;
                        spot.cursor += size as u64;
                        if spot.cursor >= spot.len {
                            spot.cursor = 0;
                        }
                        pos.min(spot.start + spot.len.saturating_sub(size as u64))
                    }
                }
                Op::Read => {
                    let spot = &self.read_spots[k];
                    let span = spot.len.saturating_sub(size as u64).max(1);
                    spot.start + rng.below(span)
                }
            }
        } else {
            let span = self.capacity.saturating_sub(size as u64).max(1);
            rng.below(span)
        };
        let aligned = offset & !(4 * KIB - 1);
        aligned.min(self.capacity.saturating_sub(size as u64))
    }

    /// Long-run traffic weights over the VD's segments for `op`: each hot
    /// spot's segment receives its popularity share of the hot fraction;
    /// every segment receives its proportional share of the cold
    /// remainder. Weights sum to 1.
    pub fn segment_weights(&self, op: Op) -> Vec<f64> {
        let seg_count = self.capacity.div_ceil(SEGMENT_BYTES).max(1) as usize;
        let hf = self.base_hot_frac(op);
        let mut w = Vec::with_capacity(seg_count);
        for i in 0..seg_count {
            let start = i as u64 * SEGMENT_BYTES;
            let len = SEGMENT_BYTES.min(self.capacity - start);
            w.push((1.0 - hf) * len as f64 / self.capacity as f64);
        }
        for (spot, pop) in self.spots(op).iter().zip(self.weights(op)) {
            w[spot.segment_index() as usize] += hf * pop;
        }
        let total: f64 = w.iter().sum();
        for x in &mut w {
            *x /= total;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::units::GIB;

    fn profile() -> HotSpotProfile {
        HotSpotProfile {
            hot_frac_write: 0.7,
            hot_frac_read: 0.3,
            region_mu: (64.0 * MIB as f64).ln(),
            region_sigma: 0.5,
            rewrite_frac: 0.4,
        }
    }

    fn model(seed: u64, capacity: u64) -> LbaModel {
        let mut rng = SimRng::seed_from_u64(seed);
        LbaModel::generate(&mut rng, capacity, &profile())
    }

    #[test]
    fn every_spot_fits_one_segment() {
        for seed in 0..20 {
            let m = model(seed, 100 * GIB);
            for op in [Op::Read, Op::Write] {
                for spot in m.spots(op) {
                    let seg_of_start = spot.start / SEGMENT_BYTES;
                    let seg_of_end = (spot.start + spot.len - 1) / SEGMENT_BYTES;
                    assert_eq!(seg_of_start, seg_of_end, "seed {seed} {op}");
                    assert!(spot.start + spot.len <= 100 * GIB);
                }
                assert!((1..=4).contains(&m.spot_count(op)));
            }
        }
    }

    #[test]
    fn read_and_write_top_spots_usually_differ() {
        let mut distinct = 0;
        for seed in 0..40 {
            let m = model(seed, 500 * GIB);
            if m.hot_segment_index(Op::Read) != m.hot_segment_index(Op::Write) {
                distinct += 1;
            }
        }
        assert!(distinct > 25, "only {distinct}/40 VDs have split regions");
    }

    #[test]
    fn multiple_spots_appear_across_vds() {
        let multi = (0..40)
            .filter(|&s| model(s, 200 * GIB).spot_count(Op::Write) > 1)
            .count();
        assert_eq!(multi, 40, "write spots must always be plural");
    }

    #[test]
    fn offsets_stay_in_bounds_and_aligned() {
        let mut m = model(1, 40 * GIB);
        let mut rng = SimRng::seed_from_u64(99);
        for i in 0..5000 {
            for op in [Op::Read, Op::Write] {
                let size = 64 * KIB as u32;
                let off = m.offset(&mut rng, op, size, i / 100);
                assert_eq!(off % (4 * KIB), 0);
                assert!(off + size as u64 <= 40 * GIB);
            }
        }
    }

    #[test]
    fn writes_hit_their_spots_more_than_reads_hit_theirs() {
        let mut m = model(2, 200 * GIB);
        let mut rng = SimRng::seed_from_u64(5);
        let mut hot_w = 0;
        let mut hot_r = 0;
        let n = 20_000;
        for i in 0..n {
            let w = m.offset(&mut rng, Op::Write, 4096, i / 500);
            if m.in_hot_region(Op::Write, w) {
                hot_w += 1;
            }
            let r = m.offset(&mut rng, Op::Read, 4096, i / 500);
            if m.in_hot_region(Op::Read, r) {
                hot_r += 1;
            }
        }
        let fw = hot_w as f64 / n as f64;
        let fr = hot_r as f64 / n as f64;
        assert!(fw > fr, "write hot {fw} vs read hot {fr}");
        assert!(fw > 0.5, "write hot fraction {fw}");
    }

    #[test]
    fn top_spot_dominates_spot_traffic() {
        let mut m = model(3, 200 * GIB);
        let mut rng = SimRng::seed_from_u64(7);
        let mut top = 0usize;
        let mut any = 0usize;
        for i in 0..20_000 {
            let off = m.offset(&mut rng, Op::Write, 4096, i / 500);
            if m.in_hot_region(Op::Write, off) {
                any += 1;
                if m.in_top_spot(Op::Write, off) {
                    top += 1;
                }
            }
        }
        assert!(any > 5_000);
        // Zipf(0.6) over ≤4 spots: the top spot still leads with ≥ ~25 %.
        assert!(
            top as f64 / any as f64 > 0.25,
            "top share {:.3}",
            top as f64 / any as f64
        );
    }

    #[test]
    fn hot_writes_are_locally_sequential() {
        let mut m = model(4, 100 * GIB);
        let mut rng = SimRng::seed_from_u64(7);
        // Offsets inside the top write spot form mostly forward-moving
        // runs (rewrites step back a little, the cursor wraps rarely).
        let mut top_offsets = Vec::new();
        for i in 0..4000 {
            let off = m.offset(&mut rng, Op::Write, 4096, i / 50);
            if m.in_top_spot(Op::Write, off) {
                top_offsets.push(off);
            }
        }
        assert!(
            top_offsets.len() > 100,
            "too few top-spot writes: {}",
            top_offsets.len()
        );
        let increasing = top_offsets.windows(2).filter(|w| w[1] > w[0]).count();
        let frac = increasing as f64 / (top_offsets.len() - 1) as f64;
        assert!(frac > 0.35, "sequentiality broken: {frac}");
    }

    #[test]
    fn rewrites_retouch_recent_pages() {
        let mut m = model(8, 100 * GIB);
        let mut rng = SimRng::seed_from_u64(13);
        let mut recent_hits = 0usize;
        let mut hot = 0usize;
        let mut seen: Vec<u64> = Vec::new();
        for i in 0..4000u32 {
            let off = m.offset(&mut rng, Op::Write, 4096, i / 100);
            if m.in_hot_region(Op::Write, off) {
                hot += 1;
                if seen.iter().rev().take(512).any(|&p| p == off) {
                    recent_hits += 1;
                }
                seen.push(off);
            }
        }
        assert!(hot > 500, "not enough hot writes: {hot}");
        let frac = recent_hits as f64 / hot as f64;
        assert!(frac > 0.05, "rewrite locality too weak: {frac:.3}");
    }

    #[test]
    fn hot_frac_modulation_brackets_mean() {
        let m = model(5, 100 * GIB);
        let base = m.base_hot_frac(Op::Write);
        let mut above = 0;
        let windows = 1000;
        for w in 0..windows {
            let f = m.hot_frac_at(Op::Write, w);
            assert!((0.0..=0.95).contains(&f));
            if f > base {
                above += 1;
            }
        }
        let frac = above as f64 / windows as f64;
        assert!((0.3..0.7).contains(&frac), "above-baseline fraction {frac}");
    }

    #[test]
    fn segment_weights_sum_to_one_and_favor_spot_segments() {
        let m = model(6, 200 * GIB);
        for op in [Op::Read, Op::Write] {
            let w = m.segment_weights(op);
            assert_eq!(w.len(), 7); // ceil(200/32)
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            let top = m.hot_segment_index(op) as usize;
            let cold_max = w
                .iter()
                .enumerate()
                .filter(|(i, _)| !m.spots(op).iter().any(|s| s.segment_index() as usize == *i))
                .map(|(_, &x)| x)
                .fold(0.0, f64::max);
            assert!(
                w[top] > cold_max,
                "top spot segment must beat cold segments ({op})"
            );
        }
    }

    #[test]
    fn tiny_vd_still_works() {
        let mut m = model(7, GIB); // single segment
        let mut rng = SimRng::seed_from_u64(1);
        let off = m.offset(&mut rng, Op::Write, 4096, 0);
        assert!(off < GIB);
        assert_eq!(m.segment_weights(Op::Read).len(), 1);
        assert_eq!(
            m.hot_segment_index(Op::Read),
            m.hot_segment_index(Op::Write)
        );
    }
}
