//! Calibration targets from the paper, used by tests and the experiment
//! harness to check that generated datasets have the right *shape*.
//!
//! These are qualitative invariants, not absolute-number matches: our fleet
//! is thousands of times smaller than the production collection, so the
//! magnitudes differ but the orderings must hold (see DESIGN.md §5).

use crate::dataset::Dataset;
use ebs_core::metric::Measure;

/// Paper headline: 1 % of VMs contributed far more traffic than the 16.6 %
/// found by earlier small-scale studies; every DC's read VM-CCR exceeded
/// 30 %. We require the generated fleet-wide value to clear the prior-work
/// figure with margin.
pub const MIN_VM_READ_CCR1: f64 = 0.25;

/// Write traffic dominates read in volume (21.7 vs 6.5 PiB in Table 2).
pub const MIN_WRITE_TO_READ_BYTES: f64 = 1.5;

/// Quick shape checks on a generated dataset; returns a list of violated
/// invariants (empty = calibrated).
pub fn check_shape(ds: &Dataset) -> Vec<String> {
    let mut problems = Vec::new();
    let fleet = &ds.fleet;

    let (read_total, write_total) = ds.total_bytes();
    if write_total < read_total * MIN_WRITE_TO_READ_BYTES {
        problems.push(format!(
            "write/read byte ratio {:.2} below target {MIN_WRITE_TO_READ_BYTES}",
            write_total / read_total
        ));
    }

    // VM-level spatial skew: read CCR(1%) must exceed prior-work level and
    // exceed the write CCR.
    let vm_read = ebs_analysis::aggregate::rollup_compute(
        fleet,
        &ds.compute,
        ebs_analysis::aggregate::ComputeLevel::Vm,
        Measure::ReadBytes,
        |_| true,
    )
    .totals();
    let vm_write = ebs_analysis::aggregate::rollup_compute(
        fleet,
        &ds.compute,
        ebs_analysis::aggregate::ComputeLevel::Vm,
        Measure::WriteBytes,
        |_| true,
    )
    .totals();
    match (
        ebs_analysis::ccr(&vm_read, 0.01),
        ebs_analysis::ccr(&vm_write, 0.01),
    ) {
        (Some(r), Some(w)) => {
            if r < MIN_VM_READ_CCR1 {
                problems.push(format!("VM read 1%-CCR {r:.3} below {MIN_VM_READ_CCR1}"));
            }
            if r <= w {
                problems.push(format!("read CCR {r:.3} not above write CCR {w:.3}"));
            }
        }
        _ => problems.push("VM-level CCR undefined (no traffic?)".into()),
    }

    // Temporal skew: median VM-level read P2A must exceed write P2A.
    let p2a_of = |measure| {
        let roll = ebs_analysis::aggregate::rollup_compute(
            fleet,
            &ds.compute,
            ebs_analysis::aggregate::ComputeLevel::Vm,
            measure,
            |_| true,
        );
        let vals: Vec<f64> = roll
            .series
            .iter()
            .filter_map(|(_, s)| ebs_analysis::p2a(s))
            .collect();
        ebs_analysis::median(&vals)
    };
    match (p2a_of(Measure::ReadBytes), p2a_of(Measure::WriteBytes)) {
        (Some(r), Some(w)) => {
            if r <= w {
                problems.push(format!("median VM read P2A {r:.1} not above write {w:.1}"));
            }
        }
        _ => problems.push("VM-level P2A undefined".into()),
    }

    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::generator::generate;

    /// A single medium-scale draw is a stochastic sample of a heavy-tailed
    /// process: one unlucky whale can tie the read/write CCR ordering. The
    /// calibration contract is therefore a *majority* property: across
    /// several seeds, the shape checks must pass in (almost) all of them.
    #[test]
    fn medium_datasets_are_calibrated_across_seeds() {
        let mut failures = Vec::new();
        for seed in [1u64, 2, 3] {
            let ds = generate(&WorkloadConfig::medium(seed)).unwrap();
            let problems = check_shape(&ds);
            if !problems.is_empty() {
                failures.push((seed, problems));
            }
        }
        assert!(
            failures.is_empty(),
            "calibration violated at seeds: {failures:?}"
        );
    }
}
