//! # ebs-workload — calibrated synthetic EBS dataset generator
//!
//! The paper's datasets come from a production cloud and cannot be
//! redistributed at full fidelity; this crate is the substitution (see
//! DESIGN.md): a generator that reproduces the *statistical structure* the
//! paper measures, so every downstream analysis — load balancing, throttle,
//! segment migration, caching — runs against traffic with the right shape.
//!
//! The generative model, bottom to top:
//!
//! * **[`fleet`]** — tenants with Zipf-skewed VM ownership; compute nodes
//!   with 4–16 worker threads (some bare-metal); VMs tagged with one of the
//!   six application classes of Table 5; VDs whose count/tier/capacity
//!   follow per-class distributions.
//! * **[`profile`]** — per-application parameters calibrated to Table 4:
//!   BigData moves the most traffic with the least skew, Docker is the most
//!   skewed, reads are burstier and more concentrated than writes.
//! * **[`spatial`]** — lognormal per-VM intensities (heavy spatial tail),
//!   Zipf VM→VD and VD→QP weight splits.
//! * **[`dist::onoff`]** — heavy-tailed ON/OFF temporal envelopes (the
//!   source of the paper's extreme P2A values).
//! * **[`lba`]** — per-VD hot regions: sequential write-dominant hottest
//!   blocks with ≈50 % hot rate (§7).
//! * **[`generator`]** — combines all of the above into the two datasets of
//!   §2.3: full-population *metric* data (per-QP and per-segment tick
//!   series) and 1/3200-sampled *trace* events.
//!
//! ```
//! use ebs_workload::{generate, WorkloadConfig};
//!
//! let ds = generate(&WorkloadConfig::quick(7)).unwrap();
//! assert!(ds.trace_count() > 0);
//! let (read, write) = ds.total_bytes();
//! assert!(write > read); // EBS traffic is write-dominant in volume
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod config;
pub mod dataset;
pub mod dist;
pub mod export;
pub mod fleet;
pub mod generator;
// `import` and `store` are total modules (ebs-lint rule D3): they decode
// external bytes, so every failure must be a typed error, never a panic.
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod import;
pub mod lba;
pub mod profile;
pub mod sampler;
// `shard` writes and re-reads external bytes like `store` does, so it
// holds to the same no-panic discipline.
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod shard;
pub mod spatial;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod store;

pub use config::WorkloadConfig;
pub use dataset::Dataset;
pub use fleet::{build_fleet, summarize, FleetSummary};
pub use generator::{generate, generate_for_fleet};
pub use import::{dataset_from_csv, import_dir, read_specs_csv, SpecCsvRow};
pub use lba::LbaModel;
pub use profile::AppProfile;
pub use shard::{
    generate_sharded, generate_sharded_plan, load_manifest, replay_summary, resolve_shards,
    ShardPlan, SHARDS_ENV,
};
pub use spatial::{build_plan, TrafficPlan};
pub use store::{spec_rows, stream_events};
