//! CSV export of the generated datasets.
//!
//! The paper released its collection as CSV tables (trace / metric /
//! specification); this module writes our synthetic stand-ins in the same
//! spirit so downstream tooling (pandas, DuckDB, …) can consume them:
//!
//! * `events.csv` — the 1/3200-sampled IO stream (one row per IO);
//! * `compute_metrics.csv` — per-(QP, tick) read/write bytes and ops with
//!   the Table 1 joins (user, VM, VD, WT, CN);
//! * `storage_metrics.csv` — per-(segment, tick) read/write bytes and ops
//!   with the storage-side joins (VD, BS, SN);
//! * `specs.csv` — the specification data (per-VD capacity, caps, QPs,
//!   placement, application).

use crate::dataset::Dataset;
use ebs_core::ids::{QpId, SegId};
use std::io::{self, Write};
use std::path::Path;

/// Write the sampled IO events as CSV.
pub fn write_events_csv<W: Write>(ds: &Dataset, mut w: W) -> io::Result<()> {
    writeln!(w, "t_us,vd,qp,op,size,offset")?;
    for e in &ds.events {
        writeln!(
            w,
            "{},{},{},{},{},{}",
            e.t_us,
            e.vd.0,
            e.qp.0,
            e.op.letter(),
            e.size,
            e.offset
        )?;
    }
    Ok(())
}

/// Write the compute-domain metric data as CSV (sparse: only active ticks).
pub fn write_compute_metrics_csv<W: Write>(ds: &Dataset, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "tick,user,vm,vd,wt,qp,read_bytes,write_bytes,read_ops,write_ops"
    )?;
    let fleet = &ds.fleet;
    for (i, series) in ds.compute.per_qp.iter().enumerate() {
        let qp = QpId::from_index(i);
        let vd = fleet.qps[qp].vd;
        let vm = fleet.vds[vd].vm;
        let user = fleet.vms[vm].user;
        let wt = fleet.qp_binding[qp];
        for s in series.samples() {
            writeln!(
                w,
                "{},{},{},{},{},{},{:.0},{:.0},{:.2},{:.2}",
                s.tick,
                user.0,
                vm.0,
                vd.0,
                wt.0,
                qp.0,
                s.rw.read.bytes,
                s.rw.write.bytes,
                s.rw.read.ops,
                s.rw.write.ops
            )?;
        }
    }
    Ok(())
}

/// Write the storage-domain metric data as CSV (sparse).
pub fn write_storage_metrics_csv<W: Write>(ds: &Dataset, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "tick,vd,segment,bs,sn,read_bytes,write_bytes,read_ops,write_ops"
    )?;
    let fleet = &ds.fleet;
    for (i, series) in ds.storage.per_seg.iter().enumerate() {
        let seg = SegId::from_index(i);
        let vd = fleet.segments[seg].vd;
        let bs = fleet.seg_home[seg];
        let sn = fleet.block_servers[bs].sn;
        for s in series.samples() {
            writeln!(
                w,
                "{},{},{},{},{},{:.0},{:.0},{:.2},{:.2}",
                s.tick,
                vd.0,
                seg.0,
                bs.0,
                sn.0,
                s.rw.read.bytes,
                s.rw.write.bytes,
                s.rw.read.ops,
                s.rw.write.ops
            )?;
        }
    }
    Ok(())
}

/// Write the specification data as CSV.
pub fn write_specs_csv<W: Write>(ds: &Dataset, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "vd,vm,user,cn,dc,app,capacity_bytes,qp_count,tput_cap_bps,iops_cap"
    )?;
    let fleet = &ds.fleet;
    for vd in fleet.vds.iter() {
        let vm = &fleet.vms[vd.vm];
        let cn = vm.cn;
        let dc = fleet.compute_nodes[cn].dc;
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{:.0},{:.0}",
            vd.id.0,
            vd.vm.0,
            vm.user.0,
            cn.0,
            dc.0,
            vm.app.label(),
            vd.spec.capacity_bytes,
            vd.spec.qp_count,
            vd.spec.tput_cap,
            vd.spec.iops_cap
        )?;
    }
    Ok(())
}

/// Write all four CSVs into `dir` (created if missing). Returns the file
/// names written.
///
/// Files are written through a `BufWriter`: every row is a separate
/// `write!` call, and issuing those as raw one-row `File` writes costs one
/// syscall per row (tens of thousands for the events table alone).
pub fn export_dir(ds: &Dataset, dir: &Path) -> io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    type RowWriter = fn(&Dataset, &mut io::BufWriter<std::fs::File>) -> io::Result<()>;
    let files: [(&str, RowWriter); 4] = [
        ("events.csv", |ds, w| write_events_csv(ds, w)),
        ("compute_metrics.csv", |ds, w| {
            write_compute_metrics_csv(ds, w)
        }),
        ("storage_metrics.csv", |ds, w| {
            write_storage_metrics_csv(ds, w)
        }),
        ("specs.csv", |ds, w| write_specs_csv(ds, w)),
    ];
    let mut written = Vec::new();
    for (name, writer) in files {
        let f = std::fs::File::create(dir.join(name))?;
        let mut buf = io::BufWriter::new(f);
        writer(ds, &mut buf)?;
        buf.flush()?;
        written.push(name.to_string());
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, WorkloadConfig};

    fn dataset() -> Dataset {
        generate(&WorkloadConfig::quick(301)).unwrap()
    }

    #[test]
    fn events_csv_has_one_row_per_event() {
        let ds = dataset();
        let mut buf = Vec::new();
        write_events_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), ds.events.len() + 1);
        assert!(text.starts_with("t_us,vd,qp,op,size,offset"));
        // Spot-check the first data row round-trips.
        let first = text.lines().nth(1).unwrap();
        let cols: Vec<&str> = first.split(',').collect();
        assert_eq!(cols.len(), 6);
        assert_eq!(cols[0].parse::<u64>().unwrap(), ds.events[0].t_us);
    }

    #[test]
    fn metric_csvs_match_sample_counts() {
        let ds = dataset();
        let mut buf = Vec::new();
        write_compute_metrics_csv(&ds, &mut buf).unwrap();
        let rows = String::from_utf8(buf).unwrap().lines().count() - 1;
        let samples: usize = ds.compute.per_qp.iter().map(|s| s.samples().len()).sum();
        assert_eq!(rows, samples);

        let mut buf = Vec::new();
        write_storage_metrics_csv(&ds, &mut buf).unwrap();
        let rows = String::from_utf8(buf).unwrap().lines().count() - 1;
        let samples: usize = ds.storage.per_seg.iter().map(|s| s.samples().len()).sum();
        assert_eq!(rows, samples);
    }

    #[test]
    fn specs_csv_covers_every_vd() {
        let ds = dataset();
        let mut buf = Vec::new();
        write_specs_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), ds.fleet.vds.len() + 1);
        assert!(text.contains("BigData") || text.contains("Database"));
    }

    #[test]
    fn buffered_export_is_byte_identical_to_direct_writes() {
        let ds = dataset();
        let dir = std::env::temp_dir().join(format!("ebs-export-buf-{}", std::process::id()));
        export_dir(&ds, &dir).unwrap();
        type MemWriter = fn(&Dataset, &mut Vec<u8>) -> io::Result<()>;
        let writers: [(&str, MemWriter); 4] = [
            ("events.csv", |ds, w| write_events_csv(ds, w)),
            ("compute_metrics.csv", |ds, w| {
                write_compute_metrics_csv(ds, w)
            }),
            ("storage_metrics.csv", |ds, w| {
                write_storage_metrics_csv(ds, w)
            }),
            ("specs.csv", |ds, w| write_specs_csv(ds, w)),
        ];
        for (name, writer) in writers {
            let mut direct = Vec::new();
            writer(&ds, &mut direct).unwrap();
            let on_disk = std::fs::read(dir.join(name)).unwrap();
            assert_eq!(on_disk, direct, "{name} differs through the BufWriter");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_dir_writes_all_files() {
        let ds = dataset();
        let dir = std::env::temp_dir().join(format!("ebs-export-{}", std::process::id()));
        let files = export_dir(&ds, &dir).unwrap();
        assert_eq!(files.len(), 4);
        for f in &files {
            let meta = std::fs::metadata(dir.join(f)).unwrap();
            assert!(meta.len() > 0, "{f} is empty");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Parse an `events.csv` produced by [`write_events_csv`] back into IO
/// events — the entry point for replaying *real* traces through the stack
/// simulator and the §4–§7 analyses. Rows must be time-sorted (the export
/// writes them that way); the parser re-sorts defensively.
pub fn read_events_csv<R: io::BufRead>(r: R) -> io::Result<Vec<ebs_core::io::IoEvent>> {
    use ebs_core::ids::{QpId, VdId};
    use ebs_core::io::{IoEvent, Op};
    let mut events = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        let mut cols = line.split(',');
        let mut field = |name: &str| -> io::Result<&str> {
            cols.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing column {name}", lineno + 1),
                )
            })
        };
        let bad = |name: &str, lineno: usize| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad {name}", lineno + 1),
            )
        };
        let t_us = field("t_us")?.parse().map_err(|_| bad("t_us", lineno))?;
        let vd = VdId(field("vd")?.parse().map_err(|_| bad("vd", lineno))?);
        let qp = QpId(field("qp")?.parse().map_err(|_| bad("qp", lineno))?);
        let op = match field("op")? {
            "R" => Op::Read,
            "W" => Op::Write,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: unknown op {other:?}", lineno + 1),
                ))
            }
        };
        let size = field("size")?.parse().map_err(|_| bad("size", lineno))?;
        let offset = field("offset")?
            .parse()
            .map_err(|_| bad("offset", lineno))?;
        events.push(IoEvent {
            t_us,
            vd,
            qp,
            op,
            size,
            offset,
        });
    }
    events.sort_by_key(|e| e.t_us);
    Ok(events)
}

#[cfg(test)]
mod import_tests {
    use super::*;
    use crate::{generate, WorkloadConfig};

    #[test]
    fn events_roundtrip_through_csv() {
        let ds = generate(&WorkloadConfig::quick(302)).unwrap();
        let mut buf = Vec::new();
        write_events_csv(&ds, &mut buf).unwrap();
        let parsed = read_events_csv(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, ds.events);
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        let csv = "t_us,vd,qp,op,size,offset\n1,0,0,R,4096,0\n2,0,0,X,4096,0\n";
        let err = read_events_csv(std::io::BufReader::new(csv.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        let csv = "t_us,vd,qp,op,size,offset\n1,0,0,R,4096\n";
        let err = read_events_csv(std::io::BufReader::new(csv.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("missing column"), "{err}");
    }

    #[test]
    fn unsorted_input_is_resorted() {
        let csv = "t_us,vd,qp,op,size,offset\n9,0,0,R,512,0\n1,0,0,W,512,0\n";
        let events = read_events_csv(std::io::BufReader::new(csv.as_bytes())).unwrap();
        assert_eq!(events[0].t_us, 1);
        assert_eq!(events[1].t_us, 9);
    }
}
