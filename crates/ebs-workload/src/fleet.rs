//! Synthetic fleet construction.
//!
//! Builds a [`Fleet`] matching the population structure described in §2–§3
//! of the paper: data centers with compute and storage clusters; compute
//! nodes with 4–16 polling worker threads, a minority of them bare-metal;
//! tenants with heavily skewed VM ownership (the paper's largest tenant
//! owns ~10k VMs while the median owns 1); VMs running one of six
//! application classes; and VDs whose count, tier, and capacity follow the
//! per-application profiles.

use crate::config::WorkloadConfig;
use crate::dist::gaussian::lognormal;
use crate::dist::zipf::ZipfSampler;
use crate::profile::AppProfile;
use ebs_core::error::EbsError;
use ebs_core::rng::RngFactory;
use ebs_core::spec::VdTier;
use ebs_core::topology::{Fleet, FleetBuilder};
use ebs_core::units::GIB;

/// Worker-thread counts offered by compute-node SKUs, with sampling weights.
const WT_SKUS: [(u8, f64); 4] = [(4, 0.4), (8, 0.3), (12, 0.2), (16, 0.1)];

/// Fraction of compute nodes sold as bare metal (§4.2 Type I discussion).
const BARE_METAL_FRAC: f64 = 0.12;

/// Number of VDs mounted by the whale VM of Figure 3(a).
pub const WHALE_VD_COUNT: usize = 32;

/// Clamp range for VD capacities.
const MIN_CAP_GIB: f64 = 20.0;
const MAX_CAP_GIB: f64 = 2048.0;

/// Build the synthetic fleet for `config`.
pub fn build_fleet(config: &WorkloadConfig) -> Result<Fleet, EbsError> {
    config.validate()?;
    let rngf = RngFactory::new(config.seed).child("fleet");
    let mut rng = rngf.stream("structure");
    let mut b = FleetBuilder::new();

    // --- tenants: global pool, ownership skew via Zipf over users.
    let user_total = (config.users_per_dc * config.dc_count) as usize;
    let users: Vec<_> = (0..user_total).map(|_| b.add_user()).collect();
    let owner_sampler = ZipfSampler::new(user_total, 1.1);

    let profiles = AppProfile::all();
    let app_weights: Vec<f64> = profiles.iter().map(|p| p.population_weight).collect();

    for dc_idx in 0..config.dc_count {
        let dc = b.add_dc(format!("DC-{}", dc_idx + 1));

        // --- storage cluster first (segment placement needs BSs).
        for _ in 0..config.sns_per_dc {
            let sn = b.add_sn(dc);
            for _ in 0..config.bss_per_sn {
                b.add_bs(sn);
            }
        }

        // --- compute nodes and their hosting capacity.
        let mut slots: Vec<(ebs_core::ids::CnId, u32)> = Vec::new();
        for _ in 0..config.cns_per_dc {
            let sku = {
                let weights: Vec<f64> = WT_SKUS.iter().map(|&(_, w)| w).collect();
                // ebs-lint: allow(D3) -- choose_weighted index is below weights.len() == WT_SKUS.len()
                WT_SKUS[rng.choose_weighted(&weights)].0
            };
            let bare = rng.chance(BARE_METAL_FRAC);
            let cn = b.add_cn(dc, sku, bare);
            let capacity = if bare { 1 } else { 2 + rng.below(7) as u32 };
            slots.push((cn, capacity));
        }
        let capacity_total: u32 = slots.iter().map(|&(_, c)| c).sum();
        let vm_target = config.vms_per_dc.min(capacity_total);

        // --- VMs: pick a non-full node, an owner, and an app class.
        let mut open: Vec<usize> = (0..slots.len()).collect();
        for vm_idx in 0..vm_target {
            if open.is_empty() {
                break;
            }
            let pick = rng.index(open.len());
            // ebs-lint: allow(D3) -- pick = rng.index(open.len()) is in bounds
            let slot_idx = open[pick];
            // ebs-lint: allow(D3) -- open holds only valid slot indices
            let (cn, _) = slots[slot_idx];
            // ebs-lint: allow(D3) -- sampler rank is below users.len(), non-empty per config.validate()
            let user = users[owner_sampler.sample(&mut rng)];
            // ebs-lint: allow(D3) -- choose_weighted index is below app_weights.len() == profiles.len()
            let app = profiles[rng.choose_weighted(&app_weights)].app;
            let vm = b.add_vm(cn, user, app);
            // ebs-lint: allow(D3) -- open holds only valid slot indices
            slots[slot_idx].1 -= 1;
            // ebs-lint: allow(D3) -- open holds only valid slot indices
            if slots[slot_idx].1 == 0 {
                open.swap_remove(pick);
            }

            // --- VDs for this VM.
            let profile = AppProfile::for_app(app);
            let whale = config.whale_tenant && dc_idx == 0 && vm_idx == 0;
            let vd_count = if whale {
                WHALE_VD_COUNT
            } else {
                1 + rng.choose_weighted(&profile.vd_count_weights)
            };
            // One tier per VM: real deployments provision a VM's disks at a
            // consistent service level, which also keeps sibling caps
            // commensurate (the §5 headroom analysis depends on that).
            // ebs-lint: allow(D3) -- choose_weighted index is below tier_weights.len() == ALL.len()
            let tier = VdTier::ALL[rng.choose_weighted(&profile.tier_weights)];
            for _ in 0..vd_count {
                let cap_gib = lognormal(&mut rng, profile.capacity_mu_gib, profile.capacity_sigma)
                    .clamp(MIN_CAP_GIB, MAX_CAP_GIB);
                let capacity_bytes = (cap_gib * GIB as f64) as u64;
                b.try_add_vd(vm, tier.spec(capacity_bytes))?;
            }
        }
    }
    b.finish()
}

/// Summary counts of a fleet, for Table 2-style reporting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetSummary {
    /// Tenants.
    pub users: usize,
    /// Virtual machines.
    pub vms: usize,
    /// Virtual disks.
    pub vds: usize,
    /// Queue pairs.
    pub qps: usize,
    /// Segments.
    pub segments: usize,
    /// Worker threads.
    pub wts: usize,
    /// Median VMs per (non-empty) user.
    pub median_vms_per_user: f64,
    /// Maximum VMs owned by one user.
    pub max_vms_per_user: usize,
    /// Median VDs per (non-empty) user.
    pub median_vds_per_user: f64,
    /// Maximum VDs owned by one user.
    pub max_vds_per_user: usize,
}

/// Compute a [`FleetSummary`].
pub fn summarize(fleet: &Fleet) -> FleetSummary {
    let mut vms_per_user = vec![0usize; fleet.user_count as usize];
    let mut vds_per_user = vec![0usize; fleet.user_count as usize];
    for vm in fleet.vms.iter() {
        vms_per_user[vm.user.index()] += 1;
        vds_per_user[vm.user.index()] += fleet.vds_of_vm(vm.id).len();
    }
    let active_vm: Vec<f64> = vms_per_user
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| c as f64)
        .collect();
    let active_vd: Vec<f64> = vds_per_user
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| c as f64)
        .collect();
    FleetSummary {
        users: active_vm.len(),
        vms: fleet.vms.len(),
        vds: fleet.vds.len(),
        qps: fleet.qps.len(),
        segments: fleet.segments.len(),
        wts: fleet.wt_total as usize,
        median_vms_per_user: ebs_median(&active_vm),
        max_vms_per_user: vms_per_user.iter().copied().max().unwrap_or(0),
        median_vds_per_user: ebs_median(&active_vd),
        max_vds_per_user: vds_per_user.iter().copied().max().unwrap_or(0),
    }
}

fn ebs_median(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        (s[n / 2 - 1] + s[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::apps::AppClass;

    #[test]
    fn quick_fleet_builds_and_validates() {
        let fleet = build_fleet(&WorkloadConfig::quick(7)).unwrap();
        fleet.validate().unwrap();
        assert_eq!(fleet.dcs.len(), 1);
        assert!(fleet.vms.len() > 10);
        assert!(fleet.vds.len() >= fleet.vms.len());
    }

    #[test]
    fn fleet_is_deterministic_under_seed() {
        let a = build_fleet(&WorkloadConfig::quick(42)).unwrap();
        let b = build_fleet(&WorkloadConfig::quick(42)).unwrap();
        assert_eq!(a.vms.len(), b.vms.len());
        assert_eq!(a.vds.len(), b.vds.len());
        assert_eq!(a.qps.len(), b.qps.len());
        for (x, y) in a.seg_home.iter().zip(b.seg_home.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_fleet(&WorkloadConfig::quick(1)).unwrap();
        let b = build_fleet(&WorkloadConfig::quick(2)).unwrap();
        // Extremely unlikely to coincide in both counts.
        assert!(a.vds.len() != b.vds.len() || a.qps.len() != b.qps.len());
    }

    #[test]
    fn whale_vm_exists_when_enabled() {
        let fleet = build_fleet(&WorkloadConfig::quick(3)).unwrap();
        let max_vds = fleet
            .vms
            .iter()
            .map(|vm| fleet.vds_of_vm(vm.id).len())
            .max()
            .unwrap();
        assert_eq!(max_vds, WHALE_VD_COUNT);

        let mut cfg = WorkloadConfig::quick(3);
        cfg.whale_tenant = false;
        let fleet = build_fleet(&cfg).unwrap();
        let max_vds = fleet
            .vms
            .iter()
            .map(|vm| fleet.vds_of_vm(vm.id).len())
            .max()
            .unwrap();
        assert!(max_vds < WHALE_VD_COUNT);
    }

    #[test]
    fn bare_metal_nodes_host_one_vm() {
        let fleet = build_fleet(&WorkloadConfig::medium(5)).unwrap();
        for cn in fleet.compute_nodes.iter() {
            if cn.bare_metal {
                assert!(fleet.vms_of_cn(cn.id).len() <= 1, "{} overloaded", cn.id);
            }
        }
    }

    #[test]
    fn tenant_ownership_is_skewed() {
        let fleet = build_fleet(&WorkloadConfig::medium(9)).unwrap();
        let s = summarize(&fleet);
        assert!(s.max_vms_per_user as f64 > s.median_vms_per_user * 3.0);
        assert!(s.users > 0 && s.vms > 0 && s.qps >= s.vds);
    }

    #[test]
    fn app_classes_are_diverse() {
        let fleet = build_fleet(&WorkloadConfig::medium(11)).unwrap();
        let mut seen = ebs_core::hash::FxHashSet::default();
        for vm in fleet.vms.iter() {
            seen.insert(vm.app);
        }
        assert!(seen.len() >= 5, "only {} app classes present", seen.len());
        assert!(seen.contains(&AppClass::BigData));
    }
}
