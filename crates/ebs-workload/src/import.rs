//! CSV import: the inverse of [`crate::export`] for the trace and
//! specification datasets.
//!
//! `specs.csv` carries enough of the fleet (VD → VM → user/CN/DC joins,
//! application classes, subscription specs) to rebuild a topology whose
//! spec re-export is byte-identical to the input; `events.csv` supplies
//! the sampled IO stream. Together they make a [`Dataset`] that every
//! trace-driven analysis (CCR, P2A, CDFs, the stack simulator) accepts —
//! the entry point for running *real* exported traces, not just
//! generated ones. Metric data is not part of the CSV pair, so the
//! imported dataset carries empty metric series on grids covering the
//! event window.

use std::io::{self, BufRead};
use std::path::Path;

use ebs_core::apps::AppClass;
use ebs_core::error::EbsError;
use ebs_core::ids::IdVec;
use ebs_core::io::IoEvent;
use ebs_core::metric::{ComputeMetrics, StorageMetrics};
use ebs_core::spec::VdSpec;
use ebs_core::time::US_PER_SEC;
use ebs_core::topology::{Fleet, FleetBuilder};

use crate::config::WorkloadConfig;
use crate::dataset::Dataset;
use crate::export::read_events_csv;
use crate::spatial::{RwBytes, RwWeight, TrafficPlan};

/// One parsed row of `specs.csv`, exactly as [`crate::export::write_specs_csv`]
/// lays it out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpecCsvRow {
    /// VD id (dense, row order).
    pub vd: u32,
    /// Owning VM.
    pub vm: u32,
    /// Owning tenant.
    pub user: u32,
    /// Hosting compute node.
    pub cn: u32,
    /// Data center of the compute node.
    pub dc: u32,
    /// Application class of the VM.
    pub app: AppClass,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Queue pairs.
    pub qp_count: u8,
    /// Throughput cap (bytes/s).
    pub tput_cap: f64,
    /// IOPS cap.
    pub iops_cap: f64,
}

/// Parse a `specs.csv` produced by [`crate::export::write_specs_csv`].
pub fn read_specs_csv<R: BufRead>(r: R) -> io::Result<Vec<SpecCsvRow>> {
    let mut rows = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        let mut cols = line.split(',');
        let mut field = |name: &str| -> io::Result<&str> {
            cols.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing column {name}", lineno + 1),
                )
            })
        };
        let bad = |name: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad {name}", lineno + 1),
            )
        };
        let vd = field("vd")?.parse().map_err(|_| bad("vd"))?;
        let vm = field("vm")?.parse().map_err(|_| bad("vm"))?;
        let user = field("user")?.parse().map_err(|_| bad("user"))?;
        let cn = field("cn")?.parse().map_err(|_| bad("cn"))?;
        let dc = field("dc")?.parse().map_err(|_| bad("dc"))?;
        let app_label = field("app")?;
        let app = AppClass::from_label(app_label).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: unknown app class {app_label:?}", lineno + 1),
            )
        })?;
        let capacity_bytes = field("capacity_bytes")?
            .parse()
            .map_err(|_| bad("capacity_bytes"))?;
        let qp_count = field("qp_count")?.parse().map_err(|_| bad("qp_count"))?;
        let tput_cap = field("tput_cap_bps")?
            .parse()
            .map_err(|_| bad("tput_cap_bps"))?;
        let iops_cap = field("iops_cap")?.parse().map_err(|_| bad("iops_cap"))?;
        rows.push(SpecCsvRow {
            vd,
            vm,
            user,
            cn,
            dc,
            app,
            capacity_bytes,
            qp_count,
            tput_cap,
            iops_cap,
        });
    }
    Ok(rows)
}

/// Rebuild a fleet from specification rows.
///
/// Entities are minted in dense-id order, so every id in the rows — and
/// every QP id a matching `events.csv` references — lands on the same
/// entity it named at export time. The storage side (SNs, BlockServers,
/// segment homes) is not part of `specs.csv`; one SN/BS pair is minted
/// per DC, which preserves every exported column while keeping segment
/// APIs usable.
pub fn fleet_from_specs(rows: &[SpecCsvRow]) -> Result<Fleet, EbsError> {
    let mut b = FleetBuilder::new();

    // Dense-id consistency: row k must describe VD k.
    for (k, row) in rows.iter().enumerate() {
        if row.vd as usize != k {
            return Err(EbsError::invalid_spec(format!(
                "specs row {k} describes vd {}, expected dense id {k}",
                row.vd
            )));
        }
    }

    let dc_count = rows.iter().map(|r| r.dc + 1).max().unwrap_or(1);
    for d in 0..dc_count {
        b.add_dc(format!("DC-{}", d + 1));
    }
    let user_count = rows.iter().map(|r| r.user + 1).max().unwrap_or(0);
    for _ in 0..user_count {
        b.add_user();
    }

    // CN k's DC comes from any row naming it; rows must agree.
    let cn_count = rows.iter().map(|r| r.cn + 1).max().unwrap_or(0);
    let mut cn_dc = vec![None; cn_count as usize];
    for row in rows {
        // Sized from max(cn)+1 above, so the lookup cannot miss; the typed
        // error keeps this importer total on any row set.
        let slot = cn_dc.get_mut(row.cn as usize).ok_or_else(|| {
            EbsError::invalid_spec(format!("cn {} outside the {cn_count}-node table", row.cn))
        })?;
        match *slot {
            None => *slot = Some(row.dc),
            Some(dc) if dc == row.dc => {}
            Some(dc) => {
                return Err(EbsError::invalid_spec(format!(
                    "cn {} is placed in both dc {dc} and dc {}",
                    row.cn, row.dc
                )))
            }
        }
    }
    for (k, dc) in cn_dc.iter().enumerate() {
        // CNs never named by a VD row default to DC 0; 8 worker threads
        // matches the generator's median node.
        let dc = dc.unwrap_or(0);
        let cn = b.add_cn(ebs_core::ids::DcId(dc), 8, false);
        debug_assert_eq!(cn.0 as usize, k);
    }
    for d in 0..dc_count {
        let sn = b.add_sn(ebs_core::ids::DcId(d));
        b.add_bs(sn);
    }

    // VMs, same agreement rule over (cn, user, app).
    let vm_count = rows.iter().map(|r| r.vm + 1).max().unwrap_or(0);
    let mut vm_info: Vec<Option<(u32, u32, AppClass)>> = vec![None; vm_count as usize];
    for row in rows {
        let info = (row.cn, row.user, row.app);
        let slot = vm_info.get_mut(row.vm as usize).ok_or_else(|| {
            EbsError::invalid_spec(format!("vm {} outside the {vm_count}-vm table", row.vm))
        })?;
        match *slot {
            None => *slot = Some(info),
            Some(prev) if prev == info => {}
            Some(prev) => {
                return Err(EbsError::invalid_spec(format!(
                    "vm {} described as {prev:?} and {info:?}",
                    row.vm
                )))
            }
        }
    }
    for (k, info) in vm_info.iter().enumerate() {
        // VMs no VD row names (diskless at export time) get placeholder
        // placement; they never reappear in a spec re-export.
        let (cn, user, app) = info.unwrap_or((0, 0, AppClass::WebApp));
        let vm = b.add_vm(ebs_core::ids::CnId(cn), ebs_core::ids::UserId(user), app);
        debug_assert_eq!(vm.0 as usize, k);
    }

    for row in rows {
        let spec = VdSpec {
            capacity_bytes: row.capacity_bytes,
            qp_count: row.qp_count,
            tput_cap: row.tput_cap,
            iops_cap: row.iops_cap,
        };
        b.try_add_vd(ebs_core::ids::VmId(row.vm), spec)?;
    }
    b.finish()
}

/// Assemble a [`Dataset`] from parsed specification rows and events.
///
/// Events are range-checked against the rebuilt fleet (in-range VD, QP
/// owned by that VD) so a mismatched file pair fails with a typed error
/// instead of panicking later in `EventIndex::build`. Metric data is empty
/// (CSV pairs don't carry it); the config describes the imported shape so
/// tick grids cover the event window.
pub fn dataset_from_csv(rows: &[SpecCsvRow], events: Vec<IoEvent>) -> Result<Dataset, EbsError> {
    let fleet = fleet_from_specs(rows)?;
    for (i, ev) in events.iter().enumerate() {
        let vd = fleet.vds.get(ev.vd).ok_or_else(|| {
            EbsError::invalid_spec(format!(
                "event {i} names vd {} but specs.csv has {} VDs",
                ev.vd.0,
                fleet.vds.len()
            ))
        })?;
        let qp_ok = ev.qp.0 >= vd.qp_base && ev.qp.0 < vd.qp_base + u32::from(vd.spec.qp_count);
        if !qp_ok {
            return Err(EbsError::invalid_spec(format!(
                "event {i} books qp {} which vd {} does not own",
                ev.qp.0, ev.vd.0
            )));
        }
    }

    let last_us = events.last().map_or(0, |e| e.t_us);
    let duration_secs = ((last_us / US_PER_SEC) + 1) as f64;
    let config = WorkloadConfig {
        seed: 0,
        dc_count: fleet.dcs.len() as u32,
        cns_per_dc: (fleet.compute_nodes.len() as u32).max(1),
        sns_per_dc: 1,
        bss_per_sn: 1,
        users_per_dc: fleet.user_count.max(1),
        vms_per_dc: (fleet.vms.len() as u32).max(1),
        duration_secs,
        compute_tick_secs: 10.0,
        storage_tick_secs: 30.0,
        traffic_scale: 1.0,
        dc_skew: vec![1.0; fleet.dcs.len()],
        whale_tenant: false,
    };
    let compute = ComputeMetrics::empty(config.compute_ticks(), fleet.qps.len());
    let storage = StorageMetrics::empty(config.storage_ticks(), fleet.segments.len());
    let plan = TrafficPlan {
        vd_bytes: IdVec::from_vec(vec![RwBytes::default(); fleet.vds.len()]),
        qp_weights: IdVec::from_vec(vec![RwWeight::default(); fleet.qps.len()]),
    };
    Ok(Dataset {
        fleet,
        plan,
        compute,
        storage,
        events,
        config,
        index: Default::default(),
    })
}

/// Import `events.csv` + `specs.csv` from `dir` (the pair
/// [`crate::export::export_dir`] writes) into a [`Dataset`].
pub fn import_dir(dir: &Path) -> Result<Dataset, EbsError> {
    let specs_file = std::fs::File::open(dir.join("specs.csv"))?;
    let rows = read_specs_csv(io::BufReader::new(specs_file))
        .map_err(|e| EbsError::invalid_spec(format!("specs.csv: {e}")))?;
    let events_file = std::fs::File::open(dir.join("events.csv"))?;
    let events = read_events_csv(io::BufReader::new(events_file))
        .map_err(|e| EbsError::invalid_spec(format!("events.csv: {e}")))?;
    dataset_from_csv(&rows, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{export_dir, write_events_csv, write_specs_csv};
    use crate::{generate, WorkloadConfig};
    use proptest::prelude::*;

    fn reexport(ds: &Dataset) -> (String, String) {
        let mut specs = Vec::new();
        write_specs_csv(ds, &mut specs).unwrap();
        let mut events = Vec::new();
        write_events_csv(ds, &mut events).unwrap();
        (
            String::from_utf8(specs).unwrap(),
            String::from_utf8(events).unwrap(),
        )
    }

    #[test]
    fn import_dir_round_trips_export_dir() {
        let ds = generate(&WorkloadConfig::quick(601)).unwrap();
        let dir = std::env::temp_dir().join(format!("ebs-import-{}", std::process::id()));
        export_dir(&ds, &dir).unwrap();
        let imported = import_dir(&dir).unwrap();
        let (specs_a, events_a) = reexport(&ds);
        let (specs_b, events_b) = reexport(&imported);
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(specs_a, specs_b, "specs.csv changed across the round trip");
        assert_eq!(
            events_a, events_b,
            "events.csv changed across the round trip"
        );
        assert_eq!(imported.events, ds.events);
        // The imported fleet supports the shared event index unchanged.
        assert_eq!(imported.index().len(), ds.index().len());
    }

    #[test]
    fn inconsistent_rows_are_rejected() {
        let ds = generate(&WorkloadConfig::quick(602)).unwrap();
        let (specs, _) = reexport(&ds);
        // Corrupt one row: point vm 0's second appearance at another DC.
        let mut rows = read_specs_csv(specs.as_bytes()).unwrap();
        if rows.len() >= 2 {
            rows[1].vd = 99_999; // break dense-id order
            assert!(matches!(
                fleet_from_specs(&rows),
                Err(EbsError::InvalidSpec(_))
            ));
        }
    }

    #[test]
    fn events_referencing_unknown_vds_are_rejected() {
        let ds = generate(&WorkloadConfig::quick(603)).unwrap();
        let (specs, _) = reexport(&ds);
        let rows = read_specs_csv(specs.as_bytes()).unwrap();
        let mut events = ds.events;
        events[0].vd = ebs_core::ids::VdId(1_000_000);
        assert!(matches!(
            dataset_from_csv(&rows, events),
            Err(EbsError::InvalidSpec(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Export → import → export is the identity on the CSV pair for
        /// arbitrary generator seeds.
        #[test]
        fn export_import_export_is_identity(seed in 0u64..10_000) {
            let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
            let (specs, events) = reexport(&ds);
            let rows = read_specs_csv(specs.as_bytes()).unwrap();
            let parsed = read_events_csv(events.as_bytes()).unwrap();
            let imported = dataset_from_csv(&rows, parsed).unwrap();
            let (specs2, events2) = reexport(&imported);
            prop_assert_eq!(specs, specs2);
            prop_assert_eq!(events, events2);
        }
    }
}
