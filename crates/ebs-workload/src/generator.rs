//! The dataset generator: ties fleet, spatial plan, temporal envelopes, and
//! the LBA model together into metric data and sampled traces.
//!
//! For every VD and direction the generator:
//!
//! 1. draws an ON/OFF envelope on the compute-tick grid (temporal shape),
//! 2. scales it by the VD's window-total bytes from the spatial plan,
//! 3. books each active tick's flow onto one QP (drawn from the VD's
//!    per-op QP weights) in the compute-domain metrics,
//! 4. books the hot-fraction share onto the VD's hot segment and the cold
//!    remainder onto one weighted-random cold segment in the
//!    storage-domain metrics (coarser tick grid), and
//! 5. thins the tick's operations at 1/3200 into sampled [`IoEvent`]s with
//!    burst-clustered sub-tick timestamps, mixture-drawn sizes, and
//!    LBA-model offsets.
//!
//! All randomness comes from per-VD streams of the master seed, so
//! generation is deterministic and order-independent across VDs. That
//! guarantee is what lets the generator fan VDs out across worker threads
//! ([`ebs_core::parallel`]): each VD books its traffic into private partial
//! accumulators which are merged in VD order, so parallel generation is
//! byte-identical to serial at any thread count.

use crate::config::WorkloadConfig;
use crate::dataset::Dataset;
use crate::dist::onoff::OnOffEnvelope;
use crate::fleet::build_fleet;
use crate::lba::{LbaModel, HOT_WINDOW_SECS};
use crate::profile::AppProfile;
use crate::sampler::{sampled_count, BurstClock};
use crate::spatial::{build_plan, TrafficPlan};
use ebs_core::error::EbsError;
use ebs_core::io::{IoEvent, Op};
use ebs_core::metric::{ComputeMetrics, Flow, RwFlow, Series, StorageMetrics};
use ebs_core::parallel::par_map_deterministic;
use ebs_core::rng::RngFactory;
use ebs_core::topology::{Fleet, Vd};

/// Generate a complete synthetic dataset from `config`.
pub fn generate(config: &WorkloadConfig) -> Result<Dataset, EbsError> {
    let fleet = build_fleet(config)?;
    generate_for_fleet(config, fleet)
}

/// Generate a dataset over an existing fleet (lets callers customise the
/// topology before generation).
///
/// VDs are generated in parallel (`EBS_THREADS` workers). Each VD's RNG
/// stream is derived solely from the master seed and the VD id, and each VD
/// books traffic only onto its own QPs and segments, so the per-VD partials
/// merge in VD order into exactly the dataset a serial pass produces.
pub fn generate_for_fleet(config: &WorkloadConfig, fleet: Fleet) -> Result<Dataset, EbsError> {
    config.validate()?;
    let plan = build_plan(config, &fleet);
    let rngf = RngFactory::new(config.seed).child("traffic");

    let cticks = config.compute_ticks();
    let sticks = config.storage_ticks();
    let mut compute = ComputeMetrics::empty(cticks, fleet.qps.len());
    let mut storage = StorageMetrics::empty(sticks, fleet.segments.len());

    // Per-VD fan-out: independent units, each with a private accumulator.
    let partials = par_map_deterministic(fleet.vds.as_slice(), |_, vd| {
        generate_vd(config, &fleet, &plan, &rngf, vd)
    });

    // Merge in VD order. QP and segment ranges are disjoint across VDs, so
    // installing each partial's series is exactly the booking the serial
    // loop performed.
    let mut events: Vec<IoEvent> =
        Vec::with_capacity(partials.iter().map(|p| p.events.len()).sum());
    for partial in partials {
        let vd = &fleet.vds[partial.vd];
        for (qp_local, series) in partial.qp_series.into_iter().enumerate() {
            if !series.is_empty() {
                compute.per_qp[vd.qps().nth(qp_local).expect("local QP index")] = series;
            }
        }
        for (seg_local, series) in partial.seg_series.into_iter().enumerate() {
            if !series.is_empty() {
                storage.per_seg[vd.segments().nth(seg_local).expect("local segment index")] =
                    series;
            }
        }
        events.extend(partial.events);
    }

    // Pre-sort order is VD-major exactly like the serial loop's pushes, and
    // the sort is stable, so ties resolve identically.
    events.sort_by_key(|e| e.t_us);
    Ok(Dataset {
        fleet,
        plan,
        compute,
        storage,
        events,
        config: config.clone(),
        index: Default::default(),
    })
}

/// One VD's generated traffic, indexed by the VD-local QP/segment position.
pub(crate) struct VdPartial {
    /// The VD this partial belongs to.
    vd: ebs_core::ids::VdId,
    /// Compute-domain series, one per VD QP (local order).
    pub(crate) qp_series: Vec<Series>,
    /// Storage-domain series, one per VD segment (local order).
    pub(crate) seg_series: Vec<Series>,
    /// Sampled IO events in tick order.
    pub(crate) events: Vec<IoEvent>,
}

/// Generate one VD's envelopes, bookings, and sampled events from its own
/// RNG stream. Pure function of `(config, fleet, plan, master seed, vd)` —
/// the parallel fan-out relies on that, and the sharded generator
/// ([`crate::shard`]) reuses it so sharded and in-memory generation emit
/// identical per-VD event streams.
pub(crate) fn generate_vd(
    config: &WorkloadConfig,
    fleet: &Fleet,
    plan: &TrafficPlan,
    rngf: &RngFactory,
    vd: &Vd,
) -> VdPartial {
    let cticks = config.compute_ticks();
    let sticks = config.storage_ticks();
    let tick_us = (config.compute_tick_secs * 1e6) as u64;
    let hot_windows_per_tick = config.compute_tick_secs / HOT_WINDOW_SECS;

    let vm = &fleet.vms[vd.vm];
    let profile = AppProfile::for_app(vm.app);
    let mut rng = rngf.stream_n("vd", vd.id.index() as u64);

    let mut lba = LbaModel::generate(&mut rng, vd.spec.capacity_bytes, &profile.hot);

    // Per-op envelopes on the compute grid.
    let env_r = OnOffEnvelope::generate(&mut rng, cticks.ticks, &profile.read_onoff);
    let env_w = OnOffEnvelope::generate(&mut rng, cticks.ticks, &profile.write_onoff);
    let bytes = plan.vd_bytes[vd.id];

    // Merge the two sparse envelopes into one tick-ordered stream.
    let merged = merge_envelopes(&env_r, &env_w);

    // Cumulative QP weights for per-tick QP draws.
    let qps: Vec<_> = vd.qps().collect();
    let qw_read: Vec<f64> = qps.iter().map(|&q| plan.qp_weights[q].read).collect();
    let qw_write: Vec<f64> = qps.iter().map(|&q| plan.qp_weights[q].write).collect();

    // Per-op segment weights; cold draw excludes the hot share.
    let seg_count = vd.segments().len();
    let segw_read = lba.segment_weights(Op::Read);
    let segw_write = lba.segment_weights(Op::Write);
    let hot_seg_read = lba.hot_segment_index(Op::Read) as usize;
    let hot_seg_write = lba.hot_segment_index(Op::Write) as usize;

    let mean_r = profile.read_sizes.mean();
    let mean_w = profile.write_sizes.mean();

    let mut qp_series: Vec<Series> = (0..qps.len()).map(|_| Series::new()).collect();
    let mut seg_series: Vec<Series> = (0..seg_count).map(|_| Series::new()).collect();
    let mut events: Vec<IoEvent> = Vec::new();

    for (tick, wr, ww) in merged {
        let read_bytes = bytes.read * wr;
        let write_bytes = bytes.write * ww;
        let read_ops = read_bytes / mean_r;
        let write_ops = write_bytes / mean_w;
        let t_start_us = tick as u64 * tick_us;
        let window_idx = (tick as f64 * hot_windows_per_tick) as u32;
        let storage_tick = sticks.tick_of_us(t_start_us);

        // --- compute domain: one QP per op per tick.
        if read_bytes > 0.0 {
            let qp = rng.choose_weighted(&qw_read);
            qp_series[qp].push(
                tick,
                RwFlow {
                    read: Flow {
                        bytes: read_bytes,
                        ops: read_ops,
                    },
                    write: Flow::ZERO,
                },
            );
        }
        if write_bytes > 0.0 {
            let qp = rng.choose_weighted(&qw_write);
            qp_series[qp].push(
                tick,
                RwFlow {
                    read: Flow::ZERO,
                    write: Flow {
                        bytes: write_bytes,
                        ops: write_ops,
                    },
                },
            );
        }

        // --- storage domain: hot segment + one cold segment per op.
        for (op, op_bytes, op_ops, segw, hot_seg_local) in [
            (Op::Read, read_bytes, read_ops, &segw_read, hot_seg_read),
            (
                Op::Write,
                write_bytes,
                write_ops,
                &segw_write,
                hot_seg_write,
            ),
        ] {
            if op_bytes <= 0.0 {
                continue;
            }
            let hf = lba.hot_frac_at(op, window_idx);
            let hot_bytes = op_bytes * hf;
            let cold_bytes = op_bytes - hot_bytes;
            let flow_of = |b: f64| {
                let mut rw = RwFlow::ZERO;
                *rw.get_mut(op) = Flow {
                    bytes: b,
                    ops: op_ops * b / op_bytes,
                };
                rw
            };
            if hot_bytes > 0.0 {
                seg_series[hot_seg_local].push(storage_tick, flow_of(hot_bytes));
            }
            if cold_bytes > 0.0 {
                let pick = if seg_count == 1 {
                    0
                } else {
                    // Redraw once if the hot segment comes up, to bias
                    // cold traffic away from it without a second
                    // weight table.
                    let first = rng.choose_weighted(segw);
                    if first == hot_seg_local {
                        rng.choose_weighted(segw)
                    } else {
                        first
                    }
                };
                seg_series[pick].push(storage_tick, flow_of(cold_bytes));
            }
        }

        // --- sampled traces.
        for (op, op_ops, sizes, qw) in [
            (Op::Read, read_ops, &profile.read_sizes, &qw_read),
            (Op::Write, write_ops, &profile.write_sizes, &qw_write),
        ] {
            let n = sampled_count(&mut rng, op_ops);
            if n == 0 {
                continue;
            }
            let clock = BurstClock::new(&mut rng, t_start_us, tick_us, 20_000.0);
            for _ in 0..n {
                let size = sizes.sample(&mut rng);
                let offset = lba.offset(&mut rng, op, size, window_idx);
                let qp = qps[rng.choose_weighted(qw)];
                events.push(IoEvent {
                    t_us: clock.sample(&mut rng),
                    vd: vd.id,
                    qp,
                    op,
                    size,
                    offset,
                });
            }
        }
    }

    VdPartial {
        vd: vd.id,
        qp_series,
        seg_series,
        events,
    }
}

/// Merge two sparse `(tick, weight)` envelopes into tick-ordered
/// `(tick, read_weight, write_weight)` triples.
fn merge_envelopes(read: &[(u32, f64)], write: &[(u32, f64)]) -> Vec<(u32, f64, f64)> {
    let mut out = Vec::with_capacity(read.len() + write.len());
    let mut i = 0;
    let mut j = 0;
    while i < read.len() || j < write.len() {
        let rt = read.get(i).map(|&(t, _)| t);
        let wt = write.get(j).map(|&(t, _)| t);
        match (rt, wt) {
            (Some(a), Some(b)) if a == b => {
                out.push((a, read[i].1, write[j].1));
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                out.push((a, read[i].1, 0.0));
                i += 1;
            }
            (Some(_), Some(_)) => {
                out.push((wt.expect("checked"), 0.0, write[j].1));
                j += 1;
            }
            (Some(a), None) => {
                out.push((a, read[i].1, 0.0));
                i += 1;
            }
            (None, Some(b)) => {
                out.push((b, 0.0, write[j].1));
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::units::TRACE_SAMPLE_RATE;

    #[test]
    fn merge_preserves_both_streams() {
        let r = vec![(1, 0.5), (3, 0.5)];
        let w = vec![(1, 0.2), (2, 0.3), (5, 0.5)];
        let m = merge_envelopes(&r, &w);
        assert_eq!(
            m,
            vec![(1, 0.5, 0.2), (2, 0.0, 0.3), (3, 0.5, 0.0), (5, 0.0, 0.5)]
        );
    }

    #[test]
    fn quick_dataset_generates() {
        let cfg = WorkloadConfig::quick(21);
        let ds = generate(&cfg).unwrap();
        assert!(!ds.compute.per_qp.is_empty());
        let (r, w) = ds.total_bytes();
        assert!(r > 0.0 && w > 0.0);
        // Events are time-sorted.
        for pair in ds.events.windows(2) {
            assert!(pair[0].t_us <= pair[1].t_us);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::quick(22);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.total_bytes(), b.total_bytes());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn compute_totals_match_plan() {
        let cfg = WorkloadConfig::quick(23);
        let ds = generate(&cfg).unwrap();
        let (pr, pw) = ds.plan.totals();
        let (mr, mw) = ds.total_bytes();
        // Envelope weights sum to exactly 1, so metric totals equal the plan.
        assert!((mr - pr).abs() / pr < 1e-6, "read {mr} vs plan {pr}");
        assert!((mw - pw).abs() / pw < 1e-6, "write {mw} vs plan {pw}");
    }

    #[test]
    fn storage_totals_match_compute_totals() {
        let cfg = WorkloadConfig::quick(24);
        let ds = generate(&cfg).unwrap();
        let ct = ds.compute.total();
        let st = ds.storage.total();
        assert!((ct.read.bytes - st.read.bytes).abs() / ct.read.bytes < 1e-6);
        assert!((ct.write.bytes - st.write.bytes).abs() / ct.write.bytes < 1e-6);
    }

    #[test]
    fn sampled_trace_volume_tracks_population() {
        let mut cfg = WorkloadConfig::quick(25);
        cfg.vms_per_dc = 40;
        cfg.duration_secs = 3600.0;
        let ds = generate(&cfg).unwrap();
        let total_ops = {
            let t = ds.compute.total();
            t.read.ops + t.write.ops
        };
        let expected = total_ops * TRACE_SAMPLE_RATE;
        let got = ds.trace_count() as f64;
        assert!(
            expected > 30.0,
            "workload too small for the check: {expected}"
        );
        // Poisson thinning: within ±40 % of expectation is comfortable.
        assert!(
            (got - expected).abs() / expected < 0.4,
            "sampled {got} vs expected {expected}"
        );
    }

    #[test]
    fn events_respect_vd_geometry() {
        let cfg = WorkloadConfig::quick(26);
        let ds = generate(&cfg).unwrap();
        for e in &ds.events {
            let vd = &ds.fleet.vds[e.vd];
            assert!(e.end_offset() <= vd.spec.capacity_bytes, "{e:?}");
            assert!(vd.qps().any(|q| q == e.qp), "event QP not owned by VD");
        }
    }
}
