//! Trace sampling: thinning the full IO population to the 1/3200 DiTing
//! sample, and placing sampled IOs at sub-tick timestamps.
//!
//! Real EBS traffic is bursty well below metric-tick resolution — §4.3 shows
//! bursts shorter than 10 ms defeating QP rebinding. Sampled IOs are
//! therefore clustered around a per-(entity, tick) burst center with an
//! exponential spread of a few tens of milliseconds, with a uniform
//! background component.

use crate::dist::poisson::poisson;
use ebs_core::rng::SimRng;
use ebs_core::units::TRACE_SAMPLE_RATE;

/// Number of sampled traces for a tick carrying `ops` operations, at the
/// DiTing sampling rate.
pub fn sampled_count(rng: &mut SimRng, ops: f64) -> u64 {
    poisson(rng, ops * TRACE_SAMPLE_RATE)
}

/// Number of sampled traces at an arbitrary sampling `rate`.
pub fn sampled_count_at(rng: &mut SimRng, ops: f64, rate: f64) -> u64 {
    poisson(rng, ops * rate)
}

/// Sub-tick timestamp generator: one burst center per instance, exponential
/// spread, 30 % uniform background.
#[derive(Clone, Copy, Debug)]
pub struct BurstClock {
    start_us: u64,
    len_us: u64,
    center_us: u64,
    spread_us: f64,
}

impl BurstClock {
    /// A clock for the tick `[start_us, start_us + len_us)`. The burst
    /// center is uniform in the tick; `spread_us` controls how tightly IOs
    /// cluster (the paper's sub-10 ms bursts ⇒ spreads of 5–50 ms).
    pub fn new(rng: &mut SimRng, start_us: u64, len_us: u64, spread_us: f64) -> Self {
        assert!(len_us > 0);
        let center_us = start_us + rng.below(len_us);
        Self {
            start_us,
            len_us,
            center_us,
            spread_us: spread_us.max(1.0),
        }
    }

    /// Draw one timestamp inside the tick.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let end = self.start_us + self.len_us - 1;
        if rng.chance(0.3) {
            // Background: uniform over the tick.
            return self.start_us + rng.below(self.len_us);
        }
        // Two-sided exponential around the burst center.
        let mag = -(1.0 - rng.next_f64()).ln() * self.spread_us;
        let t = if rng.chance(0.5) {
            self.center_us.saturating_add(mag as u64)
        } else {
            self.center_us.saturating_sub(mag as u64)
        };
        t.clamp(self.start_us, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_count_mean_matches_rate() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sampled_count(&mut rng, 32_000.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}"); // 32000/3200 = 10
    }

    #[test]
    fn zero_ops_never_sample() {
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(sampled_count(&mut rng, 0.0), 0);
    }

    #[test]
    fn custom_rate() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| sampled_count_at(&mut rng, 100.0, 0.05))
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.1);
    }

    #[test]
    fn timestamps_stay_inside_tick() {
        let mut rng = SimRng::seed_from_u64(4);
        let clock = BurstClock::new(&mut rng, 5_000_000, 10_000_000, 20_000.0);
        for _ in 0..5000 {
            let t = clock.sample(&mut rng);
            assert!((5_000_000..15_000_000).contains(&t));
        }
    }

    #[test]
    fn timestamps_cluster_near_center() {
        let mut rng = SimRng::seed_from_u64(5);
        let clock = BurstClock::new(&mut rng, 0, 10_000_000, 10_000.0);
        let n = 10_000;
        let near = (0..n)
            .filter(|_| {
                let t = clock.sample(&mut rng) as i64;
                (t - clock.center_us as i64).abs() < 100_000 // within 100 ms
            })
            .count();
        // 70 % burst mass × nearly-all within 10 spreads ⇒ clearly over half.
        assert!(
            near as f64 / n as f64 > 0.55,
            "near fraction {}",
            near as f64 / n as f64
        );
    }
}
