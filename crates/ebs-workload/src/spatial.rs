//! Spatial intensity assignment: who gets the traffic.
//!
//! §3–§4 of the paper describe a three-tier concentration: a few VMs carry
//! most of a node's traffic (lognormal per-VM intensity, heavy tail), a few
//! VDs carry most of a VM's traffic (median VM→VD CoV ≈ 0.97), and a few
//! QPs carry most of a VD's traffic (writes concentrate harder than reads).
//! [`build_plan`] materialises that structure into window-total byte
//! targets per VD and per-op QP weights.

use crate::config::WorkloadConfig;
use crate::dist::gaussian::lognormal;
use crate::dist::zipf::zipf_weights;
use crate::profile::AppProfile;
use ebs_core::ids::{IdVec, QpId, VdId};
use ebs_core::rng::RngFactory;
use ebs_core::topology::Fleet;

/// Window-total bytes by direction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RwBytes {
    /// Total read bytes over the observation window.
    pub read: f64,
    /// Total write bytes over the observation window.
    pub write: f64,
}

/// Per-op traffic weight of a QP within its owning VD.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RwWeight {
    /// Share of the VD's read traffic on this QP.
    pub read: f64,
    /// Share of the VD's write traffic on this QP.
    pub write: f64,
}

/// The spatial traffic plan: how many bytes each VD moves over the window
/// and how each VD's traffic splits over its QPs.
#[derive(Clone, Debug)]
pub struct TrafficPlan {
    /// Window-total bytes per VD.
    pub vd_bytes: IdVec<VdId, RwBytes>,
    /// Per-op intra-VD weight of each QP (sums to 1 per VD per op).
    pub qp_weights: IdVec<QpId, RwWeight>,
}

impl TrafficPlan {
    /// Fleet-wide total bytes `(read, write)`.
    pub fn totals(&self) -> (f64, f64) {
        let mut r = 0.0;
        let mut w = 0.0;
        for b in self.vd_bytes.iter() {
            r += b.read;
            w += b.write;
        }
        (r, w)
    }
}

/// Build the spatial plan for a fleet.
pub fn build_plan(config: &WorkloadConfig, fleet: &Fleet) -> TrafficPlan {
    let rngf = RngFactory::new(config.seed).child("spatial");
    let mut vd_bytes = IdVec::from_vec(vec![RwBytes::default(); fleet.vds.len()]);
    let mut qp_weights = IdVec::from_vec(vec![RwWeight::default(); fleet.qps.len()]);

    for vm in fleet.vms.iter() {
        let profile = AppProfile::for_app(vm.app);
        let dc = fleet.dc_of_vm(vm.id);
        let skew = config.dc_skew.get(dc.index()).copied().unwrap_or(1.0);
        let mut rng = rngf.stream_n("vm", vm.id.index() as u64);

        // Per-VM mean intensities: a lognormal *base* (write) with a
        // correlated read multiplier on top. The shared base guarantees
        // that the fleet's biggest writers are also big readers, and the
        // extra multiplier variance (σ_r² − σ_w²) makes read traffic the
        // structurally more skewed direction (Observation 2) instead of a
        // coin flip per seed.
        let sw = profile.sigma_write * skew;
        let sr = profile.sigma_read * skew;
        let mu_w = profile.write_mean_bps.ln() - sw * sw / 2.0;
        let scale = config.traffic_scale * config.duration_secs;
        let vm_write = lognormal(&mut rng, mu_w, sw) * scale;
        // read ∝ write^(1+γ) · noise: the super-linear exponent makes read
        // concentration strictly stronger than write's for every fleet
        // draw, not just in expectation. Means are preserved analytically:
        // E[(W/W̄)^γ] = exp(σ_w²(γ²−γ)/2) for lognormal W.
        const GAMMA: f64 = 0.35;
        let mean_write = profile.write_mean_bps * scale;
        let amplification =
            (vm_write / mean_write).powf(GAMMA) / (sw * sw * (GAMMA * GAMMA - GAMMA) / 2.0).exp();
        let sx = (sr * sr - sw * sw).max(0.04).sqrt();
        let ratio_mu = (profile.read_mean_bps / profile.write_mean_bps).ln() - sx * sx / 2.0;
        let vm_read = vm_write * amplification * lognormal(&mut rng, ratio_mu, sx);

        // VM → VD split: Zipf weights per direction (reads concentrate on
        // fewer disks), shuffled independently so disks end up read- or
        // write-dominant (Figure 5(b)).
        let vds = fleet.vds_of_vm(vm.id);
        let mut w_write = zipf_weights(vds.len(), profile.vd_zipf_write);
        let mut w_read = zipf_weights(vds.len(), profile.vd_zipf_read);
        rng.shuffle(&mut w_write);
        rng.shuffle(&mut w_read);
        for (i, &vd) in vds.iter().enumerate() {
            // ebs-lint: allow(D3) -- vd is fleet-minted and i is below vds.len() == weights len
            vd_bytes[vd].write += vm_write * w_write[i];
            // ebs-lint: allow(D3) -- vd is fleet-minted and i is below vds.len() == weights len
            vd_bytes[vd].read += vm_read * w_read[i];

            // VD → QP split: writes concentrate harder than reads (§4.2).
            // ebs-lint: allow(D3) -- vd comes from fleet.vds_of_vm, so the id is fleet-minted
            let d = &fleet.vds[vd];
            let n_qp = d.spec.qp_count as usize;
            let mut qw = zipf_weights(n_qp, profile.qp_zipf_write);
            let mut qr = zipf_weights(n_qp, profile.qp_zipf_read);
            rng.shuffle(&mut qw);
            rng.shuffle(&mut qr);
            for (k, qp) in d.qps().enumerate() {
                // ebs-lint: allow(D3) -- k is below qp_count == each weight len
                let (read, write) = (qr[k], qw[k]);
                // ebs-lint: allow(D3) -- qp is fleet-minted, qp_weights covers every minted id
                qp_weights[qp] = RwWeight { read, write };
            }
        }
    }

    // Demand cannot outrun the subscription forever: the paper's metric
    // data is post-throttle, so a VD's *sustained* 12-hour volume is
    // bounded by its throughput cap (bursts above the cap still happen
    // inside ticks via the temporal envelope). Clamp window totals to a
    // conservative long-run utilization of the cap.
    const MAX_SUSTAINED_UTILIZATION: f64 = 0.85;
    for vd in fleet.vds.iter() {
        let limit = vd.spec.tput_cap * config.duration_secs * MAX_SUSTAINED_UTILIZATION;
        // ebs-lint: allow(D3) -- vd_bytes is sized from fleet.vds, the ids being iterated
        let b = &mut vd_bytes[vd.id];
        let total = b.read + b.write;
        if total > limit {
            let f = limit / total;
            b.read *= f;
            b.write *= f;
        }
    }
    TrafficPlan {
        vd_bytes,
        qp_weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::build_fleet;

    fn plan_for(seed: u64) -> (Fleet, TrafficPlan, WorkloadConfig) {
        let cfg = WorkloadConfig::medium(seed);
        let fleet = build_fleet(&cfg).unwrap();
        let plan = build_plan(&cfg, &fleet);
        (fleet, plan, cfg)
    }

    #[test]
    fn qp_weights_sum_to_one_per_vd() {
        let (fleet, plan, _) = plan_for(1);
        for vd in fleet.vds.iter() {
            let mut r = 0.0;
            let mut w = 0.0;
            for qp in vd.qps() {
                r += plan.qp_weights[qp].read;
                w += plan.qp_weights[qp].write;
            }
            assert!((r - 1.0).abs() < 1e-9, "{}", vd.id);
            assert!((w - 1.0).abs() < 1e-9, "{}", vd.id);
        }
    }

    #[test]
    fn every_vd_gets_positive_traffic() {
        let (_, plan, _) = plan_for(2);
        for b in plan.vd_bytes.iter() {
            assert!(b.read > 0.0 && b.write > 0.0);
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let (_, a, _) = plan_for(3);
        let (_, b, _) = plan_for(3);
        assert_eq!(a.totals(), b.totals());
    }

    #[test]
    fn vm_to_vd_split_is_skewed() {
        let (fleet, plan, _) = plan_for(4);
        // For multi-VD VMs, the hottest VD should dominate on average.
        let mut shares = Vec::new();
        for vm in fleet.vms.iter() {
            let vds = fleet.vds_of_vm(vm.id);
            if vds.len() < 3 {
                continue;
            }
            let total: f64 = vds.iter().map(|&v| plan.vd_bytes[v].write).sum();
            let max = vds
                .iter()
                .map(|&v| plan.vd_bytes[v].write)
                .fold(0.0, f64::max);
            shares.push(max / total);
        }
        assert!(!shares.is_empty());
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        assert!(mean > 0.5, "mean hottest-VD share {mean}");
    }

    #[test]
    fn write_concentrates_on_fewer_qps_than_read() {
        let (fleet, plan, _) = plan_for(5);
        let mut max_w = Vec::new();
        let mut max_r = Vec::new();
        for vd in fleet.vds.iter() {
            if vd.spec.qp_count < 4 {
                continue;
            }
            let w = vd
                .qps()
                .map(|q| plan.qp_weights[q].write)
                .fold(0.0, f64::max);
            let r = vd
                .qps()
                .map(|q| plan.qp_weights[q].read)
                .fold(0.0, f64::max);
            max_w.push(w);
            max_r.push(r);
        }
        assert!(!max_w.is_empty());
        let mw = max_w.iter().sum::<f64>() / max_w.len() as f64;
        let mr = max_r.iter().sum::<f64>() / max_r.len() as f64;
        assert!(mw > mr, "hottest-QP share: write {mw} read {mr}");
    }

    #[test]
    fn fleet_read_write_mix_is_write_dominant() {
        // The paper's dataset moves ~3.3x more write than read bytes.
        let (_, plan, _) = plan_for(6);
        let (r, w) = plan.totals();
        assert!(w > r, "write {w} read {r}");
    }
}
