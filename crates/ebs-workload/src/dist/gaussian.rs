//! Gaussian and lognormal draws (Box–Muller).

use ebs_core::rng::SimRng;

/// One standard-normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    // Avoid ln(0).
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal variate with the given mean and standard deviation.
pub fn normal(rng: &mut SimRng, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Lognormal variate: `exp(N(mu, sigma))`. `mu`/`sigma` are the parameters
/// of the underlying normal (so the median is `exp(mu)`).
pub fn lognormal(rng: &mut SimRng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = SimRng::seed_from_u64(2);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut xs: Vec<f64> = (0..50_000).map(|_| lognormal(&mut rng, 2.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        let expect = 2f64.exp();
        assert!(
            (med - expect).abs() / expect < 0.05,
            "median {med} vs {expect}"
        );
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(lognormal(&mut rng, 0.0, 3.0) > 0.0);
        }
    }
}
