//! ON/OFF burst envelopes — the temporal skeleton of EBS traffic.
//!
//! The paper's headline temporal finding is extreme burstiness: VM-level
//! P2A in the tens of thousands for reads (§3.2). The standard generative
//! model for such traffic is an ON/OFF process with heavy-tailed ON periods
//! and heavy-tailed burst amplitudes. [`OnOffEnvelope::generate`] produces a
//! sparse, normalized per-tick weight vector; multiplying by an entity's
//! window-total traffic yields its per-tick flow.

use super::pareto::bounded_pareto;
use ebs_core::rng::SimRng;

/// Parameters of the ON/OFF envelope.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnOffParams {
    /// Target fraction of ticks that are active, in `(0, 1]`. Small duty +
    /// heavy amplitudes = huge P2A.
    pub duty: f64,
    /// Maximum ON-run length in ticks (ON runs are bounded-Pareto on
    /// `[1, max_on]`).
    pub max_on: f64,
    /// Tail index of ON-run lengths (smaller = longer bursts).
    pub on_alpha: f64,
    /// Maximum burst amplitude relative to the quietest burst.
    pub max_amp: f64,
    /// Tail index of burst amplitudes (smaller = spikier traffic).
    pub amp_alpha: f64,
}

impl OnOffParams {
    /// A steady profile: nearly always on, mild amplitude variation.
    pub fn steady() -> Self {
        Self {
            duty: 0.9,
            max_on: 400.0,
            on_alpha: 0.8,
            max_amp: 4.0,
            amp_alpha: 2.5,
        }
    }

    /// A bursty profile: rarely on, violent amplitude spikes.
    pub fn bursty() -> Self {
        Self {
            duty: 0.03,
            max_on: 40.0,
            on_alpha: 1.2,
            max_amp: 500.0,
            amp_alpha: 0.9,
        }
    }
}

/// Mean of a bounded Pareto on `[lo, hi]` with tail index `alpha`.
pub fn bounded_pareto_mean(lo: f64, hi: f64, alpha: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo && alpha > 0.0);
    if (alpha - 1.0).abs() < 1e-9 {
        // α = 1 limit: lo·hi/(hi−lo) · ln(hi/lo).
        lo * hi / (hi - lo) * (hi / lo).ln()
    } else {
        let norm = 1.0 - (lo / hi).powf(alpha);
        lo.powf(alpha) / norm
            * (alpha / (alpha - 1.0))
            * (lo.powf(1.0 - alpha) - hi.powf(1.0 - alpha))
    }
}

/// Generator of sparse, normalized ON/OFF weight envelopes.
#[derive(Clone, Copy, Debug)]
pub struct OnOffEnvelope;

impl OnOffEnvelope {
    /// Generate a sparse envelope over `ticks` ticks: `(tick, weight)` pairs
    /// with weights summing to 1 (so they can scale any total volume).
    ///
    /// ON runs have bounded-Pareto lengths; every ON run gets a
    /// bounded-Pareto amplitude with per-tick ±20 % jitter; OFF gaps are
    /// exponential with mean chosen so the expected duty cycle matches
    /// `params.duty`. If the process never turns on inside the window (tiny
    /// duty, short window) one single-tick burst is forced so the entity is
    /// never silently dropped.
    pub fn generate(rng: &mut SimRng, ticks: u32, params: &OnOffParams) -> Vec<(u32, f64)> {
        assert!(ticks > 0);
        assert!(
            params.duty > 0.0 && params.duty <= 1.0,
            "duty must be in (0,1]"
        );
        let mean_on = bounded_pareto_mean(1.0, params.max_on.max(1.0 + 1e-9), params.on_alpha);
        let mean_off = (mean_on * (1.0 / params.duty - 1.0)).max(0.0);
        let mut out: Vec<(u32, f64)> = Vec::new();
        let mut t: f64 = if mean_off > 0.0 {
            // Random phase so entities do not all start with a burst.
            -(1.0 - rng.next_f64()).ln() * mean_off * rng.next_f64()
        } else {
            0.0
        };
        while (t as u32) < ticks {
            let on_len = bounded_pareto(rng, 1.0, params.max_on.max(1.0 + 1e-9), params.on_alpha)
                .round()
                .max(1.0) as u32;
            let amp = bounded_pareto(rng, 1.0, params.max_amp.max(1.0 + 1e-9), params.amp_alpha);
            let start = t as u32;
            for k in 0..on_len {
                let tick = start + k;
                if tick >= ticks {
                    break;
                }
                let jitter = 0.8 + 0.4 * rng.next_f64();
                out.push((tick, amp * jitter));
            }
            t = (start + on_len) as f64;
            if mean_off > 0.0 {
                t += -(1.0 - rng.next_f64()).ln() * mean_off;
            }
        }
        if out.is_empty() {
            out.push((rng.below(ticks as u64) as u32, 1.0));
        }
        let total: f64 = out.iter().map(|(_, w)| w).sum();
        for (_, w) in &mut out {
            *w /= total;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_normalize() {
        let mut rng = SimRng::seed_from_u64(1);
        let env = OnOffEnvelope::generate(&mut rng, 1000, &OnOffParams::steady());
        let sum: f64 = env.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for &(t, w) in &env {
            assert!(t < 1000);
            assert!(w > 0.0);
        }
    }

    #[test]
    fn ticks_are_sorted_and_unique() {
        let mut rng = SimRng::seed_from_u64(2);
        let env = OnOffEnvelope::generate(&mut rng, 2000, &OnOffParams::bursty());
        for w in env.windows(2) {
            assert!(w[1].0 > w[0].0, "ticks must strictly increase");
        }
    }

    #[test]
    fn duty_cycle_roughly_matches_steady() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut active = 0usize;
        let runs = 20;
        for _ in 0..runs {
            active += OnOffEnvelope::generate(&mut rng, 2000, &OnOffParams::steady()).len();
        }
        let duty = active as f64 / (2000.0 * runs as f64);
        assert!(duty > 0.6, "steady duty too low: {duty}");
    }

    #[test]
    fn bursty_is_sparser_and_spikier_than_steady() {
        let mut rng = SimRng::seed_from_u64(4);
        let ticks = 4000u32;
        let mut bursty_active = 0usize;
        let mut steady_active = 0usize;
        let mut bursty_max: f64 = 0.0;
        let mut steady_max: f64 = 0.0;
        for _ in 0..10 {
            let b = OnOffEnvelope::generate(&mut rng, ticks, &OnOffParams::bursty());
            let s = OnOffEnvelope::generate(&mut rng, ticks, &OnOffParams::steady());
            bursty_active += b.len();
            steady_active += s.len();
            bursty_max += b.iter().map(|(_, w)| *w).fold(0.0, f64::max);
            steady_max += s.iter().map(|(_, w)| *w).fold(0.0, f64::max);
        }
        assert!(
            bursty_active * 5 < steady_active,
            "{bursty_active} vs {steady_active}"
        );
        // P2A ∝ max weight × ticks: bursty must be dramatically spikier.
        assert!(
            bursty_max > steady_max * 10.0,
            "{bursty_max} vs {steady_max}"
        );
    }

    #[test]
    fn tiny_duty_still_emits_something() {
        let mut rng = SimRng::seed_from_u64(5);
        let params = OnOffParams {
            duty: 1e-4,
            ..OnOffParams::bursty()
        };
        for _ in 0..50 {
            let env = OnOffEnvelope::generate(&mut rng, 100, &params);
            assert!(!env.is_empty());
        }
    }

    #[test]
    fn bounded_pareto_mean_sane() {
        // Uniform-ish case: α large → mean near lo.
        assert!((bounded_pareto_mean(1.0, 100.0, 50.0) - 1.0).abs() < 0.1);
        // α = 1 special case is finite and between lo and hi.
        let m = bounded_pareto_mean(1.0, 100.0, 1.0);
        assert!(m > 1.0 && m < 100.0);
        // Empirical check.
        let mut rng = SimRng::seed_from_u64(6);
        let n = 200_000;
        let emp: f64 = (0..n)
            .map(|_| bounded_pareto(&mut rng, 2.0, 50.0, 1.5))
            .sum::<f64>()
            / n as f64;
        let theory = bounded_pareto_mean(2.0, 50.0, 1.5);
        assert!((emp - theory).abs() / theory < 0.02, "{emp} vs {theory}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn envelopes_always_normalize(
            seed in any::<u64>(),
            ticks in 1u32..5000,
            duty in 0.001f64..1.0,
            max_amp in 1.5f64..500.0,
        ) {
            let mut rng = SimRng::seed_from_u64(seed);
            let params = OnOffParams { duty, max_on: 50.0, on_alpha: 1.1, max_amp, amp_alpha: 1.2 };
            let env = OnOffEnvelope::generate(&mut rng, ticks, &params);
            prop_assert!(!env.is_empty());
            let sum: f64 = env.iter().map(|(_, w)| w).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {}", sum);
            for w in env.windows(2) {
                prop_assert!(w[1].0 > w[0].0, "ticks not strictly increasing");
            }
            prop_assert!(env.last().unwrap().0 < ticks);
        }
    }
}
