//! Poisson counts, used to thin the full IO population down to the 1/3200
//! sampled trace and to draw per-tick event counts.

use super::gaussian::standard_normal;
use ebs_core::rng::SimRng;

/// Sample a Poisson(λ) count. Uses Knuth's product method for small λ and a
/// (rounded, clamped) normal approximation above λ = 64, which is far more
/// than accurate enough for traffic thinning.
pub fn poisson(rng: &mut SimRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
            // Defensive bound: probability of reaching this is ~0.
            if k > 10_000 {
                return k;
            }
        }
    }
    let x = lambda + lambda.sqrt() * standard_normal(rng);
    x.round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_negative_lambda_give_zero() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn small_lambda_mean_matches() {
        let mut rng = SimRng::seed_from_u64(2);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 0.3)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn moderate_lambda_mean_and_variance() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| poisson(&mut rng, 10.0) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 10.0).abs() < 0.5);
    }

    #[test]
    fn large_lambda_uses_normal_branch() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 20_000;
        let mean = (0..n)
            .map(|_| poisson(&mut rng, 1000.0) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1000.0).abs() < 2.0, "mean {mean}");
    }
}
