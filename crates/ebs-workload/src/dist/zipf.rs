//! Zipf-distributed weights and sampling.
//!
//! Spatial skewness in the datasets — which VMs, VDs, QPs, and LBA regions
//! carry the traffic — follows heavy-tailed rank-size laws; the classic
//! model is Zipf: weight of the `i`-th ranked entity ∝ `1/(i+1)^s`.

use ebs_core::rng::SimRng;

/// Normalized Zipf weights for `n` entities with exponent `s ≥ 0`
/// (`s = 0` is uniform). Returned in rank order (largest first); callers
/// shuffle if ranks should not correlate with ids.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one entity");
    assert!(s >= 0.0, "exponent must be non-negative");
    let mut w: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// Draws ranks from a Zipf distribution via the inverse-CDF method over a
/// precomputed cumulative table; O(log n) per draw.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let w = zipf_weights(n, s);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for x in w {
            acc += x;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall at the top. `n == 0`
        // yields an empty sampler rather than a panic; `sample` on it
        // returns rank 0, the only total answer available.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has no ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_normalize_and_order() {
        let w = zipf_weights(10, 1.2);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let w = zipf_weights(4, 0.0);
        for &x in &w {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let gentle = zipf_weights(100, 0.5);
        let steep = zipf_weights(100, 2.0);
        assert!(steep[0] > gentle[0]);
        assert!(steep[99] < gentle[99]);
    }

    #[test]
    fn sampler_matches_weights() {
        let mut rng = SimRng::seed_from_u64(1);
        let s = ZipfSampler::new(5, 1.0);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[s.sample(&mut rng)] += 1;
        }
        let w = zipf_weights(5, 1.0);
        for i in 0..5 {
            let emp = counts[i] as f64 / n as f64;
            assert!((emp - w[i]).abs() < 0.01, "rank {i}: {emp} vs {}", w[i]);
        }
    }

    #[test]
    fn sampler_is_in_range() {
        let mut rng = SimRng::seed_from_u64(2);
        let s = ZipfSampler::new(3, 1.5);
        assert_eq!(s.len(), 3);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "need at least one entity")]
    fn zero_entities_rejected() {
        let _ = zipf_weights(0, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn weights_normalize_and_decrease(n in 1usize..500, s in 0.0f64..5.0) {
            let w = zipf_weights(n, s);
            prop_assert_eq!(w.len(), n);
            prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for pair in w.windows(2) {
                prop_assert!(pair[0] >= pair[1] - 1e-15);
            }
        }

        #[test]
        fn sampler_stays_in_range(seed in any::<u64>(), n in 1usize..100, s in 0.0f64..4.0) {
            let mut rng = SimRng::seed_from_u64(seed);
            let sampler = ZipfSampler::new(n, s);
            for _ in 0..32 {
                prop_assert!(sampler.sample(&mut rng) < n);
            }
        }
    }
}
