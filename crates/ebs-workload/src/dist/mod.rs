//! Sampling distributions implemented in-house.
//!
//! The generator needs Zipf weights (spatial skew), Pareto tails (burst
//! durations and amplitudes), Gaussian/lognormal draws (per-entity
//! intensities, capacities), Poisson counts (trace sampling), and an ON/OFF
//! envelope process (temporal burstiness). They are implemented here rather
//! than pulled from a distributions crate so the whole workspace stays
//! deterministic under one RNG and the math is auditable.

pub mod gaussian;
pub mod onoff;
pub mod pareto;
pub mod poisson;
pub mod zipf;

pub use gaussian::{lognormal, standard_normal};
pub use onoff::{OnOffEnvelope, OnOffParams};
pub use pareto::{bounded_pareto, pareto};
pub use poisson::poisson;
pub use zipf::{zipf_weights, ZipfSampler};
