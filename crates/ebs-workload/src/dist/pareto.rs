//! Pareto (power-law) tails for burst durations and amplitudes.

use ebs_core::rng::SimRng;

/// Sample a Pareto(xm, α) variate: `x = xm / U^(1/α)`, `x ≥ xm`.
/// Small α (≈1) gives very heavy tails.
pub fn pareto(rng: &mut SimRng, xm: f64, alpha: f64) -> f64 {
    assert!(
        xm > 0.0 && alpha > 0.0,
        "Pareto parameters must be positive"
    );
    let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    xm / u.powf(1.0 / alpha)
}

/// Sample a bounded Pareto on `[lo, hi]` with tail index `alpha` via
/// inverse CDF; keeps burst amplitudes heavy-tailed but finite.
pub fn bounded_pareto(rng: &mut SimRng, lo: f64, hi: f64, alpha: f64) -> f64 {
    assert!(
        lo > 0.0 && hi > lo && alpha > 0.0,
        "invalid bounded Pareto parameters"
    );
    let u = rng.next_f64();
    let la = lo.powf(-alpha);
    let ha = hi.powf(-alpha);
    (la - u * (la - ha)).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(pareto(&mut rng, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn pareto_median_matches_theory() {
        // Median of Pareto(xm, α) is xm · 2^(1/α).
        let mut rng = SimRng::seed_from_u64(2);
        let mut v: Vec<f64> = (0..50_000).map(|_| pareto(&mut rng, 1.0, 2.0)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = v[v.len() / 2];
        let expect = 2f64.powf(0.5);
        assert!(
            (med - expect).abs() / expect < 0.03,
            "median {med} vs {expect}"
        );
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = bounded_pareto(&mut rng, 1.0, 100.0, 1.1);
            assert!((1.0..=100.0).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_mass_sits_low() {
        let mut rng = SimRng::seed_from_u64(4);
        let below_10 = (0..20_000)
            .filter(|_| bounded_pareto(&mut rng, 1.0, 1000.0, 1.0) < 10.0)
            .count();
        // Bounded Pareto(α=1) on [1,1000]: P(X<10) = (1 - 1/10)/(1 - 1/1000) ≈ 0.9.
        let frac = below_10 as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.02, "got {frac}");
    }

    #[test]
    #[should_panic(expected = "invalid bounded Pareto parameters")]
    fn bounded_pareto_rejects_inverted_range() {
        let mut rng = SimRng::seed_from_u64(5);
        let _ = bounded_pareto(&mut rng, 10.0, 1.0, 1.0);
    }
}
