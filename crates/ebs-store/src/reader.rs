//! Chunk-level store reader: validates the header, walks the CRC-sealed
//! chunk sequence, and exposes a streaming event iterator that decodes one
//! chunk at a time — aggregations over a large trace never hold more than
//! one chunk's events live.

use std::io::Read;

use ebs_core::error::EbsError;
use ebs_core::io::IoEvent;

use crate::bytes::ByteReader;
use crate::columns::{
    decode_events_v1, decode_events_v2_into, events_from_columns, EventColumnBytes, EventScratch,
};
use crate::crc32::crc32;
use crate::format::{kind, FRAME_LEN, MAGIC, MAX_CHUNK_LEN, VERSION};
use crate::seal::seal32;

/// Frame seal for `version`: CRC32 sealed v1 frames; v2 frames use the
/// multiply-rotate seal that verifies at decode speed.
fn frame_seal(version: u32, payload: &[u8]) -> u32 {
    if version >= 2 {
        seal32(payload)
    } else {
        crc32(payload)
    }
}

/// One decoded chunk frame: the kind tag plus its checksum-verified payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Kind tag (see [`crate::format::kind`]).
    pub kind: u8,
    /// Payload bytes, already verified against the frame CRC.
    pub payload: Vec<u8>,
}

/// Totals pinned by the END chunk, used to detect truncation at a chunk
/// boundary (a cut file would otherwise parse cleanly).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EndSummary {
    /// Number of chunks that preceded the END chunk.
    pub chunks: u64,
    /// Total events across all EVENTS chunks.
    pub events: u64,
}

/// Streaming reader over the chunk sequence of an ebs-store container.
#[derive(Debug)]
pub struct ChunkReader<R: Read> {
    input: R,
    version: u32,
    chunks_read: u64,
    bytes_read: u64,
    end: Option<EndSummary>,
    done: bool,
}

impl<R: Read> ChunkReader<R> {
    /// Open a store: reads and validates the magic and version header.
    ///
    /// A bad magic is [`EbsError::CorruptStore`]; a version newer than this
    /// reader is [`EbsError::VersionSkew`] (older versions would be
    /// migrated once a version 2 exists).
    pub fn new(mut input: R) -> Result<Self, EbsError> {
        let mut magic = [0u8; 8];
        read_exact(&mut input, &mut magic, "file header magic")?;
        if magic != MAGIC {
            return Err(EbsError::corrupt_store(format!(
                "bad magic {magic:02x?}: not an ebs-store file"
            )));
        }
        let mut ver = [0u8; 4];
        read_exact(&mut input, &mut ver, "file header version")?;
        let version = u32::from_le_bytes(ver);
        if version > VERSION {
            return Err(EbsError::version_skew(format!(
                "store is format v{version} but this reader understands up to v{VERSION}"
            )));
        }
        if version == 0 {
            return Err(EbsError::corrupt_store(
                "store claims format v0".to_string(),
            ));
        }
        Ok(Self {
            input,
            version,
            chunks_read: 0,
            bytes_read: (MAGIC.len() + 4) as u64,
            end: None,
            done: false,
        })
    }

    /// Format version declared by the file header.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The END summary, available once the END chunk has been consumed.
    pub fn end_summary(&self) -> Option<EndSummary> {
        self.end
    }

    /// Read the next chunk, or `Ok(None)` after the END chunk.
    ///
    /// EOF anywhere before the END chunk is [`EbsError::Truncated`]; a
    /// payload that does not match its frame CRC is
    /// [`EbsError::ChecksumMismatch`].
    pub fn next_chunk(&mut self) -> Result<Option<Chunk>, EbsError> {
        let mut payload = Vec::new();
        Ok(self.next_chunk_into(&mut payload)?.map(|chunk_kind| Chunk {
            kind: chunk_kind,
            payload,
        }))
    }

    /// [`next_chunk`](Self::next_chunk) into a caller-provided buffer:
    /// returns the chunk kind, or `None` after the END chunk. Streaming
    /// passes reuse one buffer across every chunk, so steady-state reads
    /// allocate nothing.
    pub fn next_chunk_into(&mut self, payload: &mut Vec<u8>) -> Result<Option<u8>, EbsError> {
        payload.clear();
        if self.done {
            return Ok(None);
        }
        let mut frame = [0u8; 9];
        read_exact(&mut self.input, &mut frame, "chunk frame")?;
        let mut fr = ByteReader::new(&frame, "chunk frame");
        let chunk_kind = fr.get_u8()?;
        let len = fr.get_u32()?;
        let want_crc = fr.get_u32()?;
        if len > MAX_CHUNK_LEN {
            return Err(EbsError::corrupt_store(format!(
                "chunk {} declares a {len}-byte payload, over the {MAX_CHUNK_LEN}-byte limit",
                self.chunks_read
            )));
        }
        // Read via `take` so a short file yields Truncated instead of an
        // over-allocated buffer half-filled with zeros. Pre-size up to 1 MiB
        // so honest chunks avoid regrow copies without letting a forged
        // length reserve MAX_CHUNK_LEN up front.
        payload.reserve(len.min(1 << 20) as usize);
        let got = (&mut self.input)
            .take(u64::from(len))
            .read_to_end(payload)
            .map_err(EbsError::from)?;
        if got != len as usize {
            return Err(EbsError::truncated(format!(
                "chunk {}: payload cut short at {got} of {len} bytes",
                self.chunks_read
            )));
        }
        let have_crc = frame_seal(self.version, payload);
        if have_crc != want_crc {
            ebs_obs::counter_add("store.checksum_failures", 1);
            return Err(EbsError::checksum_mismatch(format!(
                "chunk {} (kind {chunk_kind}): crc {have_crc:08x} != stored {want_crc:08x}",
                self.chunks_read
            )));
        }
        self.bytes_read += (frame.len() + payload.len()) as u64;
        if chunk_kind == kind::END {
            let mut r = ByteReader::new(payload, "end chunk");
            let chunks = r.get_varint()?;
            let events = r.get_varint()?;
            r.expect_end()?;
            if chunks != self.chunks_read {
                return Err(EbsError::truncated(format!(
                    "end chunk pins {chunks} chunks but only {} were present",
                    self.chunks_read
                )));
            }
            self.end = Some(EndSummary { chunks, events });
            self.done = true;
            ebs_obs::counter_add("store.chunks_read", self.chunks_read);
            ebs_obs::counter_add("store.bytes_read", self.bytes_read);
            return Ok(None);
        }
        self.chunks_read += 1;
        Ok(Some(chunk_kind))
    }

    /// Collect every chunk up to END. Convenience for full materialization.
    pub fn read_all(&mut self) -> Result<Vec<Chunk>, EbsError> {
        let mut out = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            out.push(chunk);
        }
        Ok(out)
    }

    /// Turn this reader into a streaming iterator over decoded event
    /// batches, skipping non-event chunks. Each `next()` call decodes one
    /// chunk's events; the full trace is never materialized at once.
    pub fn into_event_chunks(self) -> EventChunks<R> {
        EventChunks {
            reader: self,
            payload: Vec::new(),
            scratch: EventScratch::new(),
            column_bytes: EventColumnBytes::default(),
            events_seen: 0,
            failed: false,
        }
    }
}

/// Zero-copy chunk walker over a store image held fully in memory.
///
/// Behaves exactly like [`ChunkReader`] reading from a byte slice — same
/// header validation, CRC verification, and END-chunk accounting — but
/// borrows each payload out of the image instead of copying it into a
/// buffer. Decode paths that already hold the whole container (benchmarks,
/// mapped replays) skip one full memcpy of the trace this way.
#[derive(Clone, Copy, Debug)]
pub struct SliceChunkReader<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u32,
    chunks_read: u64,
    end: Option<EndSummary>,
    done: bool,
}

impl<'a> SliceChunkReader<'a> {
    /// Open a store image: validates the magic and version header with the
    /// same rules as [`ChunkReader::new`].
    pub fn new(buf: &'a [u8]) -> Result<Self, EbsError> {
        let mut r = ByteReader::new(buf, "file header");
        let magic = r.get_bytes(MAGIC.len())?;
        if magic != MAGIC {
            return Err(EbsError::corrupt_store(format!(
                "bad magic {magic:02x?}: not an ebs-store file"
            )));
        }
        let version = r.get_u32()?;
        if version > VERSION {
            return Err(EbsError::version_skew(format!(
                "store is format v{version} but this reader understands up to v{VERSION}"
            )));
        }
        if version == 0 {
            return Err(EbsError::corrupt_store(
                "store claims format v0".to_string(),
            ));
        }
        Ok(Self {
            buf,
            pos: buf.len() - r.remaining(),
            version,
            chunks_read: 0,
            end: None,
            done: false,
        })
    }

    /// Format version declared by the file header.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The END summary, available once the END chunk has been consumed.
    pub fn end_summary(&self) -> Option<EndSummary> {
        self.end
    }

    /// Borrow the next chunk as `(kind, payload)`, or `Ok(None)` after the
    /// END chunk. Error taxonomy matches [`ChunkReader::next_chunk_into`]:
    /// a short image is [`EbsError::Truncated`], a payload that fails its
    /// frame CRC is [`EbsError::ChecksumMismatch`].
    pub fn next_chunk(&mut self) -> Result<Option<(u8, &'a [u8])>, EbsError> {
        if self.done {
            return Ok(None);
        }
        let mut r = ByteReader::new(self.buf.get(self.pos..).unwrap_or(&[]), "chunk frame");
        let chunk_kind = r.get_u8()?;
        let len = r.get_u32()?;
        let want_crc = r.get_u32()?;
        if len > MAX_CHUNK_LEN {
            return Err(EbsError::corrupt_store(format!(
                "chunk {} declares a {len}-byte payload, over the {MAX_CHUNK_LEN}-byte limit",
                self.chunks_read
            )));
        }
        let payload = r.get_bytes(len as usize).map_err(|_| {
            EbsError::truncated(format!(
                "chunk {}: payload cut short of {len} bytes",
                self.chunks_read
            ))
        })?;
        let have_crc = frame_seal(self.version, payload);
        if have_crc != want_crc {
            ebs_obs::counter_add("store.checksum_failures", 1);
            return Err(EbsError::checksum_mismatch(format!(
                "chunk {} (kind {chunk_kind}): crc {have_crc:08x} != stored {want_crc:08x}",
                self.chunks_read
            )));
        }
        self.pos += FRAME_LEN + len as usize;
        if chunk_kind == kind::END {
            let mut er = ByteReader::new(payload, "end chunk");
            let chunks = er.get_varint()?;
            let events = er.get_varint()?;
            er.expect_end()?;
            if chunks != self.chunks_read {
                return Err(EbsError::truncated(format!(
                    "end chunk pins {chunks} chunks but only {} were present",
                    self.chunks_read
                )));
            }
            self.end = Some(EndSummary { chunks, events });
            self.done = true;
            return Ok(None);
        }
        self.chunks_read += 1;
        Ok(Some((chunk_kind, payload)))
    }
}

/// Streaming iterator over the EVENTS chunks of a store.
///
/// Yields `Result<Vec<IoEvent>, EbsError>` batches, decoding v1 chunks
/// through the legacy per-value path and v2 chunks through the batched
/// column kernels (one payload buffer and one column scratch are reused
/// across every chunk). After the END chunk it cross-checks the pinned
/// event total; a mismatch surfaces as a final `Err`. After the first
/// error the iterator fuses to `None`.
#[derive(Debug)]
pub struct EventChunks<R: Read> {
    reader: ChunkReader<R>,
    payload: Vec<u8>,
    scratch: EventScratch,
    column_bytes: EventColumnBytes,
    events_seen: u64,
    failed: bool,
}

impl<R: Read> EventChunks<R> {
    /// Events decoded so far across all yielded batches.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The END summary, once the stream has completed cleanly.
    pub fn end_summary(&self) -> Option<EndSummary> {
        self.reader.end_summary()
    }

    /// Per-column byte accounting of the v2 EVENTS chunks decoded so far
    /// (all-zero while reading a v1 store, whose payloads have no
    /// column-addressable layout).
    pub fn column_bytes(&self) -> EventColumnBytes {
        self.column_bytes
    }

    fn decode_payload(&mut self) -> Result<Vec<IoEvent>, EbsError> {
        if self.reader.version() == 1 {
            return decode_events_v1(&self.payload);
        }
        let acct = decode_events_v2_into(&self.payload, &mut self.scratch)?;
        let mut events = Vec::new();
        events_from_columns(&self.scratch.columns(), &mut events)?;
        self.column_bytes.merge(&acct);
        Ok(events)
    }
}

impl<R: Read> Iterator for EventChunks<R> {
    type Item = Result<Vec<IoEvent>, EbsError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            let mut payload = std::mem::take(&mut self.payload);
            let next = self.reader.next_chunk_into(&mut payload);
            self.payload = payload;
            match next {
                Ok(Some(chunk_kind)) => {
                    if chunk_kind != kind::EVENTS {
                        continue;
                    }
                    match self.decode_payload() {
                        Ok(events) => {
                            self.events_seen += events.len() as u64;
                            ebs_obs::counter_add("store.events_streamed", events.len() as u64);
                            ebs_obs::counter_add("store.bytes_streamed", self.payload.len() as u64);
                            return Some(Ok(events));
                        }
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                Ok(None) => {
                    let end = self.reader.end_summary().unwrap_or_default();
                    if end.events != self.events_seen {
                        self.failed = true;
                        return Some(Err(EbsError::truncated(format!(
                            "end chunk pins {} events but the stream held {}",
                            end.events, self.events_seen
                        ))));
                    }
                    return None;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// `read_exact` with EOF mapped to a labelled [`EbsError::Truncated`].
fn read_exact<R: Read>(input: &mut R, buf: &mut [u8], what: &str) -> Result<(), EbsError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            EbsError::truncated(format!("{what}: file ends mid-field"))
        } else {
            EbsError::from(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::StoreWriter;
    use ebs_core::ids::{QpId, VdId};
    use ebs_core::io::Op;

    fn sample_events(n: u64) -> Vec<IoEvent> {
        (0..n)
            .map(|i| IoEvent {
                t_us: i * 10,
                vd: VdId((i % 3) as u32),
                qp: QpId((i % 5) as u32),
                op: if i % 2 == 0 { Op::Read } else { Op::Write },
                size: 4096 + (i as u32 % 7) * 512,
                offset: i * 8192,
            })
            .collect()
    }

    fn store_with(events: &[IoEvent], per_chunk: usize) -> Vec<u8> {
        let mut w = StoreWriter::new(Vec::new()).unwrap();
        w.write_chunk(kind::CONFIG, b"unused-config").unwrap();
        w.write_events_chunked(events, per_chunk).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn round_trips_chunks_and_end_summary() {
        let events = sample_events(100);
        let bytes = store_with(&events, 32);
        let mut r = ChunkReader::new(bytes.as_slice()).unwrap();
        let chunks = r.read_all().unwrap();
        assert_eq!(chunks.len(), 1 + 4); // config + ceil(100/32) event chunks
        assert_eq!(
            r.end_summary(),
            Some(EndSummary {
                chunks: 5,
                events: 100
            })
        );
    }

    #[test]
    fn streaming_iterator_reassembles_the_trace() {
        let events = sample_events(100);
        let bytes = store_with(&events, 32);
        let reader = ChunkReader::new(bytes.as_slice()).unwrap();
        let mut streamed = Vec::new();
        for batch in reader.into_event_chunks() {
            streamed.extend(batch.unwrap());
        }
        assert_eq!(streamed, events);
    }

    #[test]
    fn bad_magic_is_corrupt_store() {
        let mut bytes = store_with(&sample_events(4), 8);
        bytes[0] = b'X';
        assert!(matches!(
            ChunkReader::new(bytes.as_slice()),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn future_version_is_version_skew() {
        let mut bytes = store_with(&sample_events(4), 8);
        bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
        assert!(matches!(
            ChunkReader::new(bytes.as_slice()),
            Err(EbsError::VersionSkew(_))
        ));
    }

    #[test]
    fn flipped_payload_byte_is_checksum_mismatch() {
        // Flip one byte inside the first event payload (past header+frame).
        let mut broken = store_with(&sample_events(50), 16);
        let at = crate::format::HEADER_LEN + crate::format::FRAME_LEN + 2;
        broken[at] ^= 0x40;
        let mut r = ChunkReader::new(broken.as_slice()).unwrap();
        let err = r.read_all().unwrap_err();
        assert!(matches!(err, EbsError::ChecksumMismatch(_)), "{err}");
    }

    #[test]
    fn truncation_mid_chunk_is_truncated() {
        let bytes = store_with(&sample_events(50), 16);
        let cut = &bytes[..bytes.len() - 7];
        let mut r = ChunkReader::new(cut).unwrap();
        let err = r.read_all().unwrap_err();
        assert!(matches!(err, EbsError::Truncated(_)), "{err}");
    }

    #[test]
    fn missing_end_chunk_is_truncated() {
        // A file that was never finish()ed: header + one event chunk, no END.
        let events = sample_events(20);
        let payload = crate::columns::encode_events(&events).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(kind::EVENTS);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&seal32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut r = ChunkReader::new(bytes.as_slice()).unwrap();
        r.next_chunk().unwrap().unwrap();
        let err = r.next_chunk().unwrap_err();
        assert!(matches!(err, EbsError::Truncated(_)), "{err}");
    }

    #[test]
    fn streaming_detects_events_dropped_at_chunk_boundary() {
        // Build a store whose END chunk pins more events than present by
        // splicing out one event chunk and patching the chunk count.
        let events = sample_events(64);
        let bytes = store_with(&events, 16);
        let mut r = ChunkReader::new(bytes.as_slice()).unwrap();
        let chunks = r.read_all().unwrap();
        let end = r.end_summary().unwrap();
        // Re-emit without the last event chunk but with the original totals.
        let mut forged = Vec::new();
        forged.extend_from_slice(&MAGIC);
        forged.extend_from_slice(&VERSION.to_le_bytes());
        for chunk in &chunks[..chunks.len() - 1] {
            forged.push(chunk.kind);
            forged.extend_from_slice(&(chunk.payload.len() as u32).to_le_bytes());
            forged.extend_from_slice(&seal32(&chunk.payload).to_le_bytes());
            forged.extend_from_slice(&chunk.payload);
        }
        let mut endw = crate::bytes::ByteWriter::new();
        endw.put_varint(end.chunks - 1); // chunk count matches, event total lies
        endw.put_varint(end.events);
        let end_payload = endw.into_bytes();
        forged.push(kind::END);
        forged.extend_from_slice(&(end_payload.len() as u32).to_le_bytes());
        forged.extend_from_slice(&seal32(&end_payload).to_le_bytes());
        forged.extend_from_slice(&end_payload);
        let stream = ChunkReader::new(forged.as_slice())
            .unwrap()
            .into_event_chunks();
        let last = stream.last().unwrap();
        assert!(matches!(last, Err(EbsError::Truncated(_))));
    }

    #[test]
    fn unknown_chunk_kinds_are_skipped_by_the_event_stream() {
        let events = sample_events(10);
        let mut w = StoreWriter::new(Vec::new()).unwrap();
        w.write_chunk(0x7E, b"future optional chunk").unwrap();
        w.write_events(&events).unwrap();
        let bytes = w.finish().unwrap();
        let streamed: Vec<IoEvent> = ChunkReader::new(bytes.as_slice())
            .unwrap()
            .into_event_chunks()
            .flat_map(|b| b.unwrap())
            .collect();
        assert_eq!(streamed, events);
    }
}
